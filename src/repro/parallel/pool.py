"""Host-parallel execution backend: real worker processes for simulated work.

The simulator models 64 CPEs, many ranks, and whole benchmark suites — yet
until this module everything executed serially in one CPython process.
GROMACS itself ships the same shape of work as multi-level parallelism
over real cores (Páll et al. 2015, 2020); this is the host-side analogue
for the reproduction (DESIGN.md §9).

Two interchangeable backends behind one tiny interface:

* :class:`SerialBackend` — in-process, zero dependencies, the default.
  ``map`` is a plain ordered loop, ``share`` hands arrays through
  untouched.
* :class:`PoolBackend` — a ``concurrent.futures.ProcessPoolExecutor``
  over ``n_workers`` real processes.  Large read-only numpy arrays
  (positions, charges, LJ tables) travel once through POSIX shared
  memory (:class:`SharedArray`); per-task payloads (pair-list slices,
  partition bounds) are pickled per task.

Determinism contract (test-enforced in ``tests/parallel/test_pool.py``):
``map`` returns results in task-submission order on both backends, and
every job function in this repo is a pure function of its arguments —
so forces, energies, cache counters, trace-event multisets, and fault
replays are *bit-identical* between ``serial`` and ``pool``.

Backend selection: explicit argument > ``REPRO_BACKEND`` env var >
``"serial"``; worker count: explicit > ``REPRO_WORKERS`` env var > host
CPU count.  A worker process that dies mid-task surfaces as
:class:`WorkerCrashError` instead of a hang.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import get_context, shared_memory

import numpy as np

#: Environment variables the CLI / CI use to select the backend globally.
BACKEND_ENV = "REPRO_BACKEND"
WORKERS_ENV = "REPRO_WORKERS"

BACKEND_NAMES = ("serial", "pool")


class WorkerCrashError(RuntimeError):
    """A pool worker died (signal, os._exit, OOM kill) mid-task.

    Raised instead of hanging or surfacing the cryptic
    ``BrokenProcessPool`` so callers can tell a crashed *worker* apart
    from a bug in the task function (which propagates as itself).
    """


def host_cpu_count() -> int:
    """Usable CPUs for worker processes (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Shared-memory arrays
# ---------------------------------------------------------------------------

#: Per-process cache of attached segments: name -> (SharedMemory, ndarray).
#: Workers attach once per segment and keep the mapping for the process
#: lifetime (closing the segment would invalidate live views).
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach a segment from the resource tracker (attach-side only).

    Only the creating process owns unlink; without this, every worker
    attach registers the segment again and the tracker warns about (or
    double-frees) it at worker exit.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


@dataclass(frozen=True)
class SharedArray:
    """Picklable handle to a numpy array living in POSIX shared memory.

    The creating process calls :meth:`create` (copies the array in) and
    eventually :meth:`unlink`; any process — including the creator —
    reads it back with :meth:`array`, which returns a *read-only* view.
    Pickling moves only ``(name, shape, dtype)``, never the payload.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str

    @classmethod
    def create(cls, arr: np.ndarray) -> "SharedArray":
        arr = np.ascontiguousarray(arr)
        shm = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        handle = cls(name=shm.name, shape=tuple(arr.shape), dtype=arr.dtype.str)
        # The creator keeps its mapping alive through the same cache the
        # workers use, so `.array()` works uniformly everywhere.
        _ATTACHED[shm.name] = (shm, view)
        return handle

    def array(self) -> np.ndarray:
        entry = _ATTACHED.get(self.name)
        if entry is None:
            shm = shared_memory.SharedMemory(name=self.name)
            _untrack(shm)
            view = np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=shm.buf)
            _ATTACHED[self.name] = (shm, view)
            entry = _ATTACHED[self.name]
        out = entry[1]
        out = out.view()
        out.setflags(write=False)
        return out

    def unlink(self) -> None:
        """Free the segment (creator only; views in live workers survive
        on Linux until the last mapping closes)."""
        entry = _ATTACHED.pop(self.name, None)
        if entry is not None:
            shm = entry[0]
        else:
            try:
                shm = shared_memory.SharedMemory(name=self.name)
            except FileNotFoundError:
                return
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:
            pass


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class SerialBackend:
    """In-process fallback: the behaviour every pool result is pinned to."""

    name = "serial"
    n_workers = 1

    @property
    def parallel(self) -> bool:
        return False

    def map(self, fn, items) -> list:
        return [fn(item) for item in items]

    def share(self, arr: np.ndarray) -> np.ndarray:
        """Serial tasks read the array directly; no copy, no segment."""
        return np.asarray(arr)

    def close(self) -> None:
        pass

    def __enter__(self) -> "SerialBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return "SerialBackend()"


def _worker_init() -> None:
    """Executed in every pool worker at startup: force nested backend
    resolution to ``serial``.

    Jobs may run whole engines (multi-rank runs, benchmark fan-outs)
    whose internals resolve their own backend from the environment; in a
    worker that must come out serial, or every worker would spawn its
    own grand-child pool and oversubscribe the host.
    """
    os.environ[BACKEND_ENV] = "serial"


class PoolBackend:
    """Process-pool backend over ``n_workers`` real host cores.

    The executor is created lazily on the first :meth:`map`, so merely
    configuring ``backend="pool"`` costs nothing until parallel work
    exists.  Shared segments created through :meth:`share` are tracked
    and freed on :meth:`close` (or context-manager exit).
    """

    name = "pool"

    def __init__(self, n_workers: int | None = None) -> None:
        if n_workers is not None and n_workers < 1:
            raise ValueError(f"n_workers must be >= 1: {n_workers}")
        self.n_workers = n_workers or max(host_cpu_count(), 2)
        self._executor: ProcessPoolExecutor | None = None
        self._shared: list[SharedArray] = []

    @property
    def parallel(self) -> bool:
        return self.n_workers > 1

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            try:
                ctx = get_context("fork")  # cheap on Linux; inherits pages
            except ValueError:
                ctx = get_context()
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=ctx,
                initializer=_worker_init,
            )
        return self._executor

    def map(self, fn, items) -> list:
        """Ordered parallel map.  Task exceptions propagate as themselves;
        a dead worker raises :class:`WorkerCrashError`."""
        items = list(items)
        if not items:
            return []
        executor = self._ensure_executor()
        try:
            return list(executor.map(fn, items))
        except BrokenProcessPool as exc:
            # The executor is unusable after a worker death; drop it so a
            # retry on this backend starts a fresh pool.
            self._executor = None
            raise WorkerCrashError(
                f"a {self.name} backend worker process died while running "
                f"{getattr(fn, '__name__', fn)!r} over {len(items)} task(s); "
                "the pool has been discarded (common causes: OOM kill, "
                "os._exit in task code, a native-extension crash)"
            ) from exc

    def share(self, arr: np.ndarray) -> SharedArray:
        """Publish a read-only array to workers via shared memory."""
        handle = SharedArray.create(arr)
        self._shared.append(handle)
        return handle

    def release_shared(self) -> None:
        """Free all segments created by :meth:`share` (between phases)."""
        for handle in self._shared:
            handle.unlink()
        self._shared.clear()

    def close(self) -> None:
        self.release_shared()
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "PoolBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"PoolBackend(n_workers={self.n_workers})"


#: Union type for annotations.
ExecutionBackend = SerialBackend | PoolBackend


def as_input(shared) -> np.ndarray:
    """Resolve a task input that may be a :class:`SharedArray` handle or a
    plain array (what :meth:`SerialBackend.share` returns)."""
    if isinstance(shared, SharedArray):
        return shared.array()
    return np.asarray(shared)


def resolve_backend(
    backend: str | ExecutionBackend | None = None,
    workers: int | None = None,
) -> ExecutionBackend:
    """Build the execution backend from an explicit choice or environment.

    Precedence: explicit ``backend`` object/name > :data:`BACKEND_ENV`
    env var > ``"serial"``.  Worker count: explicit ``workers`` >
    :data:`WORKERS_ENV` > host CPU count.  ``REPRO_WORKERS`` > 1 alone
    does *not* switch the backend — selection stays explicit so the env
    var can pre-size pools without changing semantics.
    """
    if isinstance(backend, (SerialBackend, PoolBackend)):
        return backend
    name = backend or os.environ.get(BACKEND_ENV) or "serial"
    name = name.lower()
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if env is not None:
            workers = int(env)
    if name == "serial":
        return SerialBackend()
    return PoolBackend(n_workers=workers)


#: Process-wide backend cache keyed by (name, workers) — see shared_backend().
_SHARED_BACKENDS: dict[tuple[str, int | None], ExecutionBackend] = {}


def _close_shared_backends() -> None:
    for be in _SHARED_BACKENDS.values():
        be.close()
    _SHARED_BACKENDS.clear()


def close_shared_backend() -> None:
    """Explicitly close and forget every process-wide shared backend.

    ``shared_backend()`` instances are normally reaped at interpreter
    exit via ``atexit`` — fine for one-shot CLI runs, but a long-lived
    process (the ``repro serve`` service, a notebook, a test harness)
    that is done with parallel work should release the worker pool and
    its shared-memory segments *now*, not at exit.  The service calls
    this from graceful drain.

    Safe at any time: components still holding a closed ``PoolBackend``
    reference lazily respawn its executor on the next ``map``, and the
    next ``shared_backend()`` call simply builds a fresh instance.
    Idempotent; the ``atexit`` hook remains as the backstop and becomes
    a no-op once the registry is empty.
    """
    _close_shared_backends()


def shared_backend(
    backend: str | ExecutionBackend | None = None,
    workers: int | None = None,
) -> ExecutionBackend:
    """Resolve like :func:`resolve_backend` but reuse one process-wide
    instance per (name, workers) pair.

    Long-lived components (engines, MD loops, CLI commands) that resolve
    their backend from config/env should use this instead of
    :func:`resolve_backend`, so a test suite constructing hundreds of
    engines under ``REPRO_BACKEND=pool`` shares one executor rather than
    leaking one worker pool per engine.  Shared backends are closed at
    interpreter exit; callers must NOT ``close()`` them.  An explicit
    backend *object* is passed through untouched (caller owns it).
    """
    if isinstance(backend, (SerialBackend, PoolBackend)):
        return backend
    name = (backend or os.environ.get(BACKEND_ENV) or "serial").lower()
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if env is not None:
            workers = int(env)
    key = (name, workers)
    if key not in _SHARED_BACKENDS:
        if not _SHARED_BACKENDS:
            atexit.register(_close_shared_backends)
        _SHARED_BACKENDS[key] = resolve_backend(name, workers)
    return _SHARED_BACKENDS[key]


@contextmanager
def shared_inputs(backend, **arrays):
    """Publish named read-only arrays for one ``backend.map`` phase.

    Yields ``{name: handle}`` where each handle is a :class:`SharedArray`
    under a parallel backend and the plain array itself otherwise (tasks
    resolve either with :func:`as_input`).  Segments created here are
    unlinked on exit, so call-sites own exactly the segments they made —
    safe even when several call-sites share one backend instance.
    """
    created: list[SharedArray] = []
    handles: dict[str, object] = {}
    try:
        for key, arr in arrays.items():
            if getattr(backend, "parallel", False):
                handle = SharedArray.create(arr)
                created.append(handle)
                handles[key] = handle
            else:
                handles[key] = np.asarray(arr)
        yield handles
    finally:
        for handle in created:
            handle.unlink()
