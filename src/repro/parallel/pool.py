"""Host-parallel execution backend: real worker processes for simulated work.

The simulator models 64 CPEs, many ranks, and whole benchmark suites — yet
until this module everything executed serially in one CPython process.
GROMACS itself ships the same shape of work as multi-level parallelism
over real cores (Páll et al. 2015, 2020); this is the host-side analogue
for the reproduction (DESIGN.md §9).

Two interchangeable backends behind one tiny interface:

* :class:`SerialBackend` — in-process, zero dependencies, the default.
  ``map`` is a plain ordered loop, ``share`` hands arrays through
  untouched.
* :class:`PoolBackend` — a ``concurrent.futures.ProcessPoolExecutor``
  over ``n_workers`` real processes.  Large read-only numpy arrays
  (positions, charges, LJ tables) travel once through POSIX shared
  memory (:class:`SharedArray`); per-task payloads (pair-list slices,
  partition bounds) are pickled per task.

Three IPC refinements ride on the pool backend (DESIGN.md §14):

* :meth:`PoolBackend.map_batched` coalesces many small tasks into one
  pickled submission per worker, cutting per-task executor and pickle
  overhead for wide fans (per-CPE trace analyses, fidelity partitions);
* **affinity lanes** — :meth:`PoolBackend.run_on` dispatches one task to
  a *specific* long-lived worker process (a "lane": a dedicated
  single-process executor), which is what lets worker-resident state
  (`repro.serve.residency`) actually get hit: the serving layer hashes a
  system key to a lane and always lands work for that system on the
  process that already holds it;
* :class:`ArenaHandle` — preallocated per-lane shared-memory *output*
  arenas: a worker writes large result blocks (force arrays) in place
  and returns a tiny :class:`ArenaRef` descriptor instead of pickling
  the payload back.

Determinism contract (test-enforced in ``tests/parallel/test_pool.py``):
``map``/``map_batched`` return results in task-submission order on both
backends, and every job function in this repo is a pure function of its
arguments — so forces, energies, cache counters, trace-event multisets,
and fault replays are *bit-identical* between ``serial`` and ``pool``.

Backend selection: explicit argument > ``REPRO_BACKEND`` env var >
``"serial"``; worker count: explicit > ``REPRO_WORKERS`` env var > host
CPU count.  A worker process that dies mid-task surfaces as
:class:`WorkerCrashError` instead of a hang; a crashed *lane* is
discarded and lazily respawned (its resident state dies with it).

Every shared-memory segment created by this process is tracked in a
registry and unlinked by an ``atexit`` audit, so a ``WorkerCrashError``
that aborts a caller mid-``map`` (or an arena orphaned by a crashed
service) cannot strand segments in ``/dev/shm`` past process exit.
"""

from __future__ import annotations

import atexit
import os
import threading
import uuid
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import get_context, shared_memory

import numpy as np

#: Environment variables the CLI / CI use to select the backend globally.
BACKEND_ENV = "REPRO_BACKEND"
WORKERS_ENV = "REPRO_WORKERS"

BACKEND_NAMES = ("serial", "pool")


class WorkerCrashError(RuntimeError):
    """A pool worker died (signal, os._exit, OOM kill) mid-task.

    Raised instead of hanging or surfacing the cryptic
    ``BrokenProcessPool`` so callers can tell a crashed *worker* apart
    from a bug in the task function (which propagates as itself).
    """


def host_cpu_count() -> int:
    """Usable CPUs for worker processes (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Shared-memory arrays
# ---------------------------------------------------------------------------

#: Per-process cache of attached segments: name -> (SharedMemory, ndarray).
#: Workers attach once per segment and keep the mapping for the process
#: lifetime (closing the segment would invalidate live views).
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}

#: Names of segments *created* (owned) by this process and not yet
#: unlinked.  The atexit audit below unlinks whatever is left, so a
#: caller aborted mid-``map`` by a WorkerCrashError — or an arena whose
#: owner never reached its cleanup path — cannot strand ``/dev/shm``
#: segments past process exit.
_CREATED: set[str] = set()
_AUDIT_REGISTERED = False


def live_created_segments() -> tuple[str, ...]:
    """Names of shared segments this process owns and has not unlinked
    (regression hook for the crash-lifecycle tests)."""
    return tuple(sorted(_CREATED))


def audit_shared_segments() -> int:
    """Unlink every segment this process still owns; returns the count.

    Runs automatically at interpreter exit; callable earlier by services
    that want a deterministic cleanup point after a crash recovery.
    """
    leaked = 0
    for name in sorted(_CREATED):
        SharedArray(name=name, shape=(0,), dtype="|u1").unlink()
        leaked += 1
    return leaked


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach a segment from the resource tracker (attach-side only).

    Only the creating process owns unlink; without this, every worker
    attach registers the segment again and the tracker warns about (or
    double-frees) it at worker exit.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


@dataclass(frozen=True)
class SharedArray:
    """Picklable handle to a numpy array living in POSIX shared memory.

    The creating process calls :meth:`create` (copies the array in) and
    eventually :meth:`unlink`; any process — including the creator —
    reads it back with :meth:`array`, which returns a *read-only* view.
    Pickling moves only ``(name, shape, dtype)``, never the payload.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str

    @classmethod
    def create(cls, arr: np.ndarray) -> "SharedArray":
        global _AUDIT_REGISTERED
        arr = np.ascontiguousarray(arr)
        # Deterministic `repro-` prefix so a stranded segment is
        # attributable at a glance (and CI can grep /dev/shm for strays).
        name = f"repro-{os.getpid()}-{uuid.uuid4().hex[:12]}"
        shm = shared_memory.SharedMemory(
            create=True, name=name, size=max(arr.nbytes, 1)
        )
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        handle = cls(name=shm.name, shape=tuple(arr.shape), dtype=arr.dtype.str)
        # The creator keeps its mapping alive through the same cache the
        # workers use, so `.array()` works uniformly everywhere.
        _ATTACHED[shm.name] = (shm, view)
        _CREATED.add(shm.name)
        if not _AUDIT_REGISTERED:
            _AUDIT_REGISTERED = True
            atexit.register(audit_shared_segments)
        return handle

    def array(self) -> np.ndarray:
        entry = _ATTACHED.get(self.name)
        if entry is None:
            shm = shared_memory.SharedMemory(name=self.name)
            _untrack(shm)
            view = np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=shm.buf)
            _ATTACHED[self.name] = (shm, view)
            entry = _ATTACHED[self.name]
        out = entry[1]
        out = out.view()
        out.setflags(write=False)
        return out

    def writable_array(self) -> np.ndarray:
        """A *writable* view of the segment (arena use only).

        Regular task inputs stay read-only through :meth:`array`; output
        arenas are the one sanctioned writer-side use, and their access
        is serialised by the owning backend's per-lane lock.
        """
        self.array()  # ensure attached
        return _ATTACHED[self.name][1].view()

    def unlink(self) -> None:
        """Free the segment (creator only; views in live workers survive
        on Linux until the last mapping closes)."""
        _CREATED.discard(self.name)
        entry = _ATTACHED.pop(self.name, None)
        if entry is not None:
            shm = entry[0]
        else:
            try:
                shm = shared_memory.SharedMemory(name=self.name)
            except FileNotFoundError:
                return
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:
            pass


# ---------------------------------------------------------------------------
# Output arenas (zero-copy result blocks)
# ---------------------------------------------------------------------------

#: Offsets inside an arena are aligned to cache-line granularity.
ARENA_ALIGN = 64


@dataclass(frozen=True)
class ArenaRef:
    """Tiny picklable descriptor of one array written into an arena."""

    offset: int
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        n = int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1
        return n * np.dtype(self.dtype).itemsize

    def to_dict(self) -> dict:
        return {
            "offset": self.offset,
            "shape": list(self.shape),
            "dtype": self.dtype,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ArenaRef":
        return cls(
            offset=int(data["offset"]),
            shape=tuple(int(s) for s in data["shape"]),
            dtype=str(data["dtype"]),
        )


@dataclass(frozen=True)
class ArenaHandle:
    """Preallocated shared-memory block for worker *outputs*.

    The parent allocates one arena per affinity lane; the lane's worker
    :meth:`pack`\\ s large result arrays (force blocks) into it and ships
    only :class:`ArenaRef` descriptors back — the parent then
    :meth:`read`\\ s the data in place instead of unpickling a copy.

    Concurrency contract: an arena is valid until the *next* task runs
    on its lane, so the owner must consume (or copy) refs while holding
    the lane's :meth:`PoolBackend.lane_lock` around the dispatch that
    produced them.  ``pack`` returns ``None`` when the blocks do not fit
    (the caller falls back to pickled results — a capacity miss degrades
    to the old path, never to corruption).
    """

    data: SharedArray

    @classmethod
    def allocate(cls, nbytes: int) -> "ArenaHandle":
        if nbytes < 1:
            raise ValueError(f"arena capacity must be >= 1 byte: {nbytes}")
        return cls(
            data=SharedArray.create(np.zeros(int(nbytes), dtype=np.uint8))
        )

    @property
    def capacity(self) -> int:
        return int(self.data.shape[0])

    def pack(self, arrays) -> list[ArenaRef] | None:
        buf = self.data.writable_array()
        offset = 0
        refs: list[ArenaRef] = []
        for arr in arrays:
            arr = np.ascontiguousarray(arr)
            offset = -(-offset // ARENA_ALIGN) * ARENA_ALIGN
            end = offset + arr.nbytes
            if end > self.capacity:
                return None
            buf[offset:end] = arr.view(np.uint8).reshape(-1)
            refs.append(
                ArenaRef(offset=offset, shape=tuple(arr.shape),
                         dtype=arr.dtype.str)
            )
            offset = end
        return refs

    def read(self, ref: ArenaRef) -> np.ndarray:
        """Read-only in-place view of one packed block (valid only under
        the producing lane's lock — copy to retain past it)."""
        flat = self.data.array()[ref.offset : ref.offset + ref.nbytes]
        return flat.view(np.dtype(ref.dtype)).reshape(ref.shape)

    def unlink(self) -> None:
        self.data.unlink()


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class SerialBackend:
    """In-process fallback: the behaviour every pool result is pinned to."""

    name = "serial"
    n_workers = 1

    def __init__(self) -> None:
        self._lane_lock = threading.Lock()

    @property
    def parallel(self) -> bool:
        return False

    @property
    def lane_count(self) -> int:
        return 1

    def map(self, fn, items) -> list:
        return [fn(item) for item in items]

    def map_batched(self, fn, items, chunks: int | None = None) -> list:
        """Serial: batching is a no-op (same ordered loop)."""
        return self.map(fn, items)

    def run_on(self, lane: int, fn, item):
        """One lane, inline execution (affinity is trivially perfect)."""
        if lane != 0:
            raise ValueError(f"serial backend has one lane, got {lane}")
        return fn(item)

    def lane_lock(self, lane: int) -> threading.Lock:
        return self._lane_lock

    def share(self, arr: np.ndarray) -> np.ndarray:
        """Serial tasks read the array directly; no copy, no segment."""
        return np.asarray(arr)

    def close(self) -> None:
        pass

    def __enter__(self) -> "SerialBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return "SerialBackend()"


def _worker_init() -> None:
    """Executed in every pool worker at startup: force nested backend
    resolution to ``serial``.

    Jobs may run whole engines (multi-rank runs, benchmark fan-outs)
    whose internals resolve their own backend from the environment; in a
    worker that must come out serial, or every worker would spawn its
    own grand-child pool and oversubscribe the host.
    """
    os.environ[BACKEND_ENV] = "serial"


def _run_task_chunk(chunk: tuple) -> list:
    """One ``map_batched`` submission: ``(fn, items)`` executed as an
    ordered loop inside a single worker (pure; order-preserving)."""
    fn, items = chunk
    return [fn(item) for item in items]


class PoolBackend:
    """Process-pool backend over ``n_workers`` real host cores.

    The executor is created lazily on the first :meth:`map`, so merely
    configuring ``backend="pool"`` costs nothing until parallel work
    exists.  Shared segments created through :meth:`share` are tracked
    and freed on :meth:`close` (or context-manager exit).
    """

    name = "pool"

    def __init__(self, n_workers: int | None = None) -> None:
        if n_workers is not None and n_workers < 1:
            raise ValueError(f"n_workers must be >= 1: {n_workers}")
        self.n_workers = n_workers or max(host_cpu_count(), 2)
        self._executor: ProcessPoolExecutor | None = None
        self._shared: list[SharedArray] = []
        #: Affinity lanes: dedicated single-process executors, created
        #: lazily per lane id (see run_on).
        self._lanes: dict[int, ProcessPoolExecutor] = {}
        self._lane_locks: dict[int, threading.Lock] = {}

    @property
    def parallel(self) -> bool:
        return self.n_workers > 1

    @property
    def lane_count(self) -> int:
        """Addressable affinity lanes (== worker count)."""
        return self.n_workers

    def _mp_context(self):
        try:
            return get_context("fork")  # cheap on Linux; inherits pages
        except ValueError:
            return get_context()

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=self._mp_context(),
                initializer=_worker_init,
            )
        return self._executor

    def map(self, fn, items) -> list:
        """Ordered parallel map.  Task exceptions propagate as themselves;
        a dead worker raises :class:`WorkerCrashError`."""
        items = list(items)
        if not items:
            return []
        executor = self._ensure_executor()
        try:
            return list(executor.map(fn, items))
        except BrokenProcessPool as exc:
            # The executor is unusable after a worker death; drop it so a
            # retry on this backend starts a fresh pool.
            self._executor = None
            raise WorkerCrashError(
                f"a {self.name} backend worker process died while running "
                f"{getattr(fn, '__name__', fn)!r} over {len(items)} task(s); "
                "the pool has been discarded (common causes: OOM kill, "
                "os._exit in task code, a native-extension crash)"
            ) from exc

    def map_batched(self, fn, items, chunks: int | None = None) -> list:
        """Ordered parallel map with *one submission per worker*.

        Items are split into ``chunks`` contiguous groups (default: one
        per worker) and each group travels as a single pickled task, so
        a 64-way fan costs ``n_workers`` executor round trips instead of
        64.  Results come back flattened in submission order — the same
        ordering (and therefore bit-identity) contract as :meth:`map`.
        """
        items = list(items)
        if not items:
            return []
        n = max(min(chunks or self.n_workers, len(items)), 1)
        bounds = [len(items) * k // n for k in range(n + 1)]
        payload = [
            (fn, items[bounds[k] : bounds[k + 1]]) for k in range(n)
        ]
        executor = self._ensure_executor()
        try:
            nested = list(executor.map(_run_task_chunk, payload))
        except BrokenProcessPool as exc:
            self._executor = None
            raise WorkerCrashError(
                f"a {self.name} backend worker process died while running "
                f"a batched submission of "
                f"{getattr(fn, '__name__', fn)!r} over {len(items)} "
                f"task(s) in {n} chunk(s); the pool has been discarded"
            ) from exc
        return [result for chunk in nested for result in chunk]

    # -- affinity lanes ----------------------------------------------------
    def _ensure_lane(self, lane: int) -> ProcessPoolExecutor:
        if not 0 <= lane < self.n_workers:
            raise ValueError(
                f"lane must be in 0..{self.n_workers - 1}: {lane}"
            )
        executor = self._lanes.get(lane)
        if executor is None:
            executor = ProcessPoolExecutor(
                max_workers=1,
                mp_context=self._mp_context(),
                initializer=_worker_init,
            )
            self._lanes[lane] = executor
        return executor

    def lane_lock(self, lane: int) -> threading.Lock:
        """Per-lane mutex: hold it around a :meth:`run_on` whose result
        references that lane's arena (see :class:`ArenaHandle`)."""
        return self._lane_locks.setdefault(lane, threading.Lock())

    def run_on(self, lane: int, fn, item):
        """Run one task on a *specific* long-lived worker process.

        The lane's process persists across calls, so module-global state
        built by earlier tasks (resident simulations, warmed caches) is
        visible to later ones — the whole point of affinity dispatch.
        A crashed lane raises :class:`WorkerCrashError` and is discarded;
        the next ``run_on`` respawns it fresh (resident state is gone,
        which callers observe as a cold rebuild, never a wrong answer).
        """
        executor = self._ensure_lane(lane)
        try:
            return executor.submit(fn, item).result()
        except BrokenProcessPool as exc:
            self._lanes.pop(lane, None)
            executor.shutdown(wait=True, cancel_futures=True)
            raise WorkerCrashError(
                f"affinity lane {lane} of the {self.name} backend died "
                f"while running {getattr(fn, '__name__', fn)!r}; the lane "
                "has been discarded and will respawn (cold) on next use"
            ) from exc

    def share(self, arr: np.ndarray) -> SharedArray:
        """Publish a read-only array to workers via shared memory."""
        handle = SharedArray.create(arr)
        self._shared.append(handle)
        return handle

    def release_shared(self) -> None:
        """Free all segments created by :meth:`share` (between phases)."""
        for handle in self._shared:
            handle.unlink()
        self._shared.clear()

    def close(self) -> None:
        self.release_shared()
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        for executor in self._lanes.values():
            executor.shutdown(wait=True, cancel_futures=True)
        self._lanes.clear()

    def __enter__(self) -> "PoolBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"PoolBackend(n_workers={self.n_workers})"


#: Union type for annotations.
ExecutionBackend = SerialBackend | PoolBackend


def as_input(shared) -> np.ndarray:
    """Resolve a task input that may be a :class:`SharedArray` handle or a
    plain array (what :meth:`SerialBackend.share` returns)."""
    if isinstance(shared, SharedArray):
        return shared.array()
    return np.asarray(shared)


def resolve_backend(
    backend: str | ExecutionBackend | None = None,
    workers: int | None = None,
) -> ExecutionBackend:
    """Build the execution backend from an explicit choice or environment.

    Precedence: explicit ``backend`` object/name > :data:`BACKEND_ENV`
    env var > ``"serial"``.  Worker count: explicit ``workers`` >
    :data:`WORKERS_ENV` > host CPU count.  ``REPRO_WORKERS`` > 1 alone
    does *not* switch the backend — selection stays explicit so the env
    var can pre-size pools without changing semantics.
    """
    if isinstance(backend, (SerialBackend, PoolBackend)):
        return backend
    name = backend or os.environ.get(BACKEND_ENV) or "serial"
    name = name.lower()
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if env is not None:
            workers = int(env)
    if name == "serial":
        return SerialBackend()
    return PoolBackend(n_workers=workers)


#: Process-wide backend cache keyed by (name, workers) — see shared_backend().
_SHARED_BACKENDS: dict[tuple[str, int | None], ExecutionBackend] = {}


def _close_shared_backends() -> None:
    for be in _SHARED_BACKENDS.values():
        be.close()
    _SHARED_BACKENDS.clear()


def close_shared_backend() -> None:
    """Explicitly close and forget every process-wide shared backend.

    ``shared_backend()`` instances are normally reaped at interpreter
    exit via ``atexit`` — fine for one-shot CLI runs, but a long-lived
    process (the ``repro serve`` service, a notebook, a test harness)
    that is done with parallel work should release the worker pool and
    its shared-memory segments *now*, not at exit.  The service calls
    this from graceful drain.

    Safe at any time: components still holding a closed ``PoolBackend``
    reference lazily respawn its executor on the next ``map``, and the
    next ``shared_backend()`` call simply builds a fresh instance.
    Idempotent; the ``atexit`` hook remains as the backstop and becomes
    a no-op once the registry is empty.
    """
    _close_shared_backends()


def shared_backend(
    backend: str | ExecutionBackend | None = None,
    workers: int | None = None,
) -> ExecutionBackend:
    """Resolve like :func:`resolve_backend` but reuse one process-wide
    instance per (name, workers) pair.

    Long-lived components (engines, MD loops, CLI commands) that resolve
    their backend from config/env should use this instead of
    :func:`resolve_backend`, so a test suite constructing hundreds of
    engines under ``REPRO_BACKEND=pool`` shares one executor rather than
    leaking one worker pool per engine.  Shared backends are closed at
    interpreter exit; callers must NOT ``close()`` them.  An explicit
    backend *object* is passed through untouched (caller owns it).
    """
    if isinstance(backend, (SerialBackend, PoolBackend)):
        return backend
    name = (backend or os.environ.get(BACKEND_ENV) or "serial").lower()
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if env is not None:
            workers = int(env)
    key = (name, workers)
    if key not in _SHARED_BACKENDS:
        if not _SHARED_BACKENDS:
            atexit.register(_close_shared_backends)
        _SHARED_BACKENDS[key] = resolve_backend(name, workers)
    return _SHARED_BACKENDS[key]


@contextmanager
def shared_inputs(backend, **arrays):
    """Publish named read-only arrays for one ``backend.map`` phase.

    Yields ``{name: handle}`` where each handle is a :class:`SharedArray`
    under a parallel backend and the plain array itself otherwise (tasks
    resolve either with :func:`as_input`).  Segments created here are
    unlinked on exit, so call-sites own exactly the segments they made —
    safe even when several call-sites share one backend instance.
    """
    created: list[SharedArray] = []
    handles: dict[str, object] = {}
    try:
        for key, arr in arrays.items():
            if getattr(backend, "parallel", False):
                handle = SharedArray.create(arr)
                created.append(handle)
                handles[key] = handle
            else:
                handles[key] = np.asarray(arr)
        yield handles
    finally:
        for handle in created:
            handle.unlink()
