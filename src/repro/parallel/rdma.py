"""RDMA transport model: the paper's §3.6 communication acceleration.

An RDMA transfer moves user memory to user memory with no intermediate
copies, no kernel crossing, and no pack/unpack CPU time — the NIC reads
the source buffer and writes the destination buffer directly.  Deleting
those terms from the MPI model of `repro.parallel.mpi_sim` gives:

    t(message) = rdma_latency + size / rdma_bandwidth

For the small, frequent messages of GROMACS' halo/energy exchanges this
is mostly a latency win (6 us -> 1.7 us) plus the removed per-byte copy
and pack costs.
"""

from __future__ import annotations

from repro.hw.params import ChipParams, DEFAULT_PARAMS
from repro.parallel.mpi_sim import mpi_message_seconds
from repro.resilience.faults import FaultPlan, PermanentFaultError
from repro.resilience.retry import DEFAULT_RETRY, RetryPolicy


def rdma_message_seconds(
    size_bytes: float, params: ChipParams = DEFAULT_PARAMS
) -> float:
    """Modelled time for one RDMA transfer of ``size_bytes``."""
    if size_bytes < 0:
        raise ValueError(f"message size must be non-negative: {size_bytes}")
    assert params.rdma_copy_count == 0, "RDMA is zero-copy by definition"
    return params.rdma_latency_s + size_bytes / (params.rdma_bandwidth_gbs * 1e9)


def rdma_message_seconds_with_faults(
    size_bytes: float,
    fault_plan: FaultPlan | None,
    retry: RetryPolicy = DEFAULT_RETRY,
    params: ChipParams = DEFAULT_PARAMS,
) -> float:
    """RDMA message time including NoC-loss resends under a fault plan.

    RDMA has no kernel to re-drive a lost packet, so the library layer
    detects the missing completion and reissues the whole transfer; each
    resend pays the full message cost plus an exponential backoff.
    """
    t = rdma_message_seconds(size_bytes, params)
    if fault_plan is None:
        return t
    attempt = 0
    while fault_plan.message_lost():
        attempt += 1
        if attempt >= retry.max_attempts:
            raise PermanentFaultError(
                f"RDMA transfer of {size_bytes} B lost "
                f"{retry.max_attempts} times in a row"
            )
        t += (
            rdma_message_seconds(size_bytes, params)
            + retry.backoff_cycles(attempt) * params.cycle_s
        )
    return t


def rdma_speedup(size_bytes: float, params: ChipParams = DEFAULT_PARAMS) -> float:
    """MPI/RDMA time ratio for one message size (>1 everywhere)."""
    return mpi_message_seconds(size_bytes, params) / rdma_message_seconds(
        size_bytes, params
    )


def crossover_size_bytes(
    target_speedup: float = 1.5,
    params: ChipParams = DEFAULT_PARAMS,
    lo: float = 1.0,
    hi: float = 1e9,
) -> float:
    """Message size where the RDMA advantage falls to ``target_speedup``.

    Small messages gain the most (latency-dominated); as size grows the
    ratio approaches the bandwidth+copy-cost ratio.  Bisection over a
    monotone-decreasing function.
    """
    if not rdma_speedup(lo, params) >= target_speedup:
        raise ValueError(
            f"RDMA speedup at {lo} B is already below {target_speedup}"
        )
    if rdma_speedup(hi, params) >= target_speedup:
        return hi  # advantage never decays to the target in range
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if rdma_speedup(mid, params) >= target_speedup:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0
