"""Simulated parallel runtime: athread-style CPE spawning, spatial domain
decomposition over core groups, and MPI/RDMA communication models."""

from repro.parallel.athread import (
    AthreadSpawnError,
    SpawnReport,
    block_partition,
    spawn,
    weighted_partition,
)
from repro.parallel.collectives import CommBreakdown, ENERGY_RECORD_BYTES, step_comm_seconds
from repro.parallel.decomposition import (
    DomainDecomposition,
    Subdomain,
    factor_ranks,
    halo_bytes_per_step,
)
from repro.parallel.mpi_sim import (
    SimComm,
    allreduce_seconds,
    alltoall_seconds,
    mpi_message_seconds,
)
from repro.parallel.rdma import (
    crossover_size_bytes,
    rdma_message_seconds,
    rdma_message_seconds_with_faults,
    rdma_speedup,
)

__all__ = [
    "AthreadSpawnError",
    "CommBreakdown",
    "DomainDecomposition",
    "ENERGY_RECORD_BYTES",
    "SimComm",
    "SpawnReport",
    "Subdomain",
    "allreduce_seconds",
    "alltoall_seconds",
    "block_partition",
    "crossover_size_bytes",
    "factor_ranks",
    "halo_bytes_per_step",
    "mpi_message_seconds",
    "rdma_message_seconds",
    "rdma_message_seconds_with_faults",
    "rdma_speedup",
    "spawn",
    "step_comm_seconds",
    "weighted_partition",
]
