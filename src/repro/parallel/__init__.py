"""Simulated parallel runtime: athread-style CPE spawning, spatial domain
decomposition over core groups, and MPI/RDMA communication models."""

from repro.parallel.athread import (
    AthreadSpawnError,
    SpawnReport,
    block_partition,
    spawn,
    weighted_partition,
)
from repro.parallel.collectives import CommBreakdown, ENERGY_RECORD_BYTES, step_comm_seconds
from repro.parallel.decomposition import (
    DomainDecomposition,
    Subdomain,
    factor_ranks,
    halo_bytes_per_step,
)
from repro.parallel.mpi_sim import (
    SimComm,
    allreduce_seconds,
    alltoall_seconds,
    mpi_message_seconds,
)
from repro.parallel.multirank import (
    MultiRankResult,
    RankResult,
    derive_rank_faults,
    run_mpi_ranks,
)
from repro.parallel.pool import (
    BACKEND_NAMES,
    ExecutionBackend,
    PoolBackend,
    SerialBackend,
    SharedArray,
    WorkerCrashError,
    host_cpu_count,
    resolve_backend,
    shared_backend,
)
from repro.parallel.rdma import (
    crossover_size_bytes,
    rdma_message_seconds,
    rdma_message_seconds_with_faults,
    rdma_speedup,
)

__all__ = [
    "AthreadSpawnError",
    "BACKEND_NAMES",
    "CommBreakdown",
    "DomainDecomposition",
    "ENERGY_RECORD_BYTES",
    "ExecutionBackend",
    "MultiRankResult",
    "PoolBackend",
    "RankResult",
    "SerialBackend",
    "SharedArray",
    "SimComm",
    "SpawnReport",
    "Subdomain",
    "WorkerCrashError",
    "allreduce_seconds",
    "alltoall_seconds",
    "block_partition",
    "crossover_size_bytes",
    "derive_rank_faults",
    "factor_ranks",
    "halo_bytes_per_step",
    "host_cpu_count",
    "mpi_message_seconds",
    "rdma_message_seconds",
    "rdma_message_seconds_with_faults",
    "rdma_speedup",
    "resolve_backend",
    "run_mpi_ranks",
    "shared_backend",
    "spawn",
    "step_comm_seconds",
    "weighted_partition",
]
