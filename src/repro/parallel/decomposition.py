"""Spatial domain decomposition across core groups (MPI ranks).

GROMACS assigns each rank a rectangular sub-domain plus a halo of width
``r_list`` from its neighbours.  This module provides:

* a functional decomposition (`DomainDecomposition.assign`) used by the
  multi-rank correctness tests — partition particles, exchange halos,
  verify forces equal a single-domain run;
* halo-volume/byte helpers the scalability cost model consumes (the halo
  surface-to-volume ratio is what degrades strong scaling in Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.box import Box


def factor_ranks(n_ranks: int) -> tuple[int, int, int]:
    """Split ``n_ranks`` into a near-cubic 3-D grid (GROMACS' heuristic)."""
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1: {n_ranks}")
    best = (n_ranks, 1, 1)
    best_score = float("inf")
    for nx in range(1, n_ranks + 1):
        if n_ranks % nx:
            continue
        rest = n_ranks // nx
        for ny in range(1, rest + 1):
            if rest % ny:
                continue
            nz = rest // ny
            score = max(nx, ny, nz) / min(nx, ny, nz)
            if score < best_score:
                best_score = score
                best = (nx, ny, nz)
    return best


@dataclass
class Subdomain:
    """One rank's cell: [lo, hi) per dimension in box coordinates."""

    rank: int
    lo: np.ndarray
    hi: np.ndarray

    def contains(self, positions: np.ndarray) -> np.ndarray:
        return np.all((positions >= self.lo) & (positions < self.hi), axis=1)

    @property
    def volume(self) -> float:
        return float(np.prod(self.hi - self.lo))

    def surface_area(self) -> float:
        d = self.hi - self.lo
        return float(2.0 * (d[0] * d[1] + d[1] * d[2] + d[0] * d[2]))


class DomainDecomposition:
    """Rectangular decomposition of a periodic box over ``n_ranks``."""

    def __init__(self, box: Box, n_ranks: int) -> None:
        self.box = box
        self.n_ranks = n_ranks
        self.grid = factor_ranks(n_ranks)
        edges = box.array
        nx, ny, nz = self.grid
        self.subdomains: list[Subdomain] = []
        rank = 0
        for ix in range(nx):
            for iy in range(ny):
                for iz in range(nz):
                    lo = edges * np.array([ix / nx, iy / ny, iz / nz])
                    hi = edges * np.array(
                        [(ix + 1) / nx, (iy + 1) / ny, (iz + 1) / nz]
                    )
                    self.subdomains.append(Subdomain(rank, lo, hi))
                    rank += 1

    def assign(self, positions: np.ndarray) -> np.ndarray:
        """Owner rank per particle."""
        pos = self.box.wrap(positions)
        nx, ny, nz = self.grid
        edges = self.box.array
        ix = np.minimum((pos[:, 0] / edges[0] * nx).astype(np.int64), nx - 1)
        iy = np.minimum((pos[:, 1] / edges[1] * ny).astype(np.int64), ny - 1)
        iz = np.minimum((pos[:, 2] / edges[2] * nz).astype(np.int64), nz - 1)
        return (ix * ny + iy) * nz + iz

    def halo_indices(
        self, positions: np.ndarray, rank: int, r_halo: float
    ) -> np.ndarray:
        """Particles owned by others within ``r_halo`` of ``rank``'s cell.

        Distance to an axis-aligned box under periodic wrap: clamp the
        per-dimension minimum-image offset to the cell extent.
        """
        sub = self.subdomains[rank]
        pos = self.box.wrap(positions)
        owners = self.assign(positions)
        center = (sub.lo + sub.hi) / 2.0
        half = (sub.hi - sub.lo) / 2.0
        d = self.box.minimum_image(pos - center)
        outside = np.maximum(np.abs(d) - half, 0.0)
        dist = np.sqrt(np.sum(outside**2, axis=1))
        return np.nonzero((owners != rank) & (dist < r_halo))[0]

    def halo_fraction(self, rank: int, r_halo: float) -> float:
        """Modelled halo-to-owned particle ratio for the cost model.

        Volume of the shell of width ``r_halo`` around the cell divided by
        the cell volume (both counted at uniform density).
        """
        sub = self.subdomains[rank]
        d = sub.hi - sub.lo
        grown = np.minimum(d + 2.0 * r_halo, self.box.array)
        return float(np.prod(grown) / np.prod(d) - 1.0)


def halo_bytes_per_step(
    n_particles_local: float,
    halo_fraction: float,
    bytes_per_particle: int = 28,  # position + velocity-ish payload, f32
) -> float:
    """Bytes a rank exchanges per MD step for position/force halos (one
    gather + one scatter)."""
    if n_particles_local < 0 or halo_fraction < 0:
        raise ValueError("negative particle count or halo fraction")
    return 2.0 * n_particles_local * halo_fraction * bytes_per_particle
