"""athread-style CPE work partitioning.

The Sunway ``athread`` library spawns one SPMD kernel across the 64 CPEs
of a core group.  This module provides the same programming model for the
simulator: :func:`spawn` calls a kernel function once per CPE with its
``cpe_id`` and its slice of the iteration space, collecting per-CPE
results; :class:`SpawnReport` exposes the load-balance statistics the
cost model consumes.

Spawns may be given a :class:`~repro.resilience.faults.FaultPlan`: CPEs
the plan marks dead (or drops at spawn time) get no work, and the
iteration space is re-partitioned over the survivors — the graceful-
degradation path of DESIGN.md §7.  A spawn with zero surviving workers
raises :class:`AthreadSpawnError` instead of silently producing empty
slices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.hw.params import ChipParams, DEFAULT_PARAMS
from repro.resilience.faults import FaultPlan

T = TypeVar("T")


class AthreadSpawnError(RuntimeError):
    """A spawn cannot run: no surviving CPEs to partition work over."""


@dataclass
class SpawnReport:
    """Outcome of one athread spawn/join."""

    results: list
    work_per_cpe: np.ndarray
    #: CPE ids that actually ran (all configured CPEs when healthy).
    cpe_ids: tuple[int, ...] = ()
    #: Core-group width the spawn was configured for.
    n_configured: int = 0

    def __post_init__(self) -> None:
        if not self.cpe_ids:
            self.cpe_ids = tuple(range(len(self.results)))
        if not self.n_configured:
            self.n_configured = len(self.results)

    @property
    def n_survivors(self) -> int:
        return len(self.cpe_ids)

    @property
    def n_lost(self) -> int:
        """CPEs that were configured but did not answer the spawn."""
        return self.n_configured - self.n_survivors

    @property
    def imbalance(self) -> float:
        """max/mean work ratio (1.0 = perfect balance)."""
        mean = self.work_per_cpe.mean()
        if mean == 0:
            return 1.0
        return float(self.work_per_cpe.max() / mean)

    @property
    def critical_work(self) -> float:
        return float(self.work_per_cpe.max())


def block_partition(n_items: int, n_workers: int) -> list[tuple[int, int]]:
    """Contiguous near-equal ranges (athread's static partitioning)."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1: {n_workers}")
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0: {n_items}")
    base, extra = divmod(n_items, n_workers)
    ranges = []
    start = 0
    for w in range(n_workers):
        size = base + (1 if w < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def weighted_partition(
    weights: Sequence[float], n_workers: int
) -> list[tuple[int, int]]:
    """Contiguous ranges balancing total weight (pair-count balancing)."""
    w = np.asarray(weights, dtype=np.float64)
    if (w < 0).any():
        raise ValueError("weights must be non-negative")
    prefix = np.concatenate([[0.0], np.cumsum(w)])
    total = prefix[-1]
    bounds = [0]
    for k in range(1, n_workers):
        bounds.append(int(np.searchsorted(prefix, total * k / n_workers)))
    bounds.append(len(w))
    for k in range(1, len(bounds)):
        bounds[k] = max(bounds[k], bounds[k - 1])
    return [(bounds[k], bounds[k + 1]) for k in range(n_workers)]


def spawn(
    kernel: Callable[[int, int, int], T],
    n_items: int,
    params: ChipParams = DEFAULT_PARAMS,
    weights: Sequence[float] | None = None,
    fault_plan: FaultPlan | None = None,
) -> SpawnReport:
    """Run ``kernel(cpe_id, lo, hi)`` across all CPEs (simulated serially).

    ``weights`` switches from block to weighted partitioning.  The kernel's
    return value per CPE is collected; work per CPE is the assigned weight
    (or item count).

    With a ``fault_plan``, CPEs dropped at spawn time are skipped and the
    iteration space is re-partitioned over the survivors (their ranges
    grow accordingly; ``SpawnReport.n_lost`` records the loss).  Raises
    :class:`AthreadSpawnError` when zero CPEs survive — silently running
    a spawn over empty worker slices would hang a real core group.
    """
    if weights is not None and len(weights) != n_items:
        raise ValueError(
            f"weights has {len(weights)} entries for {n_items} items"
        )
    if fault_plan is None:
        alive = list(range(params.n_cpes))
    else:
        alive = fault_plan.surviving_cpes(params.n_cpes)
    if not alive:
        raise AthreadSpawnError(
            f"cannot spawn over zero surviving CPEs "
            f"({params.n_cpes} configured, all lost to injected faults)"
        )
    n_workers = len(alive)
    if weights is None:
        parts = block_partition(n_items, n_workers)
        work = np.array([hi - lo for lo, hi in parts], dtype=np.float64)
    else:
        parts = weighted_partition(weights, n_workers)
        w = np.asarray(weights, dtype=np.float64)
        work = np.array([w[lo:hi].sum() for lo, hi in parts])
    results = [
        kernel(cpe_id, lo, hi) for cpe_id, (lo, hi) in zip(alive, parts)
    ]
    return SpawnReport(
        results=results,
        work_per_cpe=work,
        cpe_ids=tuple(alive),
        n_configured=params.n_cpes,
    )
