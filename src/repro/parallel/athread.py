"""athread-style CPE work partitioning.

The Sunway ``athread`` library spawns one SPMD kernel across the 64 CPEs
of a core group.  This module provides the same programming model for the
simulator: :func:`spawn` calls a kernel function once per CPE with its
``cpe_id`` and its slice of the iteration space, collecting per-CPE
results; :class:`SpawnReport` exposes the load-balance statistics the
cost model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.hw.params import ChipParams, DEFAULT_PARAMS

T = TypeVar("T")


@dataclass
class SpawnReport:
    """Outcome of one athread spawn/join."""

    results: list
    work_per_cpe: np.ndarray

    @property
    def imbalance(self) -> float:
        """max/mean work ratio (1.0 = perfect balance)."""
        mean = self.work_per_cpe.mean()
        if mean == 0:
            return 1.0
        return float(self.work_per_cpe.max() / mean)

    @property
    def critical_work(self) -> float:
        return float(self.work_per_cpe.max())


def block_partition(n_items: int, n_workers: int) -> list[tuple[int, int]]:
    """Contiguous near-equal ranges (athread's static partitioning)."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1: {n_workers}")
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0: {n_items}")
    base, extra = divmod(n_items, n_workers)
    ranges = []
    start = 0
    for w in range(n_workers):
        size = base + (1 if w < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def weighted_partition(
    weights: Sequence[float], n_workers: int
) -> list[tuple[int, int]]:
    """Contiguous ranges balancing total weight (pair-count balancing)."""
    w = np.asarray(weights, dtype=np.float64)
    if (w < 0).any():
        raise ValueError("weights must be non-negative")
    prefix = np.concatenate([[0.0], np.cumsum(w)])
    total = prefix[-1]
    bounds = [0]
    for k in range(1, n_workers):
        bounds.append(int(np.searchsorted(prefix, total * k / n_workers)))
    bounds.append(len(w))
    for k in range(1, len(bounds)):
        bounds[k] = max(bounds[k], bounds[k - 1])
    return [(bounds[k], bounds[k + 1]) for k in range(n_workers)]


def spawn(
    kernel: Callable[[int, int, int], T],
    n_items: int,
    params: ChipParams = DEFAULT_PARAMS,
    weights: Sequence[float] | None = None,
) -> SpawnReport:
    """Run ``kernel(cpe_id, lo, hi)`` across all CPEs (simulated serially).

    ``weights`` switches from block to weighted partitioning.  The kernel's
    return value per CPE is collected; work per CPE is the assigned weight
    (or item count).
    """
    if weights is not None and len(weights) != n_items:
        raise ValueError(
            f"weights has {len(weights)} entries for {n_items} items"
        )
    if weights is None:
        parts = block_partition(n_items, params.n_cpes)
        work = np.array([hi - lo for lo, hi in parts], dtype=np.float64)
    else:
        parts = weighted_partition(weights, params.n_cpes)
        w = np.asarray(weights, dtype=np.float64)
        work = np.array([w[lo:hi].sum() for lo, hi in parts])
    results = [kernel(cpe_id, lo, hi) for cpe_id, (lo, hi) in enumerate(parts)]
    return SpawnReport(results=results, work_per_cpe=work)
