"""MPI message cost model and a functional sequential-MPI for testing.

§3.6 of the paper describes why its MPI was slow: each message is copied
four times (user -> kernel -> NIC on the sender; mirrored on the
receiver) and pays kernel pack/unpack CPU time.  The cost model encodes
exactly those terms so the RDMA replacement (`repro.parallel.rdma`) can
delete them:

    t(message) = latency + size / bandwidth
               + copies * size / copy_bandwidth
               + 2 * pack_cycles_per_byte * size / clock

`SimComm` also implements *functional* point-to-point and collective
operations over an in-process rank set, used to validate the domain
decomposition's halo exchange.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.params import ChipParams, DEFAULT_PARAMS
from repro.resilience.faults import FaultPlan, PermanentFaultError
from repro.resilience.retry import DEFAULT_RETRY, RetryPolicy


@dataclass
class MessageStats:
    n_messages: int = 0
    bytes: int = 0
    seconds: float = 0.0
    #: Injected-loss recovery: resent messages and the modelled time the
    #: resends + backoff waits cost (``retry_seconds`` is the slice of
    #: ``seconds`` attributable to recovery).
    n_retries: int = 0
    retry_seconds: float = 0.0


def mpi_message_seconds(
    size_bytes: float, params: ChipParams = DEFAULT_PARAMS
) -> float:
    """Modelled time for one MPI point-to-point message of ``size_bytes``."""
    if size_bytes < 0:
        raise ValueError(f"message size must be non-negative: {size_bytes}")
    transfer = size_bytes / (params.mpi_bandwidth_gbs * 1e9)
    copies = params.mpi_copy_count * size_bytes / (
        params.mpi_copy_bandwidth_gbs * 1e9
    )
    pack = 2.0 * params.mpi_pack_cycles_per_byte * size_bytes * params.cycle_s
    return params.mpi_latency_s + transfer + copies + pack


def allreduce_seconds(
    size_bytes: float,
    n_ranks: int,
    message_seconds=mpi_message_seconds,
    params: ChipParams = DEFAULT_PARAMS,
    collective_hop_s: float | None = None,
) -> float:
    """Ring/tree allreduce: 2 log2(P) stages of ``size_bytes`` each.

    This is the "Comm. energies" kernel of the paper's Table 1.  Each
    stage pays the transport's *collective hop* cost — for the stock MPI
    this includes kernel crossings and system noise (software-emulated
    collectives), which is what makes the kernel reach 18.7 % of runtime
    at 512 CGs; the RDMA reimplementation collapses it.
    """
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1: {n_ranks}")
    if n_ranks == 1:
        return 0.0
    if collective_hop_s is None:
        collective_hop_s = (
            params.mpi_collective_hop_s
            if message_seconds is mpi_message_seconds
            else params.rdma_collective_hop_s
        )
    steps = 2.0 * np.ceil(np.log2(n_ranks))
    return float(steps * (collective_hop_s + message_seconds(size_bytes, params)))


def alltoall_seconds(
    size_bytes_per_pair: float,
    n_ranks: int,
    message_seconds=mpi_message_seconds,
    params: ChipParams = DEFAULT_PARAMS,
) -> float:
    """All-to-all (the PME FFT transpose): best of the two standard
    algorithms, as real MPI implementations switch between them.

    * pairwise exchange — P-1 rounds of one message each (bandwidth
      optimal, latency-heavy for small payloads);
    * Bruck — log2(P) rounds, each moving half the total payload
      (latency optimal, 2x the bytes).
    """
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1: {n_ranks}")
    if n_ranks == 1:
        return 0.0
    pairwise = (n_ranks - 1) * message_seconds(size_bytes_per_pair, params)
    bruck_rounds = float(np.ceil(np.log2(n_ranks)))
    bruck = bruck_rounds * message_seconds(
        size_bytes_per_pair * n_ranks / 2.0, params
    )
    return float(min(pairwise, bruck))


class SimComm:
    """Functional in-process communicator over ``n_ranks`` rank slots.

    Sequential-deterministic: ranks run one after another, messages are
    buffered per (src, dst, tag).  Accumulates modelled time via the MPI
    (or a caller-supplied) cost function.
    """

    def __init__(
        self,
        n_ranks: int,
        params: ChipParams = DEFAULT_PARAMS,
        message_seconds=mpi_message_seconds,
        fault_plan: FaultPlan | None = None,
        retry: RetryPolicy = DEFAULT_RETRY,
    ) -> None:
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1: {n_ranks}")
        self.n_ranks = n_ranks
        self.params = params
        self.message_seconds = message_seconds
        #: Message-loss schedule (None = lossless NoC, zero overhead).
        self.fault_plan = fault_plan
        self.retry = retry
        self.stats = MessageStats()
        self._boxes: dict[tuple[int, int, int], list[np.ndarray]] = {}

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.n_ranks})")

    def _charge_message_faults(self, nbytes: int) -> float:
        """Resend one message until it lands; return the recovery time.

        Each lost attempt pays the full message cost again plus an
        exponential backoff wait — delivery always succeeds in the end
        (or :class:`PermanentFaultError` fires), so the functional path
        never observes the loss.
        """
        if self.fault_plan is None:
            return 0.0
        extra = 0.0
        attempt = 0
        while self.fault_plan.message_lost():
            attempt += 1
            if attempt >= self.retry.max_attempts:
                raise PermanentFaultError(
                    f"message of {nbytes} B lost "
                    f"{self.retry.max_attempts} times in a row"
                )
            extra += (
                self.message_seconds(nbytes, self.params)
                + self.retry.backoff_cycles(attempt) * self.params.cycle_s
            )
            self.stats.n_retries += 1
        self.stats.retry_seconds += extra
        self.stats.seconds += extra
        return extra

    def send(self, src: int, dst: int, data: np.ndarray, tag: int = 0) -> None:
        self._check_rank(src)
        self._check_rank(dst)
        arr = np.asarray(data)
        self._boxes.setdefault((src, dst, tag), []).append(arr.copy())
        self.stats.n_messages += 1
        self.stats.bytes += arr.nbytes
        self.stats.seconds += self.message_seconds(arr.nbytes, self.params)
        if self.fault_plan is not None:
            self._charge_message_faults(arr.nbytes)

    def recv(self, src: int, dst: int, tag: int = 0) -> np.ndarray:
        self._check_rank(src)
        self._check_rank(dst)
        box = self._boxes.get((src, dst, tag), [])
        if not box:
            raise LookupError(
                f"no pending message src={src} dst={dst} tag={tag}"
            )
        return box.pop(0)

    def allreduce_sum(self, contributions: list[np.ndarray]) -> np.ndarray:
        """Functional allreduce over per-rank arrays + modelled time."""
        if len(contributions) != self.n_ranks:
            raise ValueError(
                f"{len(contributions)} contributions for {self.n_ranks} ranks"
            )
        total = np.sum(np.stack([np.asarray(c) for c in contributions]), axis=0)
        nbytes = np.asarray(contributions[0]).nbytes
        self.stats.seconds += allreduce_seconds(
            nbytes, self.n_ranks, self.message_seconds, self.params
        )
        if self.fault_plan is not None and self.n_ranks > 1:
            # Each of the 2 log2(P) stages moves one message that can be
            # lost on the NoC and resent.
            for _ in range(int(2 * np.ceil(np.log2(self.n_ranks)))):
                self._charge_message_faults(nbytes)
        return total
