"""Per-step communication cost aggregation for multi-CG runs.

Combines the message cost models into the three communication patterns
one GROMACS step performs (the "Wait + comm. F", "Comm. energies" and PME
rows of the paper's Table 1):

* halo exchange with the (up to 26) spatial neighbours;
* the PME 3-D FFT all-to-all within the PME rank set;
* the global energy allreduce.

The transport is pluggable: `mpi_message_seconds` or
`rdma_message_seconds` — swapping them is the §3.6 optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.hw.params import ChipParams, DEFAULT_PARAMS
from repro.parallel.decomposition import DomainDecomposition, halo_bytes_per_step
from repro.parallel.mpi_sim import allreduce_seconds, alltoall_seconds, mpi_message_seconds

#: Energy record exchanged each step (energies, virial, T-coupling data).
ENERGY_RECORD_BYTES = 1024
#: GROMACS exchanges halos dimension-wise (one pulse per decomposed
#: dimension, send+receive), not with all 26 neighbours individually.
HALO_MESSAGES_PER_STEP = 6
#: PME runs on a dedicated rank subset (GROMACS -npme, typically ~1/4 of
#: the ranks); the FFT all-to-all happens inside that group only.
PME_RANK_FRACTION = 0.25


@dataclass
class CommBreakdown:
    halo_seconds: float
    pme_seconds: float
    energy_seconds: float

    @property
    def total(self) -> float:
        return self.halo_seconds + self.pme_seconds + self.energy_seconds


def step_comm_seconds(
    n_particles_total: int,
    n_ranks: int,
    box_edge: float,
    r_halo: float,
    message_seconds=mpi_message_seconds,
    params: ChipParams = DEFAULT_PARAMS,
    use_pme: bool = True,
    pme_grid_spacing: float = 0.12,
) -> CommBreakdown:
    """Modelled communication time of one MD step on ``n_ranks`` CGs."""
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1: {n_ranks}")
    if n_ranks == 1:
        return CommBreakdown(0.0, 0.0, 0.0)
    from repro.md.box import Box

    box = Box.cubic(box_edge)
    dd = DomainDecomposition(box, n_ranks)
    n_local = n_particles_total / n_ranks
    halo_frac = dd.halo_fraction(0, r_halo)
    # Dimension-wise halo exchange: the total halo payload moves in
    # HALO_MESSAGES_PER_STEP pulses per phase (gather + scatter).
    n_msgs = min(HALO_MESSAGES_PER_STEP, 2 * (n_ranks - 1))
    total_halo_bytes = halo_bytes_per_step(n_local, halo_frac)
    per_msg = total_halo_bytes / max(n_msgs, 1) / 2.0
    halo = 2.0 * n_msgs * message_seconds(per_msg, params)

    pme = 0.0
    if use_pme:
        # FFT grid transpose inside the dedicated PME rank group, twice
        # (forward + inverse).
        pme_ranks = max(2, int(n_ranks * PME_RANK_FRACTION)) if n_ranks > 2 else n_ranks
        grid_points = (box_edge / pme_grid_spacing) ** 3
        grid_bytes = grid_points * 4.0  # float32 grid
        per_pair = grid_bytes / (pme_ranks * pme_ranks)
        pme = 2.0 * alltoall_seconds(per_pair, pme_ranks, message_seconds, params)

    energy = allreduce_seconds(
        ENERGY_RECORD_BYTES, n_ranks, message_seconds, params
    )
    return CommBreakdown(halo, pme, energy)
