"""Multi-rank engine runs: one real worker per simulated MPI rank.

The engine models multi-CG runs through SPMD symmetry (one
representative core group + a communication model).  This module runs
*many* per-rank engines — the shape of a real ``mpirun`` — and gives
each simulated rank a real host process via `repro.parallel.pool`
(DESIGN.md §9).  Ranks are embarrassingly parallel between collectives:
each runs its own dynamics, checkpoints, and fault plan; the parent then
executes the functional collectives (energy allreduce over `SimComm`)
and merges results in rank order.

Determinism contract (test-enforced):

* per-rank fault plans derive from the base `FaultSpec` as
  ``seed + 1 + rank`` in the *parent*, so rank r replays the same fault
  schedule on any backend and any worker count;
* the collective message-loss stream uses its own derived seed
  (``seed + COMM_SEED_OFFSET``) and runs parent-side only;
* results, trace events, and fault counts merge in rank-id order.

Worker-local tracers: each rank records onto a private `Tracer`; on join
the parent absorbs them rank-by-rank, shifting CPE tracks by
``rank * n_cpes`` so rank timelines sit side by side (MPE/DMA
pseudo-tracks stay shared — see `Tracer.absorb`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.md.system import ParticleSystem
from repro.parallel.mpi_sim import MessageStats, SimComm, mpi_message_seconds
from repro.parallel.pool import shared_backend
from repro.parallel.rdma import rdma_message_seconds
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.trace.events import NULL_TRACER, NullTracer, TraceEvent, Tracer

#: Seed offset for the parent-side collective message-loss stream, kept
#: clear of the per-rank streams (``seed + 1 + rank``) for any sane rank
#: count.
COMM_SEED_OFFSET = 100_003


def derive_rank_faults(base: FaultSpec | None, rank: int) -> FaultSpec | None:
    """Per-rank fault schedule: same rates, rank-decorrelated stream.

    Derived in the parent (never inside a worker), so the schedule is a
    pure function of ``(base.seed, rank)`` — identical under serial and
    pool backends and any worker count.
    """
    if base is None:
        return None
    return replace(base, seed=base.seed + 1 + rank)


@dataclass
class _RankTask:
    """Picklable work unit: run one simulated rank's engine."""

    rank: int
    system: ParticleSystem
    config: object  # EngineConfig (imported lazily to avoid a cycle)
    n_steps: int
    traced: bool


@dataclass
class RankResult:
    """One rank's slimmed engine outcome (everything merge needs)."""

    rank: int
    n_steps: int
    potential: float
    kinetic: float
    temperature: float
    positions: np.ndarray
    velocities: np.ndarray
    modelled_seconds: float
    timing_seconds: dict[str, float]
    fault_counts: tuple[int, int, int] | None  # (dma, cpe, msg)
    checkpoints_written: int
    events: list[TraceEvent] = field(default_factory=list)


def _run_rank_job(task: _RankTask) -> RankResult:
    """Run one rank's engine (pure up to checkpoint files; any process)."""
    from repro.core.engine import SWGromacsEngine

    tracer = Tracer(task.config.chip) if task.traced else NULL_TRACER
    # Copy so the serial backend leaves the caller's system untouched —
    # the pool backend gets a pickled copy implicitly.
    engine = SWGromacsEngine(task.system.copy(), task.config, tracer=tracer)
    res = engine.run(task.n_steps)
    counts = res.fault_counts
    return RankResult(
        rank=task.rank,
        n_steps=res.n_steps,
        potential=(
            res.reporter.frames[-1].potential if res.reporter.frames else 0.0
        ),
        kinetic=res.system.kinetic_energy(),
        temperature=res.system.temperature(),
        positions=res.system.positions,
        velocities=res.system.velocities,
        modelled_seconds=res.modelled_seconds,
        timing_seconds=dict(res.timing.seconds),
        fault_counts=(
            (counts.dma_errors, counts.cpe_losses, counts.messages_lost)
            if counts is not None
            else None
        ),
        checkpoints_written=res.checkpoints_written,
        events=tracer.events if task.traced else [],
    )


@dataclass
class MultiRankResult:
    """Merged outcome of an ``n_ranks``-way simulated-MPI engine run."""

    ranks: list[RankResult]
    #: Allreduced [potential, kinetic] over all ranks (functional).
    reduced_energy: np.ndarray
    #: Modelled collective time + message-loss recovery for the run.
    comm_seconds: float
    comm_stats: MessageStats

    @property
    def n_ranks(self) -> int:
        return len(self.ranks)

    @property
    def modelled_seconds(self) -> float:
        """SPMD step time: slowest rank + the energy collectives."""
        return (
            max(r.modelled_seconds for r in self.ranks) + self.comm_seconds
        )


def run_mpi_ranks(
    systems: ParticleSystem | list[ParticleSystem],
    n_steps: int,
    config=None,
    n_ranks: int | None = None,
    backend=None,
    tracer: NullTracer = NULL_TRACER,
) -> MultiRankResult:
    """Run ``n_ranks`` per-rank engines, one real worker per rank.

    ``systems`` is either one system (every rank runs its own copy —
    SPMD) or one per rank.  ``config`` is an
    `repro.core.engine.EngineConfig` template; per-rank configs derive
    from it in the parent (rank-seeded faults, per-rank checkpoint
    paths).  ``backend`` accepts a name, an `ExecutionBackend`, or None
    for ``REPRO_BACKEND``-or-serial.

    The allreduce at the end is functional *and* modelled: energies
    really are summed across ranks through `SimComm`, and its modelled
    time (with message-loss retries under the derived comm fault stream)
    is charged to ``comm_seconds``.
    """
    from repro.core.engine import EngineConfig

    if isinstance(systems, ParticleSystem):
        if n_ranks is None:
            raise ValueError("n_ranks is required with a single system")
        systems = [systems] * n_ranks
    elif n_ranks is not None and n_ranks != len(systems):
        raise ValueError(
            f"n_ranks={n_ranks} but {len(systems)} systems were given"
        )
    n_ranks = len(systems)
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1: {n_ranks}")
    if config is None:
        config = EngineConfig()
    backend = shared_backend(backend)

    tasks = []
    for rank, system in enumerate(systems):
        policy = config.resilience
        rank_policy = replace(
            policy,
            faults=derive_rank_faults(policy.faults, rank),
            checkpoint_path=(
                f"{policy.checkpoint_path}.rank{rank}"
                if policy.checkpoint_every
                else policy.checkpoint_path
            ),
        )
        # Ranks are the parallel grain here: the per-rank engine always
        # runs serially inside its worker, whatever backend the caller's
        # template names — nesting pools would fork from forked workers.
        rank_config = replace(
            config, resilience=rank_policy, backend="serial", workers=None
        )
        tasks.append(
            _RankTask(
                rank=rank,
                system=system,
                config=rank_config,
                n_steps=n_steps,
                traced=tracer.enabled,
            )
        )
    results = backend.map(_run_rank_job, tasks)

    # ---- deterministic rank-ordered merge ---------------------------------
    if tracer.enabled:
        for r in results:
            tracer.absorb(r.events, track_offset=r.rank * config.chip.n_cpes)

    message_seconds = (
        rdma_message_seconds
        if config.optimization_level >= 3
        else mpi_message_seconds
    )
    base = config.resilience.faults
    comm_plan = (
        FaultPlan(replace(base, seed=base.seed + COMM_SEED_OFFSET))
        if base is not None and base.msg_loss_rate > 0.0
        else None
    )
    comm = SimComm(
        n_ranks,
        params=config.chip,
        message_seconds=message_seconds,
        fault_plan=comm_plan,
        retry=config.resilience.retry,
    )
    reduced = comm.allreduce_sum(
        [np.array([r.potential, r.kinetic]) for r in results]
    )
    return MultiRankResult(
        ranks=list(results),
        reduced_energy=reduced,
        comm_seconds=comm.stats.seconds,
        comm_stats=comm.stats,
    )
