"""ResiliencePolicy: one knob bundle for a survivable run.

``EngineConfig`` (and ``MdConfig``) carry one of these; the default is
inert — no checkpoints, no faults, default retry — so the happy path
costs nothing.  The CLI maps ``--checkpoint-every/--restart/--faults``
onto it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resilience.faults import FaultPlan, FaultSpec, parse_fault_spec
from repro.resilience.retry import DEFAULT_RETRY, RetryPolicy

#: Default checkpoint file name (GROMACS calls its own ``state.cpt``).
DEFAULT_CHECKPOINT_PATH = "state.ckpt"


@dataclass
class ResiliencePolicy:
    """Failure/recovery configuration for one run."""

    #: Write a checkpoint every N completed steps (0 = never).
    checkpoint_every: int = 0
    checkpoint_path: str = DEFAULT_CHECKPOINT_PATH
    #: Fault schedule (None = perfect hardware).
    faults: FaultSpec | None = None
    retry: RetryPolicy = field(default_factory=lambda: DEFAULT_RETRY)
    #: CPE count under which the engine abandons the CPE strategy ladder
    #: for the MPE reference path.
    min_cpes: int = 8

    def __post_init__(self) -> None:
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0: {self.checkpoint_every}"
            )
        if isinstance(self.faults, str):
            self.faults = parse_fault_spec(self.faults)
        if self.min_cpes < 1:
            raise ValueError(f"min_cpes must be >= 1: {self.min_cpes}")

    @property
    def any_faults(self) -> bool:
        return self.faults is not None and self.faults.any_faults

    def build_fault_plan(self) -> FaultPlan | None:
        """Fresh seeded plan for one run (None when fault-free)."""
        if not self.any_faults:
            return None
        return FaultPlan(self.faults)
