"""repro.resilience: fault injection, checkpoint/restart, degradation.

The subsystem threads a failure/recovery axis through the simulator
(DESIGN.md §7) while preserving the repo's core invariant: forces and
trajectories stay bit-identical to the fault-free reference under every
injected-fault schedule — faults cost modelled time, never physics.
"""

from repro.resilience.checkpoint import (
    CheckpointError,
    MdCheckpoint,
    capture,
    load_checkpoint,
    restore,
    save_checkpoint,
)
from repro.resilience.degrade import (
    DEGRADATION_MODES,
    MODE_MPE_FALLBACK,
    MODE_NONE,
    MODE_REPARTITION,
    DegradationError,
    DegradationReport,
    degraded_chip,
    plan_degradation,
)
from repro.resilience.faults import (
    FAULT_CPE,
    FAULT_DMA,
    FAULT_MSG,
    NO_FAULTS,
    FaultCounts,
    FaultPlan,
    FaultSpec,
    PermanentFaultError,
    parse_fault_spec,
)
from repro.resilience.policy import (
    DEFAULT_CHECKPOINT_PATH,
    ResiliencePolicy,
)
from repro.resilience.retry import (
    DEFAULT_RETRY,
    RetryPolicy,
    RetryRound,
    retry_rounds,
)

__all__ = [
    "CheckpointError",
    "MdCheckpoint",
    "capture",
    "load_checkpoint",
    "restore",
    "save_checkpoint",
    "DEGRADATION_MODES",
    "MODE_MPE_FALLBACK",
    "MODE_NONE",
    "MODE_REPARTITION",
    "DegradationError",
    "DegradationReport",
    "degraded_chip",
    "plan_degradation",
    "FAULT_CPE",
    "FAULT_DMA",
    "FAULT_MSG",
    "NO_FAULTS",
    "FaultCounts",
    "FaultPlan",
    "FaultSpec",
    "PermanentFaultError",
    "parse_fault_spec",
    "DEFAULT_CHECKPOINT_PATH",
    "ResiliencePolicy",
    "DEFAULT_RETRY",
    "RetryPolicy",
    "RetryRound",
    "retry_rounds",
]
