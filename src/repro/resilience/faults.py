"""Seeded, deterministic fault injection for the simulated SW26010.

The paper's cost model assumes a perfect core group: every DMA lands,
all 64 CPEs answer every ``athread`` spawn, and no halo message is ever
lost.  Production Sunway runs are not like that (O2ATH documents how
fragile athread offloading is in practice), so the simulator needs a way
to *schedule* failure and observe how the strategies and the cost model
respond.

:class:`FaultPlan` is that schedule.  It draws every fault decision from
one seeded :class:`numpy.random.Generator`, so a plan is a pure function
of ``(seed, call sequence)``: two runs that issue the same transactions
in the same order see the same faults.  Three fault classes cover the
taxonomy in DESIGN.md §7:

* **DMA transaction errors** (transient) — a get/put fails and must be
  retried; hooked into :class:`repro.hw.dma.DmaEngine`;
* **CPE loss** (permanent) — a CPE drops out at ``athread`` spawn time
  and never comes back; hooked into :func:`repro.parallel.athread.spawn`
  and the engine's per-rebuild spawn of the force kernel;
* **message loss** (transient) — an MPI/RDMA message vanishes on the NoC
  and is resent; hooked into :class:`repro.parallel.mpi_sim.SimComm`.

Faults NEVER touch the functional path: injected failures are always
recovered (retry or re-partition), so forces and trajectories stay
bit-identical to a fault-free run — only the modelled time, counters,
and trace change.  That invariant is what the resilience tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Fault-class names used in trace events and CLI specs.
FAULT_DMA = "dma"
FAULT_CPE = "cpe"
FAULT_MSG = "msg"


class PermanentFaultError(RuntimeError):
    """An injected fault survived every retry attempt (unrecoverable)."""


@dataclass(frozen=True)
class FaultSpec:
    """Parsed fault-injection parameters (one CLI ``--faults`` string).

    Rates are per-event probabilities: ``dma`` per DMA transaction,
    ``cpe`` per CPE per spawn (a triggered CPE stays dead), ``msg`` per
    message send.  ``dead_cpes`` marks CPEs dead from step zero.
    """

    seed: int = 0
    dma_error_rate: float = 0.0
    cpe_fail_rate: float = 0.0
    msg_loss_rate: float = 0.0
    dead_cpes: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for name in ("dma_error_rate", "cpe_fail_rate", "msg_loss_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1): {rate}")
        if any(c < 0 for c in self.dead_cpes):
            raise ValueError(f"dead_cpes must be non-negative: {self.dead_cpes}")

    @property
    def any_faults(self) -> bool:
        return bool(
            self.dma_error_rate
            or self.cpe_fail_rate
            or self.msg_loss_rate
            or self.dead_cpes
        )


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse a CLI fault spec: ``seed=7,dma=1e-3,cpe=0.01,msg=1e-4,dead=3+17``.

    Keys: ``seed`` (int), ``dma``/``cpe``/``msg`` (per-event rates),
    ``dead`` ('+'-separated CPE ids dead from the start).  Unknown keys
    raise, so typos fail loudly instead of silently injecting nothing.
    """
    kwargs: dict = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"malformed fault spec entry {part!r} (want key=value)")
        key, value = (p.strip() for p in part.split("=", 1))
        if key == "seed":
            kwargs["seed"] = int(value)
        elif key == FAULT_DMA:
            kwargs["dma_error_rate"] = float(value)
        elif key == FAULT_CPE:
            kwargs["cpe_fail_rate"] = float(value)
        elif key == FAULT_MSG:
            kwargs["msg_loss_rate"] = float(value)
        elif key == "dead":
            kwargs["dead_cpes"] = tuple(
                int(v) for v in value.split("+") if v
            )
        else:
            raise ValueError(f"unknown fault spec key {key!r}")
    return FaultSpec(**kwargs)


@dataclass
class FaultCounts:
    """Running totals of everything a plan injected."""

    dma_errors: int = 0
    cpe_losses: int = 0
    messages_lost: int = 0

    @property
    def total(self) -> int:
        return self.dma_errors + self.cpe_losses + self.messages_lost


class FaultPlan:
    """Deterministic fault oracle, one per run.

    Consumers ask yes/no questions (``dma_failures``, ``message_lost``,
    ``surviving_cpes``); the plan answers from its seeded stream and
    records what it injected in :attr:`counts`.  The same plan instance
    must be shared by every hook of one run so the stream stays aligned.
    """

    def __init__(self, spec: FaultSpec | None = None, **kwargs) -> None:
        self.spec = spec or FaultSpec(**kwargs)
        self._rng = np.random.default_rng(self.spec.seed)
        self._dead: set[int] = set(self.spec.dead_cpes)
        self.counts = FaultCounts()

    # --- DMA --------------------------------------------------------------
    def dma_failures(self, n_transactions: int) -> int:
        """How many of ``n_transactions`` DMA attempts fail this round."""
        if n_transactions < 0:
            raise ValueError(f"n_transactions must be >= 0: {n_transactions}")
        rate = self.spec.dma_error_rate
        if rate == 0.0 or n_transactions == 0:
            return 0
        failed = int(self._rng.binomial(n_transactions, rate))
        self.counts.dma_errors += failed
        return failed

    # --- messages ---------------------------------------------------------
    def message_lost(self) -> bool:
        """Whether one message send is lost (drawn per attempt)."""
        rate = self.spec.msg_loss_rate
        if rate == 0.0:
            return False
        lost = bool(self._rng.random() < rate)
        if lost:
            self.counts.messages_lost += 1
        return lost

    # --- CPEs -------------------------------------------------------------
    def surviving_cpes(self, n_cpes: int) -> list[int]:
        """CPE ids alive for this spawn; newly-failed CPEs stay dead.

        Called once per spawn: each currently-alive CPE fails with
        ``cpe_fail_rate``, and failures are permanent (the degradation
        path re-partitions over the survivors).
        """
        if n_cpes < 1:
            raise ValueError(f"n_cpes must be >= 1: {n_cpes}")
        rate = self.spec.cpe_fail_rate
        if rate > 0.0:
            draws = self._rng.random(n_cpes)
            for cpe in range(n_cpes):
                if cpe not in self._dead and draws[cpe] < rate:
                    self._dead.add(cpe)
                    self.counts.cpe_losses += 1
        return [cpe for cpe in range(n_cpes) if cpe not in self._dead]

    @property
    def dead_cpes(self) -> frozenset[int]:
        return frozenset(self._dead)


#: Shared "no faults ever" plan: the default for every hook.
NO_FAULTS = FaultPlan(FaultSpec())
