"""Retry with exponential backoff, charged to the cycle/byte cost model.

A real Sunway runtime recovers a failed DMA transaction or lost NoC
message by reissuing it; the recovery is not free.  Each retry pays:

* the *payload again* — retried bytes re-enter the Table-2 bandwidth
  curve (DMA) or the transport's per-message cost (MPI/RDMA), exactly as
  the first attempt did;
* a *backoff wait* — exponential, ``base * factor**(attempt-1)`` cycles,
  modelling the reissue descriptor setup plus the deliberate wait real
  retry loops insert to let congestion drain.

:func:`retry_rounds` turns a fault plan + a transaction population into
the deterministic schedule of retry rounds; the DMA/comm hooks convert
the rounds to seconds with their own per-transaction cost functions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resilience.faults import FaultPlan, PermanentFaultError


@dataclass(frozen=True)
class RetryPolicy:
    """How failed transactions are reissued.

    ``max_attempts`` counts the first attempt: 5 means up to 4 retries
    before the fault is declared permanent.
    """

    max_attempts: int = 5
    backoff_base_cycles: float = 2000.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.backoff_base_cycles < 0:
            raise ValueError(
                f"backoff_base_cycles must be >= 0: {self.backoff_base_cycles}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1: {self.backoff_factor}"
            )

    def backoff_cycles(self, attempt: int) -> float:
        """Wait before retry ``attempt`` (1 = first retry)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1: {attempt}")
        return self.backoff_base_cycles * self.backoff_factor ** (attempt - 1)

    def backoff_seconds(self, attempt: int, seconds_per_cycle: float) -> float:
        """The same backoff schedule as wall-clock seconds.

        Hooks inside the simulator charge backoff in modelled cycles;
        the serving layer (`repro.serve`) reuses the identical schedule
        for *real* waits between execution reissues, scaled by the
        caller's ``seconds_per_cycle`` (e.g. the chip's ``cycle_s`` for
        simulated fidelity, or ~1e-6 for millisecond-scale service
        backoff).
        """
        if seconds_per_cycle < 0:
            raise ValueError(
                f"seconds_per_cycle must be >= 0: {seconds_per_cycle}"
            )
        return self.backoff_cycles(attempt) * seconds_per_cycle


#: The default policy used by every hook unless a run overrides it.
DEFAULT_RETRY = RetryPolicy()


@dataclass
class RetryRound:
    """One retry wave: how many transactions are reissued and the wait."""

    attempt: int  # 1 = first retry
    n_transactions: int
    backoff_cycles: float


def retry_rounds(
    plan: FaultPlan,
    policy: RetryPolicy,
    n_transactions: int,
    what: str = "DMA transaction",
) -> list[RetryRound]:
    """Deterministic retry schedule for ``n_transactions`` attempts.

    Round 0 (the original attempts) is not included — callers already
    charged it.  Each round reissues the previous round's failures;
    retries can themselves fail.  Raises :class:`PermanentFaultError`
    when failures survive ``policy.max_attempts`` attempts, naming the
    transaction class so the error is actionable.
    """
    rounds: list[RetryRound] = []
    failing = plan.dma_failures(n_transactions)
    attempt = 1
    while failing > 0:
        if attempt >= policy.max_attempts:
            raise PermanentFaultError(
                f"{failing} {what}(s) still failing after "
                f"{policy.max_attempts} attempts"
            )
        rounds.append(
            RetryRound(
                attempt=attempt,
                n_transactions=failing,
                backoff_cycles=policy.backoff_cycles(attempt),
            )
        )
        failing = plan.dma_failures(failing)
        attempt += 1
    return rounds
