"""Graceful degradation after permanent CPE loss.

When a fault plan kills CPEs, the run must keep producing the *same
physics* with the surviving hardware.  Two recovery shapes exist on a
real SW26010, mirrored here:

* **repartition** — re-split the iteration space over the surviving
  CPEs (``block_partition``/``partition_clusters`` over ``n_survivors``
  workers).  The cost model sees it as a smaller core group: the force
  kernel runs against ``ChipParams.with_overrides(n_cpes=survivors)``,
  so the critical-CPE work, reduction-copy count, and imbalance all
  shift consistently;
* **mpe_fallback** — below a survivable CPE count, abandon the CPE
  strategy ladder entirely and run the MPE reference kernel (the "Ori"
  rung): slow, but always available.

:func:`plan_degradation` makes the decision; the report it returns is
what the engine charges, traces, and prints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.params import ChipParams, DEFAULT_PARAMS

#: Recovery modes, in order of preference.
MODE_NONE = "none"  # full strength, nothing to do
MODE_REPARTITION = "repartition"
MODE_MPE_FALLBACK = "mpe_fallback"

DEGRADATION_MODES = (MODE_NONE, MODE_REPARTITION, MODE_MPE_FALLBACK)


class DegradationError(RuntimeError):
    """CPE loss exceeded what the configured policy tolerates."""


@dataclass(frozen=True)
class DegradationReport:
    """Outcome of one degradation decision (one spawn / list rebuild)."""

    n_cpes: int  # configured core-group width
    n_survivors: int
    mode: str

    def __post_init__(self) -> None:
        if self.mode not in DEGRADATION_MODES:
            raise ValueError(f"mode {self.mode!r} not in {DEGRADATION_MODES}")
        if not 0 <= self.n_survivors <= self.n_cpes:
            raise ValueError(
                f"n_survivors {self.n_survivors} out of [0, {self.n_cpes}]"
            )

    @property
    def n_lost(self) -> int:
        return self.n_cpes - self.n_survivors

    @property
    def degraded(self) -> bool:
        return self.mode != MODE_NONE

    @property
    def slowdown(self) -> float:
        """Expected CPE-parallel slowdown versus the full core group.

        Repartitioned work is CPE-bound, so the critical path grows as
        ``n_cpes / n_survivors``; the MPE fallback's slowdown is the
        strategy-ladder gap itself and is reported as ``inf`` here (the
        engine charges the real MPE kernel cost instead).
        """
        if self.mode == MODE_NONE:
            return 1.0
        if self.mode == MODE_MPE_FALLBACK:
            return float("inf")
        return self.n_cpes / self.n_survivors


def plan_degradation(
    n_survivors: int,
    params: ChipParams = DEFAULT_PARAMS,
    min_cpes: int = 8,
) -> DegradationReport:
    """Choose a recovery mode for ``n_survivors`` live CPEs.

    ``min_cpes`` is the floor under which CPE offload stops paying for
    itself (reduction copies and init dominate) and the engine falls
    back to the MPE path.
    """
    if min_cpes < 1:
        raise ValueError(f"min_cpes must be >= 1: {min_cpes}")
    if n_survivors < 0 or n_survivors > params.n_cpes:
        raise ValueError(
            f"n_survivors {n_survivors} out of [0, {params.n_cpes}]"
        )
    if n_survivors == params.n_cpes:
        mode = MODE_NONE
    elif n_survivors >= min_cpes:
        mode = MODE_REPARTITION
    else:
        mode = MODE_MPE_FALLBACK
    return DegradationReport(
        n_cpes=params.n_cpes, n_survivors=n_survivors, mode=mode
    )


def degraded_chip(params: ChipParams, report: DegradationReport) -> ChipParams:
    """Chip parameters the repartitioned kernel should be costed against."""
    if report.mode != MODE_REPARTITION:
        return params
    return params.with_overrides(n_cpes=report.n_survivors)
