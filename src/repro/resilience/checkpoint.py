"""Atomic, checksummed checkpoint/restart of full MD state.

GROMACS treats checkpointing as a first-class exascale requirement
(Páll et al.): a multi-hour run must survive a node loss without
perturbing the physics.  The repo-wide invariant makes the bar precise —
a run interrupted and restarted from checkpoint must produce
**bit-identical** trajectories versus an uninterrupted run.  That
dictates exactly what must be captured:

* positions/velocities in full float64 (no text round-trip — ``.gro``'s
  fixed columns truncate to 3 decimals);
* the global step counter and the integrator's internals (thermostat RNG
  state, step count for COM-removal scheduling);
* the *pair-list age*: forces between rebuilds use the list built from
  positions at the last rebuild step, so the checkpoint stores those
  reference positions and the restart rebuilds the identical list.

File format (``REPROCKPT1``): one magic line, one SHA-256 line over the
payload, then an ``.npz`` payload (arrays + one JSON header).  Writes go
to a temp file in the target directory, are fsynced, then ``os.replace``d
— a crash mid-write leaves the previous checkpoint intact, never a torn
one.  Loads verify the checksum before deserialising anything.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from dataclasses import dataclass, field

import numpy as np

MAGIC = b"REPROCKPT1"
#: Header schema version inside the payload (bump on layout changes).
#: v2 adds the accounting ``history`` dict and the optional stacked
#: ``trajectory`` array; v1 files still load (both default to None).
FORMAT_VERSION = 2
#: Versions this build can read.
READABLE_VERSIONS = (1, 2)


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, torn, corrupt, or incompatible."""


@dataclass
class MdCheckpoint:
    """Everything needed to resume a run bit-identically.

    ``step`` is the next step to execute (the run completed steps
    ``0..step-1``).  ``pairlist_ref_positions`` are the positions the
    current pair list was built from; ``pairlist_rebuild_step`` is when.
    """

    step: int
    positions: np.ndarray
    velocities: np.ndarray
    box_lengths: tuple[float, float, float]
    integrator_state: dict
    pairlist_rebuild_step: int = 0
    pairlist_ref_positions: np.ndarray | None = None
    meta: dict = field(default_factory=dict)
    #: Accumulated run accounting (``n_pairlist_rebuilds``,
    #: ``checkpoints_written``, ``reporter_frames`` as [step, potential,
    #: kinetic, temperature] rows) so a restarted run reports the same
    #: `MdResult`/`EngineResult` counters as an uninterrupted one.  JSON
    #: floats round-trip exactly, preserving reporter bit-identity.
    #: None on pre-v2 files (restart then falls back to reconstruction).
    history: dict | None = None
    #: Trajectory frames written so far, stacked (n_frames, n, 3).
    trajectory: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=np.float64)
        self.velocities = np.asarray(self.velocities, dtype=np.float64)
        if self.positions.shape != self.velocities.shape:
            raise CheckpointError(
                f"positions {self.positions.shape} != velocities "
                f"{self.velocities.shape}"
            )
        if self.step < 0:
            raise CheckpointError(f"step must be >= 0: {self.step}")

    @property
    def n_particles(self) -> int:
        return len(self.positions)

    @property
    def box(self):
        # Imported lazily: repro.hw.dma imports this package for fault
        # hooks, and a module-level repro.md import would close a cycle
        # (md -> hw.perf -> hw.dma -> resilience -> md).
        from repro.md.box import Box

        return Box(self.box_lengths)

    @property
    def pairlist_age(self) -> int:
        """Steps since the stored pair list was rebuilt."""
        return self.step - self.pairlist_rebuild_step


def _payload_bytes(ckpt: MdCheckpoint) -> bytes:
    """Serialise the checkpoint body to npz bytes (header + arrays)."""
    header = {
        "version": FORMAT_VERSION,
        "step": int(ckpt.step),
        "box_lengths": [float(v) for v in ckpt.box_lengths],
        "integrator_state": ckpt.integrator_state,
        "pairlist_rebuild_step": int(ckpt.pairlist_rebuild_step),
        "has_pairlist_ref": ckpt.pairlist_ref_positions is not None,
        "has_trajectory": ckpt.trajectory is not None,
        "meta": ckpt.meta,
        "history": ckpt.history,
    }
    arrays = {
        "positions": ckpt.positions,
        "velocities": ckpt.velocities,
        "header": np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
    }
    if ckpt.pairlist_ref_positions is not None:
        arrays["pairlist_ref_positions"] = np.asarray(
            ckpt.pairlist_ref_positions, dtype=np.float64
        )
    if ckpt.trajectory is not None:
        arrays["trajectory"] = np.asarray(ckpt.trajectory, dtype=np.float64)
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    return buf.getvalue()


def save_checkpoint(ckpt: MdCheckpoint, path: str) -> str:
    """Write the checkpoint atomically; returns the path written.

    The temp file lives in the destination directory so ``os.replace``
    is a same-filesystem atomic rename.
    """
    payload = _payload_bytes(ckpt)
    digest = hashlib.sha256(payload).hexdigest()
    directory = os.path.dirname(os.path.abspath(path))
    tmp = os.path.join(directory, f".{os.path.basename(path)}.tmp")
    with open(tmp, "wb") as fh:
        fh.write(MAGIC + b"\n")
        fh.write(digest.encode("ascii") + b"\n")
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def load_checkpoint(path: str) -> MdCheckpoint:
    """Read + verify a checkpoint; raises :class:`CheckpointError` on any
    corruption (bad magic, checksum mismatch, truncated payload)."""
    try:
        with open(path, "rb") as fh:
            magic = fh.readline().rstrip(b"\n")
            digest_line = fh.readline().rstrip(b"\n")
            payload = fh.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    if magic != MAGIC:
        raise CheckpointError(
            f"{path!r} is not a {MAGIC.decode()} checkpoint (magic {magic!r})"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest.encode("ascii") != digest_line:
        raise CheckpointError(
            f"checksum mismatch in {path!r}: file is torn or corrupt"
        )
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as data:
            header = json.loads(bytes(data["header"]).decode("utf-8"))
            positions = data["positions"]
            velocities = data["velocities"]
            ref = (
                data["pairlist_ref_positions"]
                if header.get("has_pairlist_ref")
                else None
            )
            traj = (
                data["trajectory"] if header.get("has_trajectory") else None
            )
    except (KeyError, ValueError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"malformed checkpoint payload: {exc}") from exc
    if header.get("version") not in READABLE_VERSIONS:
        raise CheckpointError(
            f"unsupported checkpoint version {header.get('version')} "
            f"(this build reads {READABLE_VERSIONS})"
        )
    return MdCheckpoint(
        step=int(header["step"]),
        positions=positions,
        velocities=velocities,
        box_lengths=tuple(header["box_lengths"]),
        integrator_state=header["integrator_state"],
        pairlist_rebuild_step=int(header["pairlist_rebuild_step"]),
        pairlist_ref_positions=ref,
        meta=header.get("meta", {}),
        history=header.get("history"),
        trajectory=traj,
    )


def capture(
    system,
    integrator,
    step: int,
    pairlist_rebuild_step: int = 0,
    pairlist_ref_positions: np.ndarray | None = None,
    meta: dict | None = None,
    history: dict | None = None,
    trajectory: np.ndarray | None = None,
) -> MdCheckpoint:
    """Snapshot a driver's state (shared by MdLoop and SWGromacsEngine)."""
    return MdCheckpoint(
        step=step,
        positions=system.positions.copy(),
        velocities=system.velocities.copy(),
        box_lengths=tuple(float(v) for v in system.box.lengths),
        integrator_state=integrator.get_state(),
        pairlist_rebuild_step=pairlist_rebuild_step,
        pairlist_ref_positions=(
            None
            if pairlist_ref_positions is None
            else pairlist_ref_positions.copy()
        ),
        meta=meta or {},
        history=history,
        trajectory=None if trajectory is None else np.asarray(trajectory),
    )


def restore(ckpt: MdCheckpoint, system, integrator) -> None:
    """Load a checkpoint's state into a driver's system + integrator."""
    if ckpt.n_particles != system.n_particles:
        raise CheckpointError(
            f"checkpoint has {ckpt.n_particles} particles, "
            f"system has {system.n_particles}"
        )
    system.positions = ckpt.positions.copy()
    system.velocities = ckpt.velocities.copy()
    integrator.set_state(ckpt.integrator_state)
