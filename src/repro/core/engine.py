"""SWGromacsEngine: the whole MD workflow on the simulated SW26010.

Runs real dynamics (mixed-precision forces, leapfrog, SHAKE) while
accounting *modelled* chip time for every kernel of the paper's Table 1
taxonomy, under four optimisation levels matching Fig. 10:

* level 0 — ``Ori``:   everything on the MPE, MPI transport, slow I/O;
* level 1 — ``Cal``:   short-range force on CPEs (the MARK kernel);
* level 2 — ``List``:  + pair-list generation on CPEs (two-way cache);
* level 3 — ``Other``: + update/constraints on CPEs, RDMA transport,
  buffered fast I/O (everything in §3.6-3.7).

For multi-CG cases the engine runs ONE representative core group
functionally (SPMD symmetry: every CG executes the same kernels on
N/n_cgs local particles) and adds the communication model — the same
methodology the paper's own scalability analysis uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.comm_opt import Transport, step_comm
from repro.core.fastio import io_model_seconds
from repro.core.kernels import ALL_SPECS, KernelResult, run_kernel
from repro.core.pairlist_cpe import cache_study, search_kernel_seconds, search_trace
from repro.hw.params import ChipParams, DEFAULT_PARAMS
from repro.hw.perf import KernelTiming
from repro.md.constraints import build_constraint_solver
from repro.md.forces import compute_short_range
from repro.md.integrator import IntegratorConfig, LeapfrogIntegrator
from repro.md.mdloop import (
    KERNEL_COMM,
    KERNEL_CONSTRAINTS,
    KERNEL_FORCE,
    KERNEL_NEIGHBOR,
    KERNEL_OUTPUT,
    KERNEL_UPDATE,
)
from repro.md.nonbonded import NonbondedParams
from repro.md.pairlist import build_pair_list
from repro.md.reporter import EnergyReporter
from repro.md.system import ParticleSystem
from repro.trace.events import CAT_STEP, MPE_TRACK, NULL_TRACER, NullTracer

KERNEL_DOMAIN_DECOMP = "Domain decomp."
KERNEL_WAIT_COMM_F = "Wait + comm. F"
KERNEL_BUFFER_OPS = "NB X/F buffer ops"

#: Workflow-kernel cost constants (MPE cycles), set so the level-0 MPE
#: run reproduces the paper's Table 1 case-1 fractions (force ~95 %,
#: neighbour search ~2.5 %, update ~0.3 %, constraints ~0.6 %).
MPE_NS_CHECK_CYCLES = 4.0
MPE_UPDATE_CYCLES_PER_PARTICLE = 80.0
MPE_CONSTRAINT_CYCLES_PER_PARTICLE = 160.0
MPE_DD_CYCLES_PER_PARTICLE = 60.0
MPE_BUFFER_CYCLES_PER_PARTICLE = 25.0
#: Effective CPE-parallel speedup for the §3.7 "other" kernels (update,
#: constraints, buffer ops): these stream the whole state through the
#: CPEs once, so they are DMA-bandwidth-bound, not compute-bound — far
#: below the 64x core ratio.
CPE_WORKFLOW_SPEEDUP = 2.0
#: Candidate-to-listed expansion of the neighbour search (§3.5 model).
NS_EXPANSION = 3.0

LEVEL_NAMES = ("Ori", "Cal", "List", "Other")


@dataclass
class EngineConfig:
    """Engine configuration: physics + chip + optimisation level."""

    nonbonded: NonbondedParams = field(default_factory=NonbondedParams)
    integrator: IntegratorConfig = field(default_factory=IntegratorConfig)
    optimization_level: int = 3
    n_cgs: int = 1
    output_interval: int = 0
    report_interval: int = 100
    use_pme_comm: bool = True  # PME all-to-all in the comm model
    chip: ChipParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        if not 0 <= self.optimization_level <= 3:
            raise ValueError(
                f"optimization_level must be 0..3: {self.optimization_level}"
            )
        if self.n_cgs < 1:
            raise ValueError(f"n_cgs must be >= 1: {self.n_cgs}")

    @property
    def level_name(self) -> str:
        return LEVEL_NAMES[self.optimization_level]

    @property
    def transport(self) -> Transport:
        return Transport.RDMA if self.optimization_level >= 3 else Transport.MPI

    @property
    def force_spec(self):
        return ALL_SPECS["MARK"] if self.optimization_level >= 1 else ALL_SPECS["ORI"]


@dataclass
class EngineResult:
    """Functional + modelled outcome of an engine run."""

    system: ParticleSystem
    reporter: EnergyReporter
    timing: KernelTiming  # modelled chip seconds per kernel
    n_steps: int
    level: str
    force_result: KernelResult | None = None

    @property
    def modelled_seconds(self) -> float:
        return self.timing.total()

    def speedup_over(self, other: "EngineResult") -> float:
        if self.modelled_seconds <= 0:
            raise ValueError("non-positive modelled time")
        return other.modelled_seconds / self.modelled_seconds


class SWGromacsEngine:
    """MD on the simulated chip with per-kernel modelled timing."""

    def __init__(
        self,
        system: ParticleSystem,
        config: EngineConfig | None = None,
        tracer: NullTracer = NULL_TRACER,
    ) -> None:
        self.system = system
        self.config = config or EngineConfig()
        #: Timeline tracer.  Step phases land on the MPE track with their
        #: *modelled* durations; the force kernel additionally lays out
        #: its per-CPE compute and DMA phases whenever the pair list is
        #: rebuilt (see `repro.core.kernels.run_kernel`).
        self.tracer = tracer
        self.shake = build_constraint_solver(system, "auto")
        self.integrator = LeapfrogIntegrator(self.config.integrator, self.shake)
        self.pairlist = None
        self._cached_force_model: KernelResult | None = None
        self._cached_ns_seconds: float | None = None

    def _add(self, timing: KernelTiming, kernel: str, seconds: float) -> None:
        """Record one modelled step-phase duration (timing + trace)."""
        timing.add(kernel, seconds)
        if self.tracer.enabled:
            self.tracer.emit_seconds(kernel, CAT_STEP, MPE_TRACK, seconds)

    # ------------------------------------------------------------------
    # per-kernel modelled costs
    # ------------------------------------------------------------------
    def _ns_seconds(self) -> float:
        """Pair-list generation time at the current level (per rebuild)."""
        cfg = self.config
        assert self.pairlist is not None
        n_checks = self.pairlist.n_cluster_pairs * NS_EXPANSION
        if cfg.optimization_level < 2:
            return 16.0 * n_checks * MPE_NS_CHECK_CYCLES * cfg.chip.cycle_s
        trace = search_trace(self.pairlist, NS_EXPANSION)
        study = cache_study(trace, cfg.chip)
        return search_kernel_seconds(
            self.pairlist, study.two_way_miss_ratio, cfg.chip, NS_EXPANSION
        )

    def _update_constraint_seconds(self) -> tuple[float, float]:
        cfg = self.config
        n = self.system.n_particles
        upd = n * MPE_UPDATE_CYCLES_PER_PARTICLE * cfg.chip.cycle_s
        con = (
            n * MPE_CONSTRAINT_CYCLES_PER_PARTICLE * cfg.chip.cycle_s
            if self.shake is not None
            else 0.0
        )
        if cfg.optimization_level >= 3:
            upd /= CPE_WORKFLOW_SPEEDUP
            con /= CPE_WORKFLOW_SPEEDUP
        return upd, con

    def _comm_timing(self, timing: KernelTiming) -> None:
        cfg = self.config
        if cfg.n_cgs == 1:
            return
        total_particles = self.system.n_particles * cfg.n_cgs
        box_edge = self.system.box.min_edge * cfg.n_cgs ** (1.0 / 3.0)
        comm = step_comm(
            total_particles,
            cfg.n_cgs,
            box_edge,
            cfg.nonbonded.r_list,
            transport=cfg.transport,
            params=cfg.chip,
            use_pme=cfg.use_pme_comm,
        )
        self._add(timing, KERNEL_WAIT_COMM_F, comm.halo_seconds + comm.pme_seconds)
        self._add(timing, KERNEL_COMM, comm.energy_seconds)
        n_local = self.system.n_particles
        self._add(
            timing,
            KERNEL_BUFFER_OPS,
            n_local
            * MPE_BUFFER_CYCLES_PER_PARTICLE
            * cfg.chip.cycle_s
            / (CPE_WORKFLOW_SPEEDUP if cfg.optimization_level >= 3 else 1.0),
        )

    def _dd_seconds(self) -> float:
        if self.config.n_cgs == 1:
            return 0.0
        return (
            self.system.n_particles
            * MPE_DD_CYCLES_PER_PARTICLE
            * self.config.chip.cycle_s
        )

    def _io_seconds(self) -> float:
        cfg = self.config
        return io_model_seconds(
            self.system.n_particles,
            cfg.chip,
            fast=cfg.optimization_level >= 3,
        ).total

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def _rebuild(self, timing: KernelTiming) -> None:
        self.pairlist = build_pair_list(
            self.system, self.config.nonbonded.r_list
        )
        self._cached_force_model = run_kernel(
            self.system,
            self.pairlist,
            self.config.nonbonded,
            self.config.force_spec,
            self.config.chip,
            tracer=self.tracer,
        )
        self._cached_ns_seconds = self._ns_seconds()
        self._add(timing, KERNEL_NEIGHBOR, self._cached_ns_seconds)
        self._add(timing, KERNEL_DOMAIN_DECOMP, self._dd_seconds())

    def run(self, n_steps: int) -> EngineResult:
        """Run ``n_steps`` of real dynamics, accumulating modelled time."""
        if n_steps < 0:
            raise ValueError(f"n_steps must be non-negative: {n_steps}")
        cfg = self.config
        timing = KernelTiming()
        reporter = EnergyReporter(interval=cfg.report_interval)

        for step in range(n_steps):
            if step % cfg.nonbonded.nstlist == 0:
                self._rebuild(timing)
            # Functional force (mixed precision, identical to the modelled
            # kernel's functional output); modelled time from the cached
            # kernel analysis.
            sr = compute_short_range(
                self.system, self.pairlist, cfg.nonbonded, dtype=np.float32
            )
            self._add(timing, KERNEL_FORCE, self._cached_force_model.elapsed_seconds)

            self.integrator.step(self.system, sr.forces)
            upd, con = self._update_constraint_seconds()
            self._add(timing, KERNEL_UPDATE, upd)
            if con:
                self._add(timing, KERNEL_CONSTRAINTS, con)

            self._comm_timing(timing)

            reporter.maybe_record(
                step,
                sr.energy,
                self.system.kinetic_energy(),
                self.system.temperature(),
            )
            if cfg.output_interval and step % cfg.output_interval == 0:
                self._add(timing, KERNEL_OUTPUT, self._io_seconds())

        return EngineResult(
            system=self.system,
            reporter=reporter,
            timing=timing,
            n_steps=n_steps,
            level=cfg.level_name,
            force_result=self._cached_force_model,
        )

    def model_step(self) -> KernelTiming:
        """Modelled per-step timing without advancing dynamics (kernel
        times amortise the nstlist-periodic work)."""
        timing = KernelTiming()
        if self.pairlist is None:
            self._rebuild(KernelTiming())
        nstlist = self.config.nonbonded.nstlist
        timing.add(KERNEL_NEIGHBOR, self._cached_ns_seconds / nstlist)
        timing.add(KERNEL_DOMAIN_DECOMP, self._dd_seconds() / nstlist)
        timing.add(KERNEL_FORCE, self._cached_force_model.elapsed_seconds)
        upd, con = self._update_constraint_seconds()
        timing.add(KERNEL_UPDATE, upd)
        if con:
            timing.add(KERNEL_CONSTRAINTS, con)
        self._comm_timing(timing)
        if self.config.output_interval:
            timing.add(
                KERNEL_OUTPUT, self._io_seconds() / self.config.output_interval
            )
        return timing


def run_optimization_ladder(
    system_builder,
    n_local_particles: int,
    n_cgs: int = 1,
    nonbonded: NonbondedParams | None = None,
    output_interval: int = 0,
    chip: ChipParams = DEFAULT_PARAMS,
) -> dict[str, KernelTiming]:
    """Fig. 10: modelled per-step timing at each optimisation level.

    ``system_builder(n_particles)`` builds the local (per-CG) system once;
    the four levels share it so differences are purely modelled.
    """
    system = system_builder(n_local_particles)
    out: dict[str, KernelTiming] = {}
    for level in range(4):
        cfg = EngineConfig(
            nonbonded=nonbonded or NonbondedParams(),
            optimization_level=level,
            n_cgs=n_cgs,
            output_interval=output_interval,
            chip=chip,
        )
        engine = SWGromacsEngine(system.copy(), cfg)
        out[cfg.level_name] = engine.model_step()
    return out
