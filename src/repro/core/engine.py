"""SWGromacsEngine: the whole MD workflow on the simulated SW26010.

Runs real dynamics (mixed-precision forces, leapfrog, SHAKE) while
accounting *modelled* chip time for every kernel of the paper's Table 1
taxonomy, under four optimisation levels matching Fig. 10:

* level 0 — ``Ori``:   everything on the MPE, MPI transport, slow I/O;
* level 1 — ``Cal``:   short-range force on CPEs (the MARK kernel);
* level 2 — ``List``:  + pair-list generation on CPEs (two-way cache);
* level 3 — ``Other``: + update/constraints on CPEs, RDMA transport,
  buffered fast I/O (everything in §3.6-3.7).

For multi-CG cases the engine runs ONE representative core group
functionally (SPMD symmetry: every CG executes the same kernels on
N/n_cgs local particles) and adds the communication model — the same
methodology the paper's own scalability analysis uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.comm_opt import Transport, step_comm
from repro.core.fastio import io_model_seconds
from repro.core.kernels import (
    ALL_SPECS,
    FORCE_PACKAGE_BYTES,
    KernelResult,
    run_kernel,
)
from repro.core.pairlist_cpe import cache_study, search_kernel_seconds, search_trace
from repro.core.stepcache import NullStepCache, StepCache
from repro.core.vectorized import resolve_kernel_impl
from repro.hw.dma import DmaEngine
from repro.hw.params import ChipParams, DEFAULT_PARAMS
from repro.hw.perf import KernelTiming
from repro.md.constraints import build_constraint_solver
from repro.md.integrator import IntegratorConfig, LeapfrogIntegrator
from repro.md.mdloop import (
    KERNEL_COMM,
    KERNEL_CONSTRAINTS,
    KERNEL_FORCE,
    KERNEL_NEIGHBOR,
    KERNEL_OUTPUT,
    KERNEL_UPDATE,
)
from repro.md.nonbonded import NonbondedParams
from repro.md.pairlist import build_pair_list
from repro.md.reporter import EnergyFrame, EnergyReporter
from repro.md.system import ParticleSystem
from repro.parallel.pool import shared_backend
from repro.resilience import (
    MODE_MPE_FALLBACK,
    CheckpointError,
    DegradationReport,
    FaultCounts,
    MdCheckpoint,
    ResiliencePolicy,
    capture,
    degraded_chip,
    plan_degradation,
    save_checkpoint,
)
from repro.resilience import restore as restore_checkpoint_state
from repro.trace.events import (
    CAT_CHECKPOINT,
    CAT_FAULT,
    CAT_STEP,
    MPE_TRACK,
    NULL_TRACER,
    NullTracer,
)

KERNEL_DOMAIN_DECOMP = "Domain decomp."
KERNEL_WAIT_COMM_F = "Wait + comm. F"
KERNEL_BUFFER_OPS = "NB X/F buffer ops"
KERNEL_FAULT_RETRY = "Fault retries"
KERNEL_CHECKPOINT = "Checkpoint"

#: Workflow-kernel cost constants (MPE cycles), set so the level-0 MPE
#: run reproduces the paper's Table 1 case-1 fractions (force ~95 %,
#: neighbour search ~2.5 %, update ~0.3 %, constraints ~0.6 %).
MPE_NS_CHECK_CYCLES = 4.0
MPE_UPDATE_CYCLES_PER_PARTICLE = 80.0
MPE_CONSTRAINT_CYCLES_PER_PARTICLE = 160.0
MPE_DD_CYCLES_PER_PARTICLE = 60.0
MPE_BUFFER_CYCLES_PER_PARTICLE = 25.0
#: Effective CPE-parallel speedup for the §3.7 "other" kernels (update,
#: constraints, buffer ops): these stream the whole state through the
#: CPEs once, so they are DMA-bandwidth-bound, not compute-bound — far
#: below the 64x core ratio.
CPE_WORKFLOW_SPEEDUP = 2.0
#: Candidate-to-listed expansion of the neighbour search (§3.5 model).
NS_EXPANSION = 3.0

LEVEL_NAMES = ("Ori", "Cal", "List", "Other")


@dataclass
class EngineConfig:
    """Engine configuration: physics + chip + optimisation level."""

    nonbonded: NonbondedParams = field(default_factory=NonbondedParams)
    integrator: IntegratorConfig = field(default_factory=IntegratorConfig)
    optimization_level: int = 3
    n_cgs: int = 1
    output_interval: int = 0
    report_interval: int = 100
    use_pme_comm: bool = True  # PME all-to-all in the comm model
    #: Step-compute reuse (DESIGN.md §8): share the functional force
    #: evaluation between the rebuild-step kernel model and the step
    #: loop, plus all pairlist-topology analysis across the interval.
    #: False swaps in the recompute-everything NullStepCache (ablation
    #: baseline); results are bit-identical either way.
    step_reuse: bool = True
    chip: ChipParams = DEFAULT_PARAMS
    #: Failure/recovery knobs (default = perfect hardware, no checkpoints).
    resilience: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    #: Host-parallel execution backend (DESIGN.md §9): "serial", "pool",
    #: or None for ``REPRO_BACKEND``-or-serial.  Fans the pair-list exact
    #: filter and the per-CPE trace analyses over real worker processes;
    #: results are bit-identical either way.
    backend: str | None = None
    #: Worker count for the pool backend (None = ``REPRO_WORKERS`` or
    #: host CPU count).
    workers: int | None = None
    #: Force-kernel implementation: "scalar" (reference loop) or
    #: "vectorized" (batched panels, `repro.core.vectorized`); None
    #: resolves ``REPRO_KERNEL``-or-scalar.  Bit-identical results —
    #: only speed differs.
    kernel_impl: str | None = None
    #: Constraint solver (GROMACS' ``constraint-algorithm``): "auto"
    #: (SETTLE for pure water, SHAKE otherwise), "settle", "lincs", or
    #: "shake".  Scenario specs (DESIGN.md §15) select this per run.
    constraint_algorithm: str = "auto"

    def __post_init__(self) -> None:
        if not 0 <= self.optimization_level <= 3:
            raise ValueError(
                f"optimization_level must be 0..3: {self.optimization_level}"
            )
        if self.n_cgs < 1:
            raise ValueError(f"n_cgs must be >= 1: {self.n_cgs}")

    @property
    def level_name(self) -> str:
        return LEVEL_NAMES[self.optimization_level]

    @property
    def transport(self) -> Transport:
        return Transport.RDMA if self.optimization_level >= 3 else Transport.MPI

    @property
    def force_spec(self):
        return ALL_SPECS["MARK"] if self.optimization_level >= 1 else ALL_SPECS["ORI"]


@dataclass
class EngineResult:
    """Functional + modelled outcome of an engine run."""

    system: ParticleSystem
    reporter: EnergyReporter
    timing: KernelTiming  # modelled chip seconds per kernel
    n_steps: int
    level: str
    force_result: KernelResult | None = None
    #: Last degradation decision of the run (None = no fault plan).
    degradation: DegradationReport | None = None
    #: Totals of every injected fault (None = no fault plan).
    fault_counts: FaultCounts | None = None
    checkpoints_written: int = 0

    @property
    def modelled_seconds(self) -> float:
        return self.timing.total()

    def speedup_over(self, other: "EngineResult") -> float:
        if self.modelled_seconds <= 0 or other.modelled_seconds <= 0:
            raise ValueError("non-positive modelled time")
        return other.modelled_seconds / self.modelled_seconds

    def summary(self) -> dict:
        """JSON-able digest of the run: the serving layer's wire payload
        (`repro.serve`), also handy for scripting.

        The state fingerprint is BLAKE2b over the final positions, so
        two runs agree on the summary iff they agree on the trajectory —
        the serve bit-identity tests compare exactly this.
        """
        from repro.core.stepcache import position_fingerprint

        last = self.reporter.frames[-1] if self.reporter.frames else None
        return {
            "level": self.level,
            "n_steps": int(self.n_steps),
            "n_particles": int(self.system.n_particles),
            "potential": float(last.potential) if last else None,
            "kinetic": float(last.kinetic) if last else None,
            "temperature": float(last.temperature) if last else None,
            "modelled_seconds": float(self.modelled_seconds),
            "positions_fp": position_fingerprint(self.system.positions).hex(),
            "timing": {
                k: float(v) for k, v in sorted(self.timing.seconds.items())
            },
            "checkpoints_written": int(self.checkpoints_written),
        }


class SWGromacsEngine:
    """MD on the simulated chip with per-kernel modelled timing."""

    def __init__(
        self,
        system: ParticleSystem,
        config: EngineConfig | None = None,
        tracer: NullTracer = NULL_TRACER,
    ) -> None:
        self.system = system
        self.config = config or EngineConfig()
        #: Timeline tracer.  Step phases land on the MPE track with their
        #: *modelled* durations; the force kernel additionally lays out
        #: its per-CPE compute and DMA phases whenever the pair list is
        #: rebuilt (see `repro.core.kernels.run_kernel`).
        self.tracer = tracer
        self.shake = build_constraint_solver(
            system, self.config.constraint_algorithm
        )
        self.integrator = LeapfrogIntegrator(self.config.integrator, self.shake)
        #: Execution backend for fan-out work (process-wide shared
        #: instance when selected by name/env; never closed here).
        self.backend = shared_backend(self.config.backend, self.config.workers)
        #: Resolved force-kernel implementation for the whole run (env
        #: lookup happens once, here — not per step).
        self.kernel_impl = resolve_kernel_impl(self.config.kernel_impl)
        self.pairlist = None
        self._cached_force_model: KernelResult | None = None
        self._cached_ns_seconds: float | None = None
        #: Pairlist-interval reuse layer; invalidated on every rebuild
        #: and on restore() (DESIGN.md §8).
        self.stepcache = (
            StepCache() if self.config.step_reuse else NullStepCache()
        )
        #: Seeded fault oracle for this run (None = perfect hardware).
        policy = self.config.resilience
        self.fault_plan = policy.build_fault_plan()
        #: Private DMA engine that replays the force kernel's recorded
        #: traffic against the fault plan — the force kernel's own DMA
        #: math is closed-form, so retry overhead is charged by replay.
        self._fault_dma = (
            DmaEngine(
                params=self.config.chip,
                tracer=tracer,
                fault_plan=self.fault_plan,
                retry=policy.retry,
            )
            if self.fault_plan is not None
            and self.fault_plan.spec.dma_error_rate > 0.0
            else None
        )
        #: Last degradation decision (refreshed at every list rebuild).
        self.degradation: DegradationReport | None = None
        self._start_step = 0
        self._next_step = 0
        self._pairlist_rebuild_step = 0
        self._pairlist_ref_positions: np.ndarray | None = None
        self._restart_ref_positions: np.ndarray | None = None
        self._checkpoints_written = 0
        #: Accounting carried through restore() so a restarted run's
        #: EngineResult matches the uninterrupted one.
        self._restored_history: dict | None = None
        self._reporter: EnergyReporter | None = None

    def _add(self, timing: KernelTiming, kernel: str, seconds: float) -> None:
        """Record one modelled step-phase duration (timing + trace)."""
        timing.add(kernel, seconds)
        if self.tracer.enabled:
            self.tracer.emit_seconds(kernel, CAT_STEP, MPE_TRACK, seconds)

    # ------------------------------------------------------------------
    # per-kernel modelled costs
    # ------------------------------------------------------------------
    def _ns_seconds(self, chip: ChipParams | None = None) -> float:
        """Pair-list generation time at the current level (per rebuild)."""
        cfg = self.config
        chip = chip or cfg.chip
        assert self.pairlist is not None
        n_checks = self.pairlist.n_cluster_pairs * NS_EXPANSION
        if cfg.optimization_level < 2:
            return 16.0 * n_checks * MPE_NS_CHECK_CYCLES * chip.cycle_s
        trace = search_trace(self.pairlist, NS_EXPANSION)
        study = cache_study(trace, chip)
        return search_kernel_seconds(
            self.pairlist, study.two_way_miss_ratio, chip, NS_EXPANSION
        )

    def _update_constraint_seconds(self) -> tuple[float, float]:
        cfg = self.config
        n = self.system.n_particles
        upd = n * MPE_UPDATE_CYCLES_PER_PARTICLE * cfg.chip.cycle_s
        con = (
            n * MPE_CONSTRAINT_CYCLES_PER_PARTICLE * cfg.chip.cycle_s
            if self.shake is not None
            else 0.0
        )
        if cfg.optimization_level >= 3:
            upd /= CPE_WORKFLOW_SPEEDUP
            con /= CPE_WORKFLOW_SPEEDUP
        return upd, con

    def _comm_timing(self, timing: KernelTiming) -> None:
        cfg = self.config
        if cfg.n_cgs == 1:
            return
        total_particles = self.system.n_particles * cfg.n_cgs
        box_edge = self.system.box.min_edge * cfg.n_cgs ** (1.0 / 3.0)
        comm = step_comm(
            total_particles,
            cfg.n_cgs,
            box_edge,
            cfg.nonbonded.r_list,
            transport=cfg.transport,
            params=cfg.chip,
            use_pme=cfg.use_pme_comm,
        )
        self._add(timing, KERNEL_WAIT_COMM_F, comm.halo_seconds + comm.pme_seconds)
        self._add(timing, KERNEL_COMM, comm.energy_seconds)
        n_local = self.system.n_particles
        self._add(
            timing,
            KERNEL_BUFFER_OPS,
            n_local
            * MPE_BUFFER_CYCLES_PER_PARTICLE
            * cfg.chip.cycle_s
            / (CPE_WORKFLOW_SPEEDUP if cfg.optimization_level >= 3 else 1.0),
        )

    def _dd_seconds(self) -> float:
        if self.config.n_cgs == 1:
            return 0.0
        return (
            self.system.n_particles
            * MPE_DD_CYCLES_PER_PARTICLE
            * self.config.chip.cycle_s
        )

    def _io_seconds(self) -> float:
        cfg = self.config
        return io_model_seconds(
            self.system.n_particles,
            cfg.chip,
            fast=cfg.optimization_level >= 3,
        ).total

    # ------------------------------------------------------------------
    # resilience
    # ------------------------------------------------------------------
    def _degradation_decision(self) -> DegradationReport | None:
        """Spawn-time CPE roll call + recovery-mode choice (per rebuild).

        Only CPE-offload levels spawn; the level-0 MPE path has nothing
        to lose.
        """
        cfg = self.config
        if self.fault_plan is None or cfg.optimization_level < 1:
            return None
        spec = self.fault_plan.spec
        if not (spec.cpe_fail_rate or spec.dead_cpes):
            return None
        survivors = len(self.fault_plan.surviving_cpes(cfg.chip.n_cpes))
        report = plan_degradation(
            survivors, cfg.chip, cfg.resilience.min_cpes
        )
        self.degradation = report
        if report.degraded and self.tracer.enabled:
            self.tracer.instant(
                "cpe_loss", CAT_FAULT, MPE_TRACK,
                mode=report.mode, survivors=report.n_survivors,
                lost=report.n_lost,
            )
        return report

    def _rebuild(self, timing: KernelTiming, step: int = 0) -> None:
        """Rebuild the pair list + cached kernel cost model at ``step``.

        Builds from the *current* system positions; the restart path
        temporarily swaps in the checkpointed reference positions so the
        regenerated list is bit-identical to the interrupted run's.
        """
        cfg = self.config
        chip = cfg.chip
        spec = cfg.force_spec
        report = self._degradation_decision()
        if report is not None and report.degraded:
            if report.mode == MODE_MPE_FALLBACK:
                # Too few survivors for the CPE ladder: run the MPE
                # reference kernel (same forces, "Ori" cost).
                spec = ALL_SPECS["ORI"]
            else:
                # Repartition over survivors: the same kernel costed
                # against a narrower core group.
                chip = degraded_chip(chip, report)
        self.stepcache.invalidate()
        self.pairlist = build_pair_list(
            self.system, self.config.nonbonded.r_list, backend=self.backend
        )
        self._cached_force_model = run_kernel(
            self.system,
            self.pairlist,
            self.config.nonbonded,
            spec,
            chip,
            tracer=self.tracer,
            cache=self.stepcache,
            backend=self.backend,
            impl=self.kernel_impl,
        )
        self._cached_ns_seconds = self._ns_seconds(chip)
        self._add(timing, KERNEL_NEIGHBOR, self._cached_ns_seconds)
        self._add(timing, KERNEL_DOMAIN_DECOMP, self._dd_seconds())
        self._pairlist_rebuild_step = step
        self._pairlist_ref_positions = self.system.positions.copy()

    def _rebuild_from_checkpoint(self, timing: KernelTiming) -> None:
        """Regenerate the mid-interval pair list after a restart."""
        if self._restart_ref_positions is None:
            raise CheckpointError(
                "restarted mid pair-list interval but the checkpoint "
                "carried no reference positions"
            )
        saved = self.system.positions
        self.system.positions = self._restart_ref_positions
        try:
            self._rebuild(timing, self._pairlist_rebuild_step)
        finally:
            self.system.positions = saved
            self._restart_ref_positions = None

    def _replay_dma_faults(self) -> float:
        """Charge DMA retry overhead for one step's force-kernel traffic.

        The force kernel's DMA cost is closed-form, so fault injection
        replays its recorded per-phase byte totals through a private
        fault-carrying :class:`DmaEngine` at the kernel's own block
        sizes; only the retry-seconds delta is returned (base transfer
        time is already in the Force row).
        """
        dma = self._fault_dma
        stats = self._cached_force_model.stats
        chip = self.config.chip
        before = dma.stats.retry_seconds
        read_bytes = int(stats.get("read_bytes", 0))
        write_bytes = int(stats.get("write_bytes", 0))
        nblist_bytes = int(stats.get("nblist_bytes", 0))
        if read_bytes:
            size = max(chip.line_bytes, 1)
            dma.get_bulk(size, max(1, read_bytes // size))
        if nblist_bytes:
            size = chip.dma_curve[-1][0]  # streamed at the largest block
            dma.get_bulk(size, max(1, nblist_bytes // size))
        if write_bytes:
            dma.put_bulk(
                FORCE_PACKAGE_BYTES,
                max(1, write_bytes // FORCE_PACKAGE_BYTES),
            )
        return dma.stats.retry_seconds - before

    def _history_dict(self) -> dict:
        """Accumulated accounting to stow in a checkpoint (v2)."""
        frames = self._reporter.frames if self._reporter is not None else []
        return {
            "checkpoints_written": int(self._checkpoints_written),
            "reporter_frames": [
                [f.step, f.potential, f.kinetic, f.temperature]
                for f in frames
            ],
        }

    def checkpoint(self, step: int | None = None) -> MdCheckpoint:
        """Snapshot the run (``step`` = next step to execute)."""
        return capture(
            self.system,
            self.integrator,
            step=self._next_step if step is None else step,
            pairlist_rebuild_step=self._pairlist_rebuild_step,
            pairlist_ref_positions=self._pairlist_ref_positions,
            meta={
                "level": self.config.level_name,
                "n_particles": self.system.n_particles,
            },
            history=self._history_dict(),
        )

    def restore(self, ckpt: MdCheckpoint) -> None:
        """Resume from a checkpoint: the next :meth:`run` continues at
        ``ckpt.step`` and reproduces the uninterrupted run bit-for-bit."""
        if tuple(ckpt.box_lengths) != tuple(
            float(v) for v in self.system.box.lengths
        ):
            raise CheckpointError(
                f"checkpoint box {ckpt.box_lengths} != system box "
                f"{tuple(self.system.box.lengths)}"
            )
        restore_checkpoint_state(ckpt, self.system, self.integrator)
        self._start_step = self._next_step = ckpt.step
        self._pairlist_rebuild_step = ckpt.pairlist_rebuild_step
        self._restart_ref_positions = ckpt.pairlist_ref_positions
        self.pairlist = None
        self._cached_force_model = None
        self._cached_ns_seconds = None
        self.stepcache.invalidate()
        if ckpt.history is not None:
            self._restored_history = dict(ckpt.history)
        else:
            # Pre-v2 checkpoint: reconstruct the counter; reporter
            # history is unrecoverable and restarts empty.
            every = self.config.resilience.checkpoint_every
            self._restored_history = {
                "checkpoints_written": ckpt.step // every if every else 0,
                "reporter_frames": [],
            }

    def _checkpoint_seconds(self, ckpt: MdCheckpoint) -> float:
        """Modelled cost of one checkpoint write (binary, no formatting):
        write + fsync + rename syscalls plus the payload at disk rate."""
        chip = self.config.chip
        nbytes = ckpt.positions.nbytes + ckpt.velocities.nbytes
        if ckpt.pairlist_ref_positions is not None:
            nbytes += ckpt.pairlist_ref_positions.nbytes
        return 3.0 * chip.io_syscall_s + nbytes / (
            chip.io_disk_bandwidth_gbs * 1e9
        )

    def _write_checkpoint(self, timing: KernelTiming, next_step: int) -> None:
        policy = self.config.resilience
        # Count the in-flight checkpoint before capturing so its own
        # history includes it — a restart from this file has "written" it.
        self._checkpoints_written += 1
        ckpt = self.checkpoint(next_step)
        save_checkpoint(ckpt, policy.checkpoint_path)
        t = self._checkpoint_seconds(ckpt)
        timing.add(KERNEL_CHECKPOINT, t)
        if self.tracer.enabled:
            self.tracer.emit_seconds(
                "checkpoint_write", CAT_CHECKPOINT, MPE_TRACK, t,
                step=next_step, path=policy.checkpoint_path,
            )

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def run(self, n_steps: int, progress=None) -> EngineResult:
        """Run ``n_steps`` of real dynamics, accumulating modelled time.

        After :meth:`restore` the loop continues from the checkpointed
        step, so ``n_steps`` is always the *total* step count of the
        trajectory, matching an uninterrupted run.

        ``progress`` is an optional observer with an
        ``update(steps_done, steps_total)`` method (see
        :class:`repro.durable.progress.ProgressWriter`), called once per
        completed step; it cannot affect results.
        """
        if n_steps < 0:
            raise ValueError(f"n_steps must be non-negative: {n_steps}")
        cfg = self.config
        policy = cfg.resilience
        timing = KernelTiming()
        hist = self._restored_history or {}
        reporter = EnergyReporter(interval=cfg.report_interval)
        reporter.frames.extend(
            EnergyFrame(int(r[0]), float(r[1]), float(r[2]), float(r[3]))
            for r in hist.get("reporter_frames", [])
        )
        # Restart-invariant accounting: resume from the restored base
        # (zero on a fresh start, so repeated run() calls don't inherit
        # earlier counts).
        self._checkpoints_written = int(hist.get("checkpoints_written", 0))
        self._reporter = reporter

        for step in range(self._start_step, n_steps):
            if step % cfg.nonbonded.nstlist == 0:
                self._rebuild(timing, step)
            elif self.pairlist is None:
                self._rebuild_from_checkpoint(timing)
            # Functional force (mixed precision, identical to the modelled
            # kernel's functional output); modelled time from the cached
            # kernel analysis.  At rebuild steps the kernel model already
            # evaluated these exact forces — the step cache hands the
            # shared result back instead of recomputing it.
            sr = self.stepcache.short_range(
                self.system, self.pairlist, cfg.nonbonded, dtype=np.float32,
                impl=self.kernel_impl,
            )
            self._add(timing, KERNEL_FORCE, self._cached_force_model.elapsed_seconds)
            if self._fault_dma is not None:
                self._add(timing, KERNEL_FAULT_RETRY, self._replay_dma_faults())

            self.integrator.step(self.system, sr.forces)
            self._next_step = step + 1
            upd, con = self._update_constraint_seconds()
            self._add(timing, KERNEL_UPDATE, upd)
            if con:
                self._add(timing, KERNEL_CONSTRAINTS, con)

            self._comm_timing(timing)

            # Kinetic energy and temperature are only observable through
            # the reporter, so off-interval steps skip both reductions.
            if step % reporter.interval == 0:
                reporter.maybe_record(
                    step,
                    sr.energy,
                    self.system.kinetic_energy(),
                    self.system.temperature(),
                )
            if cfg.output_interval and step % cfg.output_interval == 0:
                self._add(timing, KERNEL_OUTPUT, self._io_seconds())
            if (
                policy.checkpoint_every
                and (step + 1) % policy.checkpoint_every == 0
            ):
                self._write_checkpoint(timing, step + 1)
            if progress is not None:
                progress.update(step + 1, n_steps)

        return EngineResult(
            system=self.system,
            reporter=reporter,
            timing=timing,
            n_steps=n_steps,
            level=cfg.level_name,
            force_result=self._cached_force_model,
            degradation=self.degradation,
            fault_counts=(
                self.fault_plan.counts if self.fault_plan is not None else None
            ),
            checkpoints_written=self._checkpoints_written,
        )

    def model_step(self) -> KernelTiming:
        """Modelled per-step timing without advancing dynamics (kernel
        times amortise the nstlist-periodic work)."""
        timing = KernelTiming()
        if self.pairlist is None:
            self._rebuild(KernelTiming())
        nstlist = self.config.nonbonded.nstlist
        timing.add(KERNEL_NEIGHBOR, self._cached_ns_seconds / nstlist)
        timing.add(KERNEL_DOMAIN_DECOMP, self._dd_seconds() / nstlist)
        timing.add(KERNEL_FORCE, self._cached_force_model.elapsed_seconds)
        upd, con = self._update_constraint_seconds()
        timing.add(KERNEL_UPDATE, upd)
        if con:
            timing.add(KERNEL_CONSTRAINTS, con)
        self._comm_timing(timing)
        if self.config.output_interval:
            timing.add(
                KERNEL_OUTPUT, self._io_seconds() / self.config.output_interval
            )
        return timing


def _model_level_job(task: tuple[ParticleSystem, EngineConfig]) -> KernelTiming:
    """Model one optimisation level's step timing (pool-safe job)."""
    system, cfg = task
    return SWGromacsEngine(system.copy(), cfg).model_step()


def run_optimization_ladder(
    system_builder,
    n_local_particles: int,
    n_cgs: int = 1,
    nonbonded: NonbondedParams | None = None,
    output_interval: int = 0,
    chip: ChipParams = DEFAULT_PARAMS,
    backend=None,
) -> dict[str, KernelTiming]:
    """Fig. 10: modelled per-step timing at each optimisation level.

    ``system_builder(n_particles)`` builds the local (per-CG) system once;
    the four levels share it so differences are purely modelled.  The
    levels are independent, so under a parallel ``backend`` (or
    ``REPRO_BACKEND=pool``) each level models on its own worker; results
    merge in level order, so the dict is identical on any backend.
    """
    backend = shared_backend(backend)
    system = system_builder(n_local_particles)
    configs = [
        EngineConfig(
            nonbonded=nonbonded or NonbondedParams(),
            optimization_level=level,
            n_cgs=n_cgs,
            output_interval=output_interval,
            chip=chip,
            backend="serial",
        )
        for level in range(4)
    ]
    timings = backend.map(
        _model_level_job, [(system, cfg) for cfg in configs]
    )
    return {cfg.level_name: t for cfg, t in zip(configs, timings)}
