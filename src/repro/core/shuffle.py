"""The six-shuffle 4x3 transpose of the paper's Fig. 7 (post-treatment).

After the vectorised inner loop, forces live in three ``floatv4``
registers laid out by coordinate: ``fx = [x1 x2 x3 x4]``, ``fy``, ``fz``.
The force array in memory is AOS (``x1 y1 z1 x2 y2 z2 ...``), so adding
the results would need 12 scalar extractions.  The paper instead builds
the interleaved form with exactly six ``simd_vshulff`` instructions so the
vectors "could be added to the arrays without decomposition":

    stage 1: t0 = [x1 x3 y1 y3]   t1 = [x2 x4 z1 z3]   t2 = [y2 y4 z2 z4]
    stage 2: o0 = [x1 y1 z1 x2]   o1 = [y2 z2 x3 y3]   o2 = [z3 x4 y4 z4]

`transpose_4x3` reproduces those stages with the `repro.hw.simd.vshuff`
primitive; tests assert lane-exactness against a plain numpy transpose
and that exactly six shuffles are issued.
"""

from __future__ import annotations

import numpy as np

from repro.hw.simd import FloatV4, OpCounter, vshuff


def transpose_4x3(
    fx: FloatV4, fy: FloatV4, fz: FloatV4, ops: OpCounter | None = None
) -> tuple[FloatV4, FloatV4, FloatV4]:
    """Interleave coordinate vectors into AOS order with six shuffles.

    Returns three vectors whose concatenated lanes are
    ``x1 y1 z1 x2 | y2 z2 x3 y3 | z3 x4 y4 z4``.
    """
    # Stage 1 (Fig. 7 "First Shuffle").
    t0 = vshuff(fx, fy, (0, 2), (0, 2), ops)  # x1 x3 y1 y3
    t1 = vshuff(fx, fz, (1, 3), (0, 2), ops)  # x2 x4 z1 z3
    t2 = vshuff(fy, fz, (1, 3), (1, 3), ops)  # y2 y4 z2 z4
    # Stage 2 (Fig. 7 "Second Shuffle").
    o0 = vshuff(t0, t1, (0, 2), (2, 0), ops)  # x1 y1 z1 x2
    o1 = vshuff(t2, t0, (0, 2), (1, 3), ops)  # y2 z2 x3 y3
    o2 = vshuff(t1, t2, (3, 1), (1, 3), ops)  # z3 x4 y4 z4
    return o0, o1, o2


def transpose_4x3_reference(
    fx: np.ndarray, fy: np.ndarray, fz: np.ndarray
) -> np.ndarray:
    """Plain-numpy oracle: the 12 interleaved AOS floats."""
    stacked = np.stack([fx, fy, fz], axis=1)  # (4, 3): particle-major
    return stacked.reshape(-1).astype(np.float32)


def add_transposed_to_forces(
    forces_aos: np.ndarray,
    base_particle: int,
    fx: FloatV4,
    fy: FloatV4,
    fz: FloatV4,
    ops: OpCounter | None = None,
) -> None:
    """Post-treatment: transpose then vector-add into an AOS force buffer.

    ``forces_aos`` is a flat float32 array of x/y/z triples;
    ``base_particle`` indexes the first of the four particles updated.
    Three shuffled vector adds replace twelve scalar read-modify-writes.
    """
    if ops is None:
        ops = fx._ops
    o0, o1, o2 = transpose_4x3(fx, fy, fz, ops)
    base = 3 * base_particle
    if base + 12 > len(forces_aos):
        raise IndexError(
            f"force update at particle {base_particle} overruns buffer of "
            f"{len(forces_aos)} floats"
        )
    for k, vec in enumerate((o0, o1, o2)):
        off = base + 4 * k
        chunk = FloatV4.load(forces_aos, off, ops)
        (chunk + vec).store(forces_aos, off)
