"""Deferred update: the write-back force cache of §3.2 / Fig. 4 and the
mark-aware variant of Algorithm 3.

Force contributions accumulate in an LDM-resident direct-mapped cache of
force lines; the main-memory copy is touched only when a line is evicted
(put back) or first needed (fetched).  With the Bit-Map of §3.3, a line
this CPE has never touched is known-zero, so the first miss skips the
fetch and zero-fills locally — killing both the initialisation pass and
the useless fetch.

Two implementations again: the exact sequential :class:`DeferredUpdateCache`
(which really buffers and flushes float32 force lines — the fidelity path
and the unit-test subject), and :func:`analyze_write_trace`, the
vectorised accounting the fast kernels use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.bitmap import LineMarkBitmap
from repro.hw.cache import AddressMap, count_misses_direct_mapped
from repro.hw.dma import transfer_seconds
from repro.hw.params import ChipParams, DEFAULT_PARAMS
from repro.md.pairlist import CLUSTER_SIZE


@dataclass
class WriteTraceStats:
    """DMA accounting for one CPE's force-update trace."""

    accesses: int
    misses: int
    first_touches: int  # unique lines (mark bits set)
    puts: int  # line writebacks (evictions + final flush)
    gets: int  # line fetches from the MPE copy
    line_bytes: int

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def bytes_moved(self) -> int:
        return (self.puts + self.gets) * self.line_bytes

    def seconds(self, params: ChipParams = DEFAULT_PARAMS) -> float:
        return (self.puts + self.gets) * transfer_seconds(self.line_bytes, params)


class DeferredUpdateCache:
    """Write-back force cache for one CPE (Fig. 4 / Algorithm 3).

    ``copy`` is this CPE's force-copy array in simulated main memory,
    shape (n_slots, 3) float32.  ``use_mark=True`` enables the §3.3
    Bit-Map behaviour; ``use_mark=False`` models the plain RMA write cache
    whose copies were zero-initialised up front (so every miss fetches).
    """

    def __init__(
        self,
        copy: np.ndarray,
        params: ChipParams = DEFAULT_PARAMS,
        use_mark: bool = True,
    ) -> None:
        if copy.ndim != 2 or copy.shape[1] != 3:
            raise ValueError(f"force copy must be (n_slots, 3), got {copy.shape}")
        if copy.shape[0] % (params.packages_per_line * CLUSTER_SIZE):
            raise ValueError(
                "n_slots must be a multiple of particles_per_line "
                f"({params.particles_per_line}); got {copy.shape[0]}"
            )
        self.copy = copy
        self.params = params
        self.use_mark = use_mark
        self.amap = AddressMap(params.index_bits, params.offset_bits)
        n_lines_global = copy.shape[0] // params.particles_per_line
        self.mark = LineMarkBitmap(max(n_lines_global, 1))
        # LDM-resident line buffers: (n_cache_lines, particles_per_line, 3).
        self._lines = np.zeros(
            (self.amap.n_lines, params.particles_per_line, 3), dtype=np.float32
        )
        self._tags = np.full(self.amap.n_lines, -1, dtype=np.int64)
        self.stats = WriteTraceStats(
            accesses=0,
            misses=0,
            first_touches=0,
            puts=0,
            gets=0,
            line_bytes=params.packages_per_line
            * CLUSTER_SIZE
            * params.force_bytes_per_particle,
        )

    def _line_slice(self, global_line: int) -> slice:
        ppl = self.params.particles_per_line
        return slice(global_line * ppl, (global_line + 1) * ppl)

    def accumulate(self, particle_slot: int, force: np.ndarray) -> None:
        """Add one particle's force contribution (Algorithm 3)."""
        package = particle_slot // CLUSTER_SIZE
        offset_in_pkg = particle_slot % CLUSTER_SIZE
        tag, line, offset = self.amap.decompose(package)
        global_line = self.amap.line_address(package)
        self.stats.accesses += 1
        if self._tags[line] != tag:
            self.stats.misses += 1
            self._miss(line, tag, global_line)
        idx = offset * CLUSTER_SIZE + offset_in_pkg
        self._lines[line, idx] += np.asarray(force, dtype=np.float32)

    def accumulate_package(self, package: int, forces4: np.ndarray) -> None:
        """Add a whole package's four force vectors in one cache access —
        how the vectorised kernel updates after the Fig. 7 transpose."""
        tag, line, offset = self.amap.decompose(package)
        global_line = self.amap.line_address(package)
        self.stats.accesses += 1
        if self._tags[line] != tag:
            self.stats.misses += 1
            self._miss(line, tag, global_line)
        base = offset * CLUSTER_SIZE
        self._lines[line, base : base + CLUSTER_SIZE] += np.asarray(
            forces4, dtype=np.float32
        )

    def _miss(self, line: int, tag: int, global_line: int) -> None:
        # Evict the current occupant (always dirty: lines are only filled
        # by writes).
        old_tag = self._tags[line]
        if old_tag >= 0:
            old_global = int(self.amap.compose(int(old_tag), line)) >> 0
            old_global_line = self.amap.line_address(old_global)
            self.copy[self._line_slice(old_global_line)] += self._lines[line]
            self.stats.puts += 1
        if self.use_mark and not self.mark.is_marked(global_line):
            # First touch: the copy line is known-zero; zero-fill locally.
            self._lines[line] = 0.0
            self.mark.mark(global_line)
            self.stats.first_touches += 1
        else:
            if self.use_mark:
                # Touched before: our partial sum lives in the copy; fetch
                # it so later accumulation continues from it.
                self._lines[line] = self.copy[self._line_slice(global_line)]
                self.copy[self._line_slice(global_line)] = 0.0
            else:
                # RMA mode: copies were zero-initialised in main memory;
                # the fetch still happens (that is the waste Bit-Map cuts).
                self._lines[line] = self.copy[self._line_slice(global_line)]
                self.copy[self._line_slice(global_line)] = 0.0
                self.stats.first_touches += 0
            self.stats.gets += 1
        self._tags[line] = tag

    def flush(self) -> None:
        """Write every resident line back to the copy (end of kernel)."""
        for line in range(self.amap.n_lines):
            tag = self._tags[line]
            if tag < 0:
                continue
            global_pkg = self.amap.compose(int(tag), line)
            global_line = self.amap.line_address(global_pkg)
            self.copy[self._line_slice(global_line)] += self._lines[line]
            self.stats.puts += 1
            self._tags[line] = -1
            self._lines[line] = 0.0


def replay_write_trace(
    package_trace: np.ndarray,
    contributions: np.ndarray,
    copy: np.ndarray,
    params: ChipParams = DEFAULT_PARAMS,
    use_mark: bool = True,
) -> tuple[LineMarkBitmap, WriteTraceStats]:
    """Reconstruct a :class:`DeferredUpdateCache` run from its write trace.

    ``package_trace[k]`` is the k-th ``accumulate_package`` target and
    ``contributions[k]`` its (4, 3) float32 argument; ``copy`` is filled
    in place with what the sequential cache would leave behind after
    ``flush()``, and the returned bitmap/stats match its ``mark`` and
    counters exactly.

    Bit-identity argument (DESIGN.md §13): every eviction adds the LDM
    line into a copy range that was zeroed when the line was fetched (or
    never touched), so the round trip through the cache preserves each
    partial sum exactly — the final copy value of every element is the
    strict left-to-right float32 sum of its contributions in trace
    order.  ``np.add.at`` is unbuffered and applies updates in index
    order, which is that same sequence; the counters come from
    :func:`analyze_write_trace`, whose identities are property-tested
    against the sequential class.
    """
    trace = np.asarray(package_trace, dtype=np.int64)
    n_lines_global = copy.shape[0] // params.particles_per_line
    mark = LineMarkBitmap(max(n_lines_global, 1))
    if len(trace):
        packages = copy.reshape(-1, CLUSTER_SIZE, 3)
        np.add.at(packages, trace, contributions)
        amap = AddressMap(params.index_bits, params.offset_bits)
        if use_mark:
            for line in np.unique(trace >> amap.offset_bits):
                mark.mark(int(line))
    stats = analyze_write_trace(trace, params, use_mark=use_mark)
    return mark, stats


def analyze_write_trace(
    package_trace: np.ndarray,
    params: ChipParams = DEFAULT_PARAMS,
    use_mark: bool = True,
) -> WriteTraceStats:
    """Vectorised accounting equivalent of the sequential cache.

    Identities (proven by property tests against the class above):

    * ``misses``        — direct-mapped miss count over the line trace;
    * ``first_touches`` — number of distinct lines (mark mode);
    * ``puts = misses`` — every miss eventually writes back exactly one
      dirty line (cold misses write back at the final flush instead);
    * ``gets = misses - first_touches`` with marks, ``misses`` without.
    """
    trace = np.asarray(package_trace, dtype=np.int64)
    amap = AddressMap(params.index_bits, params.offset_bits)
    if len(trace) == 0:
        line_bytes = params.particles_per_line * params.force_bytes_per_particle
        return WriteTraceStats(0, 0, 0, 0, 0, line_bytes)
    misses = count_misses_direct_mapped(trace, amap)
    lines = trace >> amap.offset_bits
    first_touches = len(np.unique(lines))
    gets = misses - first_touches if use_mark else misses
    line_bytes = params.particles_per_line * params.force_bytes_per_particle
    return WriteTraceStats(
        accesses=len(trace),
        misses=misses,
        first_touches=first_touches if use_mark else 0,
        puts=misses,
        gets=gets,
        line_bytes=line_bytes,
    )
