"""Cross-CPE force reduction (Algorithm 4) and the RMA init step.

After the parallel kernel, each CPE's force-copy array in main memory
holds partial sums.  The reduction gathers the 64 copies and adds them
into the master force array.  Cost structure:

* **RMA (unmarked)** — every copy must first be zero-*initialised* (the
  paper: "almost consumes the same time with calculation time") and the
  reduction reads *all* lines of *all* copies.
* **Bit-Map (marked)** — no initialisation; the reduction fetches only
  lines whose mark bit is set (Algorithm 4 line 4); the paper measures
  the surviving reduction at ~1.2 % of calculation time.

`reduce_copies` is the functional implementation (used by the fidelity
kernels and tests); `reduction_cost` / `init_cost` are the vectorised
accounting used by the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.bitmap import LineMarkBitmap
from repro.hw.dma import transfer_seconds
from repro.hw.params import ChipParams, DEFAULT_PARAMS
from repro.trace.events import (
    CAT_INIT,
    CAT_REDUCTION,
    DMA_TRACK,
    NULL_TRACER,
    NullTracer,
)


@dataclass
class ReductionCost:
    """DMA/compute accounting for one reduction (or init) pass."""

    lines_fetched: int
    bytes_moved: int
    seconds: float


def reduce_copies(
    copies: list[np.ndarray],
    marks: list[LineMarkBitmap] | None = None,
    particles_per_line: int = 32,
) -> np.ndarray:
    """Sum per-CPE force copies into one array (Algorithm 4).

    With ``marks``, unmarked lines are *asserted zero* and skipped — the
    functional guarantee Bit-Map relies on; a non-zero unmarked line would
    mean lost force contributions, so it raises.
    """
    if not copies:
        raise ValueError("need at least one copy to reduce")
    n_slots = copies[0].shape[0]
    for c in copies:
        if c.shape != copies[0].shape:
            raise ValueError("force copies must all have the same shape")
    total = np.zeros_like(copies[0], dtype=np.float64)
    if marks is None:
        for c in copies:
            total += c
        return total
    if len(marks) != len(copies):
        raise ValueError(f"{len(copies)} copies but {len(marks)} bitmaps")
    n_lines = (n_slots + particles_per_line - 1) // particles_per_line
    for cpe, (copy, mark) in enumerate(zip(copies, marks)):
        marked = set(int(l) for l in mark.marked_lines())
        for line in range(n_lines):
            sl = slice(line * particles_per_line, (line + 1) * particles_per_line)
            if line in marked:
                total[sl] += copy[sl]
            elif np.any(copy[sl] != 0.0):
                raise AssertionError(
                    f"CPE {cpe} line {line} is unmarked but non-zero: "
                    "Bit-Map invariant violated"
                )
    return total


def init_cost(
    n_cpes: int,
    n_slots: int,
    params: ChipParams = DEFAULT_PARAMS,
    tracer: NullTracer = NULL_TRACER,
) -> ReductionCost:
    """Cost of zero-initialising all per-CPE copies (RMA only).

    Streams zeros with large DMA blocks at peak bandwidth.
    """
    line_bytes = params.particles_per_line * params.force_bytes_per_particle
    n_lines = -(-n_slots // params.particles_per_line)
    total_lines = n_cpes * n_lines
    bytes_moved = total_lines * line_bytes
    # Initialisation streams whole copies: charge at the large-block rate.
    seconds = bytes_moved / (
        _stream_bandwidth(params) * 1e9
    )
    if tracer.enabled and seconds > 0.0:
        tracer.emit(
            "rma_init", CAT_INIT, DMA_TRACK, seconds * params.clock_hz,
            bytes=bytes_moved, lines=total_lines,
        )
    return ReductionCost(total_lines, bytes_moved, seconds)


def reduction_cost(
    lines_per_cpe: list[int] | np.ndarray,
    n_slots: int,
    params: ChipParams = DEFAULT_PARAMS,
    marked: bool = True,
    tracer: NullTracer = NULL_TRACER,
) -> ReductionCost:
    """Cost of the reduction pass.

    ``lines_per_cpe[c]`` is the number of lines CPE *c* touched (its mark
    population).  Marked mode fetches only those; unmarked mode fetches
    every line of every copy.  Both write the merged result back once.
    """
    line_bytes = params.particles_per_line * params.force_bytes_per_particle
    package_bytes = (
        params.particles_per_package * params.force_bytes_per_particle
    )
    n_lines = -(-n_slots // params.particles_per_line)
    n_cpes = len(lines_per_cpe)
    if marked:
        # Bit-Map reduction (Algorithm 4): fetch only marked lines, whole
        # lines at a time — the line structure exists because the deferred
        # cache created it.
        fetched = int(np.sum(lines_per_cpe))
        gather_bytes = fetched * line_bytes
        gather_seconds = fetched * transfer_seconds(line_bytes, params)
    else:
        # Prior-work RMA reduction: per-particle-package gathers over every
        # copy (no line structure, no skip information) — the meaningless
        # transmissions §3.3 eliminates.
        n_packages = -(-n_slots // params.particles_per_package)
        fetched = n_cpes * n_lines
        gather_bytes = n_cpes * n_packages * package_bytes
        gather_seconds = (
            n_cpes * n_packages * transfer_seconds(package_bytes, params)
        )
    writeback_bytes = n_lines * line_bytes
    writeback_seconds = writeback_bytes / (_stream_bandwidth(params) * 1e9)
    # The adds themselves run SIMD on the CPEs, distributed; charge one
    # vector op per 4 floats on the critical CPE's share.
    add_cycles = fetched * params.particles_per_line * 3 / 4 / max(n_cpes, 1)
    add_seconds = add_cycles * params.cycle_s
    if tracer.enabled:
        total = gather_seconds + writeback_seconds + add_seconds
        if total > 0.0:
            tracer.emit(
                "reduction", CAT_REDUCTION, DMA_TRACK,
                total * params.clock_hz,
                marked=marked, lines_fetched=fetched,
                bytes=gather_bytes + writeback_bytes,
            )
    return ReductionCost(
        lines_fetched=fetched,
        bytes_moved=gather_bytes + writeback_bytes,
        seconds=gather_seconds + writeback_seconds + add_seconds,
    )


def _stream_bandwidth(params: ChipParams) -> float:
    """Peak streaming bandwidth (GB/s): the last DMA-curve anchor."""
    return params.dma_curve[-1][1]
