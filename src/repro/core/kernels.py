"""CPE short-range kernels: every optimisation rung and baseline.

Each kernel produces *functionally correct* forces (validated against the
float64 reference engine) plus a modelled execution time built from the
same quantities the paper's optimizations act on: DMA transactions and
block sizes (through the Table 2 bandwidth curve), software-cache miss
counts (exact, trace-driven), init/reduction traffic, and compute cycles
(scalar vs. 4-lane SIMD; MPE vs. 64 CPEs).

Strategy rungs (the paper's Fig. 8 ladder):

* ``ORI``   — original GROMACS on the MPE only;
* ``PKG``   — CPE offload with particle-package aggregation (§3.1, Fig. 2);
* ``CACHE`` — + read cache (Fig. 3) and deferred-update write cache
  (Fig. 4), full pipelining;
* ``VEC``   — + SIMD vectorisation with the Fig. 6 layout and Fig. 7
  shuffles;
* ``MARK``  — + Bit-Map update marks (§3.3, Algorithms 3-4).

Comparison baselines (Fig. 9):

* ``RMA``   — the Cell-style redundant-memory approach: identical to
  ``VEC`` (per-CPE copies with full init + reduction);
* ``RCA``   — the SW_LAMMPS redundant-compute approach (Algorithm 2):
  full pair list, each side computes its own half, no write conflicts,
  2x the arithmetic;
* ``USTC``  — CPEs compute, the MPE serially collects and applies force
  updates [29].

The *fast path* computes forces vectorised and derives costs from
whole-trace analysis; the *fidelity path*
(`run_kernel_sequential`) walks the pair list cluster-by-cluster through
the actual cache/bitmap/SIMD objects.  Tests assert both paths agree on
forces, energies, and every cache counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.deferred import DeferredUpdateCache
from repro.core.fetch import sequential_stream_lines, uncached_read_seconds
from repro.core.packing import Layout, PackedParticles
from repro.core.reduction import init_cost, reduce_copies, reduction_cost
from repro.core.shuffle import transpose_4x3
from repro.core.stepcache import (
    NullStepCache,
    StepCache,
    partition_clusters,
    write_trace_for_range,
)
from repro.hw.dma import transfer_seconds
from repro.hw.params import ChipParams, DEFAULT_PARAMS
from repro.hw.simd import FloatV4, OpCounter
from repro.md.nonbonded import NonbondedParams, pair_force_energy
from repro.md.pairlist import CLUSTER_SIZE, ClusterPairList
from repro.md.system import ParticleSystem
from repro.parallel.pool import (
    ExecutionBackend,
    as_input,
    shared_backend,
    shared_inputs,
)
from repro.trace.events import (
    CAT_COMPUTE,
    CAT_DMA,
    CAT_KERNEL,
    DMA_TRACK,
    MPE_TRACK,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
)

FORCE_PACKAGE_BYTES = 48  # 4 particles x 3 float32
#: Rough FLOPs of one LJ+RF particle-pair interaction (distance, cutoff,
#: r^-6/r^-12, force scalar, 3-component FMA accumulate) — only used to
#: annotate compute trace events for roofline analysis, never for timing.
FLOPS_PER_PAIR = 30.0


@dataclass(frozen=True)
class KernelSpec:
    """Feature switches defining one strategy."""

    name: str
    use_cpes: bool = True  # False: the whole kernel runs on the MPE
    packaged: bool = True  # False: fine-grained gld/gst per field (naive port)
    read_cache: bool = False
    write_cache: bool = False  # deferred update
    simd: bool = False
    mark: bool = False  # Bit-Map
    full_list: bool = False  # RCA redundant compute
    mpe_collect: bool = False  # USTC
    rma_copies: bool = True  # per-CPE force copies (init + reduction)

    def __post_init__(self) -> None:
        if self.mark and not self.write_cache:
            raise ValueError("mark requires the deferred-update write cache")
        if self.full_list and self.write_cache:
            raise ValueError("RCA updates only i-forces; no write cache needed")
        if self.mpe_collect and self.rma_copies:
            raise ValueError("USTC streams to the MPE; no per-CPE copies")

    @property
    def pipelined(self) -> bool:
        """Full pipelining arrives with the cache version (§3.1: 'fetch
        eight particle packages in pipeline')."""
        return self.read_cache


ORI = KernelSpec("ORI", use_cpes=False, rma_copies=False)
#: The naive CPE port nobody ships: Algorithm 1 verbatim with fine-grained
#: gld/gst per field — the starting point §3.1's packaging fixes.
GLD = KernelSpec("GLD", packaged=False)
PKG = KernelSpec("PKG")
CACHE = KernelSpec("CACHE", read_cache=True, write_cache=True)
VEC = KernelSpec("VEC", read_cache=True, write_cache=True, simd=True)
MARK = KernelSpec("MARK", read_cache=True, write_cache=True, simd=True, mark=True)
RMA = KernelSpec("RMA", read_cache=True, write_cache=True, simd=True)
RCA = KernelSpec(
    "RCA", read_cache=True, full_list=True, rma_copies=False
)
USTC = KernelSpec(
    "USTC", read_cache=True, mpe_collect=True, rma_copies=False
)

ALL_SPECS: dict[str, KernelSpec] = {
    s.name: s for s in (ORI, GLD, PKG, CACHE, VEC, MARK, RMA, RCA, USTC)
}


@dataclass
class KernelResult:
    """One kernel execution: functional output + modelled performance."""

    name: str
    forces: np.ndarray  # original particle order, float64
    energy: float
    elapsed_seconds: float
    breakdown: dict[str, float] = field(default_factory=dict)
    stats: dict[str, float] = field(default_factory=dict)

    def speedup_over(self, other: "KernelResult") -> float:
        if self.elapsed_seconds <= 0:
            raise ValueError(f"non-positive elapsed time for {self.name}")
        if other.elapsed_seconds <= 0:
            raise ValueError(f"non-positive elapsed time for {other.name}")
        return other.elapsed_seconds / self.elapsed_seconds


#: Partitioning and the write-trace construction live in
#: `repro.core.stepcache` (they are pure list-topology functions the reuse
#: layer memoises); re-exported here for the established public API.
_write_trace_for_range = write_trace_for_range


def nblist_stream_seconds(
    pair_counts: np.ndarray, params: ChipParams
) -> float:
    """Modelled time for the CPEs to stream their neighbour-list slices.

    Each CPE DMAs its own contiguous run of 4 B cluster-pair entries —
    ``pair_counts[cpe] * 4`` bytes — in one large chunked transfer, so the
    achieved bandwidth is the Table 2 value *for that block size*, not the
    top-anchor peak.  (Charging every list at the 2048 B anchor made small
    systems' nblist DMA impossibly fast.)  Beyond the last anchor the
    curve is flat, so large systems still stream at peak.
    """
    return sum(
        transfer_seconds(int(c) * 4, params) for c in pair_counts if c > 0
    )


def _compute_cycles(spec: KernelSpec, n_cluster_pairs: int, params: ChipParams) -> float:
    """CPE cycles to evaluate ``n_cluster_pairs`` 4x4 tiles."""
    if spec.simd:
        # 4 SIMD bundles (one per i-lane) per tile.
        return n_cluster_pairs * 4.0 * params.cpe_simd_pair4_cycles
    return n_cluster_pairs * 16.0 * params.cpe_scalar_pair_cycles


def run_kernel(
    system: ParticleSystem,
    plist: ClusterPairList,
    nb_params: NonbondedParams,
    spec: KernelSpec,
    params: ChipParams = DEFAULT_PARAMS,
    check_ldm: bool = True,
    tracer: NullTracer = NULL_TRACER,
    cache: StepCache | NullStepCache | None = None,
    backend: ExecutionBackend | None = None,
    impl: str | None = None,
) -> KernelResult:
    """Execute one strategy (fast path): vectorised functional forces +
    trace-driven cost model.

    ``impl`` picks the functional force evaluation (scalar reference vs
    the panel-fed batch in `repro.core.vectorized`; None resolves
    ``REPRO_KERNEL``-or-scalar).  Results are bit-identical either way —
    the cost model never sees the difference.

    ``backend`` (DESIGN.md §9) fans the per-CPE trace analyses across
    worker processes by priming ``cache`` before the serial accumulation
    loops below; every primed value is bit-identical to what the loop
    would compute, so results do not depend on the backend.  ``None``
    keeps the historical fully-inline path — callers that want env-var
    selection resolve it themselves (`repro.parallel.pool.shared_backend`).

    ``check_ldm`` plans the kernel's LDM layout up front and raises
    :class:`~repro.hw.ldm.LdmOverflowError` when the configured cache
    geometry cannot fit the 64 KB scratchpad — the failure a real athread
    launch would hit.  Disable only for hypothetical-geometry studies.

    ``cache`` is the step-reuse layer (DESIGN.md §8): the functional half
    of the kernel (forces, packing, partitions, trace analysis) is routed
    through it, so rungs sharing a cache share one `compute_short_range`
    per (work list, positions) and all list-topology analysis.  With the
    default (a throwaway `StepCache`) every lookup is a miss and the
    result is bit-identical to the historical uncached path.

    With a recording ``tracer``, the kernel lays its modelled phases out
    on the timeline: per-CPE compute spans, the read/nblist/write DMA
    phases positioned per the pipeline-overlap model, init/reduction
    passes after the parallel region, and a whole-kernel span on the MPE
    track — so `repro.trace.analyze.measure_overlap` can recover the
    overlap fraction the scalar model assumed.
    """
    if check_ldm:
        from repro.core.ldm_plan import plan_kernel_ldm

        plan_kernel_ldm(spec, system.n_particles, params)
    if cache is None:
        cache = StepCache()
    work_list = cache.full_list(plist) if spec.full_list else plist
    packed = cache.packed(
        system, plist, Layout.SOA if spec.simd else Layout.AOS, params
    )

    sr = cache.short_range(
        system, work_list, nb_params, dtype=np.float32, impl=impl
    )
    m_pairs = work_list.n_cluster_pairs
    tile_pairs = 16 * m_pairs
    breakdown: dict[str, float] = {}
    stats: dict[str, float] = {
        "cluster_pairs": float(m_pairs),
        "tile_pairs": float(tile_pairs),
    }

    if not spec.use_cpes:
        mpe_seconds = tile_pairs * params.mpe_scalar_pair_cycles * params.cycle_s
        breakdown["compute"] = mpe_seconds
        if tracer.enabled:
            base = tracer.end_cycle()
            cycles = tile_pairs * params.mpe_scalar_pair_cycles
            tracer.span(
                "pair_compute", CAT_COMPUTE, MPE_TRACK, base, cycles,
                flops=tile_pairs * FLOPS_PER_PAIR,
            )
            tracer.span(
                f"kernel:{spec.name}", CAT_KERNEL, MPE_TRACK, base, cycles,
                cluster_pairs=m_pairs,
            )
        return KernelResult(
            name=spec.name,
            forces=sr.forces,
            energy=sr.energy,
            elapsed_seconds=mpe_seconds,
            breakdown=breakdown,
            stats=stats,
        )

    # ---- partition across CPEs -------------------------------------------
    parts = cache.partitions(work_list, params.n_cpes)
    if backend is not None and getattr(backend, "parallel", False):
        cache.prime_partition_stats(
            work_list,
            params.n_cpes,
            packed,
            params,
            read=spec.read_cache,
            write=spec.write_cache,
            use_mark=spec.mark,
            touched=not (spec.full_list or spec.mpe_collect),
            backend=backend,
        )
    pair_counts = cache.pair_counts(work_list, params.n_cpes)
    crit_pairs = int(pair_counts.max()) if len(pair_counts) else 0
    stats["imbalance"] = (
        float(crit_pairs / pair_counts.mean()) if pair_counts.mean() > 0 else 1.0
    )

    compute_seconds = _compute_cycles(spec, crit_pairs, params) * params.cycle_s
    breakdown["compute"] = compute_seconds

    # ---- read path ---------------------------------------------------------
    n_i_clusters_total = sum(hi - lo for lo, hi in parts)
    read_seconds = 0.0
    read_bytes = 0
    read_misses = 0
    read_accesses = 0
    if spec.read_cache:
        for lo, hi in parts:
            rstats = cache.read_trace_stats(work_list, lo, hi, packed, params)
            read_seconds += rstats.seconds
            read_bytes += rstats.bytes_fetched
            read_misses += rstats.misses
            read_accesses += rstats.accesses
        # i-cluster packages stream sequentially, one line per 8 packages.
        # Each CPE streams its *own* contiguous cluster range, so the line
        # count ceils per partition (a global ceil undercounted up to
        # n_cpes - 1 boundary lines).
        i_lines = sum(
            sequential_stream_lines(lo, hi, params.packages_per_line)
            for lo, hi in parts
        )
        read_seconds += i_lines * transfer_seconds(packed.data_line_bytes, params)
        read_bytes += i_lines * packed.data_line_bytes
        stats["read_miss_ratio"] = read_misses / max(read_accesses, 1)
        stats["i_lines"] = float(i_lines)
    elif not spec.packaged:
        # Naive port: every field of every j particle is a separate gld
        # (position x/y/z, type, charge, and the force read-modify-write
        # pair counted under writes below).  gld stalls cannot be hidden.
        n_gld = 16 * m_pairs * 5
        read_seconds += (
            n_gld / params.n_cpes * params.gld_latency_cycles * params.cycle_s
        )
        read_bytes += n_gld * 4
        stats["read_miss_ratio"] = 1.0
        stats["n_gld"] = float(n_gld)
    else:
        # Pkg rung: no LDM cache, so the inner loop re-fetches the j
        # package for every i-particle row of the 4x4 tile (the redundancy
        # the Fig. 3 read cache eliminates), plus the i packages.
        n_reads = CLUSTER_SIZE * m_pairs + n_i_clusters_total
        read_seconds += uncached_read_seconds(
            n_reads, params.package_bytes, params
        )
        read_bytes += n_reads * params.package_bytes
        stats["read_miss_ratio"] = 1.0
    breakdown["read_dma"] = read_seconds

    # Neighbour-list entries stream in per-CPE chunks through Table 2.
    nblist_bytes = m_pairs * 4
    nblist_seconds = nblist_stream_seconds(pair_counts, params)
    breakdown["nblist_dma"] = nblist_seconds

    # ---- write path ----------------------------------------------------------
    write_seconds = 0.0
    write_bytes = 0
    touched_lines_per_cpe: list[int] = []
    write_misses = 0
    write_accesses = 0
    if spec.write_cache:
        for lo, hi in parts:
            wstats = cache.write_trace_stats(
                work_list, lo, hi, params, use_mark=spec.mark
            )
            write_seconds += wstats.seconds(params)
            write_bytes += wstats.bytes_moved
            write_misses += wstats.misses
            write_accesses += wstats.accesses
            touched_lines_per_cpe.append(
                cache.touched_lines(work_list, lo, hi, params)
            )
        stats["write_miss_ratio"] = write_misses / max(write_accesses, 1)
    elif spec.full_list:
        # RCA: each CPE owns its i-clusters outright; accumulate FA in LDM
        # and write each i-force package once.  No conflicts, no copies.
        write_seconds = n_i_clusters_total * transfer_seconds(
            FORCE_PACKAGE_BYTES, params
        )
        write_bytes = n_i_clusters_total * FORCE_PACKAGE_BYTES
    elif spec.mpe_collect:
        # USTC: CPEs push per-tile j contributions to the MPE's queue.
        write_seconds = m_pairs * transfer_seconds(FORCE_PACKAGE_BYTES, params)
        write_bytes = m_pairs * FORCE_PACKAGE_BYTES
    elif not spec.packaged:
        # Naive port: per-pair force update = 3 gld + 3 gst per particle
        # pair (Algorithm 1 line 9), serialised on the issuing CPE.
        n_ops = 16 * m_pairs * 3
        write_seconds = (
            n_ops
            / params.n_cpes
            * (params.gld_latency_cycles + params.gst_latency_cycles)
            * params.cycle_s
        )
        write_bytes = n_ops * 2 * 4  # one 4 B load + one 4 B store per op
        for lo, hi in parts:
            touched_lines_per_cpe.append(
                cache.touched_lines(work_list, lo, hi, params)
            )
    else:
        # Pkg rung: without the deferred-update cache, each i-row of the
        # tile read-modify-writes the j force package in the CPE's main
        # memory copy (Algorithm 1 line 9), plus one i-force package per
        # i-cluster.
        n_writes = 2 * CLUSTER_SIZE * m_pairs + n_i_clusters_total
        write_seconds = n_writes * transfer_seconds(FORCE_PACKAGE_BYTES, params)
        write_bytes = n_writes * FORCE_PACKAGE_BYTES
        for lo, hi in parts:
            touched_lines_per_cpe.append(
                cache.touched_lines(work_list, lo, hi, params)
            )
    breakdown["write_dma"] = write_seconds
    # Byte totals per DMA phase: the resilience layer replays this
    # traffic through a fault-injecting DmaEngine to charge retry
    # overhead at the same Table 2 block sizes.
    stats["read_bytes"] = float(read_bytes)
    stats["write_bytes"] = float(write_bytes)
    stats["nblist_bytes"] = float(nblist_bytes)

    # ---- parallel region under the pipeline model ---------------------------
    dma_seconds = read_seconds + write_seconds + nblist_seconds
    if spec.pipelined:
        hidden = params.pipeline_overlap * min(compute_seconds, dma_seconds)
        parallel = compute_seconds + dma_seconds - hidden
    else:
        parallel = compute_seconds + dma_seconds
    stats["dma_seconds"] = dma_seconds

    # ---- timeline emission (parallel region) --------------------------------
    traced = tracer.enabled
    base = tracer.end_cycle() if traced else 0.0
    if traced:
        hz = params.clock_hz
        for cpe in range(len(parts)):
            pairs = int(pair_counts[cpe])
            if pairs == 0:
                continue
            tracer.span(
                "pair_compute", CAT_COMPUTE, cpe, base,
                _compute_cycles(spec, pairs, params),
                cluster_pairs=pairs, flops=16 * pairs * FLOPS_PER_PAIR,
            )
        # DMA phases end exactly at the close of the parallel region, so
        # the realised overlap equals the scalar the model assumed.
        t = base + (parallel - dma_seconds) * hz
        for phase, secs, nbytes in (
            ("read_dma", read_seconds, read_bytes),
            ("nblist_dma", nblist_seconds, nblist_bytes),
            ("write_dma", write_seconds, write_bytes),
        ):
            if secs > 0.0:
                tracer.span(
                    phase, CAT_DMA, DMA_TRACK, t, secs * hz, bytes=int(nbytes)
                )
                t += secs * hz
        # Serial passes (init/reduction) start after the parallel region
        # even when the DMA phases were fully hidden.
        lag = base + parallel * hz - tracer.cursor(DMA_TRACK)
        if lag > 0.0:
            tracer.advance(DMA_TRACK, lag)

    # ---- init + reduction -------------------------------------------------
    init_seconds = 0.0
    red_seconds = 0.0
    if spec.rma_copies:
        n_slots = work_list.n_slots
        if not spec.mark:
            init_seconds = init_cost(
                params.n_cpes, n_slots, params, tracer=tracer
            ).seconds
        red = reduction_cost(
            touched_lines_per_cpe
            if spec.mark
            else [0] * params.n_cpes,  # ignored when marked=False
            n_slots,
            params,
            marked=spec.mark,
            tracer=tracer,
        )
        red_seconds = red.seconds
    breakdown["init"] = init_seconds
    breakdown["reduction"] = red_seconds

    # ---- MPE side (USTC) ----------------------------------------------------
    mpe_seconds = 0.0
    if spec.mpe_collect:
        n_updates = 4 * m_pairs + 4 * n_i_clusters_total
        mpe_seconds = (
            n_updates * params.mpe_collect_cycles_per_particle * params.cycle_s
        )
        if traced and mpe_seconds > 0.0:
            tracer.span(
                "mpe_collect", CAT_COMPUTE, MPE_TRACK, base,
                mpe_seconds * params.clock_hz, n_updates=n_updates,
            )
    breakdown["mpe_collect"] = mpe_seconds

    # ---- combine ------------------------------------------------------------
    if spec.mpe_collect:
        # Producer-consumer pipeline: the slower side dominates.
        elapsed = max(parallel, mpe_seconds) + init_seconds + red_seconds
    else:
        elapsed = parallel + init_seconds + red_seconds
    if traced:
        tracer.span(
            f"kernel:{spec.name}", CAT_KERNEL, MPE_TRACK, base,
            elapsed * params.clock_hz,
            cluster_pairs=m_pairs, dma_seconds=dma_seconds,
            compute_seconds=compute_seconds,
        )
    return KernelResult(
        name=spec.name,
        forces=sr.forces,
        energy=sr.energy,
        elapsed_seconds=elapsed,
        breakdown=breakdown,
        stats=stats,
    )


def run_strategy_sweep(
    system: ParticleSystem,
    plist: ClusterPairList,
    nb_params: NonbondedParams,
    specs: list[KernelSpec | str],
    params: ChipParams = DEFAULT_PARAMS,
    check_ldm: bool = True,
    tracer: NullTracer = NULL_TRACER,
    cache: StepCache | NullStepCache | None = None,
    backend: str | ExecutionBackend | None = None,
    impl: str | None = None,
) -> dict[str, KernelResult]:
    """Evaluate many strategy rungs against ONE ``(system state, pair
    list)`` — the one-pass ablation API used by bench_fig8/fig9, the
    engine, and the CLI.

    All rungs share a single :class:`~repro.core.stepcache.StepCache`, so
    the functional forces are computed exactly once per work list (the
    half list, plus the mirrored full list iff an RCA-style spec is in the
    sweep), packing is built once per layout, and every trace analysis is
    memoised.  Results are bit-identical to calling :func:`run_kernel`
    individually per spec (test-enforced).

    ``specs`` accepts :class:`KernelSpec` objects or names from
    :data:`ALL_SPECS`; the returned dict is keyed by spec name in input
    order.  Pass an explicit ``cache`` to extend sharing across calls
    (e.g. across steps of a pair-list interval); the caller then owns
    invalidation.

    ``backend`` selects the execution backend for the per-CPE trace
    analyses (a name, an `ExecutionBackend`, or None for
    ``REPRO_BACKEND``-or-serial); the rungs themselves stay in-process so
    they keep sharing one `StepCache` — parallelism primes that cache,
    it never forks the physics.
    """
    if cache is None:
        cache = StepCache()
    backend = shared_backend(backend)
    resolved = [ALL_SPECS[s] if isinstance(s, str) else s for s in specs]
    return {
        spec.name: run_kernel(
            system,
            plist,
            nb_params,
            spec,
            params,
            check_ldm=check_ldm,
            tracer=tracer,
            cache=cache,
            backend=backend,
            impl=impl,
        )
        for spec in resolved
    }


# ---------------------------------------------------------------------------
# Fidelity path: sequential execution through the real cache objects.
# ---------------------------------------------------------------------------


@dataclass
class _FidelityTask:
    """One CPE's share of the fidelity walk.

    Picklable work unit for `repro.parallel.pool` backends: the large
    read-only inputs (positions, charges, LJ tables, ...) arrive as
    `SharedArray` handles under the pool backend and as plain arrays
    under the serial one — `as_input` resolves either.  The pair-list
    slice is partition-local (``i_starts`` rebased to the slice).
    """

    cpe: int
    lo: int
    hi: int
    pair_cj: np.ndarray  # this partition's j-cluster entries
    i_starts: np.ndarray  # local prefix: pairs of cluster lo+k at [k, k+1)
    positions: object
    charges: object
    types: object
    mols: object
    real: object
    c6_table: object
    c12_table: object
    box: np.ndarray
    half: bool
    spec: KernelSpec
    nb_params: NonbondedParams
    params: ChipParams
    padded_slots: int
    traced: bool
    impl: str = "scalar"


@dataclass
class _FidelityResult:
    """What one CPE's walk produces; merged in CPE-id order by the parent."""

    cpe: int
    copy: np.ndarray  # this CPE's force copy (padded_slots x 3 float32)
    mark: object | None  # LineMarkBitmap when the spec uses Bit-Map marks
    energy: float  # float64 partial, term order = walk order
    write_misses: int
    write_puts: int
    write_gets: int
    write_first_touches: int
    shuffles: int
    events: list[TraceEvent]


def _walk_fidelity_partition(task: _FidelityTask) -> _FidelityResult:
    """Walk one CPE partition through the real cache/bitmap/SIMD objects.

    Pure function of the task (no globals, no RNG), so serial and pool
    backends produce bit-identical results by construction.
    """
    spec, params, nb_params = task.spec, task.params, task.nb_params
    pos = as_input(task.positions)
    q = as_input(task.charges)
    types = as_input(task.types)
    mols = as_input(task.mols)
    real = as_input(task.real)
    c6_tab = as_input(task.c6_table)
    c12_tab = as_input(task.c12_table)
    box_arr = task.box

    copy = np.zeros((task.padded_slots, 3), dtype=np.float32)
    cache = DeferredUpdateCache(copy, params, use_mark=spec.mark)
    ops = OpCounter()
    energy = 0.0
    for k in range(task.hi - task.lo):
        ci = task.lo + k
        fi_acc = np.zeros((CLUSTER_SIZE, 3), dtype=np.float32)
        i_sl = slice(ci * CLUSTER_SIZE, (ci + 1) * CLUSTER_SIZE)
        for cj in task.pair_cj[task.i_starts[k] : task.i_starts[k + 1]]:
            cj = int(cj)
            j_sl = slice(cj * CLUSTER_SIZE, (cj + 1) * CLUSTER_SIZE)
            dr = pos[i_sl][:, None, :] - pos[j_sl][None, :, :]
            dr = dr - box_arr * np.round(dr / box_arr)
            r2 = np.sum(dr * dr, axis=-1)
            valid = (
                real[i_sl][:, None]
                & real[j_sl][None, :]
                & (mols[i_sl][:, None] != mols[j_sl][None, :])
            )
            if ci == cj:
                lane = np.arange(CLUSTER_SIZE)
                if task.half:
                    valid &= lane[:, None] < lane[None, :]
                else:
                    valid &= lane[:, None] != lane[None, :]
            qq = q[i_sl][:, None] * q[j_sl][None, :]
            c6 = c6_tab[types[i_sl][:, None], types[j_sl][None, :]]
            c12 = c12_tab[types[i_sl][:, None], types[j_sl][None, :]]
            f_scalar, e = pair_force_energy(
                r2, qq, c6, c12, nb_params, mask=valid
            )
            energy += float(e.sum(dtype=np.float64))
            fvec = f_scalar[..., None] * dr
            if spec.simd:
                # Exercise the Fig. 7 post-treatment on the i-side sums
                # (functionally identity; counts the 6 shuffles).
                fsum = fvec.sum(axis=1)
                fx = FloatV4(fsum[:, 0], ops)
                fy = FloatV4(fsum[:, 1], ops)
                fz = FloatV4(fsum[:, 2], ops)
                o0, o1, o2 = transpose_4x3(fx, fy, fz, ops)
                interleaved = np.concatenate([o0.lanes, o1.lanes, o2.lanes])
                fi_acc += interleaved.reshape(CLUSTER_SIZE, 3)
            else:
                fi_acc += fvec.sum(axis=1)
            if task.half:
                cache.accumulate_package(cj, -fvec.sum(axis=0))
        cache.accumulate_package(ci, fi_acc)
    cache.flush()

    events: list[TraceEvent] = []
    if task.traced:
        n_pairs = int(task.i_starts[-1])
        events.append(
            TraceEvent(
                "fidelity_walk",
                CAT_COMPUTE,
                task.cpe,
                0.0,
                _compute_cycles(spec, n_pairs, params),
                {"cluster_pairs": n_pairs},
            )
        )
    return _FidelityResult(
        cpe=task.cpe,
        copy=copy,
        mark=cache.mark if spec.mark else None,
        energy=energy,
        write_misses=cache.stats.misses,
        write_puts=cache.stats.puts,
        write_gets=cache.stats.gets,
        write_first_touches=cache.stats.first_touches,
        shuffles=ops.shuffle,
        events=events,
    )


def _walk_fidelity(task: _FidelityTask) -> _FidelityResult:
    """Backend entry point: dispatch one partition to the selected impl.

    Module-level (picklable) so pool workers can receive it; the impl
    name travels inside the task, keeping the map call uniform.
    """
    if task.impl == "vectorized":
        from repro.core.vectorized import walk_fidelity_partition_vectorized

        return walk_fidelity_partition_vectorized(task)
    return _walk_fidelity_partition(task)


def run_kernel_sequential(
    system: ParticleSystem,
    plist: ClusterPairList,
    nb_params: NonbondedParams,
    spec: KernelSpec,
    params: ChipParams = DEFAULT_PARAMS,
    n_cpes: int | None = None,
    tracer: NullTracer = NULL_TRACER,
    backend: str | ExecutionBackend | None = None,
    impl: str | None = None,
) -> KernelResult:
    """Walk the pair list cluster-by-cluster through the actual
    DeferredUpdateCache / bitmap / SIMD machinery.

    Slow (Python per cluster pair) — use small systems, or spread the
    per-CPE partitions over real cores with ``backend="pool"`` (this is
    the simulator's hottest Python loop and its partitions are fully
    independent).  Merging is deterministic — copies, marks, counters,
    energy partials, and trace events join in CPE-id order — so every
    output is bit-identical between backends (test-enforced).  ``backend``
    accepts a name, an `ExecutionBackend`, or None for
    ``REPRO_BACKEND``-or-serial.

    Only the cached strategies (CACHE/VEC/MARK/RMA) are meaningful here;
    others fall back to `run_kernel`.  Returns the same counters the fast
    path derives from trace analysis, letting tests pin the two together.

    ``impl`` selects the walk implementation (``"scalar"`` — the
    reference loop — or ``"vectorized"``, the batched replay in
    `repro.core.vectorized`; None resolves ``REPRO_KERNEL``-or-scalar).
    Both produce identical results; only speed differs.
    """
    from repro.core.vectorized import resolve_kernel_impl

    backend = shared_backend(backend)
    impl = resolve_kernel_impl(impl)
    if not (spec.write_cache and spec.use_cpes):
        return run_kernel(
            system, plist, nb_params, spec, params, tracer=tracer,
            backend=backend, impl=impl,
        )
    n_cpes = n_cpes or params.n_cpes
    work_list = plist.to_full() if spec.full_list else plist
    packed = PackedParticles.from_pairlist(system, plist, Layout.AOS, params)
    parts = partition_clusters(work_list, n_cpes)

    n_slots = work_list.n_slots
    ppl = params.particles_per_line
    padded_slots = -(-n_slots // ppl) * ppl
    box_arr = work_list.box.array.astype(np.float32)

    with shared_inputs(
        backend,
        positions=packed.positions,
        charges=packed.charges,
        types=packed.types.astype(np.int64),
        mols=packed.mols.astype(np.int64),
        real=work_list.real,
        c6_table=system.topology.c6_table.astype(np.float32),
        c12_table=system.topology.c12_table.astype(np.float32),
    ) as shared:
        tasks = []
        for cpe, (lo, hi) in enumerate(parts):
            s, e = int(work_list.i_starts[lo]), int(work_list.i_starts[hi])
            tasks.append(
                _FidelityTask(
                    cpe=cpe,
                    lo=lo,
                    hi=hi,
                    pair_cj=work_list.pair_cj[s:e],
                    i_starts=(
                        work_list.i_starts[lo : hi + 1] - s
                    ).astype(np.int64),
                    box=box_arr,
                    half=work_list.half,
                    spec=spec,
                    nb_params=nb_params,
                    params=params,
                    padded_slots=padded_slots,
                    traced=tracer.enabled,
                    impl=impl,
                    **shared,
                )
            )
        # One fidelity walk per CPE is the canonical small-task fan:
        # coalesce them into one submission per worker when the backend
        # supports batched IPC (results stay in task order either way).
        mapper = getattr(backend, "map_batched", backend.map)
        walks = mapper(_walk_fidelity, tasks)

    # ---- deterministic CPE-id-ordered merge --------------------------------
    copies = [w.copy for w in walks]
    marks = [w.mark for w in walks] if spec.mark else None
    energy = 0.0
    for w in walks:  # partials summed in CPE order
        energy += w.energy
    if tracer.enabled:
        for w in walks:
            tracer.absorb(w.events)
    total_sorted = reduce_copies(copies, marks, ppl)[:n_slots]
    forces = np.zeros((system.n_particles, 3), dtype=np.float64)
    work_list.scatter_add(forces, total_sorted)
    if not work_list.half:
        energy *= 0.5

    write_cache_stats = {
        "write_misses": float(sum(w.write_misses for w in walks)),
        "write_puts": float(sum(w.write_puts for w in walks)),
        "write_gets": float(sum(w.write_gets for w in walks)),
        "write_first_touches": float(
            sum(w.write_first_touches for w in walks)
        ),
        "simd_shuffles": float(sum(w.shuffles for w in walks)),
    }
    # Borrow the fast path's modelled timing/breakdown WITHOUT its tracer
    # instrumentation: passing the live tracer here used to re-emit every
    # kernel span on top of the fidelity events above, so Chrome traces
    # showed each kernel twice.
    fast = run_kernel(
        system, plist, nb_params, spec, params, backend=backend, impl=impl
    )
    return KernelResult(
        name=spec.name + "(seq)",
        forces=forces,
        energy=energy,
        elapsed_seconds=fast.elapsed_seconds,
        breakdown=fast.breakdown,
        stats={**fast.stats, **write_cache_stats},
    )
