"""Batched (vectorised) fidelity-walk and per-step force kernels.

The sequential fidelity walk (`repro.core.kernels._walk_fidelity_partition`)
executes one Python iteration per cluster pair — faithful to the CPE
program, but the iteration overhead caps the whole simulator at a few
steps per second.  This module provides the production implementation:
the same physics over all cluster pairs of a CPE partition in a handful
of numpy calls, with the DeferredUpdateCache / Bit-Map / SIMD-shuffle
*counters* replayed analytically so every observable output — forces,
energy partials, write-cache counters, shuffle counts, trace events —
is identical to the scalar walk (test-enforced, see
``tests/core/test_vectorized.py``).

Bit-identity rests on a small set of float32 accumulation identities
(DESIGN.md §13):

* ``np.add.at`` applies updates sequentially in operand order, so a
  grouped scatter-add reproduces a left-to-right ``+=`` loop exactly;
* a batched ``(M, 4, 4, 3).sum(axis=2)`` equals the per-pair
  ``(4, 4, 3).sum(axis=1)`` slice by slice (same pairwise reduction
  tree over the same elements);
* ``np.cumsum`` is a strict sequential accumulation, matching a scalar
  ``energy +=`` loop term for term;
* one ``np.bincount`` over concatenated i/j indices equals two
  sequential ``np.add.at`` calls (per-bin scan order is preserved).

Implementation selection: ``resolve_kernel_impl`` honours an explicit
argument first, then the ``REPRO_KERNEL`` environment variable, and
defaults to ``"scalar"`` — the reference stays the default; the fast
path is opt-in (engine/CLI: ``kernel_impl`` / ``--kernel``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np
from scipy.special import erfc

from repro.core.deferred import replay_write_trace
from repro.core.packing import package_views
from repro.core.shuffle import transpose_4x3
from repro.hw.simd import FloatV4, LANES, OpCounter
from repro.md.forces import (
    ShortRangeResult,
    compute_short_range,
    tile_indices,
    tile_validity,
)
from repro.md.nonbonded import (
    COULOMB_CONSTANT,
    NonbondedParams,
    lj_shift_energy,
    pair_force_energy,
)
from repro.md.pairlist import CLUSTER_SIZE, ClusterPairList
from repro.md.system import ParticleSystem
from repro.parallel.pool import as_input
from repro.trace.events import CAT_COMPUTE, TraceEvent

KERNEL_IMPLS = ("scalar", "vectorized")

#: Key under which per-list tile panels memoise on the pair list; popped
#: by ``ClusterPairList.invalidate`` alongside the gather memo.
PANEL_CACHE_ATTR = "_panel_cache"


def resolve_kernel_impl(impl: str | None = None) -> str:
    """Resolve a kernel implementation name.

    Explicit argument wins; otherwise the ``REPRO_KERNEL`` environment
    variable; otherwise ``"scalar"`` (the bit-identity reference).
    """
    if impl is None:
        impl = os.environ.get("REPRO_KERNEL", "").strip() or "scalar"
    impl = str(impl).lower()
    if impl not in KERNEL_IMPLS:
        raise ValueError(
            f"unknown kernel impl {impl!r}; expected one of {KERNEL_IMPLS}"
        )
    return impl


def _simd_shuffles_per_pair() -> int:
    """Shuffles the Fig. 7 post-treatment issues per cluster pair.

    Derived by probing one transpose rather than hard-coding 6, so the
    replayed counter tracks the shuffle implementation by construction.
    """
    probe = OpCounter()
    zero = np.zeros(LANES, dtype=np.float32)
    transpose_4x3(
        FloatV4(zero, probe), FloatV4(zero, probe), FloatV4(zero, probe), probe
    )
    return probe.shuffle


def walk_fidelity_partition_vectorized(task):
    """Batched equivalent of ``_walk_fidelity_partition``.

    Processes every cluster pair of the partition at once: struct-of-
    arrays package views feed one ``(n_pairs, 4, 4)`` interaction batch,
    forces scatter-add grouped by i-cluster and j-cluster, and the
    DeferredUpdateCache / bitmap / shuffle counters are replayed from
    the write trace (`repro.core.deferred.replay_write_trace`).  Returns
    the same ``_FidelityResult`` the scalar walk does, bit for bit.
    """
    from repro.core.kernels import _compute_cycles, _FidelityResult

    spec, params, nb_params = task.spec, task.params, task.nb_params
    pos = as_input(task.positions)
    q = as_input(task.charges)
    types = as_input(task.types)
    mols = as_input(task.mols)
    real = as_input(task.real)
    c6_tab = as_input(task.c6_table)
    c12_tab = as_input(task.c12_table)
    box_arr = task.box

    n_local = task.hi - task.lo
    counts = np.diff(np.asarray(task.i_starts, dtype=np.int64))
    cj = np.asarray(task.pair_cj, dtype=np.int64)
    m = int(cj.size)
    # Absolute i-cluster of each pair (pairs of one cluster are contiguous).
    ci_abs = task.lo + np.repeat(np.arange(n_local, dtype=np.int64), counts)
    pair_k = ci_abs - task.lo

    pos_cl, q_cl, t_cl, mol_cl, real_cl = package_views(
        pos, q, types, mols, real
    )

    # ---- one batched 4x4 tile evaluation over all pairs --------------------
    dr = pos_cl[ci_abs][:, :, None, :] - pos_cl[cj][:, None, :, :]
    dr = dr - box_arr * np.round(dr / box_arr)
    r2 = np.sum(dr * dr, axis=-1)
    valid = (
        real_cl[ci_abs][:, :, None]
        & real_cl[cj][:, None, :]
        & (mol_cl[ci_abs][:, :, None] != mol_cl[cj][:, None, :])
    )
    diag = ci_abs == cj
    if diag.any():
        lane = np.arange(CLUSTER_SIZE)
        if task.half:
            valid[diag] &= lane[:, None] < lane[None, :]
        else:
            valid[diag] &= lane[:, None] != lane[None, :]
    qq = q_cl[ci_abs][:, :, None] * q_cl[cj][:, None, :]
    ti = t_cl[ci_abs]
    tj = t_cl[cj]
    c6 = c6_tab[ti[:, :, None], tj[:, None, :]]
    c12 = c12_tab[ti[:, :, None], tj[:, None, :]]
    f_scalar, e = pair_force_energy(r2, qq, c6, c12, nb_params, mask=valid)

    # Energy: strict sequential accumulation in pair order (cumsum), each
    # term the same float64 tile sum the scalar walk adds.
    pair_e = e.sum(axis=(1, 2), dtype=np.float64)
    energy = float(np.cumsum(pair_e)[-1]) if pair_e.size else 0.0

    fvec = f_scalar[..., None] * dr
    # i-side per-pair package sums; the Fig. 7 transpose is a value
    # identity, so the SIMD and scalar variants accumulate the same f32.
    fsum_i = fvec.sum(axis=2)
    fi_acc = np.zeros((n_local, CLUSTER_SIZE, 3), dtype=np.float32)
    np.add.at(fi_acc, pair_k, fsum_i)
    shuffles = _simd_shuffles_per_pair() * m if spec.simd else 0

    # ---- write-trace replay ------------------------------------------------
    # The scalar walk accumulates, per i-cluster: each j package, then the
    # i package (always, even with zero pairs).  Rebuild that exact trace
    # and contribution sequence, then replay it through the cache model.
    i_vals = np.arange(task.lo, task.hi, dtype=np.int64)
    if task.half:
        insert_at = np.cumsum(counts)
        trace = np.insert(cj, insert_at, i_vals)
        contribs = np.insert(-fvec.sum(axis=1), insert_at, fi_acc, axis=0)
    else:
        trace = i_vals
        contribs = fi_acc
    copy = np.zeros((task.padded_slots, 3), dtype=np.float32)
    mark, wstats = replay_write_trace(
        trace, contribs, copy, params, use_mark=spec.mark
    )

    events: list[TraceEvent] = []
    if task.traced:
        n_pairs = int(task.i_starts[-1])
        events.append(
            TraceEvent(
                "fidelity_walk",
                CAT_COMPUTE,
                task.cpe,
                0.0,
                _compute_cycles(spec, n_pairs, params),
                {"cluster_pairs": n_pairs},
            )
        )
    return _FidelityResult(
        cpe=task.cpe,
        copy=copy,
        mark=mark if spec.mark else None,
        energy=energy,
        write_misses=wstats.misses,
        write_puts=wstats.puts,
        write_gets=wstats.gets,
        write_first_touches=wstats.first_touches,
        shuffles=shuffles,
        events=events,
    )


# ---------------------------------------------------------------------------
# Per-step short-range evaluation with cached tile panels.
# ---------------------------------------------------------------------------


@dataclass
class TilePanels:
    """Step-invariant tile quantities of one pair list.

    Everything here depends only on list topology and per-particle
    constants (charges, types, molecule ids), never on positions — so it
    is computed once per pair-list rebuild and reused every step until
    ``ClusterPairList.invalidate`` drops it.
    """

    ci: np.ndarray  # (M,) int64 i-cluster of each pair
    cj: np.ndarray  # (M,) int64 j-cluster of each pair
    valid: np.ndarray  # (M, 4, 4) bool interaction mask
    qq: np.ndarray  # (M, 4, 4) charge products, short-range dtype
    c6: np.ndarray  # (M, 4, 4) LJ C6, short-range dtype
    c12: np.ndarray  # (M, 4, 4) LJ C12, short-range dtype
    scatter_idx: np.ndarray  # flat slot targets: [i-slots] (+ [j-slots] if half)


def tile_panels(
    system: ParticleSystem,
    plist: ClusterPairList,
    dtype: type = np.float64,
    reuse: bool = True,
) -> TilePanels:
    """Build (or fetch memoised) step-invariant panels for ``plist``.

    The panel arrays are produced by the exact expressions
    `compute_short_range` evaluates per step, so a panel-fed evaluation
    sees identical operands.  ``reuse=False`` (the step-reuse ablation)
    rebuilds them on every call and stores nothing.
    """
    key = np.dtype(dtype).str
    cache = plist.__dict__.setdefault(PANEL_CACHE_ATTR, {}) if reuse else None
    if cache is not None and key in cache:
        return cache[key]
    ci = plist.pair_ci.astype(np.int64)
    cj = plist.pair_cj.astype(np.int64)
    slot_i, slot_j = tile_indices(ci, cj)
    if reuse:
        q = plist.gather_cached(system.charges, dtype=dtype)
        types = plist.gather_cached(
            system.topology.type_ids, fill=0, dtype=np.int64
        )
        mol = plist.gather_cached(
            system.topology.mol_ids, fill=-1, dtype=np.int64
        )
    else:
        q = plist.gather(system.charges).astype(dtype)
        types = plist.gather(system.topology.type_ids, fill=0).astype(np.int64)
        mol = plist.gather(system.topology.mol_ids, fill=-1).astype(np.int64)
    valid = tile_validity(plist, ci, cj, slot_i, slot_j, mol)
    qq = q[slot_i] * q[slot_j]
    ti, tj = types[slot_i], types[slot_j]
    c6_tab = system.topology.c6_table.astype(dtype)
    c12_tab = system.topology.c12_table.astype(dtype)
    flat_i = slot_i.reshape(-1)
    flat_j = slot_j.reshape(-1)
    panels = TilePanels(
        ci=ci,
        cj=cj,
        valid=valid,
        qq=qq,
        c6=c6_tab[ti, tj],
        c12=c12_tab[ti, tj],
        scatter_idx=(
            np.concatenate([flat_i, flat_j]) if plist.half else flat_i
        ),
    )
    if cache is not None:
        cache[key] = panels
    return panels


#: Prune radius margin (nm) beyond ``r_cut`` for the compacted lane
#: set.  Wider keeps more lanes (slower steps, fewer refreshes);
#: narrower keeps fewer lanes but trips the drift guard sooner.  At
#: water-at-300K drift rates (~0.01 nm/step worst particle) 0.20 nm
#: lets one panel survive a whole ``nstlist`` cycle, which profiles
#: faster end to end than a tighter set re-anchored every few steps.
#: The keep radius may exceed ``r_list``: correctness only needs the
#: kept set to be a superset of every lane that can come inside
#: ``r_cut`` before the guard re-anchors.
PRUNE_MARGIN = 0.20


@dataclass
class LaneStatics:
    """Topology-only flat lane view of one pair list (cached).

    One entry per *topology-valid* tile lane, flattened: slot indices,
    pair constants and the lane's position inside the full ``(M, 4, 4)``
    tile block (for scattering back into full-lane-shape accumulators).
    Nothing here depends on positions, so the drift-guard refresh reuses
    it wholesale and only redoes the positional scan.  The trailing
    arrays are refresh scratch, sized to the valid-lane count so a
    re-anchor allocates nothing large.
    """

    lane_pos: np.ndarray  # (V,) flat full-lane index of each valid lane
    vi: np.ndarray  # (V,) i-slot of each valid lane
    vj: np.ndarray  # (V,) j-slot
    qq: np.ndarray  # (V,) charge products, short-range dtype
    c6: np.ndarray
    c12: np.ndarray
    n_lanes: int  # full lane count, M * 16
    gx: np.ndarray = field(repr=False, default=None)
    gy: np.ndarray = field(repr=False, default=None)
    gz: np.ndarray = field(repr=False, default=None)
    gt: np.ndarray = field(repr=False, default=None)
    sx: np.ndarray = field(repr=False, default=None)
    sy: np.ndarray = field(repr=False, default=None)
    sz: np.ndarray = field(repr=False, default=None)
    r2: np.ndarray = field(repr=False, default=None)


def lane_statics(
    system: ParticleSystem,
    plist: ClusterPairList,
    dtype: type = np.float64,
    reuse: bool = True,
) -> LaneStatics:
    """Build (or fetch memoised) the flat valid-lane topology view.

    The pair constants are the exact values the reference tile panels
    carry — gathering to valid lanes before the product is elementwise,
    so operands are bit-identical either way.
    """
    key = ("lanestatic", np.dtype(dtype).str)
    cache = plist.__dict__.setdefault(PANEL_CACHE_ATTR, {}) if reuse else None
    if cache is not None and key in cache:
        return cache[key]
    ci = plist.pair_ci.astype(np.int64)
    cj = plist.pair_cj.astype(np.int64)
    slot_i, slot_j = tile_indices(ci, cj)
    if reuse:
        q = plist.gather_cached(system.charges, dtype=dtype)
        types = plist.gather_cached(
            system.topology.type_ids, fill=0, dtype=np.int64
        )
        mol = plist.gather_cached(
            system.topology.mol_ids, fill=-1, dtype=np.int64
        )
    else:
        q = plist.gather(system.charges).astype(dtype)
        types = plist.gather(system.topology.type_ids, fill=0).astype(np.int64)
        mol = plist.gather(system.topology.mol_ids, fill=-1).astype(np.int64)
    valid = tile_validity(plist, ci, cj, slot_i, slot_j, mol)
    lane_pos = np.flatnonzero(valid.reshape(-1))
    vi = np.ascontiguousarray(slot_i.reshape(-1)[lane_pos])
    vj = np.ascontiguousarray(slot_j.reshape(-1)[lane_pos])
    ti, tj = types[vi], types[vj]
    c6_tab = system.topology.c6_table.astype(dtype)
    c12_tab = system.topology.c12_table.astype(dtype)
    n_valid = len(lane_pos)
    ls = LaneStatics(
        lane_pos=lane_pos,
        vi=vi,
        vj=vj,
        qq=q[vi] * q[vj],
        c6=c6_tab[ti, tj],
        c12=c12_tab[ti, tj],
        n_lanes=valid.size,
        gx=np.empty(n_valid, dtype=dtype),
        gy=np.empty(n_valid, dtype=dtype),
        gz=np.empty(n_valid, dtype=dtype),
        gt=np.empty(n_valid, dtype=dtype),
        sx=np.empty(n_valid, dtype=dtype),
        sy=np.empty(n_valid, dtype=dtype),
        sz=np.empty(n_valid, dtype=dtype),
        r2=np.empty(n_valid, dtype=dtype),
    )
    if cache is not None:
        cache[key] = ls
    return ls


@dataclass
class CompactPanels:
    """Flattened, pruned lane data for the per-step fast path.

    Built once per pair-list rebuild (or after a drift-guard refresh):
    lanes are the tile entries that are topology-valid *and* within
    ``r_keep = r_cut + PRUNE_MARGIN`` of each other at
    ``anchor_pos``.  A pruned lane can only contribute an exact zero in
    the reference evaluation, so dropping it never changes a sum (the
    one invisible exception: a slot whose every contribution is a
    signed zero may flip zero sign, which ``==``/``np.array_equal``
    cannot observe and the integrator cannot propagate).

    ``shift_x/y/z`` hold ``box * round(dr/box)`` per kept lane when the
    static-shift precondition holds (``2*r_keep - r_cut`` under half
    the smallest box edge): while the drift guard passes, no kept
    lane's minimum image can reach half a box edge, so the rounding in
    the reference PBC fold is reproduced exactly by the stored shift.
    """

    #: Capacity-padded buffer pool: every kept-lane array lives in
    #: ``bufs`` at capacity ``cap`` and is consumed as a ``[:n_kept]``
    #: view, so a drift-guard re-anchor refills in place (a few
    #: ``np.take`` passes) instead of reallocating ~25 multi-MB arrays —
    #: large numpy frees go straight back to the OS, so reallocation
    #: costs a page-fault storm every refresh.
    bufs: dict = field(repr=False)
    cap: int
    n_kept: int
    e_full: np.ndarray = field(repr=False)
    w_full: np.ndarray = field(repr=False)
    f_sorted: np.ndarray = field(repr=False)
    anchor_pos: np.ndarray = field(repr=False)
    r_keep: float
    n_lanes: int
    half: bool
    static_shift: bool
    has_shift_e: bool

    # Named views for inspection and tests; the hot path slices ``bufs``
    # directly.
    @property
    def lane_sel(self) -> np.ndarray:
        return self.bufs["lane_sel"][: self.n_kept]

    @property
    def idx_i(self) -> np.ndarray:
        return self.bufs["sidx"][: self.n_kept]

    @property
    def idx_j(self) -> np.ndarray:
        return self.bufs["sidx"][self.n_kept : 2 * self.n_kept]

    @property
    def scatter_idx(self) -> np.ndarray:
        n = 2 * self.n_kept if self.half else self.n_kept
        return self.bufs["sidx"][:n]

    @property
    def qq(self) -> np.ndarray:
        return self.bufs["qq"][: self.n_kept]

    @property
    def c6(self) -> np.ndarray:
        return self.bufs["c6"][: self.n_kept]

    @property
    def c12(self) -> np.ndarray:
        return self.bufs["c12"][: self.n_kept]

    @property
    def shift_e(self) -> np.ndarray | None:
        return self.bufs["se"][: self.n_kept] if self.has_shift_e else None


_COMPACT_DTYPE_BUFS = (
    "qq",
    "c6",
    "c12",
    "fqq",
    "c6_6",
    "c12_12",
    "se",
    "sx",
    "sy",
    "sz",
    "dx",
    "dy",
    "dz",
    "dtmp",
    "r2b",
    "ftmp",
)


def _alloc_compact_bufs(half: bool, dtype, cap: int) -> dict:
    nw = 2 * cap if half else cap
    bufs = {
        "sidx": np.empty(2 * cap, dtype=np.int64),
        "lane_sel": np.empty(cap, dtype=np.int64),
        "wtmp": np.empty(cap, dtype=np.float64),
        "wb": [np.empty(nw, dtype=np.float64) for _ in range(3)],
        "tb": [np.empty(cap, dtype=dtype) for _ in range(10)],
        "mb": [np.empty(cap, dtype=bool) for _ in range(2)],
    }
    for name in _COMPACT_DTYPE_BUFS:
        bufs[name] = np.empty(cap, dtype=dtype)
    return bufs


def _refill_compact(
    prev: CompactPanels | None,
    system: ParticleSystem,
    plist: ClusterPairList,
    params: NonbondedParams,
    dtype: type,
    reuse: bool,
) -> CompactPanels:
    """Anchor (or re-anchor) compact panels at the current positions.

    When ``prev`` has enough capacity its buffers are refilled in place
    and the same object is returned; otherwise a fresh panel set is
    allocated with some slack for future refreshes.
    """
    dt = np.dtype(dtype).type
    ls = lane_statics(system, plist, dtype=dtype, reuse=reuse)
    pos = plist.current_positions(system).astype(dtype)
    pcols = np.ascontiguousarray(pos.T)
    box_arr = plist.box.array.astype(dtype)

    # Columnwise anchor scan: dr components, PBC shifts and r2 for every
    # valid lane, written into the cached scratch (same elementwise ops
    # as the reference fold, associated identically).
    for c, (gc, sc) in enumerate(
        zip((ls.gx, ls.gy, ls.gz), (ls.sx, ls.sy, ls.sz))
    ):
        np.take(pcols[c], ls.vi, out=gc, mode="clip")
        np.take(pcols[c], ls.vj, out=ls.gt, mode="clip")
        gc -= ls.gt
        np.divide(gc, box_arr[c], out=ls.gt)
        np.round(ls.gt, out=sc)
        sc *= box_arr[c]
        gc -= sc
    r2 = ls.r2
    np.multiply(ls.gx, ls.gx, out=r2)
    np.multiply(ls.gy, ls.gy, out=ls.gt)
    r2 += ls.gt
    np.multiply(ls.gz, ls.gz, out=ls.gt)
    r2 += ls.gt

    r_keep = params.r_cut + PRUNE_MARGIN
    sel = np.flatnonzero(r2 < dt(r_keep) ** 2)
    k = len(sel)

    # Static PBC shifts are only safe when the worst-case kept-lane
    # separation (anchor distance < r_keep plus guarded drift
    # < r_keep - r_cut) stays under half the smallest box edge.
    min_box = float(box_arr.min())
    static_shift = 2.0 * r_keep - params.r_cut < 0.5 * min_box - 1e-9

    if prev is not None and prev.cap >= k and prev.n_lanes == ls.n_lanes:
        cp = prev
        cp.n_kept = k
        cp.r_keep = r_keep
        cp.e_full.fill(0.0)
        cp.w_full.fill(0.0)
        np.copyto(cp.anchor_pos, pos)
    else:
        cap = k + (k >> 4) + 1024
        cp = CompactPanels(
            bufs=_alloc_compact_bufs(plist.half, dtype, cap),
            cap=cap,
            n_kept=k,
            e_full=np.zeros(ls.n_lanes, dtype=dtype),
            w_full=np.zeros(ls.n_lanes, dtype=np.float64),
            f_sorted=np.empty((plist.n_slots, 3), dtype=np.float64),
            anchor_pos=pos.copy(),
            r_keep=r_keep,
            n_lanes=ls.n_lanes,
            half=plist.half,
            static_shift=static_shift,
            has_shift_e=params.shift_lj,
        )
    cp.static_shift = static_shift
    cp.has_shift_e = params.shift_lj
    b = cp.bufs

    np.take(ls.lane_pos, sel, out=b["lane_sel"][:k])
    np.take(ls.vi, sel, out=b["sidx"][:k])
    np.take(ls.vj, sel, out=b["sidx"][k : 2 * k])
    np.take(ls.qq, sel, out=b["qq"][:k])
    np.take(ls.c6, sel, out=b["c6"][:k])
    np.take(ls.c12, sel, out=b["c12"][:k])
    qq, c6, c12 = b["qq"][:k], b["c6"][:k], b["c12"][:k]
    # Step-invariant products hoisted out of the pair kernel (products
    # commute bit for bit with the reference's in-kernel order):
    # ``felec*qq``, ``6*c6``, ``12*c12`` and the LJ shift constant.
    np.multiply(qq, dt(COULOMB_CONSTANT), out=b["fqq"][:k])
    np.multiply(c6, dt(6.0), out=b["c6_6"][:k])
    np.multiply(c12, dt(12.0), out=b["c12_12"][:k])
    if params.shift_lj:
        # lj_shift_energy, in place: ((c12*inv6)*inv6) - (c6*inv6).
        inv6 = (1.0 / params.r_cut) ** 6
        se = b["se"][:k]
        np.multiply(c12, inv6, out=se)
        se *= inv6
        t = b["tb"][0][:k]
        np.multiply(c6, inv6, out=t)
        se -= t
    if static_shift:
        np.take(ls.sx, sel, out=b["sx"][:k])
        np.take(ls.sy, sel, out=b["sy"][:k])
        np.take(ls.sz, sel, out=b["sz"][:k])
    return cp


def compact_panels(
    system: ParticleSystem,
    plist: ClusterPairList,
    params: NonbondedParams,
    dtype: type = np.float64,
    reuse: bool = True,
) -> CompactPanels:
    """Build (or fetch memoised) pruned lane panels for ``plist``.

    The memo lives next to the tile panels on the pair list (popped by
    ``invalidate``); the key includes dtype and the nonbonded
    parameters, so different cutoffs never share a lane set.  The
    positional scan runs columnwise over the cached valid-lane view —
    no ``(M, 4, 4, 3)`` broadcast — so a drift-guard re-anchor costs a
    few streaming passes, not a full tile rebuild.
    """
    key = ("compact", np.dtype(dtype).str, params)
    cache = plist.__dict__.setdefault(PANEL_CACHE_ATTR, {}) if reuse else None
    if cache is not None and key in cache:
        return cache[key]
    cp = _refill_compact(None, system, plist, params, dtype, reuse)
    if cache is not None:
        cache[key] = cp
    return cp


def _pair_terms_compact(
    r2: np.ndarray, cp: CompactPanels, params: NonbondedParams
) -> tuple[np.ndarray, np.ndarray]:
    """`pair_force_energy` over pruned lanes, fused in place.

    Performs the same floating-point operations in the same association
    order as :func:`repro.md.nonbonded.pair_force_energy` with an
    all-true mask (compact lanes are topology-valid by construction),
    with the step-invariant factors (``felec*qq``, ``6*c6``, ``12*c12``,
    the LJ shift) taken pre-multiplied from the panels — products that
    commute bit-for-bit.  Outputs are bitwise equal to the reference
    lane for lane (test-enforced on random inputs for every coulomb
    mode).
    """
    dt = r2.dtype.type
    k = cp.n_kept
    b = cp.bufs
    mask, nmask = (m[:k] for m in b["mb"])
    safe_r2, inv_r2, inv_r6, e_lj, f_lj, t6, t7, t8, t9, t10 = (
        a[:k] for a in b["tb"]
    )
    c6, c12 = b["c6"][:k], b["c12"][:k]
    fqq, c6_6, c12_12 = b["fqq"][:k], b["c6_6"][:k], b["c12_12"][:k]

    np.less(r2, dt(params.r_cut) ** 2, out=mask)
    np.greater(r2, dt(0.0), out=nmask)
    mask &= nmask
    np.logical_not(mask, out=nmask)
    np.copyto(safe_r2, r2)
    safe_r2[nmask] = dt(1.0)
    np.divide(dt(1.0), safe_r2, out=inv_r2)
    np.multiply(inv_r2, inv_r2, out=inv_r6)
    inv_r6 *= inv_r2

    np.multiply(c12, inv_r6, out=e_lj)
    e_lj *= inv_r6
    np.multiply(c6, inv_r6, out=t6)
    e_lj -= t6
    if cp.has_shift_e:
        e_lj -= b["se"][:k]
    np.multiply(c12_12, inv_r6, out=f_lj)
    f_lj *= inv_r6
    np.multiply(c6_6, inv_r6, out=t6)
    f_lj -= t6
    f_lj *= inv_r2

    if params.coulomb_mode == "none":
        # The reference adds all-zero coulomb arrays; ``x + 0.0`` is the
        # same elementwise operation.
        e_lj += dt(0.0)
        f_lj += dt(0.0)
    else:
        inv_r = t6
        np.sqrt(inv_r2, out=inv_r)
        if params.coulomb_mode == "cut":
            np.multiply(fqq, inv_r, out=t7)  # e_coul
            np.multiply(t7, inv_r2, out=t8)  # f_coul
        elif params.coulomb_mode == "rf":
            krf = dt(params.krf)
            np.multiply(krf, safe_r2, out=t7)
            np.add(inv_r, t7, out=t7)
            t7 -= dt(params.crf)
            np.multiply(fqq, t7, out=t7)  # e_coul
            np.multiply(inv_r, inv_r2, out=t8)
            t8 -= dt(2.0) * krf
            np.multiply(fqq, t8, out=t8)  # f_coul
        else:  # ewald real space
            r = t8
            np.sqrt(safe_r2, out=r)
            r *= dt(params.ewald_beta)
            erfc_br = erfc(r, out=t9)
            np.multiply(r, r, out=t10)
            np.negative(t10, out=t10)
            gauss = np.exp(t10, out=t10)
            np.multiply(fqq, erfc_br, out=t7)
            t7 *= inv_r  # e_coul
            np.multiply(erfc_br, inv_r, out=t8)  # r is dead; reuse t8
            gauss *= dt(2.0 * params.ewald_beta / np.sqrt(np.pi))
            t8 += gauss
            np.multiply(fqq, t8, out=t8)
            t8 *= inv_r2  # f_coul
        f_lj += t8
        e_lj += t7
    f_lj[nmask] = dt(0.0)
    e_lj[nmask] = dt(0.0)
    return f_lj, e_lj


def _drift2_max(
    pos: np.ndarray, anchor: np.ndarray, box_arr: np.ndarray
) -> float:
    """Largest squared particle displacement since the panel anchor.

    Displacements are minimum-imaged so a particle wrapping across the
    periodic boundary does not read as a box-length jump.
    """
    if not len(pos):
        return 0.0
    delta = pos - anchor
    delta -= box_arr * np.round(delta / box_arr)
    return float(np.einsum("ij,ij->i", delta, delta).max())


def compute_short_range_vectorized(
    system: ParticleSystem,
    plist: ClusterPairList,
    params: NonbondedParams,
    dtype: type = np.float64,
    chunk_pairs: int = 65536,
    reuse_gathers: bool = True,
) -> ShortRangeResult:
    """Pruned-lane `compute_short_range` with memoised compact panels.

    Once per rebuild the 4x4 tiles are flattened to the lanes that are
    topology-valid and within ``r_keep`` (:func:`compact_panels`); per
    step only gathers, one PBC fold, ``r2``, the pair kernel and the
    force scatter run — roughly ``0.4x`` the lanes and a third of the
    numpy passes of the full tile batch.  A drift guard re-anchors the
    panels whenever a particle has moved far enough that a pruned lane
    could re-enter the cutoff (or a static shift could flip), so results
    stay exact for arbitrary motion, not just small MD steps.

    The force scatter uses one ``np.bincount`` per component over the
    concatenated i/j slot indices, which reproduces the reference's two
    sequential ``np.add.at`` passes bit for bit (per-slot accumulation
    order is preserved: surviving i contributions precede surviving j
    contributions; dropped lanes contributed exact zeros).  Energy and
    virial terms are scattered back into full-lane-shape zero panels
    before the float64 sums so the pairwise reduction tree matches the
    reference's exactly.

    Lists larger than one chunk fall back to the chunked reference —
    chunk boundaries interleave the accumulation grouping, and no bench
    system comes close to ``chunk_pairs`` pairs.
    """
    m_total = plist.n_cluster_pairs
    if m_total > chunk_pairs:
        return compute_short_range(
            system,
            plist,
            params,
            dtype=dtype,
            chunk_pairs=chunk_pairs,
            reuse_gathers=reuse_gathers,
        )
    cp = compact_panels(system, plist, params, dtype=dtype, reuse=reuse_gathers)
    pos = plist.current_positions(system).astype(dtype)
    box_arr = plist.box.array.astype(dtype)

    margin = cp.r_keep - params.r_cut
    if 4.0 * _drift2_max(pos, cp.anchor_pos, box_arr) > margin * margin:
        # A pruned lane may have drifted inside the cutoff (or a static
        # shift may no longer round the same way): re-anchor the panels
        # at the current positions.
        # Refill in place: the capacity-padded buffers absorb the new
        # lane set without reallocating (page-fault storms otherwise
        # dominate the refresh cost).
        cp = _refill_compact(cp, system, plist, params, dtype, reuse_gathers)
        if reuse_gathers:
            plist.__dict__.setdefault(PANEL_CACHE_ATTR, {})[
                ("compact", np.dtype(dtype).str, params)
            ] = cp

    k = cp.n_kept
    b = cp.bufs
    idx_i = b["sidx"][:k]
    idx_j = b["sidx"][k : 2 * k]
    lane_sel = b["lane_sel"][:k]
    dtmp = b["dtmp"][:k]
    pcols = np.ascontiguousarray(pos.T)
    d = (b["dx"][:k], b["dy"][:k], b["dz"][:k])
    shifts = (b["sx"][:k], b["sy"][:k], b["sz"][:k])
    for c in range(3):
        dc = d[c]
        np.take(pcols[c], idx_i, out=dc, mode="clip")
        np.take(pcols[c], idx_j, out=dtmp, mode="clip")
        dc -= dtmp
        if cp.static_shift:
            dc -= shifts[c]
        else:
            np.divide(dc, box_arr[c], out=dtmp)
            np.round(dtmp, out=dtmp)
            dtmp *= box_arr[c]
            dc -= dtmp
    r2 = b["r2b"][:k]
    np.multiply(d[0], d[0], out=r2)
    np.multiply(d[1], d[1], out=dtmp)
    r2 += dtmp
    np.multiply(d[2], d[2], out=dtmp)
    r2 += dtmp

    f_scalar, e = _pair_terms_compact(r2, cp, params)
    n_in_cutoff = int(np.count_nonzero(f_scalar))
    cp.e_full[lane_sel] = e
    energy = 0.0 + float(cp.e_full.sum(dtype=np.float64))
    w = b["wtmp"][:k]
    w[...] = f_scalar
    w *= r2
    cp.w_full[lane_sel] = w
    virial = 0.0 + float(cp.w_full.sum())

    n_weights = 2 * k if plist.half else k
    scatter_idx = b["sidx"][:n_weights]
    ftmp = b["ftmp"][:k]
    f_sorted = cp.f_sorted
    for c in range(3):
        wb = b["wb"][c][:n_weights]
        np.multiply(f_scalar, d[c], out=ftmp)
        wb[:k] = ftmp
        if plist.half:
            np.negative(wb[:k], out=wb[k:])
        f_sorted[:, c] = np.bincount(
            scatter_idx, weights=wb, minlength=plist.n_slots
        )

    forces = np.zeros((system.n_particles, 3), dtype=np.float64)
    plist.scatter_add(forces, f_sorted)
    if not plist.half:
        energy *= 0.5
        virial *= 0.5
    return ShortRangeResult(
        forces=forces,
        energy=energy,
        n_pairs_in_cutoff=n_in_cutoff,
        virial=virial,
    )


def compute_short_range_impl(
    system: ParticleSystem,
    plist: ClusterPairList,
    params: NonbondedParams,
    dtype: type = np.float64,
    chunk_pairs: int = 65536,
    reuse_gathers: bool = True,
    impl: str | None = None,
) -> ShortRangeResult:
    """Dispatch a short-range evaluation by implementation name."""
    if resolve_kernel_impl(impl) == "vectorized":
        return compute_short_range_vectorized(
            system,
            plist,
            params,
            dtype=dtype,
            chunk_pairs=chunk_pairs,
            reuse_gathers=reuse_gathers,
        )
    return compute_short_range(
        system,
        plist,
        params,
        dtype=dtype,
        chunk_pairs=chunk_pairs,
        reuse_gathers=reuse_gathers,
    )
