"""Pairlist-interval compute reuse: the step cache (DESIGN.md §8).

GROMACS' Verlet scheme owes most of its speed to *reuse across the
pair-list interval*: the list is rebuilt every ``nstlist`` steps, and
everything derivable from list topology alone is computed once per
rebuild, not once per step (Páll et al. 2015, 2020).  This module gives
the reproduction the same lever, at two scopes:

* **list-state scope** (valid while positions are unchanged): the
  functional short-range result (`ShortRangeResult`) and the packed
  particle arrays (`PackedParticles`).  Every strategy kernel in
  `repro.core.kernels` computes identical physics — only the cost model
  differs — so a Fig. 8/9 ablation sweep over N rungs needs ONE
  `compute_short_range` evaluation per list state, not N.  Entries are
  keyed on a position fingerprint (BLAKE2 over the raw coordinate
  bytes), so any position change is a guaranteed miss — reuse can never
  alter the physics, which keeps the repo's bit-identity invariant.
* **list-topology scope** (valid until the list is rebuilt): per-CPE
  partitions, write traces, read/write trace-analysis statistics, and
  touched-line counts.  These depend only on the cluster-pair structure,
  never on positions, so steps ``2..nstlist`` of each interval skip
  trace analysis entirely.

Invalidation rules (enforced by the owners, tested in
``tests/core/test_stepcache.py``):

* `SWGromacsEngine` and `MdLoop` call :meth:`StepCache.invalidate` on
  every pair-list rebuild and on checkpoint :meth:`restore`;
* position-keyed entries store only the *latest* fingerprint per
  (pair list, dtype) so a long MD run cannot grow the cache;
* topology-keyed entries die with their pair-list object (the cache
  holds the only strong reference and drops it on invalidate).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.deferred import WriteTraceStats, analyze_write_trace
from repro.core.fetch import ReadTraceStats, analyze_read_trace
from repro.core.packing import Layout, PackedParticles
from repro.hw.cache import AddressMap
from repro.hw.params import ChipParams, DEFAULT_PARAMS
from repro.md.forces import ShortRangeResult, compute_short_range
from repro.md.nonbonded import NonbondedParams
from repro.md.pairlist import ClusterPairList
from repro.md.system import ParticleSystem


def partition_clusters(plist: ClusterPairList, n_cpes: int) -> list[tuple[int, int]]:
    """Split i-clusters into ``n_cpes`` contiguous ranges with ~equal
    cluster-pair counts (the paper partitions Algorithm 1's outer loop)."""
    if n_cpes < 1:
        raise ValueError(f"n_cpes must be >= 1: {n_cpes}")
    pair_prefix = plist.i_starts  # pairs before cluster c
    total = int(pair_prefix[-1])
    bounds = [0]
    for c in range(1, n_cpes):
        target = total * c // n_cpes
        bounds.append(int(np.searchsorted(pair_prefix, target)))
    bounds.append(plist.n_clusters)
    # Monotonicity can break on tiny systems; enforce it.
    for k in range(1, len(bounds)):
        bounds[k] = max(bounds[k], bounds[k - 1])
    return [(bounds[k], bounds[k + 1]) for k in range(n_cpes)]


def write_trace_for_range(
    plist: ClusterPairList, lo: int, hi: int
) -> np.ndarray:
    """Force-update trace for one CPE: per i-cluster, its j packages in
    pair order followed by the i package itself."""
    s, e = int(plist.i_starts[lo]), int(plist.i_starts[hi])
    js = plist.pair_cj[s:e].astype(np.int64)
    counts = (plist.i_starts[lo + 1 : hi + 1] - plist.i_starts[lo:hi]).astype(
        np.int64
    )
    insert_at = np.cumsum(counts)
    i_vals = np.arange(lo, hi, dtype=np.int64)
    return np.insert(js, insert_at, i_vals)


@dataclass(frozen=True)
class _PartitionStatsTask:
    """Picklable per-CPE trace-analysis work unit for the parallel backend.

    Carries the partition's trace *slices* (small, pair-list-sized) plus
    the scalar geometry facts the analyses need — never the particle
    arrays, which the analyses provably do not read.
    """

    lo: int
    hi: int
    params: ChipParams
    read_trace: np.ndarray | None  # j-package trace, None if read stats unneeded
    write_trace: np.ndarray | None  # force-update trace, None if unneeded
    data_line_bytes: int
    use_mark: bool
    want_write: bool
    want_touched: bool


def _partition_stats_job(
    task: _PartitionStatsTask,
) -> tuple[ReadTraceStats | None, WriteTraceStats | None, int | None]:
    """Run one CPE partition's trace analyses (pure; runs in any process)."""
    rstats = None
    if task.read_trace is not None:
        rstats = analyze_read_trace(
            task.read_trace, task.data_line_bytes, task.params
        )
    wstats = None
    if task.want_write:
        wstats = analyze_write_trace(
            task.write_trace, task.params, use_mark=task.use_mark
        )
    tlines = None
    if task.want_touched:
        amap = AddressMap(task.params.index_bits, task.params.offset_bits)
        tlines = int(len(np.unique(task.write_trace >> amap.offset_bits)))
    return rstats, wstats, tlines


def position_fingerprint(positions: np.ndarray) -> bytes:
    """Cheap, collision-safe fingerprint of a coordinate array.

    BLAKE2b over the raw bytes: ~1 GB/s, so negligible next to a force
    evaluation, and cryptographically collision-resistant — a stale hit
    on changed positions is not a realistic failure mode (unlike a
    sampled or checksum fingerprint).
    """
    arr = np.ascontiguousarray(positions)
    return hashlib.blake2b(arr.tobytes(), digest_size=16).digest()


@dataclass
class StepCacheStats:
    """Hit/miss counters, split by the expensive entry kinds."""

    sr_hits: int = 0
    sr_evals: int = 0  # actual compute_short_range executions
    packed_hits: int = 0
    packed_builds: int = 0
    topo_hits: int = 0
    topo_misses: int = 0
    invalidations: int = 0

    def as_dict(self) -> dict[str, int]:
        """JSON-able counter snapshot (pool workers report cache sharing
        back to the serving layer through this)."""
        return dict(vars(self))


class StepCache:
    """Compute-reuse layer shared by strategy sweeps and the MD drivers.

    One instance serves one driver (engine, reference loop, or one
    `run_strategy_sweep` call).  All getters are memoising wrappers
    around the underlying pure functions; with a fresh cache every call
    is a miss, so results are bit-identical to the uncached path by
    construction.
    """

    def __init__(self) -> None:
        #: Strong refs keep cached pair-list ids unique until invalidate().
        self._plists: dict[int, ClusterPairList] = {}
        #: Topology-keyed entries: (kind, plist id, ...) -> value.
        self._topo: dict[tuple, object] = {}
        #: Position-keyed entries: (kind, plist id, ...) -> (fingerprint,
        #: value).  Only the latest fingerprint is retained per key, so a
        #: stepping run replaces entries instead of accumulating them.
        self._state: dict[tuple, tuple[bytes, object]] = {}
        self.stats = StepCacheStats()

    # -- lifecycle ---------------------------------------------------------
    def invalidate(self) -> None:
        """Drop everything (pair-list rebuild or checkpoint restore)."""
        for plist in self._plists.values():
            plist.invalidate()  # the list's own gather memo dies with us
        self._plists.clear()
        self._topo.clear()
        self._state.clear()
        self.stats.invalidations += 1

    def _pin(self, plist: ClusterPairList) -> int:
        key = id(plist)
        self._plists[key] = plist
        return key

    # -- internal memo helpers ---------------------------------------------
    def _topo_get(self, key: tuple, compute):
        hit = self._topo.get(key)
        if hit is None:
            hit = compute()
            self._topo[key] = hit
            self.stats.topo_misses += 1
        else:
            self.stats.topo_hits += 1
        return hit

    # -- list-state scope (position-fingerprinted) -------------------------
    def short_range(
        self,
        system: ParticleSystem,
        plist: ClusterPairList,
        nb_params: NonbondedParams,
        dtype: type = np.float64,
        impl: str | None = None,
    ) -> ShortRangeResult:
        """One functional force evaluation per (pair list, dtype, positions).

        The returned object is shared between callers; nothing in the
        kernel/driver paths mutates it (tests enforce bit-identity of a
        shared vs. recomputed result).  ``impl`` picks the evaluation
        implementation (`repro.core.vectorized.resolve_kernel_impl`);
        both produce identical results, so the resolved name simply
        joins the key — a scalar and a vectorized caller share entries
        only when they resolve to the same impl, keeping cache hits
        trivially impl-consistent.
        """
        from repro.core.vectorized import (
            compute_short_range_impl,
            resolve_kernel_impl,
        )

        impl = resolve_kernel_impl(impl)
        key = ("sr", self._pin(plist), np.dtype(dtype).str, nb_params, impl)
        fp = position_fingerprint(system.positions)
        hit = self._state.get(key)
        if hit is not None and hit[0] == fp:
            self.stats.sr_hits += 1
            return hit[1]
        sr = compute_short_range_impl(
            system, plist, nb_params, dtype=dtype, impl=impl
        )
        self._state[key] = (fp, sr)
        self.stats.sr_evals += 1
        return sr

    def packed(
        self,
        system: ParticleSystem,
        plist: ClusterPairList,
        layout: Layout,
        params: ChipParams = DEFAULT_PARAMS,
    ) -> PackedParticles:
        """Packed particle arrays, shared across the rungs of a sweep."""
        key = ("packed", self._pin(plist), layout, params)
        fp = position_fingerprint(system.positions)
        hit = self._state.get(key)
        if hit is not None and hit[0] == fp:
            self.stats.packed_hits += 1
            return hit[1]
        packed = PackedParticles.from_pairlist(system, plist, layout, params)
        self._state[key] = (fp, packed)
        self.stats.packed_builds += 1
        return packed

    # -- list-topology scope -----------------------------------------------
    def full_list(self, plist: ClusterPairList) -> ClusterPairList:
        """Memoised ``plist.to_full()`` (the RCA mirrored list)."""
        key = ("full", self._pin(plist))
        return self._topo_get(key, plist.to_full)

    def partitions(
        self, plist: ClusterPairList, n_cpes: int
    ) -> list[tuple[int, int]]:
        key = ("parts", self._pin(plist), n_cpes)
        return self._topo_get(key, lambda: partition_clusters(plist, n_cpes))

    def pair_counts(self, plist: ClusterPairList, n_cpes: int) -> np.ndarray:
        """Cluster-pair count per CPE for the cached partition."""
        key = ("pair_counts", self._pin(plist), n_cpes)

        def compute():
            parts = self.partitions(plist, n_cpes)
            return np.array(
                [int(plist.i_starts[hi] - plist.i_starts[lo]) for lo, hi in parts]
            )

        return self._topo_get(key, compute)

    def write_trace(
        self, plist: ClusterPairList, lo: int, hi: int
    ) -> np.ndarray:
        key = ("wtrace", self._pin(plist), lo, hi)
        return self._topo_get(key, lambda: write_trace_for_range(plist, lo, hi))

    def write_trace_stats(
        self,
        plist: ClusterPairList,
        lo: int,
        hi: int,
        params: ChipParams,
        use_mark: bool,
    ) -> WriteTraceStats:
        key = ("wstats", self._pin(plist), lo, hi, params, use_mark)
        return self._topo_get(
            key,
            lambda: analyze_write_trace(
                self.write_trace(plist, lo, hi), params, use_mark=use_mark
            ),
        )

    def read_trace_stats(
        self,
        plist: ClusterPairList,
        lo: int,
        hi: int,
        packed: PackedParticles,
        params: ChipParams,
    ) -> ReadTraceStats:
        # The analysis uses only the trace, the cache geometry, and the
        # packed line size — all topology/params facts, never positions.
        key = ("rstats", self._pin(plist), lo, hi, params, packed.data_line_bytes)

        def compute():
            s, e = int(plist.i_starts[lo]), int(plist.i_starts[hi])
            trace = plist.pair_cj[s:e].astype(np.int64)
            return analyze_read_trace(trace, packed, params)

        return self._topo_get(key, compute)

    def touched_lines(
        self, plist: ClusterPairList, lo: int, hi: int, params: ChipParams
    ) -> int:
        """Distinct force-cache lines one CPE's write trace touches."""
        key = ("tlines", self._pin(plist), lo, hi, params.offset_bits)

        def compute():
            amap = AddressMap(params.index_bits, params.offset_bits)
            trace = self.write_trace(plist, lo, hi)
            return int(len(np.unique(trace >> amap.offset_bits)))

        return self._topo_get(key, compute)

    # -- parallel priming ---------------------------------------------------
    def prime_partition_stats(
        self,
        plist: ClusterPairList,
        n_cpes: int,
        packed: PackedParticles,
        params: ChipParams,
        *,
        read: bool,
        write: bool,
        use_mark: bool,
        touched: bool,
        backend,
    ) -> None:
        """Fan the per-CPE trace analyses across a parallel backend.

        Computes exactly the entries the subsequent `run_kernel` loop
        would compute serially — read-trace stats, write-trace stats,
        touched-line counts per partition — and stores them under the
        same `_topo` keys, so the serial getters then hit.  Values are
        bit-identical by construction: the workers run the same pure
        functions on the same trace slices, and results are stored in
        partition order.  Serial or already-cached entries make this a
        no-op; only missing analyses are shipped.

        (Counter note: primed entries count as `topo_misses` here and as
        `topo_hits` at the getter, so hit counts differ from a serial run
        even though every cached *value* is identical.)
        """
        if not getattr(backend, "parallel", False):
            return
        if not (read or write or touched):
            return
        parts = self.partitions(plist, n_cpes)
        pid = self._pin(plist)
        tasks: list[_PartitionStatsTask] = []
        keys: list[tuple[tuple | None, tuple | None, tuple | None]] = []
        for lo, hi in parts:
            rkey = ("rstats", pid, lo, hi, params, packed.data_line_bytes)
            wkey = ("wstats", pid, lo, hi, params, use_mark)
            tkey = ("tlines", pid, lo, hi, params.offset_bits)
            want_r = read and rkey not in self._topo
            want_w = write and wkey not in self._topo
            want_t = touched and tkey not in self._topo
            if not (want_r or want_w or want_t):
                continue
            rtrace = None
            if want_r:
                s, e = int(plist.i_starts[lo]), int(plist.i_starts[hi])
                rtrace = plist.pair_cj[s:e].astype(np.int64)
            wtrace = (
                self.write_trace(plist, lo, hi) if (want_w or want_t) else None
            )
            tasks.append(
                _PartitionStatsTask(
                    lo=lo,
                    hi=hi,
                    params=params,
                    read_trace=rtrace,
                    write_trace=wtrace,
                    data_line_bytes=packed.data_line_bytes,
                    use_mark=use_mark,
                    want_write=want_w,
                    want_touched=want_t,
                )
            )
            keys.append(
                (
                    rkey if want_r else None,
                    wkey if want_w else None,
                    tkey if want_t else None,
                )
            )
        if not tasks:
            return
        # Per-partition analyses are many small tasks: one coalesced
        # submission per worker (map_batched) instead of one pickle
        # round trip per partition.
        mapper = getattr(backend, "map_batched", backend.map)
        for (rkey, wkey, tkey), (rstats, wstats, tlines) in zip(
            keys, mapper(_partition_stats_job, tasks)
        ):
            for key, value in ((rkey, rstats), (wkey, wstats), (tkey, tlines)):
                if key is not None:
                    self._topo[key] = value
                    self.stats.topo_misses += 1


@dataclass
class _NullStats:
    """Placeholder so ``reuse off`` paths can still report counters."""

    sr_evals: int = 0
    sr_hits: int = 0
    invalidations: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


@dataclass
class NullStepCache:
    """Reuse-off stand-in: every getter recomputes (ablation baseline).

    Lets the drivers keep one code path while `step_reuse=False` disables
    all sharing — the bit-identity tests run both and compare.
    """

    stats: _NullStats = field(default_factory=_NullStats)

    def invalidate(self) -> None:
        self.stats.invalidations += 1

    def short_range(self, system, plist, nb_params, dtype=np.float64, impl=None):
        from repro.core.vectorized import compute_short_range_impl

        self.stats.sr_evals += 1
        return compute_short_range_impl(
            system, plist, nb_params, dtype=dtype, reuse_gathers=False,
            impl=impl,
        )

    def packed(self, system, plist, layout, params=DEFAULT_PARAMS):
        return PackedParticles.from_pairlist(system, plist, layout, params)

    def full_list(self, plist):
        return plist.to_full()

    def partitions(self, plist, n_cpes):
        return partition_clusters(plist, n_cpes)

    def pair_counts(self, plist, n_cpes):
        return np.array(
            [
                int(plist.i_starts[hi] - plist.i_starts[lo])
                for lo, hi in self.partitions(plist, n_cpes)
            ]
        )

    def write_trace(self, plist, lo, hi):
        return write_trace_for_range(plist, lo, hi)

    def write_trace_stats(self, plist, lo, hi, params, use_mark):
        return analyze_write_trace(
            self.write_trace(plist, lo, hi), params, use_mark=use_mark
        )

    def read_trace_stats(self, plist, lo, hi, packed, params):
        s, e = int(plist.i_starts[lo]), int(plist.i_starts[hi])
        return analyze_read_trace(
            plist.pair_cj[s:e].astype(np.int64), packed, params
        )

    def touched_lines(self, plist, lo, hi, params):
        amap = AddressMap(params.index_bits, params.offset_bits)
        return int(
            len(np.unique(self.write_trace(plist, lo, hi) >> amap.offset_bits))
        )

    def prime_partition_stats(self, *args, **kwargs) -> None:
        """Reuse off: nothing to prime (getters always recompute)."""
