"""Pair-list generation on CPEs (the paper's §3.5).

Two pieces:

1. **Parallel generation.**  Different CPEs build the neighbour lists of
   different i-clusters into per-CPE scratch areas in main memory (the
   start index of a CPE's first list is unknowable up front), and the MPE
   gathers them into the final CSR pair list, computing every cluster's
   start/end index on the way.  `generate_parallel` implements this
   functionally and is tested to reproduce the serial build exactly.

2. **The cache study.**  The search kernel streams *two* package streams
   through one LDM cache — the i-cluster under construction and the
   candidate j-clusters — and the interleaving thrashes a direct-mapped
   cache (the paper measured >85 % misses) while a two-way associative
   cache restores <10 %.  `search_trace` builds the interleaved trace;
   `cache_study` runs it through both cache organisations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.cache import (
    AddressMap,
    count_misses_direct_mapped,
    count_misses_two_way,
)
from repro.hw.dma import transfer_seconds
from repro.hw.params import ChipParams, DEFAULT_PARAMS
from repro.md.pairlist import ClusterPairList
from repro.parallel.athread import weighted_partition


@dataclass
class GatheredPairList:
    """Per-CPE neighbour lists gathered into final CSR form."""

    pair_ci: np.ndarray
    pair_cj: np.ndarray
    i_starts: np.ndarray
    scratch_bytes_per_cpe: np.ndarray  # temp memory each CPE used


def generate_parallel(
    plist: ClusterPairList,
    n_cpes: int = 64,
) -> GatheredPairList:
    """Re-derive the CSR pair list with the per-CPE scratch protocol.

    Each CPE emits (ci, cj) pairs for its i-cluster range into its own
    scratch buffer; the gather concatenates the buffers in CPE order and
    rebuilds the start/end index of every cluster's neighbour list —
    byte-identical to the serial CSR because the partition is contiguous.
    """
    weights = np.diff(plist.i_starts).astype(np.float64)
    parts = weighted_partition(weights, n_cpes)
    ci_parts, cj_parts, scratch = [], [], []
    for lo, hi in parts:
        s, e = int(plist.i_starts[lo]), int(plist.i_starts[hi])
        ci_parts.append(plist.pair_ci[s:e])
        cj_parts.append(plist.pair_cj[s:e])
        scratch.append((e - s) * 8)  # two int32 per emitted pair
    ci = np.concatenate(ci_parts) if ci_parts else np.empty(0, dtype=np.int32)
    cj = np.concatenate(cj_parts) if cj_parts else np.empty(0, dtype=np.int32)
    i_starts = np.searchsorted(ci, np.arange(plist.n_clusters + 1))
    return GatheredPairList(
        pair_ci=ci,
        pair_cj=cj,
        i_starts=i_starts.astype(np.int64),
        scratch_bytes_per_cpe=np.array(scratch, dtype=np.int64),
    )


def search_trace(
    plist: ClusterPairList,
    expansion: float = 3.0,
    seed: int = 0,
) -> np.ndarray:
    """Interleaved (i, j, i, j', ...) package trace of the search kernel.

    The search examines ~``expansion``x more candidates than survive into
    the list (cell-neighbourhood candidates before the distance test);
    extra candidates are synthesised around the surviving j's.  Each
    candidate check touches the i package and the candidate j package
    through the same cache — the interleaving that defeats a direct map.
    """
    if expansion < 1.0:
        raise ValueError(f"expansion must be >= 1: {expansion}")
    rng = np.random.default_rng(seed)
    n_cand = int(plist.n_cluster_pairs * expansion)
    ci = np.repeat(
        plist.pair_ci.astype(np.int64), int(np.ceil(expansion))
    )[:n_cand]
    cj_base = np.repeat(
        plist.pair_cj.astype(np.int64), int(np.ceil(expansion))
    )[:n_cand]
    jitter = rng.integers(-4, 5, size=n_cand)
    cj = np.clip(cj_base + jitter, 0, plist.n_clusters - 1)
    trace = np.empty(2 * n_cand, dtype=np.int64)
    trace[0::2] = ci
    trace[1::2] = cj
    return trace


@dataclass
class CacheStudyResult:
    direct_miss_ratio: float
    two_way_miss_ratio: float
    accesses: int


def cache_study(
    trace: np.ndarray, params: ChipParams = DEFAULT_PARAMS
) -> CacheStudyResult:
    """Miss ratios of the same trace under direct-mapped vs two-way.

    Both counters are the vectorised trace analyses; the sequential
    cache classes remain the oracles the property tests pin them
    against.  (The two-way count used to walk the trace through
    `TwoWaySetAssociativeCache.access` one package at a time — at ~150k
    accesses per engine rebuild that Python loop dominated the
    neighbour-search model.)
    """
    amap = AddressMap(params.index_bits, params.offset_bits)
    direct_misses = count_misses_direct_mapped(trace, amap)
    two_way_misses = count_misses_two_way(trace, amap)
    n = len(trace)
    return CacheStudyResult(
        direct_miss_ratio=direct_misses / max(n, 1),
        two_way_miss_ratio=two_way_misses / max(n, 1),
        accesses=n,
    )


def adversarial_trace(
    n_accesses: int,
    params: ChipParams = DEFAULT_PARAMS,
) -> np.ndarray:
    """A same-set ping-pong trace reproducing the paper's >85 % thrashing.

    Two *sequential* streams (the i-cluster stream and the candidate
    stream) laid out exactly one cache apart in memory: every consecutive
    access pair maps to the same set with different tags, so a direct map
    evicts on every access, while a second way keeps both streams resident
    and misses only at line boundaries (~2 misses per line of 8 packages,
    i.e. ~12 %).
    """
    amap = AddressMap(params.index_bits, params.offset_bits)
    stride = amap.n_lines << amap.offset_bits  # one full cache of packages
    base = np.arange(n_accesses // 2, dtype=np.int64) % stride
    trace = np.empty(2 * (n_accesses // 2), dtype=np.int64)
    trace[0::2] = base
    trace[1::2] = base + stride
    return trace


def search_kernel_seconds(
    plist: ClusterPairList,
    miss_ratio: float,
    params: ChipParams = DEFAULT_PARAMS,
    expansion: float = 3.0,
    check_cycles: float = 110.0,
) -> float:
    """Modelled CPE-parallel search time given a cache miss ratio.

    Distance checks run SIMD on the CPEs; misses fetch whole lines; the
    per-CPE scratch write-out streams at the package rate.
    """
    if not 0.0 <= miss_ratio <= 1.0:
        raise ValueError(f"miss ratio must be in [0,1]: {miss_ratio}")
    n_checks = plist.n_cluster_pairs * expansion
    compute = n_checks * check_cycles / params.n_cpes * params.cycle_s
    accesses = 2.0 * n_checks
    line_bytes = params.packages_per_line * params.package_bytes
    dma = accesses * miss_ratio * transfer_seconds(line_bytes, params)
    writeout = plist.n_cluster_pairs * 8 / (params.dma_curve[-1][1] * 1e9)
    hidden = params.pipeline_overlap * min(compute, dma)
    return compute + dma - hidden + writeout
