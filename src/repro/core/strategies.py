"""Strategy registry and high-level comparison helpers.

Wraps `repro.core.kernels` behind names matching the paper's figures:

* Fig. 8 ladder: ``Ori -> Pkg -> Cache -> Vec -> Mark``;
* Fig. 9 comparison: ``USTC_GMX``, ``SW_LAMMPS`` (RCA), ``RMA_GMX``,
  ``MARK_GMX``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.kernels import ALL_SPECS, KernelResult, KernelSpec, run_kernel
from repro.core.stepcache import StepCache
from repro.hw.params import ChipParams, DEFAULT_PARAMS
from repro.md.nonbonded import NonbondedParams
from repro.md.pairlist import ClusterPairList, build_pair_list
from repro.md.system import ParticleSystem
from repro.parallel.pool import ExecutionBackend, shared_backend


@dataclass(frozen=True)
class Strategy:
    """A named strategy: paper label + kernel spec."""

    label: str
    spec: KernelSpec
    description: str


#: The Fig. 8 optimisation ladder, in order.
STRATEGY_LADDER: tuple[Strategy, ...] = (
    Strategy("Ori", ALL_SPECS["ORI"], "original GROMACS, MPE only"),
    Strategy("Pkg", ALL_SPECS["PKG"], "+ particle-package aggregation"),
    Strategy("Cache", ALL_SPECS["CACHE"], "+ read & deferred-update caches"),
    Strategy("Vec", ALL_SPECS["VEC"], "+ SIMD vectorisation"),
    Strategy("Mark", ALL_SPECS["MARK"], "+ Bit-Map update marks"),
)

#: The Fig. 9 cross-strategy comparison.
BASELINE_STRATEGIES: tuple[Strategy, ...] = (
    Strategy("USTC_GMX", ALL_SPECS["USTC"], "MPE collects CPE updates [29]"),
    Strategy("SW_LAMMPS", ALL_SPECS["RCA"], "redundant-compute full list [8]"),
    Strategy("RMA_GMX", ALL_SPECS["RMA"], "per-CPE copies, full init+reduction"),
    Strategy("MARK_GMX", ALL_SPECS["MARK"], "this paper's update mark"),
)


def get_strategy(label: str) -> Strategy:
    """Look up a strategy by its paper label (case-insensitive)."""
    for s in STRATEGY_LADDER + BASELINE_STRATEGIES:
        if s.label.lower() == label.lower():
            return s
    known = [s.label for s in STRATEGY_LADDER + BASELINE_STRATEGIES]
    raise KeyError(f"unknown strategy {label!r}; known: {known}")


def run_strategy(
    system: ParticleSystem,
    label: str,
    nb_params: NonbondedParams | None = None,
    plist: ClusterPairList | None = None,
    params: ChipParams = DEFAULT_PARAMS,
) -> KernelResult:
    """Run one strategy's short-range kernel on ``system``."""
    nb_params = nb_params or NonbondedParams()
    if plist is None:
        plist = build_pair_list(system, nb_params.r_list)
    return run_kernel(system, plist, nb_params, get_strategy(label).spec, params)


@dataclass
class LadderResult:
    """Per-strategy results and speedups relative to the first rung."""

    results: dict[str, KernelResult]
    speedups: dict[str, float]
    n_particles: int


def run_ladder(
    system: ParticleSystem,
    strategies: tuple[Strategy, ...] = STRATEGY_LADDER,
    nb_params: NonbondedParams | None = None,
    params: ChipParams = DEFAULT_PARAMS,
    baseline_label: str = "Ori",
    backend: str | ExecutionBackend | None = None,
) -> LadderResult:
    """Run a set of strategies on one system; compute speedups vs. baseline.

    The pair list is built once and shared (all strategies see identical
    work), exactly as the paper's single-kernel comparison does.  All
    rungs run through one :class:`~repro.core.stepcache.StepCache`, so
    the whole ladder performs exactly one `compute_short_range` per list
    state (one more for the mirrored full list if RCA is included) —
    labels that alias the same spec (``Mark`` / ``MARK_GMX``) share all
    cached pieces too.

    ``backend`` fans the pair-list exact filter and per-CPE trace
    analyses across worker processes (name, `ExecutionBackend`, or None
    for ``REPRO_BACKEND``-or-serial); results are bit-identical.
    """
    nb_params = nb_params or NonbondedParams()
    backend = shared_backend(backend)
    plist = build_pair_list(system, nb_params.r_list, backend=backend)
    cache = StepCache()
    results: dict[str, KernelResult] = {}
    for strat in strategies:
        results[strat.label] = run_kernel(
            system, plist, nb_params, strat.spec, params, cache=cache,
            backend=backend,
        )
    if baseline_label not in results:
        base = run_kernel(
            system,
            plist,
            nb_params,
            get_strategy(baseline_label).spec,
            params,
            cache=cache,
            backend=backend,
        )
    else:
        base = results[baseline_label]
    speedups = {
        label: base.elapsed_seconds / r.elapsed_seconds
        for label, r in results.items()
    }
    return LadderResult(
        results=results, speedups=speedups, n_particles=system.n_particles
    )


def verify_forces_agree(
    results: dict[str, KernelResult],
    reference: np.ndarray,
    rtol: float = 2e-4,
) -> dict[str, float]:
    """Max relative force error per strategy against a reference force set.

    Raises if any strategy exceeds ``rtol`` (relative to the largest force
    magnitude) — functional fidelity is non-negotiable (DESIGN.md §4).
    """
    scale = float(np.abs(reference).max()) or 1.0
    errors = {}
    for label, res in results.items():
        err = float(np.abs(res.forces - reference).max()) / scale
        errors[label] = err
        if err > rtol:
            raise AssertionError(
                f"strategy {label} forces deviate {err:.2e} (> {rtol}) "
                "from the reference"
            )
    return errors
