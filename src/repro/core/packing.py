"""Particle packages: the paper's §3.1 data aggregation (Figs. 2 and 6).

GROMACS keeps positions, types, and charges in separate arrays; fetching
one particle's data therefore needs several fine-grained (4 B) memory
accesses.  The paper aggregates the data of each 4-particle cluster into
one *particle package* so a single ~108 B DMA brings everything, raising
achieved bandwidth from 0.99 to 15.77 GB/s (their Table 2).

Two layouts exist (Fig. 6):

* ``aos`` — per particle: x, y, z, type, charge (the natural Fig. 2 form);
* ``soa`` — per package: x[4], y[4], z[4], t[4], c[4] — the vectorisation
  layout, where each element vector is one aligned ``floatv4`` load.

`PackedParticles` carries the packages in slot order (matching the
cluster pair list) plus the byte-layout metadata the DMA cost model uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.hw.params import ChipParams, DEFAULT_PARAMS
from repro.md.pairlist import CLUSTER_SIZE, ClusterPairList
from repro.md.system import ParticleSystem


class Layout(str, Enum):
    """Package memory layout (Fig. 6)."""

    AOS = "aos"
    SOA = "soa"


@dataclass
class PackedParticles:
    """All particle packages for one pair list, in slot order.

    Arrays are float32/int32 — the mixed-precision on-chip representation.
    ``positions`` has shape (n_slots, 3); ``x_soa`` exposes the same data
    as (n_packages, 3, 4) so a VEC kernel can load one coordinate of all
    four particles with a single vector load.
    """

    positions: np.ndarray  # (n_slots, 3) float32
    charges: np.ndarray  # (n_slots,) float32
    types: np.ndarray  # (n_slots,) int32
    mols: np.ndarray  # (n_slots,) int32; padding gets unique negatives
    real: np.ndarray  # (n_slots,) bool
    layout: Layout
    params: ChipParams

    @classmethod
    def from_pairlist(
        cls,
        system: ParticleSystem,
        plist: ClusterPairList,
        layout: Layout = Layout.AOS,
        params: ChipParams = DEFAULT_PARAMS,
    ) -> "PackedParticles":
        """Build packages from the system in the pair list's slot order."""
        positions = plist.current_positions(system).astype(np.float32)
        charges = plist.gather(system.charges).astype(np.float32)
        types = plist.gather(system.topology.type_ids, fill=0).astype(np.int32)
        mols = plist.gather(system.topology.mol_ids, fill=-1).astype(np.int64)
        # Give each padding slot a unique negative molecule id so the
        # exclusion test (mol_i == mol_j) can never pair two paddings.
        pad = ~plist.real
        mols[pad] = -1 - np.arange(int(pad.sum()))
        return cls(
            positions=positions,
            charges=charges,
            types=types,
            mols=mols.astype(np.int32),
            real=plist.real.copy(),
            layout=layout,
            params=params,
        )

    @property
    def n_slots(self) -> int:
        return len(self.positions)

    @property
    def n_packages(self) -> int:
        return self.n_slots // CLUSTER_SIZE

    @property
    def package_bytes(self) -> int:
        """Bytes one package occupies in main memory (128-bit aligned)."""
        return self.params.package_bytes

    @property
    def force_line_bytes(self) -> int:
        """Bytes of one *force* cache line (packages_per_line packages of
        3 x f32 per particle)."""
        return (
            self.params.packages_per_line
            * CLUSTER_SIZE
            * self.params.force_bytes_per_particle
        )

    @property
    def data_line_bytes(self) -> int:
        """Bytes of one read-cache line of particle packages."""
        return self.params.packages_per_line * self.package_bytes

    def package_view(self, package: int) -> dict[str, np.ndarray]:
        """One package's fields (by-reference views), for kernel loops."""
        if not 0 <= package < self.n_packages:
            raise IndexError(
                f"package {package} out of range [0, {self.n_packages})"
            )
        sl = slice(package * CLUSTER_SIZE, (package + 1) * CLUSTER_SIZE)
        return {
            "positions": self.positions[sl],
            "charges": self.charges[sl],
            "types": self.types[sl],
            "mols": self.mols[sl],
            "real": self.real[sl],
        }

    def soa_coordinates(self) -> np.ndarray:
        """Coordinates in SOA package layout, shape (n_packages, 3, 4).

        ``soa[p, d]`` holds coordinate ``d`` of the package's four
        particles contiguously — one aligned vector load in the Fig. 6
        scheme.  Raises unless the layout is SOA (an AOS kernel that wants
        this view must first pay the Fig. 6 transformation).
        """
        if self.layout is not Layout.SOA:
            raise ValueError(
                "coordinates are stored AOS; convert with to_layout(Layout.SOA)"
            )
        return np.ascontiguousarray(
            self.positions.reshape(self.n_packages, CLUSTER_SIZE, 3).transpose(0, 2, 1)
        )

    def to_layout(self, layout: Layout) -> "PackedParticles":
        """Return a copy in the requested layout (data identical)."""
        if layout is self.layout:
            return self
        return PackedParticles(
            positions=self.positions.copy(),
            charges=self.charges.copy(),
            types=self.types.copy(),
            mols=self.mols.copy(),
            real=self.real.copy(),
            layout=layout,
            params=self.params,
        )


def package_views(
    positions: np.ndarray,
    charges: np.ndarray,
    types: np.ndarray,
    mols: np.ndarray,
    real: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-package struct-of-arrays views of slot-ordered field arrays.

    Zero-copy reshapes: positions become ``(n_packages, 4, 3)`` and each
    scalar field ``(n_packages, 4)``, so a batched kernel can gather
    whole packages by cluster index (``pos[ci]``) instead of slicing
    per-pair.  The inputs are the arrays `PackedParticles` carries (or
    their shared-memory resolutions in a pool worker).
    """
    n = len(positions) // CLUSTER_SIZE
    return (
        positions.reshape(n, CLUSTER_SIZE, 3),
        charges.reshape(n, CLUSTER_SIZE),
        types.reshape(n, CLUSTER_SIZE),
        mols.reshape(n, CLUSTER_SIZE),
        real.reshape(n, CLUSTER_SIZE),
    )


def fine_grained_access_bytes() -> int:
    """Bytes per access before aggregation (one float: the paper's 4 B)."""
    return 4


def package_access_bytes(params: ChipParams = DEFAULT_PARAMS) -> int:
    """Bytes per access after aggregation (the paper's ~108 B package)."""
    return params.package_bytes
