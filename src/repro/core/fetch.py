"""Fetch strategy: the read cache of the paper's §3.1 / Fig. 3.

CPEs fetch particle packages through a direct-mapped software cache whose
lines hold ``packages_per_line`` (8) packages (~900 B), so each miss runs
a near-peak-bandwidth DMA instead of a 112 B transfer.

Two interchangeable implementations:

* :class:`ReadCachedFetcher` — exact sequential semantics over the
  `repro.hw.cache.DirectMappedReadCache` tag store (fidelity path);
* :func:`analyze_read_trace` — vectorised whole-trace analysis used by
  the fast kernel path; property tests pin it to the sequential one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.cache import AddressMap, DirectMappedReadCache, count_misses_direct_mapped
from repro.hw.dma import transfer_seconds
from repro.hw.params import ChipParams, DEFAULT_PARAMS
from repro.core.packing import PackedParticles


@dataclass
class ReadTraceStats:
    """Outcome of pushing one CPE's package-access trace through the cache."""

    accesses: int
    misses: int
    bytes_fetched: int
    seconds: float

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class ReadCachedFetcher:
    """Sequential read-cache front-end for one CPE's kernel loop."""

    def __init__(
        self,
        packed: PackedParticles,
        params: ChipParams = DEFAULT_PARAMS,
    ) -> None:
        self.packed = packed
        self.params = params
        self.amap = AddressMap(params.index_bits, params.offset_bits)
        self.cache = DirectMappedReadCache(self.amap)
        self.bytes_fetched = 0
        self.seconds = 0.0

    def fetch_package(self, package: int) -> dict[str, np.ndarray]:
        """Fetch one package (through the cache); returns its field views."""
        hit = self.cache.access(package)
        if not hit:
            line_bytes = self.packed.data_line_bytes
            self.bytes_fetched += line_bytes
            self.seconds += transfer_seconds(line_bytes, self.params)
        return self.packed.package_view(package)

    def stats(self) -> ReadTraceStats:
        return ReadTraceStats(
            accesses=self.cache.stats.accesses,
            misses=self.cache.stats.misses,
            bytes_fetched=self.bytes_fetched,
            seconds=self.seconds,
        )


def analyze_read_trace(
    package_trace: np.ndarray,
    packed: PackedParticles | int,
    params: ChipParams = DEFAULT_PARAMS,
) -> ReadTraceStats:
    """Vectorised equivalent of running the trace through the fetcher.

    Per-set miss counting via the sorted-trace tag-change trick (see
    `repro.hw.cache.count_misses_direct_mapped`).  ``packed`` may be the
    packed arrays or just their ``data_line_bytes`` — worker processes in
    the parallel backend ship the integer instead of the arrays.
    """
    trace = np.asarray(package_trace, dtype=np.int64)
    amap = AddressMap(params.index_bits, params.offset_bits)
    misses = count_misses_direct_mapped(trace, amap)
    line_bytes = packed if isinstance(packed, int) else packed.data_line_bytes
    return ReadTraceStats(
        accesses=len(trace),
        misses=misses,
        bytes_fetched=misses * line_bytes,
        seconds=misses * transfer_seconds(line_bytes, params),
    )


def sequential_stream_lines(lo: int, hi: int, packages_per_line: int) -> int:
    """Aligned cache lines covered by one CPE streaming packages
    ``[lo, hi)`` sequentially.

    A CPE's i-package stream starts wherever its cluster range starts, so
    it fetches every line its range *overlaps* — up to one extra line at
    each end versus the global ceil ``⌈N/ppl⌉`` (which undercounts by up
    to ``n_cpes - 1`` lines when summed over partitions).  Matches the
    distinct-line count :func:`analyze_read_trace` reports for the
    sequential trace ``arange(lo, hi)``.
    """
    if packages_per_line < 1:
        raise ValueError(f"packages_per_line must be >= 1: {packages_per_line}")
    if hi <= lo:
        return 0
    return (hi - 1) // packages_per_line - lo // packages_per_line + 1


def uncached_read_seconds(
    n_accesses: int,
    access_bytes: int,
    params: ChipParams = DEFAULT_PARAMS,
) -> float:
    """Modelled time for ``n_accesses`` direct (uncached) DMA reads —
    the Pkg rung (one package per access) or the original fine-grained
    4 B path, depending on ``access_bytes``."""
    if n_accesses < 0:
        raise ValueError(f"n_accesses must be non-negative: {n_accesses}")
    return n_accesses * transfer_seconds(access_bytes, params)
