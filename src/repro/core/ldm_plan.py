"""LDM layout planning for the CPE kernels.

The 64 KB LDM budget is the central constraint the paper designs around:
the read cache, the deferred-update write cache, the Bit-Map marks, the
neighbour-list window and the SIMD staging buffers all share it.  This
module turns a (ChipParams, KernelSpec, system size) triple into an
explicit `repro.hw.ldm.LdmAllocator` layout — raising
:class:`~repro.hw.ldm.LdmOverflowError` when a configuration cannot fit
(e.g. an over-long cache line in the geometry ablation), instead of
silently assuming it does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.kernels import KernelSpec
from repro.hw.ldm import LdmAllocator, LdmOverflowError
from repro.hw.params import ChipParams, DEFAULT_PARAMS

#: Bytes reserved for the kernel's stack/scalars/athread runtime.
RUNTIME_RESERVE_BYTES = 4 * 1024
#: Neighbour-list streaming window (double buffered int32 entries).
NBLIST_WINDOW_BYTES = 2 * 2048
#: SIMD staging: i-cluster registers spilled + shuffle temporaries.
SIMD_STAGING_BYTES = 1024
#: Double-buffer slots for pipelined package fetches.
PIPELINE_BUFFER_LINES = 2


@dataclass
class LdmPlan:
    """A concrete LDM layout for one kernel launch."""

    allocator: LdmAllocator
    spec: KernelSpec
    params: ChipParams

    @property
    def used_bytes(self) -> int:
        return self.allocator.used_bytes()

    @property
    def free_bytes(self) -> int:
        return self.allocator.free_bytes()

    def describe(self) -> str:
        rows = [
            f"  {blk.name:<18s} {blk.size:6d} B @ {blk.offset}"
            for blk in self.allocator.layout()
        ]
        header = (
            f"LDM plan for {self.spec.name}: {self.used_bytes} / "
            f"{self.params.ldm_bytes} B used"
        )
        return "\n".join([header] + rows)


def plan_kernel_ldm(
    spec: KernelSpec,
    n_particles: int,
    params: ChipParams = DEFAULT_PARAMS,
) -> LdmPlan:
    """Plan the LDM layout for one strategy kernel.

    Raises :class:`LdmOverflowError` when the working set cannot fit —
    the same failure a real kernel launch would hit at athread spawn.
    """
    if n_particles < 1:
        raise ValueError(f"n_particles must be >= 1: {n_particles}")
    ldm = LdmAllocator(params.ldm_bytes)
    ldm.alloc("runtime", RUNTIME_RESERVE_BYTES)
    if not spec.use_cpes:
        # The MPE-only kernel uses no LDM at all.
        return LdmPlan(ldm, spec, params)

    line_data = params.packages_per_line * params.package_bytes
    line_force = (
        params.particles_per_line * params.force_bytes_per_particle
    )
    n_sets = 1 << params.index_bits

    if spec.read_cache:
        ldm.alloc("read_cache", n_sets * line_data)
        ldm.alloc("read_tags", 8 * n_sets)
    else:
        # Uncached: just the double-buffered fetch slots.
        ldm.alloc("fetch_buffers", PIPELINE_BUFFER_LINES * params.package_bytes)

    if spec.write_cache:
        ldm.alloc("write_cache", n_sets * line_force)
        ldm.alloc("write_tags", 8 * n_sets)
        if spec.mark:
            n_lines_global = -(-n_particles // params.particles_per_line)
            ldm.alloc("mark_bitmap", -(-n_lines_global // 8))
    elif not spec.full_list and not spec.mpe_collect:
        # Pkg rung: read-modify-write staging for one force package.
        ldm.alloc(
            "force_staging",
            2 * params.particles_per_package * params.force_bytes_per_particle,
        )

    ldm.alloc("nblist_window", NBLIST_WINDOW_BYTES)
    if spec.simd:
        ldm.alloc("simd_staging", SIMD_STAGING_BYTES)
    if spec.full_list:
        # RCA accumulates its i-forces locally before the single put.
        ldm.alloc(
            "i_force_accum",
            params.particles_per_package * params.force_bytes_per_particle,
        )
    return LdmPlan(ldm, spec, params)


def max_line_length_that_fits(
    spec: KernelSpec,
    n_particles: int,
    params: ChipParams = DEFAULT_PARAMS,
) -> int:
    """Largest packages-per-line (power of two) whose plan fits the LDM.

    The geometry ablation uses this to show why the paper stops at 8
    packages per line.
    """
    best = 0
    for offset_bits in range(1, 8):
        candidate = params.with_overrides(
            offset_bits=offset_bits, packages_per_line=1 << offset_bits
        )
        try:
            plan_kernel_ldm(spec, n_particles, candidate)
        except LdmOverflowError:
            break
        best = 1 << offset_bits
    return best
