"""The paper's contribution: SW_GROMACS optimisation strategies.

Public surface:

* packaging — :class:`PackedParticles`, :class:`Layout` (Figs. 2/6);
* fetch strategy — :class:`ReadCachedFetcher`, :func:`analyze_read_trace`
  (Fig. 3);
* deferred update — :class:`DeferredUpdateCache`,
  :func:`analyze_write_trace` (Fig. 4, Algorithm 3);
* Bit-Map reduction — :func:`reduce_copies`, :func:`reduction_cost`,
  :func:`init_cost` (Fig. 5, Algorithm 4);
* vectorisation — :func:`transpose_4x3` (Fig. 7);
* kernels & strategies — :func:`run_kernel`, :func:`run_strategy_sweep`,
  :data:`STRATEGY_LADDER`, :data:`BASELINE_STRATEGIES` (Figs. 8-9);
* step-compute reuse — :class:`StepCache` (pairlist-interval caching,
  DESIGN.md §8);
* pair-list generation on CPEs — :func:`generate_parallel`,
  :func:`cache_study` (§3.5);
* communication — :class:`Transport`, :func:`message_sweep` (§3.6);
* fast I/O — :class:`FastFloatFormatter`,
  :class:`BufferedTrajectoryWriter` (§3.7);
* whole-app engine — :class:`SWGromacsEngine`, :class:`EngineConfig`,
  :func:`run_optimization_ladder` (Fig. 10, Table 1);
* platform TTF model — :func:`ttf_ratio`, :func:`fair_chip_count`
  (Table 4, Eqs. 3-4, Fig. 11).
"""

from repro.core.comm_opt import Transport, message_sweep, step_comm
from repro.core.deferred import DeferredUpdateCache, WriteTraceStats, analyze_write_trace
from repro.core.engine import (
    EngineConfig,
    EngineResult,
    SWGromacsEngine,
    run_optimization_ladder,
)
from repro.core.fastio import (
    BufferedTrajectoryWriter,
    FastFloatFormatter,
    io_model_seconds,
)
from repro.core.fetch import ReadCachedFetcher, ReadTraceStats, analyze_read_trace
from repro.core.kernels import (
    ALL_SPECS,
    KernelResult,
    KernelSpec,
    partition_clusters,
    run_kernel,
    run_kernel_sequential,
    run_strategy_sweep,
)
from repro.core.packing import Layout, PackedParticles
from repro.core.pairlist_cpe import (
    CacheStudyResult,
    adversarial_trace,
    cache_study,
    generate_parallel,
    search_kernel_seconds,
    search_trace,
)
from repro.core.platforms import (
    Fig11Bar,
    fair_chip_count,
    figure11_series,
    modelled_figure11,
    ttf_ratio,
)
from repro.core.reduction import init_cost, reduce_copies, reduction_cost
from repro.core.shuffle import transpose_4x3, transpose_4x3_reference
from repro.core.stepcache import (
    NullStepCache,
    StepCache,
    StepCacheStats,
    position_fingerprint,
)
from repro.core.strategies import (
    BASELINE_STRATEGIES,
    STRATEGY_LADDER,
    LadderResult,
    Strategy,
    get_strategy,
    run_ladder,
    run_strategy,
    verify_forces_agree,
)

__all__ = [
    "ALL_SPECS",
    "BASELINE_STRATEGIES",
    "BufferedTrajectoryWriter",
    "CacheStudyResult",
    "DeferredUpdateCache",
    "EngineConfig",
    "EngineResult",
    "FastFloatFormatter",
    "Fig11Bar",
    "KernelResult",
    "KernelSpec",
    "LadderResult",
    "NullStepCache",
    "Layout",
    "PackedParticles",
    "ReadCachedFetcher",
    "ReadTraceStats",
    "STRATEGY_LADDER",
    "StepCache",
    "StepCacheStats",
    "SWGromacsEngine",
    "Strategy",
    "Transport",
    "WriteTraceStats",
    "adversarial_trace",
    "analyze_read_trace",
    "analyze_write_trace",
    "cache_study",
    "fair_chip_count",
    "figure11_series",
    "generate_parallel",
    "get_strategy",
    "init_cost",
    "io_model_seconds",
    "message_sweep",
    "modelled_figure11",
    "partition_clusters",
    "position_fingerprint",
    "reduce_copies",
    "reduction_cost",
    "run_kernel",
    "run_kernel_sequential",
    "run_strategy_sweep",
    "run_ladder",
    "run_optimization_ladder",
    "run_strategy",
    "search_kernel_seconds",
    "search_trace",
    "step_comm",
    "transpose_4x3",
    "transpose_4x3_reference",
    "ttf_ratio",
    "verify_forces_agree",
]
