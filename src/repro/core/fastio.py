"""Trajectory output acceleration (the paper's §3.7).

Large-scale runs spend up to ~30 % of wall time writing particle
positions.  The paper's two fixes, both implemented functionally here
with a matching cost model:

1. replace per-record ``fwrite`` with raw ``write`` through a 20 MB user
   buffer (one syscall per 20 MB instead of one per ~4 KB chunk);
2. replace the C library's ``%f`` formatting (which handles locales,
   rounding modes and special values) with a concise fixed-precision
   float-to-characters converter.

`FastFloatFormatter.format` really converts floats to text (validated
against Python's formatting to the configured precision, including the
paper's "little accuracy sacrifice"); `io_model_seconds` prices a
trajectory write under either scheme.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

import numpy as np

from repro.hw.params import ChipParams, DEFAULT_PARAMS


class FastFloatFormatter:
    """Concise fixed-precision float -> characters conversion.

    Integer-arithmetic digit emission with half-up rounding: no locale, no
    %-parsing, no subnormal handling — the corner cutting the paper
    accepts for "little accuracy sacrifice".  Raises on non-finite input
    (the C version silently printed garbage; we prefer loud).
    """

    def __init__(self, decimals: int = 3) -> None:
        if not 0 <= decimals <= 9:
            raise ValueError(f"decimals must be in [0, 9]: {decimals}")
        self.decimals = decimals
        self._scale = 10**decimals

    def format(self, value: float) -> str:
        if not np.isfinite(value):
            raise ValueError(f"fast formatter requires finite input: {value}")
        scaled = int(abs(value) * self._scale + 0.5)
        negative = value < 0 and scaled != 0
        int_part, frac_part = divmod(scaled, self._scale)
        if self.decimals:
            text = f"{int_part}.{frac_part:0{self.decimals}d}"
        else:
            text = str(int_part)
        return "-" + text if negative else text

    def format_array(self, values: np.ndarray) -> list[str]:
        """Vectorised digit extraction for a whole coordinate array."""
        vals = np.asarray(values, dtype=np.float64).ravel()
        if not np.isfinite(vals).all():
            raise ValueError("fast formatter requires finite input")
        scaled = (np.abs(vals) * self._scale + 0.5).astype(np.int64)
        negative = (vals < 0) & (scaled != 0)
        int_part = scaled // self._scale
        frac_part = scaled % self._scale
        d = self.decimals
        return [
            ("-" if n else "") + (f"{i}.{f:0{d}d}" if d else str(i))
            for n, i, f in zip(negative, int_part, frac_part)
        ]


class BufferedTrajectoryWriter:
    """20 MB-buffered writer emitting one text record per particle.

    Functional: writes real bytes to the supplied file object; counts
    flush syscalls so tests can assert the buffering actually batches.
    """

    def __init__(
        self,
        sink: io.RawIOBase | io.BufferedIOBase,
        buffer_bytes: int = 20 * 1024 * 1024,
        decimals: int = 3,
    ) -> None:
        if buffer_bytes < 1:
            raise ValueError(f"buffer must be >= 1 byte: {buffer_bytes}")
        self.sink = sink
        self.buffer_bytes = buffer_bytes
        self.formatter = FastFloatFormatter(decimals)
        self._chunks: list[bytes] = []
        self._buffered = 0
        self.n_syscalls = 0
        self.bytes_written = 0

    def write_frame(self, step: int, positions: np.ndarray) -> None:
        pos = np.asarray(positions, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise ValueError(f"positions must be (N, 3): {pos.shape}")
        parts = [f"frame {step} {len(pos)}\n"]
        texts = self.formatter.format_array(pos)
        for p in range(len(pos)):
            parts.append(
                f"{texts[3 * p]} {texts[3 * p + 1]} {texts[3 * p + 2]}\n"
            )
        data = "".join(parts).encode()
        self._chunks.append(data)
        self._buffered += len(data)
        if self._buffered >= self.buffer_bytes:
            self.flush()

    def flush(self) -> None:
        if not self._chunks:
            return
        blob = b"".join(self._chunks)
        self.sink.write(blob)
        self.n_syscalls += 1
        self.bytes_written += len(blob)
        self._chunks.clear()
        self._buffered = 0


@dataclass
class IoCost:
    syscall_seconds: float
    format_seconds: float
    disk_seconds: float

    @property
    def total(self) -> float:
        return self.syscall_seconds + self.format_seconds + self.disk_seconds


def io_model_seconds(
    n_particles: int,
    params: ChipParams = DEFAULT_PARAMS,
    fast: bool = True,
    bytes_per_particle: int = 26,  # "x.xxx y.yyy z.zzz\n" ballpark
) -> IoCost:
    """Modelled cost of writing one trajectory frame.

    ``fast=False``: fwrite-sized syscalls + stdlib ``%f`` per float.
    ``fast=True``: 20 MB buffer + the concise converter.
    """
    if n_particles < 0:
        raise ValueError(f"n_particles must be >= 0: {n_particles}")
    total_bytes = n_particles * bytes_per_particle
    chunk = params.io_fast_buffer_bytes if fast else params.io_fwrite_chunk_bytes
    n_syscalls = max(1, -(-total_bytes // chunk)) if n_particles else 0
    fmt_cycles = (
        params.io_format_fast_cycles if fast else params.io_format_double_cycles
    )
    return IoCost(
        syscall_seconds=n_syscalls * params.io_syscall_s,
        format_seconds=3.0 * n_particles * fmt_cycles * params.cycle_s,
        disk_seconds=total_bytes / (params.io_disk_bandwidth_gbs * 1e9),
    )
