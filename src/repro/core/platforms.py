"""Cross-platform TTF comparison (paper §4.5: Table 4, Eqs. 3-4, Fig. 11).

The paper argues SW_GROMACS is memory-bound and compares platforms by
*time to fulfil* (TTF), modelled as (cache-miss traffic) / bandwidth:

    TTF_A / TTF_B = (MR_A * BW_B) / (MR_B * BW_A)        (Eqs. 3-4)

yielding SW26010 ~150x KNL's TTF and ~24x P100's — hence the "fair"
configurations of Fig. 11: 150 SW26010 vs 1 KNL, 24 SW26010 vs 1 P100,
48 SW26010 vs 2 P100.  This module evaluates those equations from the
Table 4 constants and regenerates the Fig. 11 bar series.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.params import PLATFORM_TABLE, PlatformSpec


def ttf_ratio(platform_a: str, platform_b: str) -> float:
    """Eq. (3)/(4): TTF_A / TTF_B from miss ratios and bandwidths."""
    a = _lookup(platform_a)
    b = _lookup(platform_b)
    return (a.total_cache_miss_ratio * b.bandwidth_gbs) / (
        b.total_cache_miss_ratio * a.bandwidth_gbs
    )


def _lookup(name: str) -> PlatformSpec:
    try:
        return PLATFORM_TABLE[name]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; known: {sorted(PLATFORM_TABLE)}"
        ) from None


def fair_chip_count(reference: str, target: str = "SW26010") -> int:
    """Number of ``target`` chips whose aggregate TTF matches one
    ``reference`` chip (the paper rounds to 150 and 24)."""
    return round(ttf_ratio(target, reference))


@dataclass
class Fig11Bar:
    """One bar of Fig. 11: configuration label and speedup vs. the MPE run."""

    label: str
    speedup: float


def figure11_series(
    mpe_to_cpe_speedup: float = 18.06,
    knl_vs_mpe: float = 1.77,
    p100_vs_mpe_24: float = 22.77,
    p100_2_vs_mpe_48: float = 17.20,
    cpe_24_vs_mpe: float = 22.92,
    cpe_48_vs_mpe: float = 21.47,
) -> list[Fig11Bar]:
    """The nine Fig. 11 bars.

    The MPE baselines are 1.0 by construction; the relative heights of
    the other bars are the paper's measurements, reproduced here from our
    own models where available:

    * ``150x CPE`` vs ``150x MPE`` is the whole-application speedup of the
      3M-particle case (paper Fig. 10 case 2: ~18x) — our engine's
      Fig. 10 bench regenerates it;
    * KNL ~ 1.77x the 150-MPE aggregate (from Eq. 3: one KNL ~ 150 MPEs /
      the MPE-vs-KNL kernel gap);
    * P100 bars likewise follow from Eq. 4's 24:1 equivalence.
    """
    return [
        Fig11Bar("150x MPE", 1.0),
        Fig11Bar("KNL", knl_vs_mpe),
        Fig11Bar("150x CPE", mpe_to_cpe_speedup),
        Fig11Bar("24x MPE", 1.0),
        Fig11Bar("1x P100", p100_vs_mpe_24),
        Fig11Bar("24x CPE", cpe_24_vs_mpe),
        Fig11Bar("48x MPE", 1.0),
        Fig11Bar("2x P100", p100_2_vs_mpe_48),
        Fig11Bar("48x CPE", cpe_48_vs_mpe),
    ]


def modelled_figure11(overall_cpe_speedup: float) -> list[Fig11Bar]:
    """Fig. 11 regenerated from *our* measured whole-app speedup.

    ``overall_cpe_speedup`` is the engine's measured CPE-vs-MPE
    whole-application speedup (the Fig. 10 result).  The comparator bars
    scale from the Eq. 3/4 equivalences: one KNL matches ~150 MPE-only
    CGs at the kernel level but GROMACS 5.1.5 on KNL loses a further
    factor (the paper measured 1.77); one P100 matches ~24 CGs.
    """
    r_knl = fair_chip_count("KNL")  # ~150
    r_p100 = fair_chip_count("P100")  # ~24
    knl_bar = overall_cpe_speedup * r_knl / 150.0 / 10.2  # paper: 18.06/1.77
    p100_bar = overall_cpe_speedup * r_p100 / 24.0 / 1.007  # paper: 22.92/22.77
    # The 2-GPU bar is measured against the 48-MPE baseline (2x the
    # 24-MPE denominator), so doubling the GPUs at 75.5 % scaling
    # efficiency leaves the bar *lower* than the 1-GPU bar.
    p100_2_bar = p100_bar * 0.755  # paper: 17.2 = 22.77 * 0.755
    return [
        Fig11Bar("150x MPE", 1.0),
        Fig11Bar("KNL", knl_bar),
        Fig11Bar("150x CPE", overall_cpe_speedup * r_knl / 150.0),
        Fig11Bar("24x MPE", 1.0),
        Fig11Bar("1x P100", p100_bar),
        Fig11Bar("24x CPE", overall_cpe_speedup * r_p100 / 24.0),
        Fig11Bar("48x MPE", 1.0),
        Fig11Bar("2x P100", p100_2_bar),
        Fig11Bar("48x CPE", overall_cpe_speedup * 2 * r_p100 / 48.0),
    ]
