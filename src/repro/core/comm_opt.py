"""Communication acceleration (§3.6): swap MPI for RDMA in the step loop.

Thin composition over `repro.parallel`: a transport enum, the per-step
communication cost under each transport, and the message-size sweep the
ablation bench prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


from repro.hw.params import ChipParams, DEFAULT_PARAMS
from repro.parallel.collectives import CommBreakdown, step_comm_seconds
from repro.parallel.mpi_sim import mpi_message_seconds
from repro.parallel.rdma import rdma_message_seconds


class Transport(str, Enum):
    MPI = "mpi"
    RDMA = "rdma"

    @property
    def message_seconds(self):
        return (
            mpi_message_seconds if self is Transport.MPI else rdma_message_seconds
        )


def step_comm(
    n_particles_total: int,
    n_ranks: int,
    box_edge: float,
    r_halo: float,
    transport: Transport = Transport.MPI,
    params: ChipParams = DEFAULT_PARAMS,
    use_pme: bool = True,
) -> CommBreakdown:
    """Per-step communication time under the chosen transport."""
    return step_comm_seconds(
        n_particles_total,
        n_ranks,
        box_edge,
        r_halo,
        message_seconds=transport.message_seconds,
        params=params,
        use_pme=use_pme,
    )


@dataclass
class MessageSweepRow:
    size_bytes: int
    mpi_seconds: float
    rdma_seconds: float

    @property
    def speedup(self) -> float:
        return self.mpi_seconds / self.rdma_seconds


def message_sweep(
    sizes: tuple[int, ...] = (64, 256, 1024, 4096, 16384, 65536, 262144, 1048576),
    params: ChipParams = DEFAULT_PARAMS,
) -> list[MessageSweepRow]:
    """MPI vs RDMA single-message cost over a size sweep (ablation)."""
    return [
        MessageSweepRow(
            s, mpi_message_seconds(s, params), rdma_message_seconds(s, params)
        )
        for s in sizes
    ]
