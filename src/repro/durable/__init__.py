"""repro.durable: crash-safe state for the serve/fleet tier (DESIGN.md §12).

Production hardening of the service layer, in the checkpoint/restart
discipline the exascale-GROMACS line of work applies to runs (Páll et
al.), applied to *jobs*:

* :mod:`repro.durable.journal` — an append-only, checksummed JSON-lines
  job journal with atomic segment rotation and corruption-tolerant tail
  recovery, so a ``kill -9``'d service replays every accepted job on
  restart and completes it bit-identically;
* :mod:`repro.durable.results` — a bounded, restartable
  fingerprint→result store (atomic writes, integrity-checked loads, LRU
  eviction) acting as serve-level memoization above ``StepCache``:
  duplicate submissions across restarts answer from disk with the
  structured ``duplicate_completed`` result code;
* :mod:`repro.durable.slo` — per-tenant SLO metrics (p50/p99 latency,
  queue age, rejection/retry rates, journal replay counts), fed live by
  the service or rebuilt offline from CAT_SERVE trace spans, exported
  via the ``metrics`` wire op;
* :mod:`repro.durable.progress` — file-published step counts from the
  engine's step loop, streamed to clients by the ``progress`` wire op.

Enable it all with one knob: ``repro serve --journal-dir DIR`` (or
``ServeConfig(journal_dir=...)``).
"""

from repro.durable.journal import (
    JobJournal,
    JournalError,
    JournalRecovery,
    PendingJob,
    TYPE_ACCEPTED,
    TYPE_COMPLETED,
    TYPE_FAILED,
)
from repro.durable.progress import (
    ProgressWriter,
    progress_interval,
    read_progress,
)
from repro.durable.results import (
    CODE_DUPLICATE_COMPLETED,
    ResultStore,
    ResultStoreError,
)
from repro.durable.slo import SloTracker, TenantSlo, nearest_rank

__all__ = [
    "JobJournal",
    "JournalError",
    "JournalRecovery",
    "PendingJob",
    "TYPE_ACCEPTED",
    "TYPE_COMPLETED",
    "TYPE_FAILED",
    "ProgressWriter",
    "progress_interval",
    "read_progress",
    "CODE_DUPLICATE_COMPLETED",
    "ResultStore",
    "ResultStoreError",
    "SloTracker",
    "TenantSlo",
    "nearest_rank",
]
