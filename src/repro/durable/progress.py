"""Streaming progress for long MD jobs: step counts across processes.

A long ``md`` job is opaque between dispatch and completion; the
``progress`` wire op fixes that.  The plumbing has to cross a process
boundary — execution runs on a pool worker under the host-parallel
backend (DESIGN.md §9) — so progress travels the same way results are
made durable: through the filesystem.

* :class:`ProgressWriter` rides into the worker (picklable: a path and
  an interval).  The engine's step loop calls :meth:`ProgressWriter.
  update` every step; the writer rate-limits to every ``interval``
  steps (plus the final step) and publishes with the atomic
  write-temp-then-``os.replace`` idiom, so a concurrent reader sees a
  complete JSON document or nothing, never a torn one.
* :func:`read_progress` is the service-side poll: the current
  ``{"steps_done", "steps_total"}`` snapshot, or None before the first
  publish.

The report cadence deliberately reuses the engine's reporting rhythm
(a handful of publishes per run, not one per step), so the overhead is
unmeasurable next to a force evaluation.
"""

from __future__ import annotations

import json
import os
from pathlib import Path


class ProgressWriter:
    """Publish step progress to one file, every ``interval`` steps."""

    def __init__(self, path: str | Path, interval: int = 1) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1: {interval}")
        self.path = Path(path)
        self.interval = interval
        self._published = -1

    def update(self, steps_done: int, steps_total: int) -> None:
        """Record ``steps_done`` of ``steps_total``; cheap no-op between
        publish points."""
        final = steps_done >= steps_total
        if steps_done % self.interval and not final:
            return
        if steps_done <= self._published:
            return
        self._publish(steps_done, steps_total)

    def _publish(self, steps_done: int, steps_total: int) -> None:
        tmp = self.path.with_name(f".{self.path.name}.tmp")
        tmp.write_text(
            json.dumps(
                {
                    "steps_done": int(steps_done),
                    "steps_total": int(steps_total),
                }
            )
        )
        os.replace(tmp, self.path)
        self._published = steps_done


def read_progress(path: str | Path) -> dict | None:
    """Latest published snapshot, or None (not started, or torn away by
    a concurrent delete — both render as "no progress yet")."""
    try:
        raw = Path(path).read_text()
    except OSError:
        return None
    try:
        data = json.loads(raw)
    except json.JSONDecodeError:
        return None
    if not isinstance(data, dict):
        return None
    return data


def progress_interval(steps_total: int, publishes: int = 20) -> int:
    """An update cadence giving roughly ``publishes`` publishes per run
    (always >= 1)."""
    return max(steps_total // max(publishes, 1), 1)
