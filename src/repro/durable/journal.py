"""Crash-safe job journal: append-only, checksummed, replayable.

The serve tier's "no lost jobs" guarantee (DESIGN.md §10) held only
while the process lived — a ``kill -9`` forgot every accepted job.  The
journal extends the guarantee across process death, the same way the
REPROCKPT checkpoint format (DESIGN.md §7) extends a *run* across it:
every accepted job is recorded durably before the service acknowledges
it, every terminal outcome is recorded when it resolves, and a
restarted service replays the difference.  Because every request is a
pure function of its parameters (DESIGN.md §10), a replayed execution
is bit-identical to the one the dead process would have produced — the
journal only has to remember *what* was accepted, never partial state.

Format (``journal-NNNNNN.jsonl`` segments inside one directory): one
JSON object per line, each carrying a ``check`` field — BLAKE2b over
the record's canonical JSON with ``check`` removed — so every record is
independently verifiable.  Record types:

* ``accepted``  — job id, tenant, fingerprint, and the full request
  dict (everything replay needs to re-execute);
* ``completed`` — job id, fingerprint, and how it completed;
* ``failed``    — job id plus the structured error code/message.

Appends are flushed to the OS per record, so they survive ``kill -9``
(page cache outlives the process); ``fsync`` runs on segment rotation
and close, and per-record when ``fsync_each`` is set (power-loss
strictness at a measured throughput cost — see
``benchmarks/bench_journal_overhead.py``).

Recovery (:meth:`JobJournal.recover`) reads segments in order and is
corruption-tolerant by construction: a record that fails to parse or
checksum ends *that segment's* replay (counted, never raised), which
handles both the torn final append of a crashed writer and a
bit-flipped middle segment.  Jobs accepted without a terminal record
are the pending set.  Recovery then *compacts*: pending records are
rewritten into a fresh segment (fsynced before the old segments are
deleted), so journal size is bounded by the live backlog, not history.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

#: Segment filename shape (zero-padded so lexical order == age order).
SEGMENT_PREFIX = "journal-"
SEGMENT_SUFFIX = ".jsonl"
#: Journal format version stamped into every record.
JOURNAL_VERSION = 1

TYPE_ACCEPTED = "accepted"
TYPE_COMPLETED = "completed"
TYPE_FAILED = "failed"


class JournalError(RuntimeError):
    """The journal directory cannot be used (not corruption — that is
    tolerated and counted, never raised)."""


def _checksum(record: dict) -> str:
    """BLAKE2b over the canonical JSON of ``record`` sans ``check``."""
    body = {k: v for k, v in record.items() if k != "check"}
    blob = json.dumps(body, sort_keys=True).encode()
    return hashlib.blake2b(blob, digest_size=8).hexdigest()


def _seal(record: dict) -> bytes:
    record["check"] = _checksum(record)
    return json.dumps(record, sort_keys=True).encode() + b"\n"


@dataclass(frozen=True)
class PendingJob:
    """One accepted-but-unresolved job recovered from the journal."""

    jid: int
    fingerprint: str
    tenant: str
    request: dict


@dataclass
class JournalRecovery:
    """What :meth:`JobJournal.recover` found on disk."""

    #: Accepted jobs with no terminal record, in acceptance order.
    pending: list[PendingJob] = field(default_factory=list)
    #: Valid records read across all segments.
    records: int = 0
    #: Terminal records matched to an acceptance.
    completed: int = 0
    failed: int = 0
    #: Records dropped to corruption (torn tail or bad checksum); each
    #: drop also discards the remainder of its segment.
    corrupt_records: int = 0
    #: Segments that contained at least one corrupt/torn record.
    corrupt_segments: int = 0
    #: Highest job id seen (a restarted service must allocate above it).
    max_jid: int = 0

    @property
    def replayable(self) -> int:
        return len(self.pending)


class JobJournal:
    """Append-only journal of job acceptance and resolution.

    One writer per directory (the owning service); readers only exist
    at recovery time, before the writer starts appending.
    """

    def __init__(
        self,
        directory: str | Path,
        segment_records: int = 1024,
        fsync_each: bool = False,
    ) -> None:
        if segment_records < 1:
            raise JournalError(
                f"segment_records must be >= 1: {segment_records}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_records = segment_records
        self.fsync_each = fsync_each
        self._fh = None
        self._segment_index = self._max_segment_index()
        self._records_in_segment = 0
        #: Appends over the journal lifetime (observability).
        self.appended = 0

    # ------------------------------------------------------------------
    # segment bookkeeping
    # ------------------------------------------------------------------
    def _segments(self) -> list[Path]:
        return sorted(
            p
            for p in self.directory.iterdir()
            if p.name.startswith(SEGMENT_PREFIX)
            and p.name.endswith(SEGMENT_SUFFIX)
        )

    def _max_segment_index(self) -> int:
        best = 0
        for path in self._segments():
            stem = path.name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
            try:
                best = max(best, int(stem))
            except ValueError:
                continue
        return best

    def _segment_path(self, index: int) -> Path:
        return self.directory / f"{SEGMENT_PREFIX}{index:06d}{SEGMENT_SUFFIX}"

    def _open_next_segment(self) -> None:
        self._close_segment()
        self._segment_index += 1
        self._records_in_segment = 0
        # Append mode: a crashed writer's segment is never reopened (the
        # index always advances), so a torn tail stays where recovery
        # can isolate it.
        self._fh = open(self._segment_path(self._segment_index), "ab")

    def _close_segment(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        if self._fh is None or self._records_in_segment >= self.segment_records:
            self._open_next_segment()
        self._fh.write(_seal(record))
        # Flush to the OS so the record survives kill -9 of this
        # process; fsync (power-loss durability) is per-record only on
        # request, otherwise at rotation/close.
        self._fh.flush()
        if self.fsync_each:
            os.fsync(self._fh.fileno())
        self._records_in_segment += 1
        self.appended += 1

    def accepted(
        self, jid: int, fingerprint: str, tenant: str, request: dict
    ) -> None:
        """Record an admitted job (call before acknowledging the client)."""
        self._append(
            {
                "v": JOURNAL_VERSION,
                "type": TYPE_ACCEPTED,
                "jid": int(jid),
                "fingerprint": fingerprint,
                "tenant": tenant,
                "request": request,
            }
        )

    def completed(self, jid: int, fingerprint: str, code: str | None = None) -> None:
        """Record a successful terminal outcome."""
        self._append(
            {
                "v": JOURNAL_VERSION,
                "type": TYPE_COMPLETED,
                "jid": int(jid),
                "fingerprint": fingerprint,
                "code": code,
            }
        )

    def failed(self, jid: int, fingerprint: str, code: str, message: str) -> None:
        """Record a structured terminal failure."""
        self._append(
            {
                "v": JOURNAL_VERSION,
                "type": TYPE_FAILED,
                "jid": int(jid),
                "fingerprint": fingerprint,
                "code": code,
                "message": message,
            }
        )

    def flush(self) -> None:
        """Flush and fsync the open segment (drain-path barrier)."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Flush, fsync, and close the open segment.  Idempotent."""
        self._close_segment()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self) -> JournalRecovery:
        """Read every segment, compute the pending set, compact.

        Must run before the first append of this journal instance (the
        writer always opens a fresh segment, so recovery never races its
        own appends).  After recovery the directory holds exactly one
        segment: the pending records, rewritten and fsynced before the
        historical segments are unlinked — a crash mid-compaction leaves
        either the old segments or old + new (replay is idempotent on
        duplicate acceptance records: last record per jid wins).
        """
        recovery = JournalRecovery()
        accepted: dict[int, PendingJob] = {}
        resolved: set[int] = set()
        old_segments = self._segments()
        for path in old_segments:
            if not self._read_segment(path, accepted, resolved, recovery):
                recovery.corrupt_segments += 1
        recovery.pending = [
            job for jid, job in sorted(accepted.items()) if jid not in resolved
        ]
        self._compact(recovery.pending, old_segments)
        return recovery

    def _read_segment(
        self,
        path: Path,
        accepted: dict[int, PendingJob],
        resolved: set[int],
        recovery: JournalRecovery,
    ) -> bool:
        """Replay one segment; False when a torn/corrupt record ended it
        early (the remainder of the segment is dropped and counted)."""
        try:
            raw_lines = path.read_bytes().split(b"\n")
        except OSError:
            recovery.corrupt_records += 1
            return False
        for i, raw in enumerate(raw_lines):
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except ValueError:
                # Torn tail (crashed mid-append) or garbage: stop here.
                # ValueError covers JSONDecodeError and the
                # UnicodeDecodeError binary garbage raises first.
                recovery.corrupt_records += 1 + sum(
                    1 for r in raw_lines[i + 1 :] if r
                )
                return False
            if (
                not isinstance(record, dict)
                or record.get("check") != _checksum(record)
            ):
                recovery.corrupt_records += 1 + sum(
                    1 for r in raw_lines[i + 1 :] if r
                )
                return False
            recovery.records += 1
            jid = int(record.get("jid", 0))
            recovery.max_jid = max(recovery.max_jid, jid)
            rtype = record.get("type")
            if rtype == TYPE_ACCEPTED:
                accepted[jid] = PendingJob(
                    jid=jid,
                    fingerprint=str(record.get("fingerprint", "")),
                    tenant=str(record.get("tenant", "default")),
                    request=dict(record.get("request") or {}),
                )
            elif rtype == TYPE_COMPLETED:
                resolved.add(jid)
                recovery.completed += 1
            elif rtype == TYPE_FAILED:
                resolved.add(jid)
                recovery.failed += 1
            # Unknown types: forward-compatible skip (already counted).
        return True

    def _compact(
        self, pending: list[PendingJob], old_segments: list[Path]
    ) -> None:
        """Rewrite the pending set into a fresh fsynced segment, then
        drop history.  The new segment lands before anything is deleted,
        so no crash window loses an acceptance record."""
        if pending:
            self._open_next_segment()
            for job in pending:
                self._append(
                    {
                        "v": JOURNAL_VERSION,
                        "type": TYPE_ACCEPTED,
                        "jid": job.jid,
                        "fingerprint": job.fingerprint,
                        "tenant": job.tenant,
                        "request": job.request,
                    }
                )
            # The rewrite does not re-count as new traffic.
            self.appended -= len(pending)
            self._fh.flush()
            os.fsync(self._fh.fileno())
        for path in old_segments:
            try:
                path.unlink()
            except OSError:
                pass
