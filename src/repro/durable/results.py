"""Cross-restart fingerprint→result store (serve-level memoization).

`StepCache` (DESIGN.md §8) memoizes *within* one worker process; the
batcher's dedup memoizes *within* one service lifetime.  This store is
the layer above both: a completed job's payload, keyed by its request
fingerprint, survives process death — a duplicate submission against a
restarted service answers from disk with the structured
``duplicate_completed`` result code instead of re-executing.  Safe for
exactly the reason dedup is safe: every request is a pure function of
its fingerprinted parameters, so the stored payload *is* the payload a
fresh execution would produce, bit for bit.

One file per fingerprint (``<fp>.res``), in the REPROCKPT idiom
(DESIGN.md §7): a magic line, a SHA-256 line over the body, then the
JSON body.  Writes go to a temp file in the store directory, fsync,
``os.replace`` — a crash mid-write leaves the previous entry (or no
entry), never a torn one.  Loads verify the checksum and treat any
corruption as a miss (the entry is quarantined by deletion): a damaged
cache can cost a re-execution, never a wrong answer.

The store is bounded: ``max_entries`` with least-recently-*used*
eviction.  Access order is tracked in memory and mirrored to file
mtimes (``os.utime`` on hit), so the LRU order itself survives
restarts.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

MAGIC = b"REPRORES1"
SUFFIX = ".res"
#: Result-record schema version inside the body.
FORMAT_VERSION = 1

#: Result codes surfaced through :class:`~repro.serve.jobs.JobResult`.
CODE_DUPLICATE_COMPLETED = "duplicate_completed"


class ResultStoreError(RuntimeError):
    """The store directory cannot be used (corrupt *entries* are
    tolerated as misses, never raised)."""


class ResultStore:
    """Bounded, restartable fingerprint → result-payload store."""

    def __init__(self, directory: str | Path, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ResultStoreError(f"max_entries must be >= 1: {max_entries}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt_dropped = 0
        #: fingerprint -> path, in least-recently-used-first order.
        self._order: dict[str, Path] = {}
        self._load_index()

    # ------------------------------------------------------------------
    # index
    # ------------------------------------------------------------------
    def _load_index(self) -> None:
        entries = [
            p for p in self.directory.iterdir() if p.name.endswith(SUFFIX)
        ]
        # mtime carries the pre-restart LRU order (ties broken by name
        # for determinism).
        entries.sort(key=lambda p: (p.stat().st_mtime, p.name))
        for path in entries:
            self._order[path.name[: -len(SUFFIX)]] = path
        while len(self._order) > self.max_entries:
            self._evict_oldest()

    def _evict_oldest(self) -> None:
        fingerprint = next(iter(self._order))
        path = self._order.pop(fingerprint)
        try:
            path.unlink()
        except OSError:
            pass
        self.evictions += 1

    def _touch(self, fingerprint: str) -> None:
        path = self._order.pop(fingerprint)
        self._order[fingerprint] = path
        try:
            os.utime(path)
        except OSError:
            pass

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._order

    # ------------------------------------------------------------------
    # read/write
    # ------------------------------------------------------------------
    def _path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}{SUFFIX}"

    def put(self, fingerprint: str, record: dict) -> None:
        """Store one result record atomically; evicts LRU past the bound.

        ``record`` is the JSON-serialisable result body (payload plus
        whatever identity fields the caller wants back on a hit).
        """
        body = json.dumps(
            {"version": FORMAT_VERSION, "record": record}, sort_keys=True
        ).encode()
        digest = hashlib.sha256(body).hexdigest().encode("ascii")
        path = self._path(fingerprint)
        tmp = self.directory / f".{path.name}.tmp"
        with open(tmp, "wb") as fh:
            fh.write(MAGIC + b"\n")
            fh.write(digest + b"\n")
            fh.write(body)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        if fingerprint in self._order:
            self._order.pop(fingerprint)
        self._order[fingerprint] = path
        while len(self._order) > self.max_entries:
            self._evict_oldest()

    def get(self, fingerprint: str) -> dict | None:
        """The stored record, or None.  Any corruption (bad magic, bad
        checksum, malformed body) drops the entry and reports a miss."""
        path = self._order.get(fingerprint)
        if path is None:
            self.misses += 1
            return None
        try:
            with open(path, "rb") as fh:
                magic = fh.readline().rstrip(b"\n")
                digest_line = fh.readline().rstrip(b"\n")
                body = fh.read()
        except OSError:
            self._drop_corrupt(fingerprint)
            return None
        if (
            magic != MAGIC
            or hashlib.sha256(body).hexdigest().encode("ascii") != digest_line
        ):
            self._drop_corrupt(fingerprint)
            return None
        try:
            data = json.loads(body)
            record = data["record"]
        except (json.JSONDecodeError, KeyError, TypeError):
            self._drop_corrupt(fingerprint)
            return None
        self.hits += 1
        self._touch(fingerprint)
        return record

    def _drop_corrupt(self, fingerprint: str) -> None:
        path = self._order.pop(fingerprint, None)
        if path is not None:
            try:
                path.unlink()
            except OSError:
                pass
        self.corrupt_dropped += 1
        self.misses += 1

    def sync(self) -> None:
        """fsync the store directory (drain-path barrier: makes the
        renames themselves durable)."""
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def stats(self) -> dict:
        return {
            "entries": len(self._order),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corrupt_dropped": self.corrupt_dropped,
        }
