"""Per-tenant SLO metrics for the serve/fleet tier.

The exascale-GROMACS line of work treats run-level telemetry as a
production requirement, not an afterthought; the serving layer gets the
same discipline.  A :class:`SloTracker` accumulates, per tenant:

* **latency** — end-to-end seconds per completed job (queue wait plus
  execution, the same numbers the CAT_SERVE ``queue:``/``exec:`` trace
  spans carry), summarised as p50/p99 over a bounded sample window;
* **outcome rates** — completion, failure, rejection, and retry rates
  over everything the tenant submitted;
* **durability counters** — journal replays and result-store hits,
  so a restart's recovery work is attributable per tenant.

Two feeding paths produce identical numbers:

* the live service calls the ``observe_*`` hooks as jobs resolve
  (always on — a few dict updates per job);
* :meth:`SloTracker.from_trace` rebuilds a tracker offline from the
  recorded CAT_SERVE spans of a traced run (``queue:<id>`` spans carry
  the tenant and the queue wait; ``exec:<id>`` spans carry the
  execution window), for post-hoc analysis of a trace file.

Percentiles use the deterministic nearest-rank definition over the
retained window (the most recent ``window`` samples per tenant), so two
services that saw the same jobs report the same numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Retained latency samples per tenant (oldest evicted first).
DEFAULT_WINDOW = 2048


def nearest_rank(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of an unsorted sample set;
    0.0 on an empty set so idle tenants render cleanly."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1]: {q}")
    ordered = sorted(samples)
    rank = max(math.ceil(q * len(ordered)), 1)
    return ordered[rank - 1]


@dataclass
class TenantSlo:
    """One tenant's accumulators."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    rejected_by_reason: dict = field(default_factory=dict)
    retried: int = 0
    journal_replays: int = 0
    store_hits: int = 0
    #: Bounded most-recent latency window (seconds, queue + execute).
    latencies: list[float] = field(default_factory=list)
    queue_waits: list[float] = field(default_factory=list)

    def as_dict(self) -> dict:
        total = self.submitted + self.rejected
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "rejected_by_reason": dict(self.rejected_by_reason),
            "retried": self.retried,
            "journal_replays": self.journal_replays,
            "store_hits": self.store_hits,
            "rejection_rate": self.rejected / total if total else 0.0,
            "retry_rate": (
                self.retried / self.submitted if self.submitted else 0.0
            ),
            "p50_latency_s": nearest_rank(self.latencies, 0.50),
            "p99_latency_s": nearest_rank(self.latencies, 0.99),
            "p50_queue_s": nearest_rank(self.queue_waits, 0.50),
            "p99_queue_s": nearest_rank(self.queue_waits, 0.99),
            "samples": len(self.latencies),
        }


class SloTracker:
    """Per-tenant SLO accumulation (live hooks or trace replay)."""

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1: {window}")
        self.window = window
        self._tenants: dict[str, TenantSlo] = {}

    def tenant(self, name: str) -> TenantSlo:
        slo = self._tenants.get(name)
        if slo is None:
            slo = self._tenants[name] = TenantSlo()
        return slo

    # ------------------------------------------------------------------
    # live observation hooks
    # ------------------------------------------------------------------
    def observe_submitted(self, tenant: str) -> None:
        self.tenant(tenant).submitted += 1

    def observe_rejected(self, tenant: str, code: str) -> None:
        slo = self.tenant(tenant)
        slo.rejected += 1
        slo.rejected_by_reason[code] = (
            slo.rejected_by_reason.get(code, 0) + 1
        )

    def observe_result(
        self,
        tenant: str,
        ok: bool,
        queue_seconds: float,
        execute_seconds: float,
        attempts: int = 1,
        replayed: bool = False,
        store_hit: bool = False,
    ) -> None:
        slo = self.tenant(tenant)
        if ok:
            slo.completed += 1
        else:
            slo.failed += 1
        if attempts > 1:
            slo.retried += 1
        if replayed:
            slo.journal_replays += 1
        if store_hit:
            slo.store_hits += 1
        self._sample(slo.latencies, queue_seconds + execute_seconds)
        self._sample(slo.queue_waits, queue_seconds)

    def _sample(self, window: list[float], value: float) -> None:
        window.append(max(float(value), 0.0))
        if len(window) > self.window:
            del window[: len(window) - self.window]

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def as_dict(self, tenant_queues: dict | None = None) -> dict:
        """Per-tenant metrics; ``tenant_queues`` (the live queue's
        depth/oldest-age snapshot) is merged in so one call answers the
        whole ``metrics`` op."""
        out: dict[str, dict] = {}
        names = set(self._tenants) | set(tenant_queues or {})
        for name in sorted(names):
            row = (
                self._tenants[name].as_dict()
                if name in self._tenants
                else TenantSlo().as_dict()
            )
            queues = (tenant_queues or {}).get(name)
            row["queue_depth"] = queues["depth"] if queues else 0
            row["oldest_age_seconds"] = (
                queues["oldest_age_seconds"] if queues else 0.0
            )
            out[name] = row
        return out

    # ------------------------------------------------------------------
    # trace aggregation
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, events, window: int = DEFAULT_WINDOW) -> "SloTracker":
        """Rebuild a tracker from recorded CAT_SERVE spans.

        ``queue:<job_id>`` spans carry ``tenant`` and the queue wait;
        ``exec:<job_id>`` spans carry the execution window.  Reject
        instants (``reject:<code>``) carry the tenant.  Works on a
        :class:`~repro.trace.events.Tracer` or a plain event list.
        """
        from repro.trace.events import CAT_SERVE

        event_list = getattr(events, "events", events)
        tracker = cls(window=window)
        params = getattr(events, "params", None)
        per_cycle = params.cycle_s if params is not None else 1.0

        def seconds(ev) -> float:
            return ev.duration_cycles * per_cycle

        queue_spans: dict[str, object] = {}
        exec_spans: dict[str, object] = {}
        for ev in event_list:
            if ev.category != CAT_SERVE:
                continue
            kind, _, rest = ev.name.partition(":")
            if kind == "queue" and ev.duration_cycles >= 0:
                queue_spans[rest] = ev
            elif kind == "exec":
                exec_spans[rest] = ev
            elif kind == "reject":
                tracker.observe_rejected(
                    str(ev.args.get("tenant", "default")), rest
                )
        for job_id, qev in sorted(queue_spans.items()):
            tenant = str(qev.args.get("tenant", "default"))
            eev = exec_spans.get(job_id)
            tracker.observe_submitted(tenant)
            tracker.observe_result(
                tenant,
                ok=True,
                queue_seconds=seconds(qev),
                execute_seconds=seconds(eev) if eev is not None else 0.0,
            )
        return tracker
