"""Discrete-event model of CPE double buffering ("full pipeline
acceleration", the paper's contribution (3)).

The strategy kernels charge DMA and compute through a single scalar
overlap factor (`ChipParams.pipeline_overlap`).  This module provides the
underlying event-level model — iteration *i*'s fetch overlaps iteration
*i-1*'s compute through a fixed number of buffer slots — so the scalar
can be *derived* instead of assumed:

    T = f_0 + sum_i max-ish(c_i, f_{i+1}) + c_last     (2 buffers)

`effective_overlap` converts a simulated schedule back into the scalar
the cost model uses; an ablation bench sweeps compute/DMA ratios and
checks the calibrated 0.85 sits inside the achievable band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.events import (
    CAT_COMPUTE,
    CAT_DMA,
    CAT_PIPELINE,
    DMA_TRACK,
    NULL_TRACER,
    NullTracer,
)


@dataclass
class PipelineSchedule:
    """Outcome of one double-buffered kernel simulation."""

    total_seconds: float
    fetch_seconds: float
    compute_seconds: float
    stall_seconds: float  # compute idle waiting on fetches

    @property
    def serial_seconds(self) -> float:
        return self.fetch_seconds + self.compute_seconds


def simulate_double_buffer(
    fetch_times: np.ndarray,
    compute_times: np.ndarray,
    n_buffers: int = 2,
    tracer: NullTracer = NULL_TRACER,
    cpe_id: int = 0,
) -> PipelineSchedule:
    """Event-driven schedule of a fetch/compute loop with ``n_buffers``
    DMA slots.

    Iteration *i* cannot compute before its fetch completes; a fetch for
    iteration *i* cannot start before buffer slot ``i mod n_buffers`` is
    released by compute ``i - n_buffers``.  Fetches are serialised on the
    single DMA channel.

    With a recording ``tracer``, every fetch lands on the DMA track and
    every compute stage on ``cpe_id``'s track at its scheduled position
    (input times are recorded as cycles), so the interleaving is
    inspectable in Perfetto.
    """
    f = np.asarray(fetch_times, dtype=np.float64)
    c = np.asarray(compute_times, dtype=np.float64)
    if f.shape != c.shape:
        raise ValueError(f"shape mismatch: {f.shape} vs {c.shape}")
    if (f < 0).any() or (c < 0).any():
        raise ValueError("times must be non-negative")
    if n_buffers < 1:
        raise ValueError(f"n_buffers must be >= 1: {n_buffers}")
    n = len(f)
    if n == 0:
        return PipelineSchedule(0.0, 0.0, 0.0, 0.0)

    traced = tracer.enabled
    base = max(tracer.cursor(cpe_id), tracer.cursor(DMA_TRACK)) if traced else 0.0
    fetch_done = np.zeros(n)
    compute_done = np.zeros(n)
    dma_free = 0.0
    for i in range(n):
        # Buffer reuse: wait for the compute that owned this slot.
        slot_free = compute_done[i - n_buffers] if i >= n_buffers else 0.0
        start = max(dma_free, slot_free)
        fetch_done[i] = start + f[i]
        dma_free = fetch_done[i]
        compute_start = max(fetch_done[i], compute_done[i - 1] if i else 0.0)
        compute_done[i] = compute_start + c[i]
        if traced:
            tracer.span(
                "fetch", CAT_DMA, DMA_TRACK, base + start, f[i], iteration=i
            )
            tracer.span(
                "compute", CAT_COMPUTE, cpe_id, base + compute_start, c[i],
                iteration=i,
            )

    total = float(compute_done[-1])
    if traced:
        tracer.span(
            "double_buffer", CAT_PIPELINE, cpe_id, base, total,
            n_iterations=n, n_buffers=n_buffers,
        )
    stall = total - float(c.sum())
    return PipelineSchedule(
        total_seconds=total,
        fetch_seconds=float(f.sum()),
        compute_seconds=float(c.sum()),
        stall_seconds=stall,
    )


def effective_overlap(schedule: PipelineSchedule) -> float:
    """The scalar overlap the cost model would need to reproduce this
    schedule: ``T = C + F - overlap * min(C, F)``."""
    c = schedule.compute_seconds
    f = schedule.fetch_seconds
    denom = min(c, f)
    if denom == 0.0:
        return 1.0
    return float(np.clip((c + f - schedule.total_seconds) / denom, 0.0, 1.0))


def overlap_sweep(
    ratio_grid: np.ndarray,
    n_iterations: int = 512,
    cv: float = 0.3,
    n_buffers: int = 2,
    seed: int = 0,
) -> list[tuple[float, float]]:
    """Effective overlap across compute/fetch ratios.

    ``cv`` is the per-iteration coefficient of variation (real pair lists
    have uneven cluster populations).  Returns (ratio, overlap) rows.
    """
    rng = np.random.default_rng(seed)
    rows = []
    for ratio in np.asarray(ratio_grid, dtype=np.float64):
        f = np.abs(rng.normal(1.0, cv, n_iterations))
        c = np.abs(rng.normal(ratio, cv * ratio, n_iterations))
        sched = simulate_double_buffer(f, c, n_buffers)
        rows.append((float(ratio), effective_overlap(sched)))
    return rows
