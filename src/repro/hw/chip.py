"""Core group and chip composition.

A :class:`CoreGroup` is the unit the paper programs: one MPE + 64 CPEs +
one DMA engine + the register mesh.  One MPI rank maps to one CG.  A
:class:`Sw26010Chip` bundles four CGs (used by the scalability model to
convert CG counts to chip counts).

Time model for a parallel kernel launch (``run_elapsed``): the critical
CPE's compute cycles, DMA time overlapped per the pipeline model, gld/gst
stalls, then any serial MPE cycles — see `repro.hw.perf.PerfCounters`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.cpe import Cpe
from repro.hw.dma import DmaEngine
from repro.hw.mpe import Mpe
from repro.hw.noc import RegisterMesh
from repro.hw.params import ChipParams, DEFAULT_PARAMS
from repro.hw.perf import PerfCounters


class CoreGroup:
    """One SW26010 core group: 1 MPE + 64 CPEs + shared DMA engine."""

    def __init__(self, params: ChipParams = DEFAULT_PARAMS, cg_id: int = 0) -> None:
        self.params = params
        self.cg_id = cg_id
        self.mpe = Mpe(params)
        self.cpes = [Cpe(i, params) for i in range(params.n_cpes)]
        self.dma = DmaEngine(params)
        self.mesh = RegisterMesh(params)

    def reset(self) -> None:
        self.mpe.reset()
        for cpe in self.cpes:
            cpe.reset()
        self.dma.reset()

    def critical_cpe_cycles(self) -> float:
        """Max compute cycles over the 64 CPEs (the load-balance limit)."""
        return max(cpe.total_cycles() for cpe in self.cpes)

    def imbalance(self) -> float:
        """Critical / mean CPE cycles; 1.0 = perfectly balanced."""
        cycles = np.array([cpe.total_cycles() for cpe in self.cpes])
        mean = cycles.mean()
        if mean == 0.0:
            return 1.0
        return float(cycles.max() / mean)

    def make_counters(self, pipelined: bool = True) -> PerfCounters:
        """Fresh counters bound to this CG's parameters and DMA engine."""
        return PerfCounters(params=self.params, pipelined=pipelined, dma=self.dma)

    def elapsed_seconds(self, pipelined: bool = True) -> float:
        """Modelled time of the most recent kernel, from the CPE accounts
        plus the shared DMA engine.  Callers must reset() between kernels.
        """
        counters = PerfCounters(
            params=self.params, pipelined=pipelined, dma=self.dma
        )
        counters.charge_cpe_cycles(self.critical_cpe_cycles())
        counters.charge_mpe_cycles(self.mpe.cycles)
        return counters.elapsed_seconds()


@dataclass
class Sw26010Chip:
    """One SW26010 chip: four core groups connected by the NoC."""

    params: ChipParams = DEFAULT_PARAMS
    core_groups: list[CoreGroup] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.core_groups:
            self.core_groups = [
                CoreGroup(self.params, cg_id=i)
                for i in range(self.params.n_core_groups_per_chip)
            ]

    @property
    def n_core_groups(self) -> int:
        return len(self.core_groups)

    def peak_gflops(self) -> float:
        return self.params.peak_gflops_per_cg * self.n_core_groups


def chips_for_core_groups(n_cgs: int, params: ChipParams = DEFAULT_PARAMS) -> int:
    """Number of physical chips hosting ``n_cgs`` core groups (ceil)."""
    if n_cgs <= 0:
        raise ValueError(f"n_cgs must be positive, got {n_cgs}")
    per_chip = params.n_core_groups_per_chip
    return (n_cgs + per_chip - 1) // per_chip
