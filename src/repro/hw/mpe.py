"""Management Processing Element (MPE) model.

The MPE runs the serial parts of the workflow (domain decomposition, MPI,
I/O, anything not offloaded) and, in the USTC baseline strategy, collects
force contributions streamed back by the CPEs.  It is a conventional core
with real caches, so its memory behaviour is folded into per-operation
cycle constants rather than modelled transaction by transaction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.params import ChipParams, DEFAULT_PARAMS


@dataclass
class Mpe:
    """One MPE: a serial cycle account plus named work categories."""

    params: ChipParams = DEFAULT_PARAMS
    cycles: float = 0.0

    def charge(self, cycles: float) -> None:
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative: {cycles}")
        self.cycles += cycles

    def charge_pairs_scalar(self, n_pairs: int) -> None:
        """Charge the unported scalar GROMACS pair kernel (the Ori rung)."""
        self.charge(n_pairs * self.params.mpe_scalar_pair_cycles)

    def seconds(self) -> float:
        return self.cycles * self.params.cycle_s

    def reset(self) -> None:
        self.cycles = 0.0
