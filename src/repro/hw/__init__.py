"""SW26010 hardware model: the substrate the paper's kernels run on.

Public surface:

* :class:`ChipParams` / :data:`DEFAULT_PARAMS` — all architectural and
  cost-model constants (one calibrated set, see DESIGN.md §4).
* :class:`CoreGroup`, :class:`Sw26010Chip` — chip composition.
* :class:`DmaEngine` — Table 2 bandwidth curve + transaction accounting.
* :class:`DirectMappedReadCache`, :class:`TwoWaySetAssociativeCache`,
  :class:`AddressMap` — the software caches of Figs. 3-4 and §3.5.
* :class:`LineMarkBitmap` — the Bit-Map marks of §3.3.
* :class:`FloatV4` / :func:`vshuff` — the 256-bit SIMD model.
* :class:`PerfCounters`, :class:`KernelTiming` — event-to-time conversion.
"""

from repro.hw.bitmap import LineMarkBitmap
from repro.hw.cache import (
    AddressMap,
    CacheStats,
    DirectMappedReadCache,
    TwoWaySetAssociativeCache,
    count_misses_direct_mapped,
)
from repro.hw.chip import CoreGroup, Sw26010Chip, chips_for_core_groups
from repro.hw.cpe import Cpe
from repro.hw.dma import DmaEngine, bandwidth_table, interpolate_bandwidth_gbs
from repro.hw.ldm import LdmAllocator, LdmOverflowError
from repro.hw.mpe import Mpe
from repro.hw.noc import RegisterMesh
from repro.hw.params import DEFAULT_PARAMS, ChipParams, PLATFORM_TABLE, PlatformSpec
from repro.hw.perf import KernelTiming, PerfCounters
from repro.hw.simd import LANES, FloatV4, OpCounter, vshuff

__all__ = [
    "AddressMap",
    "CacheStats",
    "ChipParams",
    "CoreGroup",
    "Cpe",
    "DEFAULT_PARAMS",
    "DirectMappedReadCache",
    "DmaEngine",
    "FloatV4",
    "KernelTiming",
    "LANES",
    "LdmAllocator",
    "LdmOverflowError",
    "LineMarkBitmap",
    "Mpe",
    "OpCounter",
    "PerfCounters",
    "PLATFORM_TABLE",
    "PlatformSpec",
    "RegisterMesh",
    "Sw26010Chip",
    "TwoWaySetAssociativeCache",
    "bandwidth_table",
    "chips_for_core_groups",
    "count_misses_direct_mapped",
    "interpolate_bandwidth_gbs",
    "vshuff",
]
