"""Register-communication mesh between CPEs (8x8 row/column buses).

CPEs in the same row or column can exchange 256-bit messages over the
on-chip bus far faster than via main memory.  SW_GROMACS itself reduces
force copies through main memory, but the row/column mesh is the natural
substrate for the *ablation* comparing main-memory reduction against an
on-chip tree reduction, so we model it: functional message passing plus a
latency/bandwidth cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.params import ChipParams, DEFAULT_PARAMS

#: Cycles for one 256-bit register-bus hop (documented order: ~10 cycles).
ROW_COL_HOP_CYCLES = 11.0
MESSAGE_BYTES = 32  # one 256-bit register


@dataclass
class NocStats:
    messages: int = 0
    bytes: int = 0
    cycles: float = 0.0


class RegisterMesh:
    """8x8 CPE mesh with row/column register communication."""

    def __init__(self, params: ChipParams = DEFAULT_PARAMS) -> None:
        self.params = params
        self.rows = params.cpe_mesh_rows
        self.cols = params.cpe_mesh_cols
        self.stats = NocStats()
        # mailbox[dst] holds (src, payload) tuples in arrival order
        self._mailboxes: dict[int, list[tuple[int, np.ndarray]]] = {
            i: [] for i in range(self.rows * self.cols)
        }

    def coords(self, cpe_id: int) -> tuple[int, int]:
        if not 0 <= cpe_id < self.rows * self.cols:
            raise IndexError(f"CPE id {cpe_id} out of range")
        return divmod(cpe_id, self.cols)

    def can_communicate(self, src: int, dst: int) -> bool:
        """True when src and dst share a row or a column."""
        (r0, c0), (r1, c1) = self.coords(src), self.coords(dst)
        return r0 == r1 or c0 == c1

    def send(self, src: int, dst: int, payload: np.ndarray) -> float:
        """Send one 256-bit message; returns modelled seconds."""
        if src == dst:
            raise ValueError("CPE cannot register-send to itself")
        if not self.can_communicate(src, dst):
            raise ValueError(
                f"CPE {src} and {dst} share neither row nor column; "
                "register communication requires a row/column path"
            )
        data = np.asarray(payload, dtype=np.float32)
        if data.nbytes > MESSAGE_BYTES:
            raise ValueError(
                f"register message is {data.nbytes} B; max {MESSAGE_BYTES} B"
            )
        self._mailboxes[dst].append((src, data.copy()))
        self.stats.messages += 1
        self.stats.bytes += data.nbytes
        self.stats.cycles += ROW_COL_HOP_CYCLES
        return ROW_COL_HOP_CYCLES * self.params.cycle_s

    def receive(self, dst: int) -> tuple[int, np.ndarray]:
        """Pop the oldest pending message for ``dst`` (FIFO order)."""
        box = self._mailboxes[dst]
        if not box:
            raise LookupError(f"CPE {dst} has no pending register messages")
        return box.pop(0)

    def tree_reduce_time(self, vector_bytes: int) -> float:
        """Modelled time to sum one ``vector_bytes`` array across all 64
        CPEs with a row-then-column tree (log2(8)=3 hops each phase).

        Used by the reduction ablation bench as the on-chip alternative to
        the paper's main-memory reduction.
        """
        n_messages = vector_bytes / MESSAGE_BYTES
        hops = 2 * int(np.ceil(np.log2(self.cols)))
        cycles = hops * n_messages * ROW_COL_HOP_CYCLES
        return cycles * self.params.cycle_s
