"""Computing Processing Element (CPE) model.

A CPE bundles the resources a kernel sees: an LDM allocator, a SIMD op
counter, and a local cycle account.  The 64 CPEs of a core group execute
SPMD kernels; `repro.parallel.athread` partitions work across them and
`repro.hw.chip.CoreGroup` turns per-CPE cycle totals into a critical-path
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.ldm import LdmAllocator
from repro.hw.params import ChipParams, DEFAULT_PARAMS
from repro.hw.simd import OpCounter


@dataclass
class Cpe:
    """One CPE: id, LDM, SIMD counter, and scalar/vector cycle accounts."""

    cpe_id: int
    params: ChipParams = DEFAULT_PARAMS
    ldm: LdmAllocator = field(default_factory=lambda: LdmAllocator())
    simd_ops: OpCounter = field(default_factory=OpCounter)
    scalar_cycles: float = 0.0
    #: Fine-grained global memory operations issued by this CPE.
    n_gld: int = 0
    n_gst: int = 0

    def __post_init__(self) -> None:
        if self.cpe_id < 0:
            raise ValueError(f"cpe_id must be non-negative: {self.cpe_id}")
        self.ldm = LdmAllocator(self.params.ldm_bytes)

    def charge_scalar(self, cycles: float) -> None:
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative: {cycles}")
        self.scalar_cycles += cycles

    def charge_gld(self, count: int = 1) -> None:
        if count < 0:
            raise ValueError(f"gld count must be non-negative, got {count}")
        self.n_gld += count

    def charge_gst(self, count: int = 1) -> None:
        if count < 0:
            raise ValueError(f"gst count must be non-negative, got {count}")
        self.n_gst += count

    def total_cycles(self) -> float:
        """Compute cycles including SIMD issue slots and gld/gst stalls.

        Each vector instruction occupies one issue slot; gld/gst stall the
        core for their full latency (they cannot be hidden on the CPE).
        """
        return (
            self.scalar_cycles
            + self.simd_ops.total
            + self.n_gld * self.params.gld_latency_cycles
            + self.n_gst * self.params.gst_latency_cycles
        )

    def reset(self) -> None:
        self.scalar_cycles = 0.0
        self.n_gld = 0
        self.n_gst = 0
        self.simd_ops = OpCounter()
        self.ldm.reset()
