"""Software-managed caches for CPE kernels.

The SW26010 CPE has no hardware data cache — kernels build their own in
LDM.  The paper uses three:

* a direct-mapped *read cache* over particle packages (Fig. 3) for the
  short-range kernel;
* a direct-mapped *write-back cache* for deferred force updates (Fig. 4,
  implemented in `repro.core.deferred` on top of the tag machinery here);
* a *two-way set-associative* cache for pair-list generation (§3.5), where
  the access pattern thrashes a direct map (>85 % misses) but behaves with
  two ways (<10 %).

Addresses are particle-package indices, decomposed exactly as in the
figures: ``| tag (24 b) | line index (5 b) | offset (3 b) |``.

Two implementations of miss counting exist: the exact sequential cache
classes below, and :func:`count_misses_direct_mapped`, a vectorised
counter using the observation that per-set miss count equals the number of
tag *changes* in that set's access sequence.  Property tests assert they
agree on arbitrary traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np



@dataclass(frozen=True)
class AddressMap:
    """Bit-field decomposition of a package index (Figs. 3-4, Algorithm 3).

    ``offset_bits`` select the package within a cache line, ``index_bits``
    select the cache line slot, and the remaining high bits are the tag.
    """

    index_bits: int = 5
    offset_bits: int = 3

    @property
    def n_lines(self) -> int:
        return 1 << self.index_bits

    @property
    def packages_per_line(self) -> int:
        return 1 << self.offset_bits

    def decompose(self, package_index: int) -> tuple[int, int, int]:
        """Return ``(tag, line, offset)`` for one package index."""
        if package_index < 0:
            raise ValueError(f"package index must be non-negative: {package_index}")
        offset = package_index & ((1 << self.offset_bits) - 1)
        line = (package_index >> self.offset_bits) & ((1 << self.index_bits) - 1)
        tag = package_index >> (self.index_bits + self.offset_bits)
        return tag, line, offset

    def line_address(self, package_index: int) -> int:
        """Global line number (``Cache_Begin`` in Algorithm 3)."""
        return package_index >> self.offset_bits

    def compose(self, tag: int, line: int, offset: int = 0) -> int:
        """Inverse of :meth:`decompose` (Algorithm 3 line 12)."""
        return (
            (tag << (self.index_bits + self.offset_bits))
            | (line << self.offset_bits)
            | offset
        )


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.writebacks += other.writebacks


class DirectMappedReadCache:
    """Tag store of the Fig. 3 read cache.

    The cache tracks only *which* lines are resident — kernels read the
    actual package data straight from the (numpy) main-memory arrays and
    charge DMA time on each miss, which is behaviourally identical because
    a hit returns the same bytes the earlier DMA brought in.
    """

    def __init__(self, amap: AddressMap | None = None) -> None:
        self.amap = amap or AddressMap()
        self.tags = np.full(self.amap.n_lines, -1, dtype=np.int64)
        self.stats = CacheStats()

    def access(self, package_index: int) -> bool:
        """Touch one package; return True on hit, False on miss (line filled)."""
        tag, line, _ = self.amap.decompose(package_index)
        if self.tags[line] == tag:
            self.stats.hits += 1
            return True
        if self.tags[line] != -1:
            self.stats.evictions += 1
        self.tags[line] = tag
        self.stats.misses += 1
        return False

    def access_line(self, line_address: int) -> bool:
        """Touch a whole line by its global line number."""
        return self.access(line_address << self.amap.offset_bits)

    def reset(self) -> None:
        self.tags.fill(-1)
        self.stats = CacheStats()


class TwoWaySetAssociativeCache:
    """Two-way set-associative read cache with per-set LRU (§3.5).

    Same tag-only design as the direct-mapped cache; one extra way per set
    eliminates the pair-list generation thrashing the paper describes.
    """

    WAYS = 2

    def __init__(self, amap: AddressMap | None = None) -> None:
        # With the same total capacity, two ways halve the set count.
        base = amap or AddressMap()
        if base.index_bits < 1:
            raise ValueError("two-way cache needs at least 1 index bit")
        self.amap = AddressMap(base.index_bits - 1, base.offset_bits)
        self.tags = np.full((self.amap.n_lines, self.WAYS), -1, dtype=np.int64)
        self.lru = np.zeros(self.amap.n_lines, dtype=np.int8)  # way to evict next
        self.stats = CacheStats()

    def access(self, package_index: int) -> bool:
        tag, line, _ = self.amap.decompose(package_index)
        ways = self.tags[line]
        for w in range(self.WAYS):
            if ways[w] == tag:
                self.stats.hits += 1
                self.lru[line] = 1 - w  # the other way becomes eviction victim
                return True
        victim = int(self.lru[line])
        if ways[victim] != -1:
            self.stats.evictions += 1
        ways[victim] = tag
        self.lru[line] = 1 - victim
        self.stats.misses += 1
        return False

    def access_line(self, line_address: int) -> bool:
        return self.access(line_address << self.amap.offset_bits)

    def reset(self) -> None:
        self.tags.fill(-1)
        self.lru.fill(0)
        self.stats = CacheStats()


def count_misses_direct_mapped(
    package_indices: np.ndarray, amap: AddressMap | None = None
) -> int:
    """Vectorised miss count for a direct-mapped cache over a full trace.

    For each set, the cache holds exactly one tag, so the miss count is the
    number of positions in that set's access sequence where the tag differs
    from the previous access (plus one for the cold first access).  Sorting
    the trace by (set, position) with a stable sort lets ``np.diff`` find
    all tag changes at once — the numpy idiom replacing a per-access Python
    loop (guide: vectorise the inner loop, not the algorithm).
    """
    amap = amap or AddressMap()
    idx = np.asarray(package_indices, dtype=np.int64)
    if idx.size == 0:
        return 0
    if (idx < 0).any():
        raise ValueError("package indices must be non-negative")
    lines = (idx >> amap.offset_bits) & (amap.n_lines - 1)
    tags = idx >> (amap.index_bits + amap.offset_bits)
    order = np.argsort(lines, kind="stable")
    sorted_lines = lines[order]
    sorted_tags = tags[order]
    new_set = np.empty(idx.size, dtype=bool)
    new_set[0] = True
    np.not_equal(sorted_lines[1:], sorted_lines[:-1], out=new_set[1:])
    tag_change = np.empty(idx.size, dtype=bool)
    tag_change[0] = True
    np.not_equal(sorted_tags[1:], sorted_tags[:-1], out=tag_change[1:])
    return int(np.count_nonzero(new_set | tag_change))


def count_misses_two_way(
    package_indices: np.ndarray, amap: AddressMap | None = None
) -> int:
    """Vectorised miss count for the two-way LRU cache over a full trace.

    ``amap`` is the *base* (direct-mapped) geometry; like
    :class:`TwoWaySetAssociativeCache` itself, the two-way layout halves
    the set count at equal capacity.

    The vectorisation rests on a run-collapse identity.  Collapse each
    set's access sequence into runs of equal tags (every non-head access
    of a run trivially hits).  After processing run ``p`` the set's two
    ways always hold ``{tag[p] (MRU), tag[p-1] (LRU)}`` — by induction: a
    hit promotes ``tag[p]`` and demotes ``tag[p-1]``; a miss evicts the
    old LRU and installs ``tag[p]``, demoting ``tag[p-1]`` likewise.  So
    the head of run ``p`` hits iff its tag equals the tag two runs back
    in the same set, and the miss count is the number of run heads where
    it does not (the first two runs of every set are cold misses).
    Property tests assert agreement with the sequential class on
    arbitrary traces.
    """
    base = amap or AddressMap()
    two = AddressMap(base.index_bits - 1, base.offset_bits)
    idx = np.asarray(package_indices, dtype=np.int64)
    if idx.size == 0:
        return 0
    if (idx < 0).any():
        raise ValueError("package indices must be non-negative")
    sets = (idx >> two.offset_bits) & (two.n_lines - 1)
    tags = idx >> (two.index_bits + two.offset_bits)
    order = np.argsort(sets, kind="stable")
    s = sets[order]
    t = tags[order]
    head = np.empty(idx.size, dtype=bool)
    head[0] = True
    head[1:] = (s[1:] != s[:-1]) | (t[1:] != t[:-1])
    rs = s[head]
    rt = t[head]
    miss = np.ones(rs.size, dtype=bool)
    if rs.size > 2:
        miss[2:] = (rs[2:] != rs[:-2]) | (rt[2:] != rt[:-2])
    return int(np.count_nonzero(miss))


def simulate_trace(
    cache: DirectMappedReadCache | TwoWaySetAssociativeCache,
    package_indices: np.ndarray,
) -> CacheStats:
    """Run a whole access trace through ``cache`` and return its stats."""
    for p in np.asarray(package_indices, dtype=np.int64):
        cache.access(int(p))
    return cache.stats
