"""DMA engine model for the SW26010 core group.

CPEs move data between main memory and their 64 KB LDM with DMA
transactions.  The achieved bandwidth depends strongly on the transaction
block size (the paper's Table 2: 8 B -> 0.99 GB/s up to 2048 B ->
30.48 GB/s, aggregate over all 64 CPEs).  Every optimization in §3.1/§3.2
of the paper exists to turn many tiny transactions into few large ones, so
this curve *is* the mechanism being optimised; we reproduce it by log-log
interpolation of the paper's own measurements.

The engine is an event counter, not a timing simulator: kernels call
:meth:`DmaEngine.get`/:meth:`DmaEngine.put` (optionally in bulk via
:meth:`get_bulk`), and the engine accumulates bytes and modelled seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.params import ChipParams, DEFAULT_PARAMS
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import DEFAULT_RETRY, RetryPolicy, retry_rounds
from repro.trace.events import CAT_DMA, CAT_FAULT, DMA_TRACK, NULL_TRACER, NullTracer


def interpolate_bandwidth_gbs(size_bytes: float, params: ChipParams = DEFAULT_PARAMS) -> float:
    """Aggregate DMA bandwidth (GB/s) for transactions of ``size_bytes``.

    Log-log linear interpolation between the Table 2 anchor points; flat
    extrapolation beyond the measured range; linear ramp below the first
    anchor (a 4 B transaction cannot beat an 8 B one).
    """
    if size_bytes <= 0:
        raise ValueError(f"transaction size must be positive, got {size_bytes}")
    curve = params.dma_curve
    sizes = [s for s, _ in curve]
    bws = [b for _, b in curve]
    if size_bytes <= sizes[0]:
        # Sub-anchor transfers still pay the full small-transfer time:
        # effective bandwidth scales linearly with payload.
        return bws[0] * (size_bytes / sizes[0])
    if size_bytes >= sizes[-1]:
        return bws[-1]
    for (s0, b0), (s1, b1) in zip(curve, curve[1:]):
        if s0 <= size_bytes <= s1:
            t = (math.log(size_bytes) - math.log(s0)) / (math.log(s1) - math.log(s0))
            return math.exp(math.log(b0) * (1 - t) + math.log(b1) * t)
    raise AssertionError("unreachable: interpolation anchors exhausted")


def transfer_seconds(size_bytes: float, params: ChipParams = DEFAULT_PARAMS) -> float:
    """Modelled wall time for one DMA transaction of ``size_bytes``.

    ``time = size / aggregate_bandwidth(size)``.  The measured Table 2
    curve already folds per-transaction issue overhead into the achieved
    bandwidth (that is why small blocks are slow), so no separate issue
    term is added here.  Because the bandwidths are aggregate (all 64 CPEs
    streaming), charging each CPE's transaction against the aggregate curve
    models fair sharing: the sum over all CPEs' transactions equals total
    traffic / achieved bandwidth.
    """
    bw = interpolate_bandwidth_gbs(size_bytes, params) * 1e9
    return size_bytes / bw


@dataclass
class DmaStats:
    """Accumulated DMA activity for one engine (typically one CG)."""

    n_get: int = 0
    n_put: int = 0
    bytes_get: int = 0
    bytes_put: int = 0
    seconds: float = 0.0
    #: Injected-fault recovery: reissued transactions, their payload
    #: bytes, and the modelled time they cost.  ``retry_seconds`` is the
    #: slice of ``seconds`` attributable to retries (payload re-transfer
    #: through the Table 2 curve plus backoff waits); ``bytes_retried``
    #: is *extra* traffic not counted in ``bytes_get``/``bytes_put``, so
    #: ``effective_bandwidth_gbs`` degrades under faults the way a
    #: microbenchmark would observe.
    n_retries: int = 0
    bytes_retried: int = 0
    retry_seconds: float = 0.0

    @property
    def n_transactions(self) -> int:
        return self.n_get + self.n_put

    @property
    def bytes_total(self) -> int:
        return self.bytes_get + self.bytes_put

    def merge(self, other: "DmaStats") -> None:
        self.n_get += other.n_get
        self.n_put += other.n_put
        self.bytes_get += other.bytes_get
        self.bytes_put += other.bytes_put
        self.seconds += other.seconds
        self.n_retries += other.n_retries
        self.bytes_retried += other.bytes_retried
        self.retry_seconds += other.retry_seconds


class DmaEngine:
    """Counts DMA transactions and converts them to modelled time.

    One engine per core group.  All 64 CPEs share it; the aggregate
    bandwidth curve already encodes their contention (see
    :func:`transfer_seconds`).
    """

    def __init__(
        self,
        params: ChipParams = DEFAULT_PARAMS,
        tracer: NullTracer = NULL_TRACER,
        fault_plan: FaultPlan | None = None,
        retry: RetryPolicy = DEFAULT_RETRY,
    ) -> None:
        self.params = params
        self.stats = DmaStats()
        #: Timeline tracer; the no-op default keeps the hot path at one
        #: attribute check per transaction.
        self.tracer = tracer
        #: Fault-injection schedule (None = perfect DMA, zero overhead).
        self.fault_plan = fault_plan
        self.retry = retry

    def reset(self) -> None:
        self.stats = DmaStats()

    def _charge_faults(self, size_bytes: int, count: int, op: str) -> float:
        """Inject faults for ``count`` transactions; return retry seconds.

        Each retry round reissues the failed transactions — the retried
        bytes re-enter the Table 2 bandwidth curve at the original block
        size — plus one backoff wait per round (stragglers of a round
        back off concurrently across CPEs, so the wait is charged once,
        not per transaction).  Raises
        :class:`~repro.resilience.faults.PermanentFaultError` when a
        transaction survives ``retry.max_attempts`` attempts.
        """
        if self.fault_plan is None:
            return 0.0
        rounds = retry_rounds(
            self.fault_plan, self.retry, count, what=f"DMA {op}"
        )
        if not rounds:
            return 0.0
        total = 0.0
        for r in rounds:
            t = (
                transfer_seconds(size_bytes, self.params) * r.n_transactions
                + r.backoff_cycles * self.params.cycle_s
            )
            total += t
            self.stats.n_retries += r.n_transactions
            self.stats.bytes_retried += size_bytes * r.n_transactions
            if self.tracer.enabled:
                self.tracer.emit_seconds(
                    f"dma_retry:{op}", CAT_FAULT, DMA_TRACK, t,
                    size_bytes=size_bytes, count=r.n_transactions,
                    attempt=r.attempt,
                )
        self.stats.retry_seconds += total
        self.stats.seconds += total
        return total

    def get(self, size_bytes: int) -> float:
        """Record one main-memory -> LDM transfer; return its modelled time."""
        t = transfer_seconds(size_bytes, self.params)
        self.stats.n_get += 1
        self.stats.bytes_get += size_bytes
        self.stats.seconds += t
        if self.tracer.enabled:
            self.tracer.emit_seconds(
                "dma_get", CAT_DMA, DMA_TRACK, t, size_bytes=size_bytes
            )
        if self.fault_plan is not None:
            t += self._charge_faults(size_bytes, 1, "get")
        return t

    def put(self, size_bytes: int) -> float:
        """Record one LDM -> main-memory transfer; return its modelled time."""
        t = transfer_seconds(size_bytes, self.params)
        self.stats.n_put += 1
        self.stats.bytes_put += size_bytes
        self.stats.seconds += t
        if self.tracer.enabled:
            self.tracer.emit_seconds(
                "dma_put", CAT_DMA, DMA_TRACK, t, size_bytes=size_bytes
            )
        if self.fault_plan is not None:
            t += self._charge_faults(size_bytes, 1, "put")
        return t

    def get_bulk(self, size_bytes: int, count: int) -> float:
        """Record ``count`` equal-sized reads in one call (vectorised path)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return 0.0
        t = transfer_seconds(size_bytes, self.params) * count
        self.stats.n_get += count
        self.stats.bytes_get += size_bytes * count
        self.stats.seconds += t
        if self.tracer.enabled:
            self.tracer.emit_seconds(
                "dma_get_bulk", CAT_DMA, DMA_TRACK, t,
                size_bytes=size_bytes, count=count,
            )
        if self.fault_plan is not None:
            t += self._charge_faults(size_bytes, count, "get")
        return t

    def put_bulk(self, size_bytes: int, count: int) -> float:
        """Record ``count`` equal-sized writes in one call."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return 0.0
        t = transfer_seconds(size_bytes, self.params) * count
        self.stats.n_put += count
        self.stats.bytes_put += size_bytes * count
        self.stats.seconds += t
        if self.tracer.enabled:
            self.tracer.emit_seconds(
                "dma_put_bulk", CAT_DMA, DMA_TRACK, t,
                size_bytes=size_bytes, count=count,
            )
        if self.fault_plan is not None:
            t += self._charge_faults(size_bytes, count, "put")
        return t

    def effective_bandwidth_gbs(self) -> float:
        """Achieved GB/s over everything recorded so far."""
        if self.stats.seconds == 0.0:
            return 0.0
        return self.stats.bytes_total / self.stats.seconds / 1e9


def bandwidth_table(
    sizes: tuple[int, ...] = (8, 128, 256, 512, 2048),
    params: ChipParams = DEFAULT_PARAMS,
) -> list[tuple[int, float]]:
    """Regenerate the paper's Table 2: (block size, modelled GB/s) rows.

    Runs each block size through the engine (a fixed 64 MiB of traffic) and
    reports achieved bandwidth excluding the per-transaction issue cost at
    the largest sizes being amortised, i.e. the number a microbenchmark
    would print.
    """
    rows = []
    total = 64 * 1024 * 1024
    for size in sizes:
        engine = DmaEngine(params)
        count = max(1, total // size)
        engine.get_bulk(size, count)
        rows.append((size, engine.effective_bandwidth_gbs()))
    return rows
