"""Functional model of the SW26010 CPE 256-bit SIMD unit.

The CPE supports ``floatv4`` — four single-precision lanes per register —
plus a two-source shuffle (``simd_vshulff`` in the paper) that builds a new
vector from two float pairs, one pair from each source.  We execute the
lane arithmetic with numpy float32 so results are testable bit-for-bit
against scalar code, while an :class:`OpCounter` tallies issued vector
instructions for the cost model.

The shuffle selector convention follows the paper's description: the new
vector's first two lanes are chosen from vector ``a`` and the last two from
vector ``b``; a 4-bit selector picks *which* pair (low/high) of each source.
That is exactly enough to express the 6-shuffle 4x3 transpose of Fig. 7
(see `repro.core.shuffle`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

LANES = 4


@dataclass
class OpCounter:
    """Counts vector instructions issued by a kernel."""

    arith: int = 0  # vadd/vsub/vmul/vdiv/vmadd
    shuffle: int = 0  # simd_vshuff
    compare: int = 0  # vector compare / select
    load_store: int = 0  # LDM vector load/store

    @property
    def total(self) -> int:
        return self.arith + self.shuffle + self.compare + self.load_store

    def merge(self, other: "OpCounter") -> None:
        self.arith += other.arith
        self.shuffle += other.shuffle
        self.compare += other.compare
        self.load_store += other.load_store


class FloatV4:
    """One 256-bit vector register holding four float32 lanes.

    Operations return new registers (SSA style) and charge the shared
    :class:`OpCounter` when one is attached.  Lane maths uses numpy float32
    so a VEC-strategy kernel result can be compared exactly to a float32
    scalar computation.
    """

    __slots__ = ("lanes", "_ops")

    def __init__(self, lanes, ops: OpCounter | None = None) -> None:
        arr = np.asarray(lanes, dtype=np.float32)
        if arr.shape != (LANES,):
            raise ValueError(f"FloatV4 needs exactly {LANES} lanes, got {arr.shape}")
        self.lanes = arr
        self._ops = ops

    # --- construction -------------------------------------------------------
    @classmethod
    def splat(cls, value: float, ops: OpCounter | None = None) -> "FloatV4":
        """Broadcast one scalar to all four lanes (``simd_set_floatv4``)."""
        if ops is not None:
            ops.load_store += 1
        return cls(np.full(LANES, value, dtype=np.float32), ops)

    @classmethod
    def load(cls, buffer: np.ndarray, offset: int, ops: OpCounter | None = None) -> "FloatV4":
        """Aligned vector load of 4 contiguous floats from an LDM buffer."""
        if ops is not None:
            ops.load_store += 1
        chunk = np.asarray(buffer[offset : offset + LANES], dtype=np.float32)
        if chunk.shape != (LANES,):
            raise IndexError(
                f"vector load at offset {offset} runs past buffer of "
                f"length {len(buffer)}"
            )
        return cls(chunk, ops)

    def store(self, buffer: np.ndarray, offset: int) -> None:
        """Aligned vector store of the four lanes into an LDM buffer."""
        if self._ops is not None:
            self._ops.load_store += 1
        buffer[offset : offset + LANES] = self.lanes

    # --- arithmetic ----------------------------------------------------------
    def _binop(self, other: "FloatV4 | float", fn) -> "FloatV4":
        if self._ops is not None:
            self._ops.arith += 1
        rhs = other.lanes if isinstance(other, FloatV4) else np.float32(other)
        return FloatV4(fn(self.lanes, rhs), self._ops)

    def __add__(self, other):
        return self._binop(other, np.add)

    def __sub__(self, other):
        return self._binop(other, np.subtract)

    def __mul__(self, other):
        return self._binop(other, np.multiply)

    def __truediv__(self, other):
        return self._binop(other, np.divide)

    def madd(self, mul: "FloatV4", add: "FloatV4") -> "FloatV4":
        """Fused multiply-add: ``self * mul + add`` in one instruction."""
        if self._ops is not None:
            self._ops.arith += 1
        return FloatV4(
            np.float32(self.lanes * mul.lanes + add.lanes), self._ops
        )

    def rsqrt(self) -> "FloatV4":
        """Reciprocal square root (one pipelined vector op on the CPE)."""
        if self._ops is not None:
            self._ops.arith += 1
        return FloatV4(np.float32(1.0) / np.sqrt(self.lanes), self._ops)

    def less_than(self, other: "FloatV4 | float") -> np.ndarray:
        """Vector compare; returns a 4-lane boolean mask."""
        if self._ops is not None:
            self._ops.compare += 1
        rhs = other.lanes if isinstance(other, FloatV4) else np.float32(other)
        return self.lanes < rhs

    def select(self, mask: np.ndarray, other: "FloatV4") -> "FloatV4":
        """Lane-wise select: ``mask ? self : other``."""
        if self._ops is not None:
            self._ops.compare += 1
        return FloatV4(np.where(mask, self.lanes, other.lanes), self._ops)

    def hsum(self) -> float:
        """Horizontal sum of the four lanes (log2(4)=2 vector ops)."""
        if self._ops is not None:
            self._ops.arith += 2
        return float(np.float64(self.lanes).sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FloatV4({self.lanes.tolist()})"


def vshuff(
    a: FloatV4,
    b: FloatV4,
    sel_a: tuple[int, int],
    sel_b: tuple[int, int],
    ops: OpCounter | None = None,
) -> FloatV4:
    """``simd_vshulff``: combine two vectors into a new one.

    Per the paper's description, the instruction "chooses two float numbers
    in the first vector as the first two float numbers of the new vector
    and the other two float numbers of the new vector are from the second
    vector".  ``sel_a`` gives the two lane indices taken from ``a`` (result
    lanes 0-1), ``sel_b`` the two taken from ``b`` (result lanes 2-3).
    """
    for sel in (sel_a, sel_b):
        if len(sel) != 2 or not all(0 <= i < LANES for i in sel):
            raise ValueError(f"lane selector must be two indices in [0,4): {sel}")
    counter = ops if ops is not None else a._ops
    if counter is not None:
        counter.shuffle += 1
    return FloatV4(
        np.array(
            [a.lanes[sel_a[0]], a.lanes[sel_a[1]], b.lanes[sel_b[0]], b.lanes[sel_b[1]]],
            dtype=np.float32,
        ),
        counter,
    )
