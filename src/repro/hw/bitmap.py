"""Bit-map update marks (paper §3.3, Fig. 5, Algorithms 3-4).

Each CPE keeps one bit per *global* cache line of the force-copy array:
bit = 1 once the CPE has ever touched that line.  Untouched lines are
known-zero, so

* the per-CPE copy needs no initialisation pass (Algorithm 3 lines 14-16
  zero a line lazily on first touch), and
* the reduction step skips fetching them entirely (Algorithm 4 line 4).

As in Fig. 5, one byte marks 8 lines = 8 x 8 packages x 4 particles = 256
particles; the implementation packs the bits into a numpy uint64 word
array and does everything with bit operations, mirroring the paper's
integer arithmetic.
"""

from __future__ import annotations

import numpy as np

_WORD_BITS = 64


class LineMarkBitmap:
    """Update-status bits for ``n_lines`` global cache lines."""

    def __init__(self, n_lines: int) -> None:
        if n_lines <= 0:
            raise ValueError(f"n_lines must be positive, got {n_lines}")
        self.n_lines = n_lines
        n_words = (n_lines + _WORD_BITS - 1) // _WORD_BITS
        self._words = np.zeros(n_words, dtype=np.uint64)

    def _check(self, line: int) -> None:
        if not 0 <= line < self.n_lines:
            raise IndexError(f"line {line} out of range [0, {self.n_lines})")

    def mark(self, line: int) -> None:
        """Set the line's bit (Algorithm 3 line 16: ``C_M |= 1 << line``)."""
        self._check(line)
        self._words[line // _WORD_BITS] |= np.uint64(1) << np.uint64(line % _WORD_BITS)

    def is_marked(self, line: int) -> bool:
        """Test the line's bit (Algorithm 3 line 11: ``(C_M >> line) & 1``)."""
        self._check(line)
        word = self._words[line // _WORD_BITS]
        return bool((word >> np.uint64(line % _WORD_BITS)) & np.uint64(1))

    def marked_lines(self) -> np.ndarray:
        """Indices of all marked lines (drives the marked reduction)."""
        bits = np.unpackbits(
            self._words.view(np.uint8), bitorder="little"
        )[: self.n_lines]
        return np.nonzero(bits)[0].astype(np.int64)

    def count(self) -> int:
        """Population count over the whole map."""
        return int(
            np.unpackbits(self._words.view(np.uint8), bitorder="little")[
                : self.n_lines
            ].sum()
        )

    def density(self) -> float:
        """Fraction of lines marked — the quantity Bit-Map exploits being
        small (most particles touch only a few CPEs)."""
        return self.count() / self.n_lines

    def clear(self) -> None:
        self._words.fill(0)

    def to_bytes(self) -> bytes:
        """Raw little-endian bit stream (for LDM footprint accounting)."""
        return self._words.tobytes()

    @property
    def ldm_bytes(self) -> int:
        """LDM bytes this bitmap occupies on a CPE (Fig. 5's selling point:
        1 byte covers 256 particles)."""
        return self._words.nbytes
