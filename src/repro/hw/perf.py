"""Performance counters for the simulated core group.

Kernels charge *events* (compute cycles, DMA transactions, gld/gst
accesses, reduction passes) to a :class:`PerfCounters` instance; the
counters convert events to modelled seconds under the pipeline model
described in DESIGN.md §4:

* compute time and DMA time overlap by ``ChipParams.pipeline_overlap``
  when the kernel declares itself pipelined (the paper's "full pipeline
  acceleration");
* gld/gst stalls never overlap (they block the issuing CPE);
* serial MPE work (reductions collected on the MPE, domain decomposition)
  adds after the parallel region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.dma import DmaEngine
from repro.hw.params import ChipParams, DEFAULT_PARAMS
from repro.trace.events import (
    CAT_COMPUTE,
    CAT_GLD,
    CAT_GST,
    MPE_TRACK,
    NULL_TRACER,
    NullTracer,
)


@dataclass
class PerfCounters:
    """Event counters for one kernel execution on one core group."""

    params: ChipParams = DEFAULT_PARAMS
    #: Compute cycles on the *critical* CPE (max over CPEs after balancing).
    cpe_compute_cycles: float = 0.0
    #: Compute cycles executed serially on the MPE.
    mpe_compute_cycles: float = 0.0
    #: Number of fine-grained global loads / stores issued by CPEs.
    n_gld: int = 0
    n_gst: int = 0
    #: Whether DMA overlaps compute (double buffering enabled).
    pipelined: bool = True
    #: DMA engine shared by the CPEs of this CG.
    dma: DmaEngine = field(default_factory=DmaEngine)
    #: Timeline tracer (no-op by default).  Charges land on CPE track 0 —
    #: the counters model the *critical* CPE, not a specific one.
    tracer: NullTracer = NULL_TRACER

    def __post_init__(self) -> None:
        # Keep the DMA engine on the same parameter set as the counters,
        # and let its transactions land on the same timeline.
        self.dma.params = self.params
        if self.tracer.enabled and not self.dma.tracer.enabled:
            self.dma.tracer = self.tracer

    # --- charging API -----------------------------------------------------
    def charge_cpe_cycles(self, cycles: float) -> None:
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        self.cpe_compute_cycles += cycles
        if self.tracer.enabled:
            self.tracer.emit("cpe_compute", CAT_COMPUTE, 0, cycles)

    def charge_mpe_cycles(self, cycles: float) -> None:
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        self.mpe_compute_cycles += cycles
        if self.tracer.enabled:
            self.tracer.emit("mpe_compute", CAT_COMPUTE, MPE_TRACK, cycles)

    def charge_gld(self, count: int = 1) -> None:
        if count < 0:
            raise ValueError(f"gld count must be non-negative, got {count}")
        self.n_gld += count
        if self.tracer.enabled:
            self.tracer.emit(
                "gld", CAT_GLD, 0,
                count * self.params.gld_latency_cycles, count=count,
            )

    def charge_gst(self, count: int = 1) -> None:
        if count < 0:
            raise ValueError(f"gst count must be non-negative, got {count}")
        self.n_gst += count
        if self.tracer.enabled:
            self.tracer.emit(
                "gst", CAT_GST, 0,
                count * self.params.gst_latency_cycles, count=count,
            )

    # --- conversion to time ------------------------------------------------
    @property
    def cpe_compute_seconds(self) -> float:
        """Parallel-region compute time (critical CPE)."""
        return self.cpe_compute_cycles * self.params.cycle_s

    @property
    def mpe_compute_seconds(self) -> float:
        return self.mpe_compute_cycles * self.params.cycle_s

    @property
    def gld_seconds(self) -> float:
        return (
            self.n_gld * self.params.gld_latency_cycles
            + self.n_gst * self.params.gst_latency_cycles
        ) * self.params.cycle_s

    @property
    def dma_seconds(self) -> float:
        return self.dma.stats.seconds

    def elapsed_seconds(self) -> float:
        """Total modelled time for the kernel under the pipeline model."""
        compute = self.cpe_compute_seconds
        dma = self.dma_seconds
        if self.pipelined:
            overlap = self.params.pipeline_overlap
            hidden = overlap * min(compute, dma)
            parallel = compute + dma - hidden
        else:
            parallel = compute + dma
        return parallel + self.gld_seconds + self.mpe_compute_seconds

    def merge(self, other: "PerfCounters") -> None:
        """Fold another kernel's events into this one (sequential phases).

        The merged ``pipelined`` flag is the conservative AND of both: a
        single scalar overlap cannot distinguish which phase's DMA was
        double-buffered, so merging a non-pipelined kernel into a
        pipelined one must not let the non-pipelined phase's DMA hide
        behind compute (that would overstate overlap).  Callers needing
        per-phase fidelity should keep separate counters and sum
        ``elapsed_seconds()`` instead.
        """
        self.cpe_compute_cycles += other.cpe_compute_cycles
        self.mpe_compute_cycles += other.mpe_compute_cycles
        self.n_gld += other.n_gld
        self.n_gst += other.n_gst
        self.pipelined = self.pipelined and other.pipelined
        self.dma.stats.merge(other.dma.stats)

    @property
    def fault_overhead_seconds(self) -> float:
        """Modelled time lost to injected-fault recovery (DMA retries).

        Already included in :attr:`dma_seconds` / ``elapsed_seconds`` —
        this property isolates the overhead so callers can report it.
        """
        return self.dma.stats.retry_seconds

    def summary(self) -> dict[str, float]:
        return {
            "cpe_compute_s": self.cpe_compute_seconds,
            "mpe_compute_s": self.mpe_compute_seconds,
            "dma_s": self.dma_seconds,
            "gld_s": self.gld_seconds,
            "dma_bytes": float(self.dma.stats.bytes_total),
            "dma_transactions": float(self.dma.stats.n_transactions),
            "dma_retries": float(self.dma.stats.n_retries),
            "fault_overhead_s": self.fault_overhead_seconds,
            "elapsed_s": self.elapsed_seconds(),
        }


@dataclass
class KernelTiming:
    """Named modelled durations for one MD step, feeding Table 1 / Fig. 10.

    Mirrors the paper's Table 1 kernel taxonomy.
    """

    seconds: dict[str, float] = field(default_factory=dict)

    def add(self, kernel: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative duration for {kernel}: {seconds}")
        self.seconds[kernel] = self.seconds.get(kernel, 0.0) + seconds

    def total(self) -> float:
        return sum(self.seconds.values())

    def fractions(self) -> dict[str, float]:
        """Kernel -> fraction of total time (the paper's Table 1 rows)."""
        total = self.total()
        if total == 0.0:
            return {k: 0.0 for k in self.seconds}
        return {k: v / total for k, v in self.seconds.items()}

    def merge(self, other: "KernelTiming") -> None:
        for k, v in other.seconds.items():
            self.add(k, v)
