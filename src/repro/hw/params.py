"""SW26010 hardware parameters and cost-model calibration constants.

Everything the cost model knows about the chip lives here, in one place,
so the calibration policy in DESIGN.md §4 is auditable.  Sources:

* the paper's §1 architecture description (1.45 GHz, 64 CPEs per CG,
  64 KB LDM, 8 GB DDR3 per CG, 256-bit SIMD);
* the paper's Table 2 (measured DMA bandwidth vs. access block size);
* published SW26010 microbenchmark literature for the gld/gst latency
  order of magnitude.

Free constants (per-pair instruction counts, pipeline overlap) are
calibrated once against the Fig. 8 speedup ladder and never tuned
per-experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


#: Measured DMA bandwidth curve from the paper's Table 2:
#: access block size (bytes) -> achieved bandwidth (GB/s), aggregate over a
#: core group with all 64 CPEs issuing DMA.
DMA_BANDWIDTH_TABLE_GBS: dict[int, float] = {
    8: 0.99,
    128: 15.77,
    256: 28.88,
    512: 28.98,
    2048: 30.48,
}


@dataclass(frozen=True)
class ChipParams:
    """Architectural and cost-model parameters for one SW26010 core group.

    Instances are immutable; derive variants with :meth:`with_overrides`
    (used by ablation benches, e.g. different cache-line geometries).
    """

    # --- architecture (paper §1) ---
    clock_hz: float = 1.45e9
    n_cpes: int = 64
    cpe_mesh_rows: int = 8
    cpe_mesh_cols: int = 8
    ldm_bytes: int = 64 * 1024
    mpe_l1_bytes: int = 32 * 1024
    mpe_l2_bytes: int = 256 * 1024
    main_memory_bytes: int = 8 * 1024**3
    n_core_groups_per_chip: int = 4
    simd_width_floats: int = 4  # 256-bit floatv4 in single precision lanes of 64b? 4 lanes
    peak_gflops_per_cg: float = 765.0  # 3.06 TF chip / 4 CGs

    # --- DMA model ---
    #: (size_bytes, GB/s) anchor points; log-log interpolated in between,
    #: flat beyond the last anchor.
    dma_curve: tuple[tuple[int, float], ...] = tuple(
        sorted(DMA_BANDWIDTH_TABLE_GBS.items())
    )
    #: Fixed per-transaction DMA issue cost, cycles (descriptor setup +
    #: reply-word wait that cannot be hidden when not pipelined).
    dma_issue_cycles: float = 25.0

    # --- gld/gst model (fine-grained global load/store from CPEs) ---
    gld_latency_cycles: float = 177.0
    gst_latency_cycles: float = 110.0

    # --- compute cost model (cycles) ---
    #: Scalar CPE cycles for one LJ+Coulomb pair interaction (distance,
    #: cutoff test, r^-6/r^-12, force accumulate).
    cpe_scalar_pair_cycles: float = 85.0
    #: SIMD CPE cycles for one 4-lane pair interaction bundle (i.e. per
    #: 4 pairs); includes the Fig. 7 shuffle overhead amortised.
    cpe_simd_pair4_cycles: float = 131.0
    #: MPE cycles per particle pair for the *original* GROMACS kernel
    #: running on the MPE alone (the "Ori" rung): SWCC emits scalar code
    #: for the ported kernels, and the MPE's 256 KB L2 cannot hold the
    #: particle data of the benchmark cases, so this effective per-pair
    #: cost folds in its cache misses.
    mpe_scalar_pair_cycles: float = 45.0
    #: MPE cycles per particle-force accumulation in the USTC baseline
    #: (the MPE scalar-loads each incoming index, gathers the force
    #: triple, adds, and stores — the serial bottleneck of [29]).
    mpe_collect_cycles_per_particle: float = 12.0
    #: Cycles to initialise one byte of an LDM/MPE force copy (RMA init).
    init_cycles_per_byte: float = 0.30
    #: Cycles per byte for CPE-local buffer bookkeeping (tag compare etc.)
    cache_bookkeeping_cycles: float = 10.0

    # --- pipeline model ---
    #: Fraction of DMA time hidden behind compute when the kernel double
    #: buffers (the paper's "full pipeline acceleration").  0 = no overlap,
    #: 1 = perfectly hidden.
    pipeline_overlap: float = 0.85

    # --- software cache geometry (paper §3.1/§3.2: 8 packages per line) ---
    packages_per_line: int = 8
    particles_per_package: int = 4
    n_cache_lines: int = 32  # 5-bit index field in Figs. 3-4
    offset_bits: int = 3  # 3-bit offset field: 8 packages per line
    index_bits: int = 5
    tag_bits: int = 24

    # --- package layout (Fig. 2): per particle x,y,z (f32), type (i32),
    #     charge (f32) -> 20 B; plus 7 B padding to reach the paper's
    #     108 B per 4-particle package (4*20=80; paper counts extra force
    #     slots; we model the paper's figure of 108 B, 128-bit aligned).
    package_bytes: int = 112  # 108 rounded up to 16-byte alignment (§3.7)
    force_bytes_per_particle: int = 12  # 3 x f32

    # --- MPI / RDMA model (per message) ---
    mpi_latency_s: float = 1.0e-5
    mpi_bandwidth_gbs: float = 5.0
    mpi_copy_count: int = 4
    #: Memory-copy bandwidth for the §3.6 kernel/user copies (GB/s per
    #: copy) — calibratable like every other hardware constant.
    mpi_copy_bandwidth_gbs: float = 24.0
    mpi_pack_cycles_per_byte: float = 0.1
    rdma_latency_s: float = 1.7e-6
    rdma_bandwidth_gbs: float = 6.5
    rdma_copy_count: int = 0
    #: Per-stage cost of software-emulated MPI collectives at scale
    #: (kernel crossings + system noise on the management network) — the
    #: reason "Comm. energies" reaches 18.7 % of runtime at 512 CGs in the
    #: paper's Table 1.
    mpi_collective_hop_s: float = 6.5e-4
    #: RDMA-based collectives bypass the kernel; near-hardware latency.
    rdma_collective_hop_s: float = 1.5e-4

    # --- I/O model (§3.7) ---
    io_syscall_s: float = 4.0e-6
    io_disk_bandwidth_gbs: float = 1.2
    io_fwrite_chunk_bytes: int = 4096
    io_fast_buffer_bytes: int = 20 * 1024 * 1024
    io_format_double_cycles: float = 420.0  # C stdlib %f with edge cases
    io_format_fast_cycles: float = 60.0  # the paper's concise converter

    def with_overrides(self, **kwargs) -> "ChipParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    # --- derived helpers ---
    @property
    def line_bytes(self) -> int:
        """Bytes in one software-cache line of particle packages."""
        return self.packages_per_line * self.package_bytes

    @property
    def particles_per_line(self) -> int:
        return self.packages_per_line * self.particles_per_package

    @property
    def cycle_s(self) -> float:
        return 1.0 / self.clock_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz


#: The default, calibrated parameter set used across tests and benches.
DEFAULT_PARAMS = ChipParams()


@dataclass(frozen=True)
class PlatformSpec:
    """One row of the paper's Table 4 (plus derived cache miss ratios).

    Used by the TTF comparison model (`repro.core.platforms`).
    """

    name: str
    flops_tf: float
    bandwidth_gbs: float
    cache_descr: str
    total_cache_miss_ratio: float


#: Paper Table 4 + the miss ratios quoted in §4.5.  SW26010's total miss
#: ratio of 4 % is the value that makes the paper's own Eq. (3) evaluate to
#: ~150 and Eq. (4) to ~24 (KNL total miss = 0.08 %, "about 2.5 % of the
#: cache miss rate on SW26010"; P100 total = 6 % * 15 % = 0.9 %).
PLATFORM_TABLE: dict[str, PlatformSpec] = {
    "KNL": PlatformSpec("Knights Landing", 6.0, 400.0, "32 KB + 1 MB", 0.0008),
    "SW26010": PlatformSpec("SW26010", 3.0, 132.0, "64 KB LDM", 0.04),
    "P100": PlatformSpec("P100", 10.0, 720.0, "64 KB + 4 MB", 0.009),
}
