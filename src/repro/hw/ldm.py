"""Local Device Memory (LDM) allocator for one CPE.

Each CPE has only 64 KB of scratchpad.  The paper's kernels must fit a
read cache, a deferred-update write cache, the bit-map marks, neighbour
list windows, and SIMD staging buffers in that budget simultaneously — the
allocator enforces this so configuration mistakes fail loudly rather than
silently overflowing (a real CPE kernel would corrupt memory).

Alignment: §3.7 of the paper aligns everything to 128 bits; allocations
here round up to 16-byte boundaries for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass

ALIGNMENT_BYTES = 16


class LdmOverflowError(MemoryError):
    """Raised when a kernel's working set exceeds the 64 KB LDM."""


@dataclass
class LdmBlock:
    """One named allocation inside the LDM."""

    name: str
    offset: int
    size: int

    @property
    def end(self) -> int:
        return self.offset + self.size


class LdmAllocator:
    """Bump allocator over one CPE's 64 KB scratchpad.

    Supports named allocations, per-name lookup, and a full reset (kernels
    re-plan their LDM layout on every launch).
    """

    def __init__(self, capacity_bytes: int = 64 * 1024) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity = capacity_bytes
        self._blocks: dict[str, LdmBlock] = {}
        self._cursor = 0

    @staticmethod
    def aligned(size: int) -> int:
        """Round ``size`` up to the 128-bit alignment of §3.7."""
        return (size + ALIGNMENT_BYTES - 1) // ALIGNMENT_BYTES * ALIGNMENT_BYTES

    def alloc(self, name: str, size_bytes: int) -> LdmBlock:
        """Allocate ``size_bytes`` (rounded to alignment) under ``name``."""
        if size_bytes < 0:
            raise ValueError(f"allocation size must be non-negative: {size_bytes}")
        if name in self._blocks:
            raise ValueError(f"LDM block {name!r} already allocated")
        size = self.aligned(size_bytes)
        if self._cursor + size > self.capacity:
            raise LdmOverflowError(
                f"LDM overflow allocating {name!r}: need {size} B at offset "
                f"{self._cursor}, capacity {self.capacity} B "
                f"(existing: {sorted(self._blocks)})"
            )
        block = LdmBlock(name, self._cursor, size)
        self._blocks[name] = block
        self._cursor += size
        return block

    def free_bytes(self) -> int:
        return self.capacity - self._cursor

    def used_bytes(self) -> int:
        return self._cursor

    def block(self, name: str) -> LdmBlock:
        try:
            return self._blocks[name]
        except KeyError:
            raise KeyError(
                f"no LDM block {name!r}; allocated: {sorted(self._blocks)}"
            ) from None

    def reset(self) -> None:
        self._blocks.clear()
        self._cursor = 0

    def layout(self) -> list[LdmBlock]:
        """All blocks in allocation order (for debugging / docs)."""
        return sorted(self._blocks.values(), key=lambda b: b.offset)
