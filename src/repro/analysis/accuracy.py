"""Accuracy experiment (paper §4.7, Fig. 13).

Runs the same water system twice — once in float64 (the x86/KNL
reference) and once in float32 mixed precision (the SW26010 production
path) — records total energy and temperature every ``report_interval``
steps, and quantifies the deviation: the paper's claim is that the
deviation stays bounded over a long run ("stable enough to simulate a
long-running step"), not that the trajectories coincide (chaotic systems
diverge pointwise by construction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.integrator import IntegratorConfig
from repro.md.mdloop import MdConfig, MdLoop
from repro.md.minimize import minimize
from repro.md.nonbonded import NonbondedParams
from repro.md.reporter import EnergyReporter
from repro.md.water import build_water_system


@dataclass
class AccuracyResult:
    """Both runs' observable series plus deviation summaries."""

    reference: EnergyReporter
    mixed: EnergyReporter

    def energy_deviation(self) -> float:
        """Max |E_mixed - E_ref| / std(E_ref): deviation in units of the
        reference run's own thermal fluctuation scale."""
        e_ref = self.reference.total_energy()
        e_mix = self.mixed.total_energy()
        n = min(len(e_ref), len(e_mix))
        if n < 2:
            return 0.0
        scale = float(np.std(e_ref[:n])) or 1.0
        return float(np.abs(e_mix[:n] - e_ref[:n]).max()) / scale

    def mean_energy_gap_relative(self) -> float:
        """|mean(E_mixed) - mean(E_ref)| / |mean(E_ref)|."""
        e_ref = self.reference.total_energy()
        e_mix = self.mixed.total_energy()
        if len(e_ref) == 0 or len(e_mix) == 0:
            return 0.0
        m = float(np.mean(e_ref))
        return abs(float(np.mean(e_mix)) - m) / (abs(m) or 1.0)

    def temperature_gap(self) -> float:
        """|mean(T_mixed) - mean(T_ref)| in kelvin."""
        t_ref = self.reference.temperature()
        t_mix = self.mixed.temperature()
        if len(t_ref) == 0 or len(t_mix) == 0:
            return 0.0
        return abs(float(np.mean(t_mix)) - float(np.mean(t_ref)))

    def drifts(self) -> tuple[float, float]:
        """(reference, mixed) energy drift per step."""
        return (
            self.reference.drift_per_step(),
            self.mixed.drift_per_step(),
        )


def run_accuracy_experiment(
    n_particles: int = 750,
    n_steps: int = 2000,
    report_interval: int = 100,
    temperature: float = 300.0,
    seed: int = 2019,
    thermostat: str = "vrescale",
    minimize_steps: int = 80,
) -> AccuracyResult:
    """Fig. 13 scaled down: two precision variants of the same trajectory.

    Same initial state, same integrator seed — the only difference is the
    arithmetic precision of the short-range kernel.
    """
    # Cutoffs adapt to the (possibly small) box: at most the paper's
    # 0.85/0.95 nm, never violating the minimum-image bound.
    from repro.md.constants import WATER_MOLECULES_PER_NM3

    edge = (max(n_particles // 3, 1) / WATER_MOLECULES_PER_NM3) ** (1.0 / 3.0)
    r_list = min(0.95, 0.48 * edge)
    r_cut = min(0.85, r_list - 0.05)

    def make_config(precision):
        return MdConfig(
            nonbonded=NonbondedParams(
                r_cut=r_cut, r_list=r_list, coulomb_mode="rf"
            ),
            integrator=IntegratorConfig(
                dt=0.001,
                thermostat=thermostat,
                target_temperature=temperature,
                tau_t=0.5,
            ),
            precision=precision,
            report_interval=report_interval,
        )

    base = build_water_system(n_particles, temperature=temperature, seed=seed)
    minimize(base, make_config(np.float64), n_steps=minimize_steps)
    base.thermalize(temperature, np.random.default_rng(seed + 1))

    runs: dict[str, EnergyReporter] = {}
    for name, precision in (("reference", np.float64), ("mixed", np.float32)):
        system = base.copy()
        loop = MdLoop(system, make_config(precision))
        result = loop.run(n_steps)
        runs[name] = result.reporter
    return AccuracyResult(reference=runs["reference"], mixed=runs["mixed"])
