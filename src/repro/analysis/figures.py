"""Paper-style output: print the exact rows/series each table and figure
reports, with the paper's own numbers alongside for comparison.

Every benchmark target in ``benchmarks/`` routes its output through one
of these printers so EXPERIMENTS.md and the bench logs stay consistent.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.util.tables import format_series, format_table

#: Paper-reported values, used for side-by-side printing.
PAPER_TABLE2 = {8: 0.99, 128: 15.77, 256: 28.88, 512: 28.98, 2048: 30.48}
PAPER_FIG8 = {"Ori": 1, "Pkg": 3, "Cache": 23, "Vec": 40, "Mark": 61}
PAPER_FIG9 = {
    "USTC_GMX": 16.0,
    "SW_LAMMPS": 16.4,
    "RMA_GMX": 40.0,
    "MARK_GMX": 63.0,
}
PAPER_FIG10 = {
    "case1": {"Ori": 1, "Cal": 20, "List": 30, "Other": 32},
    "case2": {"Ori": 1, "Cal": 6, "List": 8, "Other": 18},
}
PAPER_FIG12_STRONG = {
    4: 1.00, 8: 0.97, 16: 0.94, 32: 0.92, 64: 0.90, 128: 0.78, 256: 0.63,
    512: 0.47,
}
PAPER_FIG12_WEAK = {
    4: 1.00, 8: 1.00, 16: 0.99, 32: 0.90, 64: 0.90, 128: 0.89, 256: 0.89,
    512: 0.87,
}
PAPER_TABLE1_CASE1 = {
    "Neighbor search": 0.025,
    "Force": 0.955,
    "Update": 0.003,
    "Constraints": 0.006,
    "Write traj": 0.005,
    "NB X/F buffer ops": 0.001,
}
PAPER_TABLE1_CASE2 = {
    "Domain decomp.": 0.007,
    "Neighbor search": 0.023,
    "Force": 0.748,
    "Wait + comm. F": 0.011,
    "NB X/F buffer ops": 0.002,
    "Update": 0.002,
    "Constraints": 0.017,
    "Comm. energies": 0.187,
    "Write traj": 0.001,
}
PAPER_EQ3_TTF_KNL = 150.0
PAPER_EQ4_TTF_P100 = 24.0


def print_table2(rows: Sequence[tuple[int, float]]) -> str:
    """Table 2: DMA bandwidth vs block size, measured vs paper."""
    table = [
        (size, bw, PAPER_TABLE2.get(size, float("nan")))
        for size, bw in rows
    ]
    return format_table(
        ["block (B)", "measured GB/s", "paper GB/s"],
        table,
        title="Table 2 — DMA bandwidth vs access block size",
    )


def print_speedup_bars(
    speedups: Mapping[str, float],
    paper: Mapping[str, float],
    title: str,
) -> str:
    rows = [
        (label, speedups[label], paper.get(label, float("nan")))
        for label in speedups
    ]
    return format_table(["strategy", "measured x", "paper x"], rows, title=title)


def print_fractions(
    fractions: Mapping[str, float],
    paper: Mapping[str, float],
    title: str,
) -> str:
    keys = list(fractions) + [k for k in paper if k not in fractions]
    rows = [
        (
            k,
            f"{100 * fractions.get(k, 0.0):.1f}%",
            f"{100 * paper.get(k, 0.0):.1f}%" if k in paper else "-",
        )
        for k in keys
    ]
    return format_table(["kernel", "measured", "paper"], rows, title=title)


def print_efficiency_curves(
    measured: Mapping[int, float],
    paper: Mapping[int, float],
    title: str,
) -> str:
    rows = [
        (n, measured[n], paper.get(n, float("nan"))) for n in sorted(measured)
    ]
    return format_table(["CGs", "measured eff", "paper eff"], rows, title=title)


def print_series(title: str, xs, ys, x_label="x", y_label="y") -> str:
    return format_series(title, xs, ys, x_label, y_label)
