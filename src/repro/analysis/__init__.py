"""Experiment analysis: scalability model (Fig. 12), accuracy experiment
(Fig. 13), and paper-style figure/table printers."""

from repro.analysis.accuracy import AccuracyResult, run_accuracy_experiment
from repro.analysis.figures import (
    PAPER_EQ3_TTF_KNL,
    PAPER_EQ4_TTF_P100,
    PAPER_FIG8,
    PAPER_FIG9,
    PAPER_FIG10,
    PAPER_FIG12_STRONG,
    PAPER_FIG12_WEAK,
    PAPER_TABLE1_CASE1,
    PAPER_TABLE1_CASE2,
    PAPER_TABLE2,
    print_efficiency_curves,
    print_fractions,
    print_speedup_bars,
    print_table2,
)
from repro.analysis.scaling import (
    ReferenceTimings,
    ScalingCurve,
    ScalingPoint,
    model_step_seconds,
    strong_scaling_curve,
    weak_scaling_curve,
)

__all__ = [
    "AccuracyResult",
    "PAPER_EQ3_TTF_KNL",
    "PAPER_EQ4_TTF_P100",
    "PAPER_FIG8",
    "PAPER_FIG9",
    "PAPER_FIG10",
    "PAPER_FIG12_STRONG",
    "PAPER_FIG12_WEAK",
    "PAPER_TABLE1_CASE1",
    "PAPER_TABLE1_CASE2",
    "PAPER_TABLE2",
    "ReferenceTimings",
    "ScalingCurve",
    "ScalingPoint",
    "model_step_seconds",
    "print_efficiency_curves",
    "print_fractions",
    "print_speedup_bars",
    "print_table2",
    "run_accuracy_experiment",
    "strong_scaling_curve",
    "weak_scaling_curve",
]
