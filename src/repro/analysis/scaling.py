"""Strong/weak scalability model (paper §4.6, Fig. 12, Eqs. 5-6).

Methodology (matching how the paper's own analysis works): run ONE
representative core group functionally at a reference local size to get
the per-CG kernel times, then scale those times to other CG counts
analytically —

* short-range/search work scales with local pairs, inflated slightly by
  the halo import;
* update/constraints scale with local particle count;
* communication comes from the `repro.parallel.collectives` model;
* a load-imbalance wait term grows logarithmically with rank count
  (the "Wait + comm. F" row of Table 1).

Parallel efficiencies follow the paper's Eqs. (5)-(6) with the 4-CG run
as the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.comm_opt import Transport, step_comm
from repro.core.engine import (
    EngineConfig,
    SWGromacsEngine,
)
from repro.hw.params import ChipParams, DEFAULT_PARAMS
from repro.md.box import Box
from repro.md.constants import WATER_MOLECULES_PER_NM3
from repro.md.nonbonded import NonbondedParams
from repro.parallel.decomposition import DomainDecomposition

#: Fraction of the halo shell's pair work the importing rank performs on
#: top of its own (eighth-shell import with balanced pair splitting keeps
#: this small).
HALO_WORK_FRACTION = 0.01
#: Per-doubling load-imbalance growth of the parallel region (dynamic
#: load balancing degrades as domains shrink).
IMBALANCE_PER_DOUBLING = 0.02
#: Fraction of communication hidden behind compute (double-buffered halo
#: exchange and PME/PP overlap).
COMM_OVERLAP = 0.95
#: Energy/virial reduction interval (GROMACS ``nstcalcenergy``): scaling
#: runs amortise the global allreduce over this many steps, unlike the
#: Table 1 profile where energies were communicated every step.
NSTCALCENERGY = 100


@dataclass
class ScalingPoint:
    n_cgs: int
    n_local: float
    step_seconds: float
    comm_seconds: float
    compute_seconds: float


@dataclass
class ScalingCurve:
    points: list[ScalingPoint]
    baseline_cgs: int

    def times(self) -> dict[int, float]:
        return {p.n_cgs: p.step_seconds for p in self.points}

    def strong_efficiency(self) -> dict[int, float]:
        """Eq. (5): Eff(N) = T_base / ((N / base) * T_N)."""
        t = self.times()
        t_base = t[self.baseline_cgs]
        return {
            n: t_base / ((n / self.baseline_cgs) * tn) for n, tn in t.items()
        }

    def weak_efficiency(self) -> dict[int, float]:
        """Eq. (6): Eff(N) = T_base / T_N (constant work per CG)."""
        t = self.times()
        t_base = t[self.baseline_cgs]
        return {n: t_base / tn for n, tn in t.items()}

    def speedups(self) -> dict[int, float]:
        """Speedup relative to the baseline CG count (Fig. 12's y-axis)."""
        t = self.times()
        t_base = t[self.baseline_cgs]
        return {n: t_base / t[n] * 1.0 for n in t}


@dataclass
class ReferenceTimings:
    """Per-CG kernel seconds measured functionally at a reference size."""

    n_local: int
    pair_seconds: float  # force + neighbour search (scales with pairs)
    particle_seconds: float  # update/constraints/buffer (scales with N)

    def degraded(self, slowdown: float) -> "ReferenceTimings":
        """Reference timings after permanent CPE loss.

        ``slowdown`` is :attr:`repro.resilience.DegradationReport.slowdown`
        (n_cpes / survivors): the CPE-parallel pair work stretches by it,
        letting the Fig. 12 curves be re-derived for a degraded machine.
        """
        if not slowdown >= 1.0:
            raise ValueError(f"slowdown must be >= 1: {slowdown}")
        return ReferenceTimings(
            n_local=self.n_local,
            pair_seconds=self.pair_seconds * slowdown,
            particle_seconds=self.particle_seconds,
        )

    @classmethod
    def measure(
        cls,
        build_system,
        n_local: int,
        nonbonded: NonbondedParams,
        chip: ChipParams = DEFAULT_PARAMS,
        optimization_level: int = 3,
    ) -> "ReferenceTimings":
        system = build_system(n_local)
        engine = SWGromacsEngine(
            system,
            EngineConfig(
                nonbonded=nonbonded,
                optimization_level=optimization_level,
                n_cgs=1,
                chip=chip,
            ),
        )
        timing = engine.model_step()
        pair_keys = ("Force", "Neighbor search")
        pair_s = sum(timing.seconds.get(k, 0.0) for k in pair_keys)
        particle_s = timing.total() - pair_s
        return cls(n_local, pair_s, particle_s)


def _water_box_edge(n_particles: float) -> float:
    n_mol = max(n_particles / 3.0, 1.0)
    return float((n_mol / WATER_MOLECULES_PER_NM3) ** (1.0 / 3.0))


def model_step_seconds(
    ref: ReferenceTimings,
    n_total: float,
    n_cgs: int,
    nonbonded: NonbondedParams,
    transport: Transport = Transport.RDMA,
    chip: ChipParams = DEFAULT_PARAMS,
) -> ScalingPoint:
    """Per-step time of ``n_total`` particles on ``n_cgs`` core groups."""
    if n_cgs < 1:
        raise ValueError(f"n_cgs must be >= 1: {n_cgs}")
    n_local = n_total / n_cgs
    box_edge = _water_box_edge(n_total)
    if n_cgs > 1:
        dd = DomainDecomposition(Box.cubic(box_edge), n_cgs)
        halo_frac = dd.halo_fraction(0, nonbonded.r_list)
    else:
        halo_frac = 0.0
    work_factor = (n_local / ref.n_local) * (
        1.0 + HALO_WORK_FRACTION * halo_frac
    )
    imbalance = 1.0 + IMBALANCE_PER_DOUBLING * np.log2(max(n_cgs, 1))
    compute = (
        ref.pair_seconds * work_factor
        + ref.particle_seconds * (n_local / ref.n_local)
    ) * imbalance
    breakdown = step_comm(
        int(n_total),
        n_cgs,
        box_edge,
        nonbonded.r_list,
        transport=transport,
        params=chip,
    )
    comm = (
        breakdown.halo_seconds
        + breakdown.pme_seconds
        + breakdown.energy_seconds / NSTCALCENERGY
    )
    hidden = COMM_OVERLAP * min(compute, comm)
    return ScalingPoint(
        n_cgs=n_cgs,
        n_local=n_local,
        step_seconds=compute + comm - hidden,
        comm_seconds=comm,
        compute_seconds=compute,
    )


def strong_scaling_curve(
    ref: ReferenceTimings,
    total_particles: int = 48000,
    cg_counts: tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256, 512),
    nonbonded: NonbondedParams | None = None,
    transport: Transport = Transport.RDMA,
    chip: ChipParams = DEFAULT_PARAMS,
) -> ScalingCurve:
    """Fig. 12 strong-scaling series: fixed 48 k particles, 4..512 CGs."""
    nb = nonbonded or NonbondedParams()
    points = [
        model_step_seconds(ref, total_particles, n, nb, transport, chip)
        for n in cg_counts
    ]
    return ScalingCurve(points, baseline_cgs=cg_counts[0])


def weak_scaling_curve(
    ref: ReferenceTimings,
    particles_per_cg: int = 10000,
    cg_counts: tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256, 512),
    nonbonded: NonbondedParams | None = None,
    transport: Transport = Transport.RDMA,
    chip: ChipParams = DEFAULT_PARAMS,
) -> ScalingCurve:
    """Fig. 12 weak-scaling series: 10 k particles per CG, 4..512 CGs."""
    nb = nonbonded or NonbondedParams()
    points = [
        model_step_seconds(
            ref, particles_per_cg * n, n, nb, transport, chip
        )
        for n in cg_counts
    ]
    return ScalingCurve(points, baseline_cgs=cg_counts[0])
