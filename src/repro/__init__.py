"""repro — a reproduction of *SW_GROMACS: Accelerate GROMACS on Sunway
TaihuLight* (SC '19).

The package provides four layers (see DESIGN.md for the full inventory):

* :mod:`repro.hw` — an SW26010 core-group model (CPEs, LDM, DMA with the
  paper's measured bandwidth curve, software caches, bit-map marks,
  256-bit SIMD) with functional semantics plus a calibrated cycle/byte
  cost model.
* :mod:`repro.md` — a from-scratch GROMACS-like molecular-dynamics engine
  (water systems, cluster pair lists, LJ/Coulomb/PME/bonded forces,
  leapfrog, constraints, thermostats).
* :mod:`repro.parallel` — athread-style CPE work partitioning, domain
  decomposition, and MPI/RDMA communication models.
* :mod:`repro.core` — the paper's contribution: particle packaging, the
  read cache, deferred update, Bit-Map marks, vectorised kernels, the
  strategy ladder and baselines, the full SW_GROMACS engine, and the
  cross-platform TTF model.

Quickstart::

    from repro import build_water_system, SWGromacsEngine

    system = build_water_system(n_particles=3000, temperature=300.0)
    engine = SWGromacsEngine(system)
    result = engine.run(n_steps=50)
    print(result.timing.fractions())
"""

__version__ = "1.0.0"

# Lazy re-exports (PEP 562): subpackages import freely from each other
# without the top-level package forcing an import order.
_EXPORTS = {
    "build_water_system": ("repro.md.water", "build_water_system"),
    "build_lj_fluid": ("repro.md.water", "build_lj_fluid"),
    "ParticleSystem": ("repro.md.system", "ParticleSystem"),
    "MdLoop": ("repro.md.mdloop", "MdLoop"),
    "MdConfig": ("repro.md.mdloop", "MdConfig"),
    "SWGromacsEngine": ("repro.core.engine", "SWGromacsEngine"),
    "EngineConfig": ("repro.core.engine", "EngineConfig"),
    "Strategy": ("repro.core.strategies", "Strategy"),
    "STRATEGY_LADDER": ("repro.core.strategies", "STRATEGY_LADDER"),
    "BASELINE_STRATEGIES": ("repro.core.strategies", "BASELINE_STRATEGIES"),
    "run_strategy": ("repro.core.strategies", "run_strategy"),
    "run_strategy_sweep": ("repro.core.kernels", "run_strategy_sweep"),
    "StepCache": ("repro.core.stepcache", "StepCache"),
    "ChipParams": ("repro.hw.params", "ChipParams"),
    "DEFAULT_PARAMS": ("repro.hw.params", "DEFAULT_PARAMS"),
    "Tracer": ("repro.trace.events", "Tracer"),
    "NullTracer": ("repro.trace.events", "NullTracer"),
    "write_chrome_trace": ("repro.trace.export", "write_chrome_trace"),
    "SimulationService": ("repro.serve.service", "SimulationService"),
    "ServeConfig": ("repro.serve.service", "ServeConfig"),
    "JobRequest": ("repro.serve.jobs", "JobRequest"),
    "JobResult": ("repro.serve.jobs", "JobResult"),
    "ServeClient": ("repro.serve.client", "ServeClient"),
    "FleetRouter": ("repro.fleet.router", "FleetRouter"),
    "RouterConfig": ("repro.fleet.router", "RouterConfig"),
    "FleetWorker": ("repro.fleet.worker", "FleetWorker"),
    "WorkerConfig": ("repro.fleet.worker", "WorkerConfig"),
    "HashRing": ("repro.fleet.ring", "HashRing"),
    "LocalFleet": ("repro.fleet.launch", "LocalFleet"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))

__all__ = [
    "__version__",
    "BASELINE_STRATEGIES",
    "ChipParams",
    "DEFAULT_PARAMS",
    "EngineConfig",
    "MdConfig",
    "MdLoop",
    "NullTracer",
    "ParticleSystem",
    "STRATEGY_LADDER",
    "SWGromacsEngine",
    "Strategy",
    "Tracer",
    "build_lj_fluid",
    "build_water_system",
    "run_strategy",
    "write_chrome_trace",
]
