"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's experiments:

* ``run``      — MD on the simulated SW26010 (quickstart as a command);
* ``trace``    — record a per-CPE event timeline of an MD run and export
  Chrome-trace JSON (load in chrome://tracing or ui.perfetto.dev);
* ``ladder``   — the Fig. 8/9 strategy comparison;
* ``overall``  — the Fig. 10 optimisation-level ladder;
* ``scaling``  — the Fig. 12 strong/weak curves;
* ``ranks``    — a multi-rank simulated-MPI run, one worker per rank;
* ``table2``   — the DMA bandwidth table;
* ``ttf``      — the Eq. 3/4 platform ratios;
* ``serve``    — run the long-lived simulation service (queue, batcher,
  fair-share scheduler over the pool backend; DESIGN.md §10);
* ``submit``   — submit a job (or control op) to a running service or
  fleet router (``--router`` addresses a router directly);
* ``fleet``    — run the consistent-hash fleet router, optionally
  spawning N local workers (DESIGN.md §11);
* ``fleet-worker`` — run one fleet worker: a simulation service that
  registers and heartbeats with a router.

Every command accepts ``--backend serial|pool`` and ``--workers N``
(before the subcommand) to pick the host execution backend; the
``REPRO_BACKEND`` / ``REPRO_WORKERS`` environment variables are the
fallback (DESIGN.md §9).
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro import __version__
from repro.parallel.pool import BACKEND_ENV, BACKEND_NAMES, WORKERS_ENV


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SW_GROMACS reproduction: GROMACS-like MD on a "
        "simulated SW26010 core group",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}",
        help="print the package version and exit",
    )
    parser.add_argument(
        "--backend", choices=sorted(BACKEND_NAMES), default=None,
        help="host execution backend (default: $REPRO_BACKEND or serial)",
    )
    parser.add_argument(
        "--kernel", choices=("scalar", "vectorized"), default=None,
        help="short-range kernel implementation: 'scalar' is the "
        "bit-identity reference, 'vectorized' the batched fast path "
        "(default: $REPRO_KERNEL or scalar)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="pool worker count (default: $REPRO_WORKERS or host CPUs)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run MD on the simulated chip")
    run.add_argument("-n", "--particles", type=int, default=3000)
    run.add_argument("-s", "--steps", type=int, default=100)
    run.add_argument("--level", type=int, default=3, choices=range(4))
    run.add_argument("--rcut", type=float, default=0.9)
    run.add_argument("--seed", type=int, default=2019)
    run.add_argument(
        "--spec", metavar="SPEC", default=None,
        help="scenario spec, e.g. 'water@spce n=1500 ensemble=nvt "
        "elec=rf' — overrides -n/--level/--rcut/--seed (DESIGN.md §15)",
    )
    run.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="write a checkpoint every N completed steps (0 = never)",
    )
    run.add_argument(
        "--checkpoint-path", default="state.ckpt",
        help="checkpoint file (default: state.ckpt)",
    )
    run.add_argument(
        "--restart", metavar="FILE", default=None,
        help="resume from a checkpoint file (bit-identical continuation)",
    )
    run.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="inject faults, e.g. 'seed=7,dma=1e-3,cpe=0.01,msg=1e-4,dead=3+17'",
    )

    trace = sub.add_parser(
        "trace",
        help="record a per-CPE event timeline and export Chrome-trace JSON",
    )
    trace.add_argument("-n", "--particles", type=int, default=3000)
    trace.add_argument("-s", "--steps", type=int, default=5)
    trace.add_argument("--level", type=int, default=3, choices=range(4))
    trace.add_argument("--rcut", type=float, default=0.9)
    trace.add_argument("--seed", type=int, default=2019)
    trace.add_argument(
        "--out", default="trace.json", help="output path for the trace JSON"
    )
    trace.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="inject faults and trace the retries (same SPEC as run)",
    )

    ladder = sub.add_parser("ladder", help="Fig. 8/9 strategy speedups")
    ladder.add_argument("-n", "--particles", type=int, default=12000)
    ladder.add_argument("--baselines", action="store_true")

    overall = sub.add_parser("overall", help="Fig. 10 optimisation levels")
    overall.add_argument("-n", "--particles", type=int, default=12000)
    overall.add_argument("--cgs", type=int, default=1)

    scaling = sub.add_parser("scaling", help="Fig. 12 scalability curves")
    scaling.add_argument("--strong-total", type=int, default=48000)
    scaling.add_argument("--weak-per-cg", type=int, default=10000)

    ranks = sub.add_parser(
        "ranks",
        help="multi-rank simulated-MPI run (one host worker per rank)",
    )
    ranks.add_argument("-r", "--ranks", dest="n_ranks", type=int, default=4)
    ranks.add_argument("-n", "--particles", type=int, default=3000)
    ranks.add_argument("-s", "--steps", type=int, default=20)
    ranks.add_argument("--level", type=int, default=3, choices=range(4))
    ranks.add_argument("--rcut", type=float, default=0.9)
    ranks.add_argument("--seed", type=int, default=2019)
    ranks.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="per-rank fault injection (same SPEC as run; rank-seeded)",
    )

    sub.add_parser("table2", help="DMA bandwidth vs block size")
    sub.add_parser("ttf", help="Eq. 3/4 cross-platform TTF ratios")

    serve = sub.add_parser(
        "serve",
        help="run the long-lived simulation service (drain to stop)",
    )
    _add_address_args(serve)
    serve.add_argument(
        "--max-depth", type=int, default=64, metavar="N",
        help="admission window: total queued jobs (default: 64)",
    )
    serve.add_argument(
        "--max-per-tenant", type=int, default=None, metavar="N",
        help="per-tenant queued-job cap (default: none)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=16, metavar="N",
        help="max distinct requests coalesced per dispatch (default: 16)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="concurrent batches (default: backend worker count)",
    )
    serve.add_argument(
        "--no-dedup", action="store_true",
        help="disable request dedup/batching (ablation baseline)",
    )
    serve.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a Chrome-trace service timeline to FILE on drain",
    )
    _add_resident_args(serve)
    _add_durable_args(serve)

    fleet = sub.add_parser(
        "fleet",
        help="run the fleet router (consistent-hash front-end over workers)",
    )
    _add_address_args(fleet)
    fleet.add_argument(
        "--spawn-workers", type=int, default=0, metavar="N",
        help="also spawn N local fleet-worker subprocesses (needs --socket)",
    )
    fleet.add_argument(
        "--heartbeat-timeout", type=float, default=5.0, metavar="SECONDS",
        help="declare a worker dead after this heartbeat silence (default: 5)",
    )
    fleet.add_argument(
        "--check-interval", type=float, default=0.5, metavar="SECONDS",
        help="heartbeat-deadline check period (default: 0.5)",
    )
    fleet.add_argument(
        "--route-wait", type=float, default=10.0, metavar="SECONDS",
        help="max wait for a routable worker before no_workers (default: 10)",
    )
    fleet.add_argument(
        "--vnodes", type=int, default=64, metavar="N",
        help="virtual nodes per worker on the hash ring (default: 64)",
    )
    fleet.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a Chrome-trace fleet timeline to FILE on drain",
    )

    worker = sub.add_parser(
        "fleet-worker",
        help="run one fleet worker (a serve instance that phones home)",
    )
    _add_address_args(worker)
    worker.add_argument(
        "--router", required=True, metavar="ADDR",
        help="router address: a socket path or host:port",
    )
    worker.add_argument(
        "--name", required=True, help="unique worker name within the fleet"
    )
    worker.add_argument(
        "--heartbeat-interval", type=float, default=1.0, metavar="SECONDS",
        help="heartbeat period (default: 1)",
    )
    worker.add_argument(
        "--max-depth", type=int, default=64, metavar="N",
        help="admission window: total queued jobs (default: 64)",
    )
    worker.add_argument(
        "--max-per-tenant", type=int, default=None, metavar="N",
        help="per-tenant queued-job cap (default: none)",
    )
    worker.add_argument(
        "--max-batch", type=int, default=16, metavar="N",
        help="max distinct requests coalesced per dispatch (default: 16)",
    )
    worker.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="concurrent batches (default: backend worker count)",
    )
    worker.add_argument(
        "--no-dedup", action="store_true",
        help="disable request dedup/batching (ablation baseline)",
    )
    _add_resident_args(worker)
    _add_durable_args(worker)

    submit = sub.add_parser(
        "submit",
        help="submit a job (or control op) to a running service",
    )
    _add_address_args(submit)
    submit.add_argument(
        "--router", metavar="ADDR", default=None,
        help="address a fleet router (socket path or host:port) instead "
        "of --socket/--port; same wire protocol, extra ops (fleet)",
    )
    submit.add_argument(
        "--connect-retries", type=int, default=0, metavar="N",
        help="retry a refused/unbound initial connect N times (default: 0)",
    )
    submit.add_argument(
        "--connect-backoff", type=float, default=0.05, metavar="SECONDS",
        help="initial connect-retry backoff, doubling per attempt",
    )
    submit.add_argument("-n", "--particles", type=int, default=900)
    submit.add_argument(
        "--kind", choices=("kernel", "md"), default="kernel",
        help="job kind: one strategy kernel or a full MD run",
    )
    submit.add_argument(
        "--spec", default="MARK",
        help="kernel strategy name (kernel kind; default: MARK) OR a "
        "scenario spec like 'water@spce n=1500 ensemble=nvt elec=rf' — "
        "anything that is not a known strategy name is concretized as "
        "a scenario (DESIGN.md §15)",
    )
    submit.add_argument("-s", "--steps", type=int, default=5)
    submit.add_argument("--level", type=int, default=3, choices=range(4))
    submit.add_argument("--rcut", type=float, default=0.9)
    submit.add_argument("--seed", type=int, default=2019)
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall deadline from admission",
    )
    submit.add_argument(
        "--no-wait", action="store_true",
        help="enqueue and print the job id instead of waiting",
    )
    submit.add_argument(
        "--wait-id", type=int, default=None, metavar="JOB_ID",
        help="wait for a previously submitted job instead of submitting",
    )
    submit.add_argument(
        "--progress-id", type=int, default=None, metavar="JOB_ID",
        help="stream progress for a previously submitted job (long MD "
        "jobs report partial step counts) until its terminal result",
    )
    submit.add_argument(
        "--op",
        choices=("ping", "stats", "metrics", "pause", "resume", "drain",
                 "fleet", "warmup"),
        default=None,
        help="send a control op instead of submitting a job "
        "(metrics: per-tenant SLO metrics; fleet: router-only "
        "membership/ring dump; warmup: pre-build worker residency for "
        "the job described by the other flags — DESIGN.md §14)",
    )

    campaign = sub.add_parser(
        "campaign",
        help="expand a scenario matrix and fan it over a serve tier",
    )
    campaign.add_argument(
        "matrix",
        help="spec matrix, e.g. 'water@spc,water@spce n=750,1500 "
        "elec=rf,pme' (cross product; invalid corners are reported "
        "skips, not errors)",
    )
    _add_address_args(campaign)
    campaign.add_argument(
        "--router", metavar="ADDR", default=None,
        help="address a fleet router instead of --socket/--port",
    )
    campaign.add_argument(
        "--self-serve", action="store_true",
        help="run an in-process serve tier for the campaign (no "
        "address flags needed; drains itself afterwards)",
    )
    campaign.add_argument(
        "--kind", choices=("kernel", "md"), default="kernel",
        help="job kind for every cell (default: kernel)",
    )
    campaign.add_argument("-s", "--steps", type=int, default=5)
    campaign.add_argument("--tenant", default="campaign")
    campaign.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall deadline from admission",
    )
    campaign.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the JSON campaign report to FILE",
    )
    campaign.add_argument(
        "--dry-run", action="store_true",
        help="plan only: print the per-cell table (concrete spec / "
        "skip reason / duplicate) without submitting anything",
    )
    campaign.add_argument(
        "--connect-retries", type=int, default=0, metavar="N",
        help="retry a refused/unbound initial connect N times",
    )
    campaign.add_argument(
        "--connect-backoff", type=float, default=0.05, metavar="SECONDS",
        help="initial connect-retry backoff, doubling per attempt",
    )

    scenarios = sub.add_parser(
        "scenarios",
        help="list/audit the scenario registry (DESIGN.md §15)",
    )
    scenarios.add_argument(
        "--audit", action="store_true",
        help="concretize the full one-factor variant matrix; exit 1 on "
        "drift (a cell failing outside the declared rules)",
    )
    scenarios.add_argument(
        "--smoke", action="store_true",
        help="run a tiny MD through every family on the serial backend",
    )
    scenarios.add_argument(
        "--smoke-steps", type=int, default=2, metavar="N",
        help="MD steps per family in --smoke (default: 2)",
    )
    return parser


def _add_resident_args(parser) -> None:
    parser.add_argument(
        "--no-resident", action="store_true",
        help="disable the resident-state layer (cold-dispatch ablation "
        "baseline; DESIGN.md §14)",
    )
    parser.add_argument(
        "--resident-capacity", type=int, default=4, metavar="N",
        help="warm systems kept per worker process, LRU beyond this "
        "(default: 4)",
    )
    parser.add_argument(
        "--arena-bytes", type=int, default=1 << 20, metavar="BYTES",
        help="shared-memory output arena per worker lane; force blocks "
        "that fit travel zero-copy, larger ones fall back to pickled "
        "results (default: 1 MiB)",
    )


def _add_durable_args(parser) -> None:
    parser.add_argument(
        "--journal-dir", metavar="DIR", default=None,
        help="enable the durable layer: journal accepted jobs and keep "
        "a cross-restart result store under DIR (restart with the same "
        "DIR to replay unfinished jobs bit-identically; DESIGN.md §12)",
    )
    parser.add_argument(
        "--result-store-max", type=int, default=512, metavar="N",
        help="durable result-store bound, LRU-evicted (default: 512)",
    )
    parser.add_argument(
        "--journal-fsync", action="store_true",
        help="fsync every journal record (power-loss strictness; the "
        "default flush-per-record already survives kill -9)",
    )


def _add_address_args(parser) -> None:
    parser.add_argument(
        "--socket", metavar="PATH", default=None,
        help="Unix-domain socket path for the service",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="TCP host (with --port)"
    )
    parser.add_argument(
        "--port", type=int, default=None, help="TCP port (0 = ephemeral)"
    )


def _cmd_run(args) -> int:
    from repro.core.engine import EngineConfig, SWGromacsEngine
    from repro.md.mdloop import MdConfig
    from repro.md.minimize import minimize
    from repro.md.nonbonded import NonbondedParams
    from repro.md.water import build_water_system
    from repro.resilience import ResiliencePolicy, load_checkpoint

    policy = ResiliencePolicy(
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=args.checkpoint_path,
        faults=args.faults,
    )
    if args.spec is not None:
        from repro.scenarios import (
            SpecError,
            build_scenario,
            concretize_text,
            engine_config_for,
        )

        try:
            spec = concretize_text(args.spec)
        except SpecError as exc:
            print(f"run: invalid spec: {exc}", file=sys.stderr)
            return 2
        print(f"scenario: {spec.to_string()}")
        system, nb = build_scenario(spec)
        minimize(system, MdConfig(nonbonded=nb), n_steps=60)
        system.thermalize(spec.temp, np.random.default_rng(spec.seed + 1))
        overrides = dict(
            report_interval=max(args.steps // 10, 1),
            resilience=policy,
            backend=args.backend,
            workers=args.workers,
        )
        if args.kernel is not None:
            overrides["kernel_impl"] = args.kernel
        config = engine_config_for(spec, **overrides)
    else:
        nb = NonbondedParams(
            r_cut=args.rcut, r_list=args.rcut + 0.1, coulomb_mode="rf"
        )
        system = build_water_system(args.particles, seed=args.seed)
        minimize(system, MdConfig(nonbonded=nb), n_steps=60)
        system.thermalize(300.0, np.random.default_rng(args.seed + 1))
        config = EngineConfig(
            nonbonded=nb,
            optimization_level=args.level,
            report_interval=max(args.steps // 10, 1),
            resilience=policy,
            backend=args.backend,
            workers=args.workers,
            kernel_impl=args.kernel,
        )
    engine = SWGromacsEngine(system, config)
    if args.restart:
        ckpt = load_checkpoint(args.restart)
        engine.restore(ckpt)
        print(f"restarted from {args.restart} at step {ckpt.step}")
    result = engine.run(args.steps)
    print("step   E_total(kJ/mol)     T(K)")
    for frame in result.reporter.frames:
        print(f"{frame.step:5d} {frame.total:15.1f} {frame.temperature:8.1f}")
    total = result.timing.total()
    print(f"\nmodelled chip time: {total * 1e3:.2f} ms "
          f"({total / max(args.steps, 1) * 1e6:.1f} us/step)")
    for kernel, frac in sorted(
        result.timing.fractions().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {kernel:18s} {frac:6.1%}")
    if result.checkpoints_written:
        print(f"\ncheckpoints: {result.checkpoints_written} written to "
              f"{policy.checkpoint_path}")
    if result.fault_counts is not None:
        fc = result.fault_counts
        print(f"injected faults: {fc.dma_errors} DMA errors, "
              f"{fc.cpe_losses} CPE losses, {fc.messages_lost} messages lost")
        if result.degradation is not None and result.degradation.degraded:
            d = result.degradation
            print(f"degradation: {d.mode} over {d.n_survivors}/{d.n_cpes} "
                  f"CPEs (x{d.slowdown:.2f} CPE-parallel slowdown)")
    return 0


def _cmd_trace(args) -> int:
    from repro.core.engine import EngineConfig, SWGromacsEngine
    from repro.md.mdloop import MdConfig
    from repro.md.minimize import minimize
    from repro.md.nonbonded import NonbondedParams
    from repro.md.water import build_water_system
    from repro.resilience import ResiliencePolicy
    from repro.trace import Tracer, summarize, write_chrome_trace

    nb = NonbondedParams(
        r_cut=args.rcut, r_list=args.rcut + 0.1, coulomb_mode="rf"
    )
    system = build_water_system(args.particles, seed=args.seed)
    minimize(system, MdConfig(nonbonded=nb), n_steps=30)
    system.thermalize(300.0, np.random.default_rng(args.seed + 1))
    config = EngineConfig(
        nonbonded=nb,
        optimization_level=args.level,
        resilience=ResiliencePolicy(faults=args.faults),
        backend=args.backend,
        workers=args.workers,
        kernel_impl=args.kernel,
    )
    tracer = Tracer(config.chip)
    engine = SWGromacsEngine(system, config, tracer=tracer)
    engine.run(args.steps)
    doc = write_chrome_trace(tracer, args.out)
    print(
        f"wrote {len(doc['traceEvents'])} events "
        f"({len(tracer)} spans, {len(tracer.tracks())} tracks) to {args.out}"
    )
    print("load it in chrome://tracing or https://ui.perfetto.dev\n")
    print(summarize(tracer))
    return 0


def _cmd_ladder(args) -> int:
    from repro.analysis.figures import PAPER_FIG8, PAPER_FIG9, print_speedup_bars
    from repro.core.strategies import (
        BASELINE_STRATEGIES,
        STRATEGY_LADDER,
        run_ladder,
    )
    from repro.md.nonbonded import NonbondedParams
    from repro.md.water import build_water_system

    strategies = STRATEGY_LADDER + (
        BASELINE_STRATEGIES if args.baselines else ()
    )
    nb = NonbondedParams(r_cut=1.0, r_list=1.0, coulomb_mode="rf")
    system = build_water_system(args.particles)
    lad = run_ladder(system, strategies, nb, backend=args.backend)
    print(
        print_speedup_bars(
            {s.label: lad.speedups[s.label] for s in STRATEGY_LADDER},
            PAPER_FIG8,
            f"Fig. 8 ladder — {args.particles} particles",
        )
    )
    if args.baselines:
        print()
        print(
            print_speedup_bars(
                {s.label: lad.speedups[s.label] for s in BASELINE_STRATEGIES},
                PAPER_FIG9,
                "Fig. 9 strategy comparison",
            )
        )
    return 0


def _cmd_overall(args) -> int:
    from repro.analysis.figures import PAPER_FIG10, print_speedup_bars
    from repro.core.engine import run_optimization_ladder
    from repro.md.nonbonded import NonbondedParams
    from repro.md.water import build_water_system

    nb = NonbondedParams(r_cut=1.0, r_list=1.0, coulomb_mode="rf")
    ladder = run_optimization_ladder(
        lambda n: build_water_system(n),
        args.particles,
        n_cgs=args.cgs,
        nonbonded=nb,
        output_interval=100,
    )
    base = ladder["Ori"].total()
    speedups = {k: base / v.total() for k, v in ladder.items()}
    paper = PAPER_FIG10["case1" if args.cgs == 1 else "case2"]
    print(
        print_speedup_bars(
            speedups, paper, f"Fig. 10 — {args.cgs} CG(s)"
        )
    )
    return 0


def _cmd_scaling(args) -> int:
    from repro.analysis.figures import (
        PAPER_FIG12_STRONG,
        PAPER_FIG12_WEAK,
        print_efficiency_curves,
    )
    from repro.analysis.scaling import (
        ReferenceTimings,
        strong_scaling_curve,
        weak_scaling_curve,
    )
    from repro.md.nonbonded import NonbondedParams
    from repro.md.water import build_water_system

    nb = NonbondedParams(r_cut=1.0, r_list=1.0, coulomb_mode="rf")
    ref = ReferenceTimings.measure(
        lambda n: build_water_system(n), 12000, nb
    )
    strong = strong_scaling_curve(ref, args.strong_total, nonbonded=nb)
    weak = weak_scaling_curve(ref, args.weak_per_cg, nonbonded=nb)
    print(
        print_efficiency_curves(
            strong.strong_efficiency(), PAPER_FIG12_STRONG, "strong scaling"
        )
    )
    print()
    print(
        print_efficiency_curves(
            weak.weak_efficiency(), PAPER_FIG12_WEAK, "weak scaling"
        )
    )
    return 0


def _cmd_ranks(args) -> int:
    from repro.core.engine import EngineConfig
    from repro.md.mdloop import MdConfig
    from repro.md.minimize import minimize
    from repro.md.nonbonded import NonbondedParams
    from repro.md.water import build_water_system
    from repro.parallel.multirank import run_mpi_ranks
    from repro.resilience import ResiliencePolicy

    nb = NonbondedParams(
        r_cut=args.rcut, r_list=args.rcut + 0.1, coulomb_mode="rf"
    )
    system = build_water_system(args.particles, seed=args.seed)
    minimize(system, MdConfig(nonbonded=nb), n_steps=60)
    system.thermalize(300.0, np.random.default_rng(args.seed + 1))
    config = EngineConfig(
        nonbonded=nb,
        optimization_level=args.level,
        n_cgs=args.n_ranks,
        resilience=ResiliencePolicy(faults=args.faults),
        backend=args.backend,
        workers=args.workers,
        kernel_impl=args.kernel,
    )
    result = run_mpi_ranks(
        system,
        args.steps,
        config=config,
        n_ranks=args.n_ranks,
        backend=args.backend,
    )
    print(f"{result.n_ranks} simulated ranks x {args.steps} steps "
          f"({args.particles} particles each)")
    print("rank   E_pot(kJ/mol)     T(K)   modelled(ms)  faults(d/c/m)")
    for r in result.ranks:
        faults = (
            "/".join(str(c) for c in r.fault_counts)
            if r.fault_counts is not None
            else "-"
        )
        print(f"{r.rank:4d} {r.potential:15.1f} {r.temperature:8.1f} "
              f"{r.modelled_seconds * 1e3:14.2f}  {faults}")
    pot, kin = result.reduced_energy
    print(f"\nallreduced energy: E_pot={pot:.1f} E_kin={kin:.1f} kJ/mol")
    print(f"modelled time: {result.modelled_seconds * 1e3:.2f} ms "
          f"(comm {result.comm_seconds * 1e6:.1f} us, "
          f"{result.comm_stats.n_retries} comm retries)")
    return 0


def _cmd_table2(args) -> int:
    from repro.analysis.figures import print_table2
    from repro.hw.dma import bandwidth_table

    print(print_table2(bandwidth_table()))
    return 0


def _cmd_ttf(args) -> int:
    from repro.core.platforms import fair_chip_count, ttf_ratio

    print(f"TTF_SW / TTF_KNL  (Eq. 3): {ttf_ratio('SW26010', 'KNL'):6.1f}  "
          "(paper ~150)")
    print(f"TTF_SW / TTF_P100 (Eq. 4): {ttf_ratio('SW26010', 'P100'):6.1f}  "
          "(paper ~24)")
    print(f"fair counts: {fair_chip_count('KNL')} SW26010 per KNL, "
          f"{fair_chip_count('P100')} per P100")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve import ServeConfig, SimulationService
    from repro.trace import Tracer, write_chrome_trace
    from repro.trace.events import NULL_TRACER

    if args.socket is None and args.port is None:
        print("serve: need --socket PATH or --port N", file=sys.stderr)
        return 2
    config = ServeConfig(
        max_depth=args.max_depth,
        max_per_tenant=args.max_per_tenant,
        max_batch=args.max_batch,
        max_inflight=args.max_inflight,
        dedup=not args.no_dedup,
        backend=args.backend,
        workers=args.workers,
        journal_dir=args.journal_dir,
        result_store_max=args.result_store_max,
        journal_fsync=args.journal_fsync,
        resident=not args.no_resident,
        resident_capacity=args.resident_capacity,
        arena_bytes=args.arena_bytes,
    )
    tracer = Tracer() if args.trace else NULL_TRACER

    async def _main() -> int:
        service = SimulationService(config, tracer=tracer)
        await service.start()
        if args.socket is not None:
            await service.serve_unix(args.socket)
            where = args.socket
        else:
            port = await service.serve_tcp(args.host, args.port)
            where = f"{args.host}:{port}"
        durable = ""
        if config.journal_dir is not None:
            durable = (
                f", journal={config.journal_dir} "
                f"({service.stats.journal_replays} replayed)"
            )
        print(
            f"repro serve: listening on {where} "
            f"(backend={service.backend.name}, depth<={config.max_depth}, "
            f"dedup={'on' if config.dedup else 'off'}{durable})",
            flush=True,
        )
        stats = await service.run_until_drained()
        if args.trace:
            doc = write_chrome_trace(tracer, args.trace)
            print(f"wrote {len(doc['traceEvents'])} events to {args.trace}")
        s = stats.as_dict()
        print(
            f"drained: {s['completed']} completed, {s['failed']} failed, "
            f"{s['rejected']} rejected, {s['executed_units']} executions "
            f"for {s['accepted']} accepted jobs "
            f"({s['dedup_hits']} dedup hits, {s['batches']} batches, "
            f"{s['journal_replays']} journal replays, "
            f"{s['store_hits']} store hits)"
        )
        return 0

    return asyncio.run(_main())


def _cmd_fleet(args) -> int:
    import asyncio

    from repro.fleet import FleetRouter, RouterConfig
    from repro.trace import Tracer, write_chrome_trace
    from repro.trace.events import NULL_TRACER

    if args.socket is None and args.port is None:
        print("fleet: need --socket PATH or --port N", file=sys.stderr)
        return 2
    if args.spawn_workers and args.socket is None:
        print(
            "fleet: --spawn-workers needs --socket (workers join over it)",
            file=sys.stderr,
        )
        return 2
    config = RouterConfig(
        heartbeat_timeout_s=args.heartbeat_timeout,
        check_interval_s=args.check_interval,
        route_wait_s=args.route_wait,
        vnodes=args.vnodes,
    )
    tracer = Tracer() if args.trace else NULL_TRACER

    workers = []
    if args.spawn_workers:
        import subprocess
        from pathlib import Path

        root = Path(args.socket).resolve().parent
        for i in range(args.spawn_workers):
            workers.append(
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro", "fleet-worker",
                        "--router", args.socket,
                        "--socket", str(root / f"fleet-w{i}.sock"),
                        "--name", f"w{i}",
                    ]
                )
            )

    async def _main() -> int:
        router = FleetRouter(config, tracer=tracer)
        await router.start()
        if args.socket is not None:
            await router.serve_unix(args.socket)
            where = args.socket
        else:
            port = await router.serve_tcp(args.host, args.port)
            where = f"{args.host}:{port}"
        print(
            f"repro fleet: router listening on {where} "
            f"(vnodes={config.vnodes}, heartbeat timeout "
            f"{config.heartbeat_timeout_s:.1f}s"
            + (f", {args.spawn_workers} spawned workers" if workers else "")
            + ")",
            flush=True,
        )
        stats = await router.run_until_drained()
        if args.trace:
            doc = write_chrome_trace(tracer, args.trace)
            print(f"wrote {len(doc['traceEvents'])} events to {args.trace}")
        print(
            f"drained: {stats['completed']} completed, "
            f"{stats['failed']} failed, {stats['rejected']} rejected, "
            f"{stats['reassignments']} reassignment(s) across "
            f"{stats['workers_registered']} worker registration(s)"
        )
        return 0

    try:
        return asyncio.run(_main())
    finally:
        for proc in workers:
            try:
                proc.wait(timeout=15.0)
            except Exception:
                proc.terminate()


def _cmd_fleet_worker(args) -> int:
    import asyncio

    from repro.fleet import FleetWorker, WorkerConfig
    from repro.fleet.wire import Address, parse_address
    from repro.serve import ServeConfig

    if args.socket is None and args.port is None:
        print("fleet-worker: need --socket PATH or --port N", file=sys.stderr)
        return 2
    address = (
        Address(socket_path=args.socket)
        if args.socket is not None
        else Address(host=args.host, port=args.port)
    )
    config = WorkerConfig(
        name=args.name,
        router=parse_address(args.router),
        address=address,
        serve=ServeConfig(
            max_depth=args.max_depth,
            max_per_tenant=args.max_per_tenant,
            max_batch=args.max_batch,
            max_inflight=args.max_inflight,
            dedup=not args.no_dedup,
            backend=args.backend,
            workers=args.workers,
            journal_dir=args.journal_dir,
            result_store_max=args.result_store_max,
            journal_fsync=args.journal_fsync,
            resident=not args.no_resident,
            resident_capacity=args.resident_capacity,
            arena_bytes=args.arena_bytes,
        ),
        heartbeat_interval_s=args.heartbeat_interval,
    )

    async def _main() -> int:
        worker = FleetWorker(config)
        await worker.start()
        print(
            f"repro fleet-worker {args.name!r}: serving on "
            f"{worker.advertised} "
            f"(backend={worker.service.backend.name}), registered with "
            f"router {args.router}",
            flush=True,
        )
        stats = await worker.run_until_drained()
        s = stats.as_dict()
        print(
            f"drained: {s['completed']} completed, {s['failed']} failed, "
            f"{s['rejected']} rejected ({s['dedup_hits']} dedup hits, "
            f"{s['batches']} batches)"
        )
        return 0

    return asyncio.run(_main())


def _job_request_from_args(args):
    """Build the submit/warmup `JobRequest`, treating ``--spec`` as
    dual-use: a known strategy name stays the legacy kernel field, any
    other text is a scenario spec (concretized at admission)."""
    from repro.core.kernels import ALL_SPECS
    from repro.serve import JobRequest

    common = dict(
        kind=args.kind,
        steps=args.steps,
        tenant=args.tenant,
        priority=getattr(args, "priority", 0),
        timeout_s=getattr(args, "timeout", None),
    )
    if args.spec in ALL_SPECS:
        return JobRequest(
            n_particles=args.particles,
            spec=args.spec,
            level=args.level,
            r_cut=args.rcut,
            seed=args.seed,
            **common,
        )
    return JobRequest(scenario=args.spec, **common)


def _cmd_submit(args) -> int:
    from repro.serve import (
        ServeClient,
        ServeConnectionError,
        ServeRequestError,
    )

    if args.router is not None:
        from repro.fleet.wire import parse_address

        where = parse_address(args.router)
        socket_path = where.socket_path
        host, port = where.host, where.port
    elif args.socket is not None or args.port is not None:
        socket_path = args.socket
        host = args.host if args.socket is None else None
        port = args.port if args.socket is None else None
    else:
        print(
            "submit: need --socket PATH, --port N, or --router ADDR",
            file=sys.stderr,
        )
        return 2
    client = ServeClient(
        socket_path=socket_path,
        host=host,
        port=port,
        connect_retries=args.connect_retries,
        connect_backoff=args.connect_backoff,
    )
    try:
        if args.op == "warmup":
            # Warmup describes a job (it routes on the system key) but
            # is a control op: nothing is queued or executed for a
            # client, the owning worker just pre-builds residency.
            info = client.warmup(_job_request_from_args(args))
            if not info.get("resident"):
                print(f"warmup skipped: {info.get('reason', 'unknown')}")
                return 0
            how = "built" if info.get("built") else "already warm"
            where = (
                f" on worker {info['worker']!r}" if "worker" in info else ""
            )
            print(
                f"warmup ok ({how}, lane {info.get('lane')}{where}, "
                f"occupancy {info.get('occupancy')}/{info.get('capacity')})"
            )
            return 0
        if args.op is not None:
            response = client.request({"op": args.op})
            if args.op == "stats":
                import json

                dump = dict(response["stats"])
                if "durable" in response:
                    dump["durable"] = response["durable"]
                if "resident" in response:
                    dump["resident"] = response["resident"]
                print(json.dumps(dump, indent=2, sort_keys=True))
            elif args.op == "metrics":
                import json

                print(
                    json.dumps(response["metrics"], indent=2, sort_keys=True)
                )
            elif args.op == "fleet":
                import json

                dump = {
                    key: response[key]
                    for key in ("router", "ring", "workers", "jobs")
                    if key in response
                }
                print(json.dumps(dump, indent=2, sort_keys=True))
            elif args.op == "drain":
                s = response["stats"]
                print(
                    f"drained: {s['completed']} completed, "
                    f"{s['failed']} failed, {s['rejected']} rejected"
                )
            else:
                print(f"{args.op}: ok")
            return 0
        if args.progress_id is not None:
            result = None
            for update in client.progress(args.progress_id):
                if update["done"]:
                    result = update["result"]
                    break
                p = update["progress"]
                steps = (
                    f", step {p['steps_done']}/{p['steps_total']}"
                    if p.get("steps_done") is not None
                    else ""
                )
                print(f"job {p['job_id']}: {p['state']}{steps}", flush=True)
            if result is None:
                print("submit: progress stream ended without a result",
                      file=sys.stderr)
                return 3
        elif args.wait_id is not None:
            result = client.wait(args.wait_id)
        else:
            request = _job_request_from_args(args)
            if args.no_wait:
                job_id = client.submit(request, wait=False)
                print(f"accepted: job {job_id}")
                return 0
            result = client.submit(request)
    except ServeConnectionError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 3
    except ServeRequestError as exc:
        print(f"rejected [{exc.code}]: {exc.message}", file=sys.stderr)
        return 2
    if not result.ok:
        print(
            f"failed [{result.error.code}]: {result.error.message}",
            file=sys.stderr,
        )
        return 1
    if result.result_code is not None:
        how = result.result_code  # e.g. duplicate_completed (store hit)
    elif result.executed:
        how = "executed"
    else:
        how = "deduplicated"
    print(
        f"job {result.job_id} ok ({result.kind}, {how}, "
        f"queue {result.queue_seconds * 1e3:.1f} ms, "
        f"exec {result.execute_seconds * 1e3:.1f} ms)"
    )
    for key, val in sorted(result.payload.items()):
        if isinstance(val, dict):
            continue
        print(f"  {key:18s} {val}")
    return 0


def _print_campaign_report(report: dict) -> None:
    print(f"campaign: {report['n_cells']} cells, "
          f"{report['n_submitted']} submitted, "
          f"{report['elapsed_seconds'] * 1e3:.1f} ms")
    for label, count in sorted(report["counts"].items()):
        print(f"  {label:18s} {count}")
    for idx, cell in enumerate(report["cells"]):
        status = cell["status"]
        tail = ""
        if status == "ok" and cell["result"]:
            payload = cell["result"].get("payload") or {}
            if "energy" in payload:
                tail = f"  E={payload['energy']:.4f}"
            elif "potential" in payload:
                tail = f"  U={payload['potential']:.4f}"
        elif cell["reason"]:
            tail = f"  {cell['reason']}"
        print(f"  [{idx:3d}] {status:16s} {cell['spec']}{tail}")


def _cmd_campaign(args) -> int:
    import json

    from repro.scenarios import MatrixError, plan_campaign, run_campaign
    from repro.serve import ServeClient, ServeConnectionError

    if args.dry_run:
        try:
            plan = plan_campaign(args.matrix)
        except MatrixError as exc:
            print(f"campaign: {exc}", file=sys.stderr)
            return 2
        print(f"campaign plan: {len(plan.cells)} cells "
              f"({len(plan.runnable)} runnable)")
        for idx, cell in enumerate(plan.cells):
            concrete = cell.spec.to_string() if cell.spec else cell.text
            reason = f"  {cell.reason}" if cell.reason else ""
            print(f"  [{idx:3d}] {cell.status:16s} {concrete}{reason}")
        return 0

    if args.self_serve:
        report = _run_self_serve_campaign(args)
        if report is None:
            return 2
    else:
        if args.router is not None:
            from repro.fleet.wire import parse_address

            where = parse_address(args.router)
            socket_path, host, port = where.socket_path, where.host, where.port
        elif args.socket is not None or args.port is not None:
            socket_path = args.socket
            host = args.host if args.socket is None else None
            port = args.port if args.socket is None else None
        else:
            print("campaign: need --socket PATH, --port N, --router ADDR, "
                  "or --self-serve", file=sys.stderr)
            return 2
        client = ServeClient(
            socket_path=socket_path, host=host, port=port,
            connect_retries=args.connect_retries,
            connect_backoff=args.connect_backoff,
        )
        try:
            report = run_campaign(
                client, args.matrix, kind=args.kind, steps=args.steps,
                tenant=args.tenant, timeout_s=args.timeout,
            )
        except MatrixError as exc:
            print(f"campaign: {exc}", file=sys.stderr)
            return 2
        except ServeConnectionError as exc:
            print(f"campaign: {exc}", file=sys.stderr)
            return 3

    _print_campaign_report(report)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote report to {args.out}")
    failed = report["counts"].get("failed", 0)
    failed += report["counts"].get("rejected", 0)
    return 1 if failed else 0


def _run_self_serve_campaign(args) -> dict | None:
    """Run the matrix against an in-process serve tier: start the
    service in a worker thread on a temp socket, campaign against it,
    drain.  One command = one self-contained scenario sweep (the CI
    scenario-smoke job runs exactly this)."""
    import asyncio
    import tempfile
    import threading
    import time
    from pathlib import Path

    from repro.scenarios import MatrixError, run_campaign
    from repro.serve import ServeClient, ServeConfig, SimulationService

    with tempfile.TemporaryDirectory(prefix="repro-campaign-") as tmp:
        sock = str(Path(tmp) / "campaign.sock")

        async def _serve() -> None:
            service = SimulationService(
                ServeConfig(backend=args.backend, workers=args.workers)
            )
            await service.start()
            await service.serve_unix(sock)
            await service.run_until_drained()

        thread = threading.Thread(target=lambda: asyncio.run(_serve()))
        thread.start()
        try:
            deadline = time.monotonic() + 30
            while not Path(sock).exists():
                if time.monotonic() > deadline:
                    print("campaign: self-serve never came up",
                          file=sys.stderr)
                    return None
                time.sleep(0.02)
            client = ServeClient(socket_path=sock, connect_retries=20)
            try:
                return run_campaign(
                    client, args.matrix, kind=args.kind, steps=args.steps,
                    tenant=args.tenant, timeout_s=args.timeout,
                )
            except MatrixError as exc:
                print(f"campaign: {exc}", file=sys.stderr)
                return None
            finally:
                ServeClient(socket_path=sock).request({"op": "drain"})
        finally:
            thread.join(timeout=30)


def _cmd_scenarios(args) -> int:
    import json

    from repro.scenarios import FAMILIES, VARIANTS, audit

    if args.audit:
        report = audit()
        print(json.dumps(
            {k: v for k, v in report.items() if k != "rejections"},
            indent=2, sort_keys=True,
        ))
        for reason in report["rejections"][:8]:
            print(f"  rejected: {reason}")
        if report["drift"]:
            for entry in report["drift"]:
                print(f"DRIFT: {entry}", file=sys.stderr)
            return 1
        print(f"audit ok: {report['concretized']} concretized, "
              f"{report['rejected']} rejected by declared rules, 0 drift")
        return 0

    if args.smoke:
        return _scenarios_smoke(args)

    print("scenario families:")
    for family in FAMILIES.values():
        versions = ", ".join(family.versions)
        print(f"  {family.name:8s} @{family.default_version:6s} "
              f"[{versions}] — {family.description}")
    print("\nvariants:")
    for variant in VARIANTS.values():
        domain = (
            "|".join(str(v) for v in variant.values)
            if variant.values else variant.kind.__name__
        )
        scope = (
            f" (families: {', '.join(variant.families)})"
            if variant.families else ""
        )
        print(f"  {variant.name:12s} {domain:28s} {variant.doc}{scope}")
    return 0


def _scenarios_smoke(args) -> int:
    """Tiny MD per family×version through the serial executor — the
    CI gate that every registered builder actually integrates."""
    from repro.scenarios import FAMILIES, concretize_text
    from repro.serve.jobs import JobRequest, execute_md_request

    failures = 0
    for family in FAMILIES.values():
        for version in family.versions:
            text = f"{family.name}@{version} n=300 rcut=0.45 rung=fused"
            spec = concretize_text(text)
            request = JobRequest(
                kind="md", scenario=text, steps=args.smoke_steps
            )
            request.validate()
            summary = execute_md_request(request)
            temp = summary.get("temperature")
            ok = temp is not None and 0.0 < temp < 2000.0
            status = "ok" if ok else "FAIL"
            failures += 0 if ok else 1
            print(f"  {status:4s} {spec.to_string()}  "
                  f"T={temp:.1f}K U={summary.get('potential', 0.0):.2f}")
    if failures:
        print(f"smoke: {failures} families failed", file=sys.stderr)
        return 1
    print("smoke ok: every family/version integrated")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "trace": _cmd_trace,
    "ladder": _cmd_ladder,
    "overall": _cmd_overall,
    "scaling": _cmd_scaling,
    "ranks": _cmd_ranks,
    "table2": _cmd_table2,
    "ttf": _cmd_ttf,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "campaign": _cmd_campaign,
    "scenarios": _cmd_scenarios,
    "fleet": _cmd_fleet,
    "fleet-worker": _cmd_fleet_worker,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    # Flags beat the environment; exporting them here threads the choice
    # through every library call-site that resolves `shared_backend()`
    # from the environment (sweeps, engines, pair-list builds).
    if args.backend is not None:
        os.environ[BACKEND_ENV] = args.backend
    if args.workers is not None:
        os.environ[WORKERS_ENV] = str(args.workers)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
