"""Addressing and the async JSON-lines round trip (DESIGN.md §11).

The fleet speaks the *same* one-line-request / one-line-response
protocol as a single :class:`~repro.serve.service.SimulationService`
socket — a router is indistinguishable from a service to any existing
client, which is what lets ``repro submit`` target either.  This module
owns the two pieces every fleet role shares:

* :class:`Address` — one worker/router endpoint, either a Unix-domain
  socket path or a TCP ``host:port`` pair, round-trippable through a
  plain string (``parse_address``) so addresses travel inside JSON
  registration messages;
* :func:`send_request` — one asyncio round trip.  Transport failures
  (refused, reset, EOF before a response line) normalise to
  :class:`ConnectionError`, the signal the router's reassignment loop
  keys on: a broken round trip to a worker is indistinguishable from a
  dead worker and is treated as one.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass

#: readline bound for one response line; aggregated fleet stats are the
#: largest payload and stay far under this.
_LINE_LIMIT = 1 << 22


@dataclass(frozen=True)
class Address:
    """One endpoint: a Unix socket path or a TCP host/port pair."""

    socket_path: str | None = None
    host: str | None = None
    port: int | None = None

    def __post_init__(self) -> None:
        if self.socket_path is None and (self.host is None or self.port is None):
            raise ValueError("Address needs socket_path or host+port")

    @property
    def is_unix(self) -> bool:
        return self.socket_path is not None

    def __str__(self) -> str:
        if self.is_unix:
            return self.socket_path
        return f"{self.host}:{self.port}"


def parse_address(text: str) -> Address:
    """Parse ``"/path/to.sock"`` or ``"host:port"`` into an :class:`Address`.

    Anything containing a path separator (or without a ``host:int-port``
    shape) is a Unix socket path; Unix paths therefore need no escaping.
    """
    if "/" not in text and ":" in text:
        host, _, port = text.rpartition(":")
        if host:
            try:
                return Address(host=host, port=int(port))
            except ValueError:
                pass  # non-numeric "port": treat as a relative path
    return Address(socket_path=text)


async def open_stream(
    address: Address,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    if address.is_unix:
        return await asyncio.open_unix_connection(
            address.socket_path, limit=_LINE_LIMIT
        )
    return await asyncio.open_connection(
        address.host, address.port, limit=_LINE_LIMIT
    )


async def send_request(
    address: Address, payload: dict, timeout: float | None = None
) -> dict:
    """One JSON-lines round trip to ``address``.

    Returns the decoded response object (the ``ok``/``error`` envelope
    is the caller's to interpret).  Raises :class:`ConnectionError` on
    any transport failure — including the peer closing the connection
    without answering, which is how a SIGKILLed worker looks from here —
    and :class:`asyncio.TimeoutError` when ``timeout`` lapses.
    """

    async def round_trip() -> dict:
        reader, writer = await open_stream(address)
        try:
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            line = await reader.readline()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if not line:
            raise ConnectionError(
                f"{address} closed the connection without answering"
            )
        return json.loads(line)

    try:
        if timeout is not None:
            return await asyncio.wait_for(round_trip(), timeout)
        return await round_trip()
    except (ConnectionError, FileNotFoundError) as exc:
        # FileNotFoundError: a Unix socket path that is not (yet/anymore)
        # bound — the same "peer unreachable" class as a refused connect.
        raise ConnectionError(f"cannot reach {address}: {exc}") from exc
