"""Worker registry: membership, heartbeats, drain/decommission states.

A plain synchronous data structure, in the mold of
:class:`~repro.serve.queue.JobQueue`: every transition is a method call
with explicit timestamps, so the full lifecycle is unit-testable without
an event loop.  The router owns the clock and the async signalling.

Worker lifecycle::

    register ──▶ UP ──drain──▶ DRAINING ──drained──▶ GONE
                 │                 │
            (heartbeat deadline missed, or a round trip failed)
                 ▼                 ▼
                DEAD ◀─────────────┘
                 │
              register  (same name: a new incarnation revives it)
                 ▼
                 UP

Only UP workers are *routable* (on the hash ring).  A DRAINING worker
leaves the ring immediately — new work routes around it — but keeps
serving the jobs it already accepted until its service-level drain
completes (`SimulationService`'s no-lost-jobs guarantee does the rest).
A DEAD worker's jobs are reassigned by the router; if the same worker
name registers again it comes back as a fresh *incarnation*, so stale
state attached to the old incarnation is never confused with the new
process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

STATE_UP = "up"
STATE_DRAINING = "draining"
STATE_DEAD = "dead"
STATE_GONE = "gone"

#: States that keep a heartbeat deadline armed.
_ALIVE_STATES = (STATE_UP, STATE_DRAINING)


class UnknownWorkerError(KeyError):
    """An operation named a worker the registry has never seen."""


@dataclass
class WorkerInfo:
    """One worker's registration record."""

    name: str
    address: str
    state: str = STATE_UP
    #: Bumped on every (re-)register of the same name, so the router can
    #: tell a revived worker from the process that died under that name.
    incarnation: int = 1
    registered_at: float = 0.0
    last_heartbeat: float = 0.0
    #: Router-side tallies (routing decisions, not worker-side stats).
    jobs_routed: int = 0
    jobs_reassigned_away: int = 0

    @property
    def alive(self) -> bool:
        return self.state in _ALIVE_STATES

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "address": self.address,
            "state": self.state,
            "incarnation": self.incarnation,
            "jobs_routed": self.jobs_routed,
            "jobs_reassigned_away": self.jobs_reassigned_away,
        }


class WorkerRegistry:
    """Name -> :class:`WorkerInfo`, with heartbeat-deadline bookkeeping."""

    def __init__(self, heartbeat_timeout_s: float = 5.0) -> None:
        if heartbeat_timeout_s <= 0:
            raise ValueError(
                f"heartbeat_timeout_s must be > 0: {heartbeat_timeout_s}"
            )
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self._workers: dict[str, WorkerInfo] = {}

    # -- introspection -----------------------------------------------------
    def get(self, name: str) -> WorkerInfo:
        try:
            return self._workers[name]
        except KeyError:
            raise UnknownWorkerError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._workers

    def __len__(self) -> int:
        return len(self._workers)

    def routable(self) -> list[str]:
        """Names eligible for new work (sorted for determinism)."""
        return sorted(
            n for n, w in self._workers.items() if w.state == STATE_UP
        )

    def alive(self) -> list[str]:
        return sorted(n for n, w in self._workers.items() if w.alive)

    def as_dict(self) -> dict:
        return {
            name: info.as_dict()
            for name, info in sorted(self._workers.items())
        }

    # -- lifecycle ---------------------------------------------------------
    def register(self, name: str, address: str, now: float) -> WorkerInfo:
        """Add a worker, or revive/refresh one under an existing name.

        Re-registration is how a restarted worker (or a worker talking
        to a restarted router) rejoins: it always yields a fresh
        incarnation in the UP state.
        """
        prior = self._workers.get(name)
        info = WorkerInfo(
            name=name,
            address=address,
            state=STATE_UP,
            incarnation=(prior.incarnation + 1) if prior else 1,
            registered_at=now,
            last_heartbeat=now,
        )
        self._workers[name] = info
        return info

    def heartbeat(self, name: str, now: float) -> WorkerInfo:
        """Refresh a worker's deadline; raises on unknown names so the
        worker learns it must re-register (router-restart recovery)."""
        info = self.get(name)
        if not info.alive:
            # A heartbeat from a worker we declared dead: the process is
            # alive after all (e.g. a network blip) — but its jobs were
            # already reassigned, so it must re-register to rejoin.
            raise UnknownWorkerError(name)
        info.last_heartbeat = now
        return info

    def expired(self, now: float) -> list[WorkerInfo]:
        """Alive workers whose heartbeat deadline has lapsed."""
        cutoff = now - self.heartbeat_timeout_s
        return [
            info
            for _, info in sorted(self._workers.items())
            if info.alive and info.last_heartbeat < cutoff
        ]

    def mark_dead(self, name: str, incarnation: int | None = None) -> bool:
        """Transition to DEAD; False when a newer incarnation already
        replaced the one the caller observed failing (don't kill it)."""
        info = self.get(name)
        if incarnation is not None and info.incarnation != incarnation:
            return False
        if not info.alive:
            return False
        info.state = STATE_DEAD
        return True

    def start_drain(self, name: str) -> WorkerInfo:
        info = self.get(name)
        if info.state == STATE_UP:
            info.state = STATE_DRAINING
        return info

    def decommission(self, name: str) -> WorkerInfo:
        info = self.get(name)
        info.state = STATE_GONE
        return info
