"""Spawn and manage a local N-worker fleet in subprocesses.

The deployment story for one host: a router process plus N worker
processes, each a real ``repro fleet-worker`` (its own CPython, its own
pool backend), talking over Unix sockets in one directory.  Used by the
``repro fleet --spawn-workers N`` quickstart, the scaling benchmark, the
CI ``fleet-smoke`` job, and the failover tests — which is the point:
the thing tests SIGKILL is the same thing users run.

The launcher is deliberately dumb about lifecycle: readiness is polled
through the router's own wire (``ping`` + ``fleet`` ops), not inferred
from process state, and shutdown is a client-driven ``drain`` with
process reaping as the backstop.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.serve.client import ServeClient, ServeConnectionError


@dataclass
class WorkerHandle:
    """One spawned worker process."""

    name: str
    socket_path: str
    process: subprocess.Popen

    @property
    def alive(self) -> bool:
        return self.process.poll() is None


def _repro_env(extra: dict | None = None) -> dict:
    """Child environment with ``src`` importable, plus overrides."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    parts = [src] + [
        p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p
    ]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    if extra:
        env.update(extra)
    return env


class LocalFleet:
    """A router + N workers as local subprocesses over Unix sockets.

    Use as a context manager::

        with LocalFleet(3, root=tmp_dir) as fleet:
            result = fleet.client().submit(JobRequest(n_particles=300))

    ``router_args`` / ``worker_args`` append raw CLI flags (heartbeat
    cadence, serve capacity, ...); ``env`` adds child-only environment
    overrides (``REPRO_BACKEND=pool`` being the usual one).
    """

    def __init__(
        self,
        n_workers: int,
        root: str | Path,
        router_args: tuple[str, ...] = (),
        worker_args: tuple[str, ...] = (),
        env: dict | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1: {n_workers}")
        self.n_workers = n_workers
        self.root = Path(root)
        self.router_args = tuple(router_args)
        self.worker_args = tuple(worker_args)
        self.env = _repro_env(env)
        self.router_socket = str(self.root / "router.sock")
        self.router_process: subprocess.Popen | None = None
        self.workers: list[WorkerHandle] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, timeout: float = 60.0) -> "LocalFleet":
        self.root.mkdir(parents=True, exist_ok=True)
        self.router_process = self._spawn(
            ["fleet", "--socket", self.router_socket, *self.router_args],
            self.root / "router.log",
        )
        for i in range(self.n_workers):
            self.workers.append(self._spawn_worker(f"w{i}"))
        self.wait_ready(timeout=timeout)
        return self

    def _spawn(self, argv: list[str], log_path: Path) -> subprocess.Popen:
        log = open(log_path, "ab")
        try:
            return subprocess.Popen(
                [sys.executable, "-m", "repro", *argv],
                env=self.env,
                stdout=log,
                stderr=subprocess.STDOUT,
                start_new_session=True,
            )
        finally:
            log.close()  # the child owns its inherited descriptor

    def _spawn_worker(self, name: str) -> WorkerHandle:
        socket_path = str(self.root / f"{name}.sock")
        process = self._spawn(
            [
                "fleet-worker",
                "--router", self.router_socket,
                "--socket", socket_path,
                "--name", name,
                *self.worker_args,
            ],
            self.root / f"{name}.log",
        )
        return WorkerHandle(name=name, socket_path=socket_path, process=process)

    def wait_ready(
        self, n_workers: int | None = None, timeout: float = 60.0
    ) -> dict:
        """Block until the router answers and ``n_workers`` are UP."""
        want = self.n_workers if n_workers is None else n_workers
        deadline = time.monotonic() + timeout
        client = self.client(
            timeout=10.0, connect_retries=int(timeout / 0.25),
        )
        client.ping()
        while True:
            status = client.request({"op": "fleet"})
            up = [
                name
                for name, info in status["workers"].items()
                if info["state"] == "up"
            ]
            if len(up) >= want:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"fleet not ready: {len(up)}/{want} workers up "
                    f"after {timeout:.0f}s ({status['workers']})"
                )
            time.sleep(0.1)

    def __enter__(self) -> "LocalFleet":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def client(
        self,
        timeout: float | None = None,
        connect_retries: int = 40,
        connect_backoff: float = 0.25,
    ) -> ServeClient:
        """A client bound to the router socket, retrying startup races."""
        return ServeClient(
            socket_path=self.router_socket,
            timeout=timeout,
            connect_retries=connect_retries,
            connect_backoff=connect_backoff,
        )

    def fleet_status(self) -> dict:
        return self.client(timeout=30.0).request({"op": "fleet"})

    def worker(self, name: str) -> WorkerHandle:
        for handle in self.workers:
            if handle.name == name:
                return handle
        raise KeyError(f"no worker named {name!r}")

    def kill_worker(self, name: str, sig: int = signal.SIGKILL) -> None:
        """Hard-kill one worker process (the failure the router must eat)."""
        self.worker(name).process.send_signal(sig)

    def drain(self, timeout: float = 120.0) -> dict:
        """Client-driven graceful shutdown; returns final fleet stats."""
        stats = self.client(timeout=timeout).request({"op": "drain"})["stats"]
        self._reap(timeout=30.0)
        return stats

    def stop(self) -> None:
        """Terminate whatever is still running (cleanup backstop)."""
        for handle in self.workers:
            if handle.alive:
                handle.process.terminate()
        if (
            self.router_process is not None
            and self.router_process.poll() is None
        ):
            self.router_process.terminate()
        self._reap(timeout=10.0, kill_after=True)

    def _reap(self, timeout: float, kill_after: bool = False) -> None:
        deadline = time.monotonic() + timeout
        procs = [h.process for h in self.workers]
        if self.router_process is not None:
            procs.append(self.router_process)
        for proc in procs:
            remaining = max(deadline - time.monotonic(), 0.1)
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                if kill_after:
                    proc.kill()
                    proc.wait(timeout=10.0)

    def logs(self) -> str:
        """Concatenated child logs (debugging aid for failed tests)."""
        chunks = []
        for path in sorted(self.root.glob("*.log")):
            chunks.append(f"----- {path.name} -----\n{path.read_text()}")
        return "\n".join(chunks)


__all__ = ["LocalFleet", "WorkerHandle", "ServeConnectionError"]
