"""The fleet front-end: route, proxy, health-check, reassign (DESIGN.md §11).

One asyncio object, same single-loop/no-lock discipline as
:class:`~repro.serve.service.SimulationService`, speaking the *same*
JSON-lines protocol — a router socket is a drop-in replacement for a
service socket from any client's point of view.  What it adds:

* **placement** — ``submit`` routes on the request's
  :attr:`~repro.serve.jobs.JobRequest.system_key` through the
  consistent-hash ring, so fingerprint dedup, in-flight joins, and
  `StepCache` batching keep working *inside* each worker after sharding;
* **membership** — workers register and heartbeat over the wire
  (``worker_register`` / ``worker_heartbeat`` ops); a monitor task marks
  workers dead when their heartbeat deadline lapses, and any failed
  round trip to a worker kills it immediately (fail-fast detection for
  SIGKILLed processes);
* **reassignment** — a job whose worker dies mid-flight is resubmitted
  to the key's new owner with the resilience layer's
  :class:`~repro.resilience.retry.RetryPolicy` backoff.  Worker loss is
  just a coarser-grained fault than a crashed pool worker (DESIGN.md
  §7/§10), and the same purity argument makes the reissue safe: every
  request is a pure function, so a re-execution is bit-identical, even
  if the dead worker had already half-finished it;
* **queueing across ring changes** — with no routable worker (fleet
  starting up, every worker draining), submissions wait on membership
  for ``route_wait_s`` before the structured ``no_workers`` rejection,
  instead of failing the startup race.

Jobs carry *router-scope* ids on the client wire; the per-worker ids
never escape (results are rewritten on the way through), so a client
cannot observe which worker served it — or that the worker changed.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

from repro.fleet.registry import (
    STATE_DEAD,
    UnknownWorkerError,
    WorkerRegistry,
)
from repro.fleet.ring import DEFAULT_VNODES, HashRing, stable_key
from repro.fleet.wire import parse_address, send_request
from repro.resilience.retry import RetryPolicy
from repro.serve.jobs import (
    InvalidRequestError,
    JobError,
    JobRequest,
    JobResult,
)
from repro.serve.queue import REASON_DRAINING, REASON_INVALID
from repro.trace.events import CAT_FLEET, FLEET_TRACK, NULL_TRACER, NullTracer

#: Fleet-level wire-stable reason codes (extending the serve set).
REASON_NO_WORKERS = "no_workers"
REASON_WORKER_LOST = "worker_lost"


@dataclass
class RouterConfig:
    """Router knobs: health-checking, routing waits, reassignment."""

    #: Heartbeat deadline before a silent worker is declared dead.
    heartbeat_timeout_s: float = 5.0
    #: Monitor wake-up period (deadline check granularity).
    check_interval_s: float = 0.5
    #: Max wait for a routable worker before ``no_workers`` rejection.
    route_wait_s: float = 10.0
    #: Timeout for control-plane round trips to workers (stats, pause,
    #: ping).  Submit/wait forwarding is never timed out here — a job
    #: legitimately runs for its full duration; per-job deadlines belong
    #: to ``JobRequest.timeout_s`` and are enforced worker-side.
    worker_op_timeout_s: float = 10.0
    #: Ceiling on one worker's graceful drain during fleet shutdown.
    drain_timeout_s: float = 60.0
    #: Virtual nodes per worker on the hash ring.
    vnodes: int = DEFAULT_VNODES
    #: Reissue policy for jobs stranded on dead workers — the same
    #: machinery that reissues failed DMA transactions (DESIGN.md §7),
    #: at fleet granularity.
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_attempts=4)
    )
    #: Wall seconds per modelled backoff cycle (see ServeConfig).
    backoff_cycle_s: float = 1e-6

    def __post_init__(self) -> None:
        if self.heartbeat_timeout_s <= 0:
            raise ValueError(
                f"heartbeat_timeout_s must be > 0: {self.heartbeat_timeout_s}"
            )
        if self.check_interval_s <= 0:
            raise ValueError(
                f"check_interval_s must be > 0: {self.check_interval_s}"
            )
        if self.route_wait_s < 0:
            raise ValueError(
                f"route_wait_s must be >= 0: {self.route_wait_s}"
            )


@dataclass
class RouterStats:
    """Router-lifetime counters (router-scope: each routed job once)."""

    routed: int = 0
    completed: int = 0
    failed: int = 0
    failed_by_reason: dict = field(default_factory=dict)
    rejected: int = 0
    rejected_by_reason: dict = field(default_factory=dict)
    reassignments: int = 0
    workers_registered: int = 0
    workers_lost: int = 0
    drained: bool = False

    def record_reject(self, code: str) -> None:
        self.rejected += 1
        self.rejected_by_reason[code] = (
            self.rejected_by_reason.get(code, 0) + 1
        )

    def record_failure(self, code: str) -> None:
        self.failed += 1
        self.failed_by_reason[code] = self.failed_by_reason.get(code, 0) + 1

    def as_dict(self) -> dict:
        return {
            "routed": self.routed,
            "completed": self.completed,
            "failed": self.failed,
            "failed_by_reason": dict(self.failed_by_reason),
            "rejected": self.rejected,
            "rejected_by_reason": dict(self.rejected_by_reason),
            "reassignments": self.reassignments,
            "workers_registered": self.workers_registered,
            "workers_lost": self.workers_lost,
            "drained": self.drained,
        }


@dataclass
class RoutedJob:
    """One accepted client job and its current placement."""

    job_id: int
    request: JobRequest
    request_dict: dict
    route_key: str
    future: object = None  # asyncio.Future[dict]
    worker: str | None = None
    attempts: int = 0


#: ServiceStats keys summed across workers for the aggregated stats op.
_WORKER_SUM_KEYS = (
    "accepted",
    "rejected",
    "completed",
    "failed",
    "batches",
    "executed_units",
    "dedup_hits",
    "retries",
    "sr_evals",
    "sr_hits",
    "resident_hits",
    "resident_misses",
    "resident_builds",
    "resident_evictions",
    "resident_invalidations",
    "warmups",
    "journal_replays",
    "store_hits",
)

#: Per-tenant SLO counters summed across workers by the ``metrics`` op.
_METRIC_SUM_KEYS = (
    "submitted",
    "completed",
    "failed",
    "rejected",
    "retried",
    "journal_replays",
    "store_hits",
    "samples",
    "queue_depth",
)
#: Per-tenant values where the fleet reports the *worst* worker — a
#: conservative fleet percentile (exact merge would need raw samples).
_METRIC_MAX_KEYS = (
    "p50_latency_s",
    "p99_latency_s",
    "p50_queue_s",
    "p99_queue_s",
    "oldest_age_seconds",
)


def _merge_metrics(worker_metrics: dict[str, dict | None]) -> dict:
    """Fleet-level per-tenant SLO rollup: counts sum, percentiles take
    the worst worker, rates recompute from the merged counts."""
    fleet: dict[str, dict] = {}
    for metrics in worker_metrics.values():
        if not metrics:
            continue
        for tenant, row in metrics.items():
            agg = fleet.setdefault(
                tenant,
                {
                    **{k: 0 for k in _METRIC_SUM_KEYS},
                    **{k: 0.0 for k in _METRIC_MAX_KEYS},
                    "rejected_by_reason": {},
                },
            )
            for key in _METRIC_SUM_KEYS:
                agg[key] += int(row.get(key, 0))
            for key in _METRIC_MAX_KEYS:
                agg[key] = max(agg[key], float(row.get(key, 0.0)))
            for code, n in (row.get("rejected_by_reason") or {}).items():
                agg["rejected_by_reason"][code] = (
                    agg["rejected_by_reason"].get(code, 0) + int(n)
                )
    for agg in fleet.values():
        total = agg["submitted"] + agg["rejected"]
        agg["rejection_rate"] = agg["rejected"] / total if total else 0.0
        agg["retry_rate"] = (
            agg["retried"] / agg["submitted"] if agg["submitted"] else 0.0
        )
    return fleet


class FleetRouter:
    """Consistent-hash front-end over N registered serve workers."""

    def __init__(
        self,
        config: RouterConfig | None = None,
        tracer: NullTracer = NULL_TRACER,
    ) -> None:
        self.config = config or RouterConfig()
        self.tracer = tracer
        self.registry = WorkerRegistry(
            heartbeat_timeout_s=self.config.heartbeat_timeout_s
        )
        self.ring = HashRing(vnodes=self.config.vnodes)
        self.stats = RouterStats()
        self.draining = False
        #: name -> the worker registered with a journal behind it, so
        #: failover decisions and fleet stats can tell which members
        #: recover their own accepted jobs after a crash.
        self.worker_durable: dict[str, bool] = {}
        #: name -> worker registered with the resident-state layer on
        #: (answers warmups, keeps warm systems across batches).
        self.worker_resident: dict[str, bool] = {}
        self._job_ids = iter(range(1, 1 << 62))
        self._jobs: dict[int, RoutedJob] = {}
        self._results: dict[int, dict] = {}
        self._job_tasks: set[asyncio.Task] = set()
        self._membership: asyncio.Event | None = None
        self._monitor_task: asyncio.Task | None = None
        self._servers: list[asyncio.AbstractServer] = []
        self._drained_event: asyncio.Event | None = None
        self._final_stats: dict | None = None
        self._t0 = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "FleetRouter":
        loop = asyncio.get_running_loop()
        self._t0 = loop.time()
        self._membership = asyncio.Event()
        self._drained_event = asyncio.Event()
        self._monitor_task = asyncio.create_task(self._monitor_loop())
        return self

    async def __aenter__(self) -> "FleetRouter":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.drain()

    async def serve_unix(self, path: str) -> None:
        self._servers.append(
            await asyncio.start_unix_server(self._handle_connection, path=path)
        )

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0) -> int:
        server = await asyncio.start_server(
            self._handle_connection, host=host, port=port
        )
        self._servers.append(server)
        return server.sockets[0].getsockname()[1]

    async def run_until_drained(self) -> dict:
        await self._drained_event.wait()
        return self._final_stats or {"router": self.stats.as_dict()}

    async def drain(self) -> dict:
        """Fleet-wide graceful shutdown: refuse new work, finish every
        routed job, drain every live worker, stop.  Idempotent."""
        if self._drained_event is None:
            raise RuntimeError("router was never started")
        if self._final_stats is not None:
            return self._final_stats
        self.draining = True
        self._membership.set()  # wake pickers: they see draining
        while self._jobs:
            await asyncio.gather(
                *(j.future for j in list(self._jobs.values())),
                return_exceptions=True,
            )
        worker_stats: dict[str, dict | None] = {}
        for name in self.registry.alive():
            info = self.registry.get(name)
            try:
                response = await send_request(
                    parse_address(info.address),
                    {"op": "drain"},
                    timeout=self.config.drain_timeout_s,
                )
                worker_stats[name] = response.get("stats")
            except (ConnectionError, asyncio.TimeoutError):
                worker_stats[name] = None
            self.registry.decommission(name)
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
            self._monitor_task = None
        for server in self._servers:
            server.close()
        self._servers.clear()
        self.stats.drained = True
        self._final_stats = self._aggregate_stats(worker_stats)
        self._drained_event.set()
        return self._final_stats

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def _register_worker(
        self,
        name: str,
        address: str,
        durable: bool = False,
        resident: bool = False,
    ) -> dict:
        loop = asyncio.get_running_loop()
        parse_address(address)  # validate early: a bad address is a bad op
        self.registry.register(name, address, loop.time())
        self.ring.add(name)
        self.worker_durable[name] = bool(durable)
        self.worker_resident[name] = bool(resident)
        self.stats.workers_registered += 1
        self._membership.set()
        if self.tracer.enabled:
            self.tracer.instant(
                f"worker_register:{name}", CAT_FLEET, FLEET_TRACK,
                address=address, durable=bool(durable),
                resident=bool(resident),
            )
        return {
            "ok": True,
            "heartbeat_timeout_s": self.config.heartbeat_timeout_s,
        }

    def _worker_lost(
        self, name: str, incarnation: int, why: str
    ) -> bool:
        """Declare one worker incarnation dead and pull it off the ring."""
        try:
            if not self.registry.mark_dead(name, incarnation):
                return False
        except UnknownWorkerError:
            return False
        self.ring.remove(name)
        self.stats.workers_lost += 1
        if self.tracer.enabled:
            self.tracer.instant(
                f"worker_dead:{name}", CAT_FLEET, FLEET_TRACK, why=why,
            )
        return True

    async def _monitor_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.check_interval_s)
            for info in self.registry.expired(loop.time()):
                self._worker_lost(
                    info.name, info.incarnation, "heartbeat deadline missed"
                )

    async def _drain_worker(self, name: str) -> dict | None:
        """Gracefully take one worker out of service: off the ring at
        once (new work routes around it), then a service-level drain
        finishes everything it already accepted."""
        info = self.registry.start_drain(name)
        self.ring.remove(name)
        if self.tracer.enabled:
            self.tracer.instant(f"worker_drain:{name}", CAT_FLEET, FLEET_TRACK)
        try:
            response = await send_request(
                parse_address(info.address),
                {"op": "drain"},
                timeout=self.config.drain_timeout_s,
            )
            stats = response.get("stats")
        except (ConnectionError, asyncio.TimeoutError):
            stats = None
        if info.state != STATE_DEAD:
            self.registry.decommission(name)
        return stats

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _pick_worker(self, route_key: str) -> str:
        """Owner of ``route_key``, waiting out empty-ring windows (fleet
        startup, every worker mid-drain) up to ``route_wait_s``."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.route_wait_s
        while True:
            self._membership.clear()
            if self.ring.members:
                return self.ring.route(route_key)
            if self.draining:
                raise _NoWorkers("router is draining")
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise _NoWorkers(
                    f"no routable workers after waiting "
                    f"{self.config.route_wait_s:.1f}s"
                )
            try:
                await asyncio.wait_for(
                    self._membership.wait(), timeout=remaining
                )
            except (asyncio.TimeoutError, TimeoutError):
                pass

    async def _submit(self, request_dict: dict, wait: bool) -> dict:
        try:
            request = JobRequest.from_dict(request_dict)
            request.validate()
        except (InvalidRequestError, TypeError) as exc:
            self.stats.record_reject(REASON_INVALID)
            return _error_response(REASON_INVALID, str(exc))
        if self.draining:
            self.stats.record_reject(REASON_DRAINING)
            return _error_response(
                REASON_DRAINING, "fleet is draining and no longer accepts jobs"
            )
        loop = asyncio.get_running_loop()
        job = RoutedJob(
            job_id=next(self._job_ids),
            request=request,
            request_dict=request.to_dict(),
            route_key=stable_key(request.system_key),
            future=loop.create_future(),
        )
        self._jobs[job.job_id] = job
        self.stats.routed += 1
        task = asyncio.create_task(self._run_job(job))
        self._job_tasks.add(task)
        task.add_done_callback(self._job_tasks.discard)
        if wait:
            return {"ok": True, "result": await job.future}
        return {"ok": True, "job_id": job.job_id}

    async def _run_job(self, job: RoutedJob) -> None:
        """Forward one job to its owner; reassign on worker loss."""
        policy = self.config.retry
        result: dict | None = None
        error: JobError | None = None
        while result is None and error is None:
            job.attempts += 1
            try:
                name = await self._pick_worker(job.route_key)
            except _NoWorkers as exc:
                error = JobError(REASON_NO_WORKERS, str(exc))
                break
            info = self.registry.get(name)
            incarnation = info.incarnation
            job.worker = name
            info.jobs_routed += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    f"{'route' if job.attempts == 1 else 'reassign'}:"
                    f"{job.job_id}",
                    CAT_FLEET, FLEET_TRACK,
                    worker=name, key=job.route_key, attempt=job.attempts,
                )
            try:
                response = await send_request(
                    parse_address(info.address),
                    {"op": "submit", "job": job.request_dict, "wait": True},
                )
            except ConnectionError as exc:
                # The round trip died under the job: treat the worker as
                # lost and reissue to the key's new owner with backoff —
                # safe because execution is a pure function of the
                # request (DESIGN.md §10), so a re-run is bit-identical
                # no matter how far the dead worker got.
                self._worker_lost(name, incarnation, f"round trip failed: {exc}")
                info.jobs_reassigned_away += 1
                self.stats.reassignments += 1
                if job.attempts >= policy.max_attempts:
                    error = JobError(
                        REASON_WORKER_LOST,
                        f"worker {name!r} lost and retries exhausted "
                        f"(after {job.attempts} attempt(s))",
                    )
                else:
                    await asyncio.sleep(
                        policy.backoff_seconds(
                            job.attempts, self.config.backoff_cycle_s
                        )
                    )
                continue
            if response.get("ok"):
                result = response["result"]
            else:
                # A structured worker-side answer (admission or terminal
                # failure) is authoritative: propagate, don't retry — a
                # deterministic failure recurs on every reissue.
                err = response.get("error") or {}
                error = JobError(
                    err.get("code", "unknown"), err.get("message", "")
                )
        if error is not None:
            result = JobResult(
                job_id=job.job_id,
                fingerprint=job.request.fingerprint,
                kind=job.request.kind,
                ok=False,
                error=error,
                executed=False,
                attempts=job.attempts,
            ).to_dict()
            self.stats.record_failure(error.code)
        else:
            # Router-scope ids on the client wire; worker ids stay private.
            result = dict(result)
            result["job_id"] = job.job_id
            if result.get("ok"):
                self.stats.completed += 1
            else:
                err = result.get("error") or {}
                self.stats.record_failure(err.get("code", "unknown"))
        self._results[job.job_id] = result
        self._jobs.pop(job.job_id, None)
        if not job.future.done():
            job.future.set_result(result)

    async def _warmup(self, request_dict: dict) -> dict:
        """Forward a warmup to the system key's owner (the worker whose
        residency the subsequent burst will actually hit).  Best-effort:
        a lost worker fails the warmup, never queues a reissue — the
        burst itself still executes correctly (cold) wherever it lands.
        """
        try:
            request = JobRequest.from_dict(request_dict)
            request.validate()
        except (InvalidRequestError, TypeError) as exc:
            self.stats.record_reject(REASON_INVALID)
            return _error_response(REASON_INVALID, str(exc))
        if self.draining:
            self.stats.record_reject(REASON_DRAINING)
            return _error_response(
                REASON_DRAINING, "fleet is draining and no longer accepts jobs"
            )
        try:
            name = await self._pick_worker(stable_key(request.system_key))
        except _NoWorkers as exc:
            self.stats.record_reject(REASON_NO_WORKERS)
            return _error_response(REASON_NO_WORKERS, str(exc))
        info = self.registry.get(name)
        incarnation = info.incarnation
        try:
            response = await send_request(
                parse_address(info.address),
                {"op": "warmup", "job": request.to_dict()},
                timeout=self.config.worker_op_timeout_s,
            )
        except (ConnectionError, asyncio.TimeoutError) as exc:
            self._worker_lost(
                name, incarnation, f"warmup round trip failed: {exc}"
            )
            return _error_response(
                REASON_WORKER_LOST,
                f"worker {name!r} lost during warmup: {exc}",
            )
        if not response.get("ok"):
            return response
        out = dict(response)
        out["worker"] = name
        return out

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    async def _fetch_worker_stats(self) -> dict[str, dict | None]:
        """Best-effort live stats from every alive worker, in parallel."""
        names = self.registry.alive()

        async def fetch(name: str) -> dict | None:
            info = self.registry.get(name)
            try:
                response = await send_request(
                    parse_address(info.address),
                    {"op": "stats"},
                    timeout=self.config.worker_op_timeout_s,
                )
                return response.get("stats")
            except (ConnectionError, asyncio.TimeoutError):
                return None

        results = await asyncio.gather(*(fetch(n) for n in names))
        return dict(zip(names, results))

    async def _fetch_worker_metrics(self) -> dict[str, dict | None]:
        """Best-effort per-tenant SLO metrics from every alive worker."""
        names = self.registry.alive()

        async def fetch(name: str) -> dict | None:
            info = self.registry.get(name)
            try:
                response = await send_request(
                    parse_address(info.address),
                    {"op": "metrics"},
                    timeout=self.config.worker_op_timeout_s,
                )
                return response.get("metrics")
            except (ConnectionError, asyncio.TimeoutError):
                return None

        results = await asyncio.gather(*(fetch(n) for n in names))
        return dict(zip(names, results))

    def _aggregate_stats(self, worker_stats: dict[str, dict | None]) -> dict:
        totals = {key: 0 for key in _WORKER_SUM_KEYS}
        for stats in worker_stats.values():
            if not stats:
                continue
            for key in _WORKER_SUM_KEYS:
                totals[key] += int(stats.get(key, 0))
        out = self.stats.as_dict()
        # Aliases so fleet-level drain/stats read like service stats on
        # the CLI: completed/failed/rejected stay router-scope (each
        # client job once), workers' internals land under workers_total.
        out["workers_total"] = totals
        return out

    # ------------------------------------------------------------------
    # wire protocol
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                msg = json.loads(line)
                response = await self._dispatch_op(msg)
            except Exception as exc:  # malformed input must not kill the loop
                response = _error_response(
                    "bad_request", f"{type(exc).__name__}: {exc}"
                )
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch_op(self, msg: dict) -> dict:
        loop = asyncio.get_running_loop()
        op = msg.get("op")
        if op == "ping":
            return {"ok": True, "op": "ping", "role": "router"}
        if op == "worker_register":
            worker = msg.get("worker") or {}
            name = str(worker.get("name", ""))
            address = str(worker.get("address", ""))
            if not name or not address:
                return _error_response(
                    "bad_request", "worker_register needs name and address"
                )
            return self._register_worker(
                name,
                address,
                durable=bool(worker.get("durable", False)),
                resident=bool(worker.get("resident", False)),
            )
        if op == "worker_heartbeat":
            name = str(msg.get("name", ""))
            try:
                self.registry.heartbeat(name, loop.time())
            except UnknownWorkerError:
                # The worker must re-register (it outlived a router
                # restart, or was declared dead and its jobs reassigned).
                return _error_response(
                    "unknown_worker",
                    f"worker {name!r} is not registered; register again",
                )
            return {"ok": True}
        if op == "submit":
            return await self._submit(
                msg.get("job") or {}, bool(msg.get("wait", True))
            )
        if op == "warmup":
            return await self._warmup(msg.get("job") or {})
        if op == "wait":
            job_id = int(msg["job_id"])
            if job_id in self._results:
                return {"ok": True, "result": self._results[job_id]}
            job = self._jobs.get(job_id)
            if job is None:
                return _error_response(
                    "unknown_job", f"no job with id {job_id}"
                )
            return {"ok": True, "result": await job.future}
        if op == "stats":
            worker_stats = await self._fetch_worker_stats()
            return {
                "ok": True,
                "stats": self._aggregate_stats(worker_stats),
                "queue_depth": len(self._jobs),
                "workers": {
                    name: {
                        **self.registry.get(name).as_dict(),
                        "stats": stats,
                    }
                    for name, stats in worker_stats.items()
                },
            }
        if op == "metrics":
            worker_metrics = await self._fetch_worker_metrics()
            return {
                "ok": True,
                "metrics": _merge_metrics(worker_metrics),
                "workers": worker_metrics,
            }
        if op == "fleet":
            worker_stats = await self._fetch_worker_stats()
            workers = self.registry.as_dict()
            for name, stats in worker_stats.items():
                workers[name]["stats"] = stats
                workers[name]["durable"] = self.worker_durable.get(name, False)
                workers[name]["resident"] = self.worker_resident.get(
                    name, False
                )
            return {
                "ok": True,
                "router": self.stats.as_dict(),
                "ring": self.ring.as_dict(),
                "workers": workers,
                "jobs": {
                    str(job_id): {"worker": job.worker, "attempts": job.attempts}
                    for job_id, job in sorted(self._jobs.items())
                },
                "results": len(self._results),
            }
        if op == "drain_worker":
            name = str(msg.get("name", ""))
            if name not in self.registry:
                return _error_response(
                    "unknown_worker", f"worker {name!r} is not registered"
                )
            stats = await self._drain_worker(name)
            return {"ok": True, "worker": name, "stats": stats}
        if op in ("pause", "resume"):
            answered = []
            for name in self.registry.alive():
                info = self.registry.get(name)
                try:
                    await send_request(
                        parse_address(info.address),
                        {"op": op},
                        timeout=self.config.worker_op_timeout_s,
                    )
                    answered.append(name)
                except (ConnectionError, asyncio.TimeoutError):
                    pass
            return {"ok": True, "op": op, "workers": answered}
        if op == "drain":
            stats = await self.drain()
            return {"ok": True, "stats": stats}
        return _error_response("unknown_op", f"unknown op {op!r}")


class _NoWorkers(RuntimeError):
    """No routable worker inside the routing wait window."""


def _error_response(code: str, message: str) -> dict:
    return {"ok": False, "error": {"code": code, "message": message}}
