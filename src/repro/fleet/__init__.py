"""repro.fleet: the distributed serve tier (DESIGN.md §11).

Shards :mod:`repro.serve` across N workers behind one router socket that
speaks the same JSON-lines protocol as a single service:

* :mod:`repro.fleet.ring` — deterministic consistent-hash ring (virtual
  nodes) routing ``JobRequest.system_key`` so dedup, in-flight joins,
  and `StepCache` batching survive sharding;
* :mod:`repro.fleet.registry` — worker registration, heartbeat
  health-checking, drain/decommission lifecycle;
* :mod:`repro.fleet.router` — the asyncio front-end: proxies
  submit/wait/stats, queues across ring changes, reassigns jobs off
  dead workers with `repro.resilience` retry/backoff;
* :mod:`repro.fleet.worker` — a `SimulationService` that registers and
  heartbeats;
* :mod:`repro.fleet.launch` — a local N-worker fleet in subprocesses.

Quickstart: ``repro fleet --socket router.sock --spawn-workers 3`` then
``repro submit --router router.sock -n 300``.
"""

from repro.fleet.launch import LocalFleet, WorkerHandle
from repro.fleet.registry import (
    STATE_DEAD,
    STATE_DRAINING,
    STATE_GONE,
    STATE_UP,
    UnknownWorkerError,
    WorkerInfo,
    WorkerRegistry,
)
from repro.fleet.ring import DEFAULT_VNODES, HashRing, stable_key
from repro.fleet.router import (
    REASON_NO_WORKERS,
    REASON_WORKER_LOST,
    FleetRouter,
    RouterConfig,
    RouterStats,
)
from repro.fleet.wire import Address, parse_address, send_request
from repro.fleet.worker import FleetWorker, WorkerConfig

__all__ = [
    "Address",
    "parse_address",
    "send_request",
    "DEFAULT_VNODES",
    "HashRing",
    "stable_key",
    "STATE_DEAD",
    "STATE_DRAINING",
    "STATE_GONE",
    "STATE_UP",
    "UnknownWorkerError",
    "WorkerInfo",
    "WorkerRegistry",
    "REASON_NO_WORKERS",
    "REASON_WORKER_LOST",
    "FleetRouter",
    "RouterConfig",
    "RouterStats",
    "FleetWorker",
    "WorkerConfig",
    "LocalFleet",
    "WorkerHandle",
]
