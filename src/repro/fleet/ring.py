"""Consistent-hash ring with virtual nodes (DESIGN.md §11).

Placement is the property everything downstream of the router leans on:
jobs sharing a :attr:`~repro.serve.jobs.JobRequest.system_key` must land
on the *same* worker, or sharding would silently destroy the three
single-host wins — fingerprint dedup, in-flight join, and `StepCache`
batching all happen inside one ``SimulationService`` and cannot see
across workers.  Routing on the system key (a superset of nothing and a
subset of the fingerprint) preserves all three: identical fingerprints
imply identical system keys imply the same worker.

The ring is *deterministic*: a member's points depend only on its name
(BLAKE2b of ``"name#i"`` for ``i < vnodes``), never on insertion order
or ring history.  Two routers built over the same member set — e.g. a
restarted router re-learning its workers — therefore route every key
identically, which is what makes router restarts invisible to cache
locality (test-enforced in ``tests/fleet/test_ring.py``).

Virtual nodes smooth the load split: with ``vnodes`` points per member,
the largest member's share of key space concentrates toward 1/N, and
removing a member redistributes *only* that member's arcs (minimal
disruption — the reason to prefer a ring over ``hash(key) % N``).
"""

from __future__ import annotations

import bisect
import hashlib
import json

DEFAULT_VNODES = 64


def stable_key(obj) -> str:
    """Canonical string form of a routing key.

    JSON with sorted keys, so tuples/dicts/scalars of JSON-compatible
    values (``JobRequest.system_key`` is one) map to one stable text
    across processes and Python versions — ``hash()`` is neither.
    """
    if isinstance(obj, str):
        return obj
    if isinstance(obj, tuple):
        obj = list(obj)
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _point(text: str) -> int:
    """Position of ``text`` on the 64-bit ring circle."""
    digest = hashlib.blake2b(text.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Deterministic consistent-hash ring over named members."""

    def __init__(self, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1: {vnodes}")
        self.vnodes = vnodes
        self._members: set[str] = set()
        #: Sorted ring points, kept aligned: _points[i] is owned by _owners[i].
        self._points: list[int] = []
        self._owners: list[str] = []

    # -- membership --------------------------------------------------------
    @property
    def members(self) -> list[str]:
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def add(self, name: str) -> None:
        """Idempotent: re-adding a member changes nothing."""
        if name in self._members:
            return
        self._members.add(name)
        for i in range(self.vnodes):
            point = _point(f"{name}#{i}")
            idx = bisect.bisect_left(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, name)

    def remove(self, name: str) -> None:
        """Idempotent: removing an absent member changes nothing."""
        if name not in self._members:
            return
        self._members.discard(name)
        keep = [i for i, owner in enumerate(self._owners) if owner != name]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # -- routing -----------------------------------------------------------
    def route(self, key) -> str:
        """Owner of ``key``: the first ring point at or after its hash
        (wrapping past the top).  Raises :class:`LookupError` on an
        empty ring — the router queues instead of guessing."""
        if not self._points:
            raise LookupError("hash ring has no members")
        point = _point(stable_key(key))
        idx = bisect.bisect_left(self._points, point)
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]

    def assignments(self, keys) -> dict:
        """key -> owner for a batch of keys (debug/test helper)."""
        return {key: self.route(key) for key in keys}

    def as_dict(self) -> dict:
        return {"vnodes": self.vnodes, "members": self.members}
