"""One fleet worker: a ``SimulationService`` that phones home.

A worker is deliberately thin — all serving semantics (queue, batcher,
fair-share scheduler, pool execution, drain guarantees) live unchanged
in :class:`~repro.serve.service.SimulationService`.  The wrapper adds
exactly the fleet contract:

* bind the service socket *first*, then register with the router (so a
  routed job can never race an unbound socket);
* heartbeat on a fixed interval; an ``unknown_worker`` answer triggers
  re-registration, which is how workers survive a router restart — the
  restarted router re-learns its fleet from the heartbeat stream and,
  because ring placement is deterministic in worker names, routes every
  key exactly as its predecessor did;
* a router that is temporarily unreachable is ignored, not fatal: the
  worker keeps serving whatever reaches its socket and keeps trying.

Drain arrives over the worker's own wire (the router proxies its
``drain`` op), so shutdown is the ordinary service drain: finish every
accepted job, release the pool backend, wake ``run_until_drained``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.fleet.wire import Address, send_request
from repro.serve.service import ServeConfig, ServiceStats, SimulationService
from repro.trace.events import NULL_TRACER, NullTracer


@dataclass
class WorkerConfig:
    """One worker's identity, endpoints, and serving knobs."""

    name: str
    #: The router's endpoint (where to register and heartbeat).
    router: Address
    #: This worker's own serve endpoint (TCP port 0 = ephemeral, the
    #: advertised address carries the real bound port).
    address: Address
    serve: ServeConfig = field(default_factory=ServeConfig)
    heartbeat_interval_s: float = 1.0
    #: Registration patience: the router may start after its workers
    #: (fleet launch is a race by construction).
    register_retries: int = 120
    register_backoff_s: float = 0.25

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("worker name must be non-empty")
        if self.heartbeat_interval_s <= 0:
            raise ValueError(
                f"heartbeat_interval_s must be > 0: {self.heartbeat_interval_s}"
            )


class FleetWorker:
    """Run a :class:`SimulationService` as one member of a fleet."""

    def __init__(
        self,
        config: WorkerConfig,
        tracer: NullTracer = NULL_TRACER,
    ) -> None:
        self.config = config
        self.service = SimulationService(config.serve, tracer=tracer)
        self.advertised: str | None = None
        self._heartbeat_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "FleetWorker":
        await self.service.start()
        address = self.config.address
        if address.is_unix:
            await self.service.serve_unix(address.socket_path)
            self.advertised = address.socket_path
        else:
            port = await self.service.serve_tcp(address.host, address.port)
            self.advertised = f"{address.host}:{port}"
        await self._register()
        self._heartbeat_task = asyncio.create_task(self._heartbeat_loop())
        return self

    async def __aenter__(self) -> "FleetWorker":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.drain()

    async def run_until_drained(self) -> ServiceStats:
        stats = await self.service.run_until_drained()
        self._stop_heartbeat()
        return stats

    async def drain(self) -> ServiceStats:
        stats = await self.service.drain()
        self._stop_heartbeat()
        return stats

    def _stop_heartbeat(self) -> None:
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            self._heartbeat_task = None

    # ------------------------------------------------------------------
    # router liaison
    # ------------------------------------------------------------------
    async def _register(self) -> None:
        payload = {
            "op": "worker_register",
            "worker": {
                "name": self.config.name,
                "address": self.advertised,
                # Journal-backed workers recover their own accepted jobs
                # after a crash; the router records this for fleet stats.
                "durable": self.service.journal is not None,
                # Resident-state workers answer warmups and keep warm
                # systems across batches (DESIGN.md §14).
                "resident": self.service.config.resident,
            },
        }
        attempts = 0
        while True:
            attempts += 1
            try:
                response = await send_request(
                    self.config.router, payload, timeout=10.0
                )
            except (ConnectionError, asyncio.TimeoutError) as exc:
                if attempts > self.config.register_retries:
                    raise ConnectionError(
                        f"worker {self.config.name!r} could not register "
                        f"with router {self.config.router} after "
                        f"{attempts} attempt(s): {exc}"
                    ) from exc
                await asyncio.sleep(self.config.register_backoff_s)
                continue
            if not response.get("ok"):
                err = response.get("error") or {}
                raise RuntimeError(
                    f"router refused registration of "
                    f"{self.config.name!r}: {err.get('code')}: "
                    f"{err.get('message')}"
                )
            return

    async def _heartbeat_loop(self) -> None:
        payload = {"op": "worker_heartbeat", "name": self.config.name}
        while True:
            await asyncio.sleep(self.config.heartbeat_interval_s)
            try:
                response = await send_request(
                    self.config.router, payload, timeout=10.0
                )
            except (ConnectionError, asyncio.TimeoutError):
                # Router down or restarting: keep serving, keep trying.
                continue
            if not response.get("ok"):
                err = response.get("error") or {}
                if err.get("code") == "unknown_worker":
                    # Router restart (or we were declared dead): rejoin.
                    try:
                        await self._register()
                    except (ConnectionError, RuntimeError):
                        continue
