"""Campaign runner: expand a spec matrix, fan it out over serve.

A *matrix* is spec text where the head and any variant may carry a
comma-separated value list::

    water@spc,water@spce n=750,1500 elec=rf,pme ensemble=nve,nvt

:func:`expand_matrix` takes the cross product (here 2x2x2x2 = 16
cells); :func:`plan_campaign` concretizes every cell, separating
runnable cells from declared-rule rejections (**skip-on-conflict**: a
matrix is allowed to sweep through invalid corners — ``elec=pme`` on the
uncharged mixture simply reports the violated dependency).  Duplicate
cells (two texts concretizing identically) collapse to one submission
and are reported as such.

:func:`run_campaign` submits every runnable cell through a
:class:`~repro.serve.client.ServeClient` (plain serve or fleet router —
same wire protocol), waits for per-cell results, and assembles a
JSON-able report: per-cell status/payload digest, dedup/conflict
counts, and wall time.  The CLI (`repro campaign`) prints the table and
writes the report.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.scenarios.spec import (
    ScenarioSpec,
    SpecConflictError,
    SpecDependencyError,
    SpecError,
    parse_spec,
)

#: Cell states in the campaign report (wire/JSON stable).
CELL_OK = "ok"
CELL_SKIPPED = "skipped_conflict"
CELL_DUPLICATE = "duplicate_cell"
CELL_REJECTED = "rejected"
CELL_FAILED = "failed"


class MatrixError(ValueError):
    """Malformed matrix text (distinct from per-cell spec errors)."""


def expand_matrix(text: str) -> list[str]:
    """Expand matrix text into one spec text per cell (cross product).

    The head is a comma-separated list of ``family[@version]`` atoms;
    each ``name=v1,v2,...`` token contributes one axis.  Expansion is
    purely textual — per-cell validation happens at concretization, so
    invalid corners of the matrix surface as *reported skips*, not
    expansion failures.
    """
    if not isinstance(text, str) or not text.strip():
        raise MatrixError("empty campaign matrix")
    tokens = text.split()
    head = tokens[0]
    if "=" in head:
        raise MatrixError(
            f"matrix must start with family head(s), got {head!r}"
        )
    heads = [h for h in head.split(",") if h]
    if not heads:
        raise MatrixError(f"no family in matrix head {head!r}")
    axes: list[list[str]] = []
    for token in tokens[1:]:
        name, sep, raw = token.partition("=")
        if not sep or not name or not raw:
            raise MatrixError(
                f"bad matrix token {token!r} (expected name=v1,v2,...)"
            )
        values = [v for v in raw.split(",") if v]
        if not values:
            raise MatrixError(f"no values in matrix token {token!r}")
        axes.append([f"{name}={v}" for v in values])
    cells = []
    for h in heads:
        for combo in itertools.product(*axes):
            cells.append(" ".join([h, *combo]))
    return cells


@dataclass
class CampaignCell:
    """One matrix cell through its lifecycle."""

    text: str
    spec: ScenarioSpec | None = None  # concrete, when status allows
    status: str = CELL_OK
    reason: str | None = None
    job_id: int | None = None
    #: For duplicate cells: index of the cell that carries the job.
    duplicate_of: int | None = None
    result: dict | None = None

    def to_dict(self) -> dict:
        return {
            "spec": self.text,
            "concrete": self.spec.to_string() if self.spec else None,
            "status": self.status,
            "reason": self.reason,
            "job_id": self.job_id,
            "duplicate_of": self.duplicate_of,
            "result": self.result,
        }


@dataclass
class CampaignPlan:
    """Concretized matrix: runnable cells + registered skips."""

    matrix: str
    cells: list[CampaignCell] = field(default_factory=list)

    @property
    def runnable(self) -> list[CampaignCell]:
        return [c for c in self.cells if c.status == CELL_OK]

    def counts(self) -> dict:
        counts: dict[str, int] = {}
        for cell in self.cells:
            counts[cell.status] = counts.get(cell.status, 0) + 1
        return counts


def plan_campaign(matrix: str) -> CampaignPlan:
    """Expand + concretize ``matrix``; never raises on per-cell rule
    violations (they become ``skipped_conflict`` cells whose reason
    names the violated dependency/conflict)."""
    plan = CampaignPlan(matrix=matrix)
    seen: dict[str, int] = {}
    for text in expand_matrix(matrix):
        cell = CampaignCell(text=text)
        plan.cells.append(cell)
        try:
            cell.spec = parse_spec(text).concretize()
        except (SpecConflictError, SpecDependencyError) as exc:
            cell.status = CELL_SKIPPED
            cell.reason = str(exc)
            continue
        except SpecError as exc:
            # Parse/unknown-variant errors are *matrix* bugs, not swept
            # corners: fail loudly rather than skipping silently.
            raise MatrixError(f"bad matrix cell {text!r}: {exc}") from exc
        canonical = cell.spec.to_string()
        if canonical in seen:
            cell.status = CELL_DUPLICATE
            cell.duplicate_of = seen[canonical]
            cell.reason = (
                f"concretizes identically to cell {seen[canonical]}"
            )
        else:
            seen[canonical] = len(plan.cells) - 1
    return plan


def _payload_digest(payload: dict | None) -> dict | None:
    """Small, JSON-safe per-cell result summary for the report."""
    if payload is None:
        return None
    keep = (
        "energy", "forces_fp", "modelled_seconds", "potential", "kinetic",
        "temperature", "positions_fp", "n_particles", "n_steps", "level",
    )
    return {k: payload[k] for k in keep if k in payload}


def run_campaign(
    client,
    matrix: str,
    kind: str = "kernel",
    steps: int = 5,
    tenant: str = "campaign",
    timeout_s: float | None = None,
) -> dict:
    """Run ``matrix`` over ``client`` (a `ServeClient`); returns the
    JSON-able campaign report.

    All runnable cells are enqueued first (``wait=False``) so the serve
    tier's batcher/dedup/residency machinery sees the whole campaign at
    once — cells sharing a system key coalesce exactly like any other
    burst — then results are collected per cell.
    """
    from repro.serve.client import ServeRequestError
    from repro.serve.jobs import JobRequest

    plan = plan_campaign(matrix)
    t0 = time.monotonic()

    for idx, cell in enumerate(plan.cells):
        if cell.status != CELL_OK:
            continue
        request = JobRequest(
            kind=kind,
            steps=steps,
            scenario=cell.spec.to_string(),
            tenant=tenant,
            timeout_s=timeout_s,
        )
        try:
            cell.job_id = client.submit(request, wait=False)
        except ServeRequestError as exc:
            cell.status = CELL_REJECTED
            cell.reason = f"[{exc.code}] {exc.message}"

    for cell in plan.cells:
        if cell.status != CELL_OK or cell.job_id is None:
            continue
        result = client.wait(cell.job_id)
        if result.ok:
            cell.result = {
                "executed": result.executed,
                "result_code": result.result_code,
                "queue_seconds": result.queue_seconds,
                "execute_seconds": result.execute_seconds,
                "payload": _payload_digest(result.payload),
            }
        else:
            cell.status = CELL_FAILED
            cell.reason = f"[{result.error.code}] {result.error.message}"

    # Duplicate cells inherit their twin's terminal state for the report.
    for cell in plan.cells:
        if cell.status == CELL_DUPLICATE and cell.duplicate_of is not None:
            twin = plan.cells[cell.duplicate_of]
            cell.result = twin.result

    counts = plan.counts()
    return {
        "matrix": matrix,
        "kind": kind,
        "steps": steps if kind == "md" else None,
        "cells": [c.to_dict() for c in plan.cells],
        "counts": counts,
        "n_cells": len(plan.cells),
        "n_submitted": sum(
            1 for c in plan.cells if c.job_id is not None
        ),
        "elapsed_seconds": time.monotonic() - t0,
    }
