"""Scenario registry: families, builders, config derivation (DESIGN.md §15).

Each :class:`ScenarioFamily` is a data record pointing at a `repro.md`
builder plus the properties the spec rules consult (charged?, pure
water?, constrained?).  Registering a family is the *only* step needed
to open a new workload to the whole stack: specs referencing it parse,
concretize, fingerprint, batch, route on the fleet ring, and campaign —
all of that machinery keys on the concrete spec's canonical strings,
never on the family's code.

Derivation maps live here too:

* ``rung`` -> engine optimisation level and kernel strategy spec (the
  Fig. 8 ladder);
* ``elec`` -> `NonbondedParams.coulomb_mode` (PME runs the ewald
  real-space half short-range, like GROMACS);
* spec -> :class:`~repro.core.engine.EngineConfig` /
  :class:`~repro.md.mdloop.MdConfig` for full runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from repro.md.constants import LJ_FLUID_DENSITY, WATER_MOLECULES_PER_NM3

from repro.scenarios.spec import (
    RUNGS,
    VARIANTS,
    ScenarioSpec,
    SpecError,
    SpecParseError,
    concretize_text,
    parse_spec,
)

#: elec variant -> NonbondedParams.coulomb_mode.  ``pme`` maps onto the
#: erfc-attenuated ewald real-space path (the mesh half is modelled by
#: the engine's comm/PME terms, as in the paper's Table 3 setup).
ELEC_TO_COULOMB = {"rf": "rf", "pme": "ewald", "cut": "cut", "none": "none"}

#: rung -> engine optimisation level (Fig. 10's Ori/Cal/List/Other).
RUNG_TO_LEVEL = {"ori": 0, "pkg": 1, "cache": 2, "vec": 3, "fused": 3}

#: rung -> kernel strategy spec (Fig. 8's ladder; fused = MARK, the
#: paper's full read-cache + deferred-update + SIMD + Bit-Map stack).
RUNG_TO_KERNEL_SPEC = {
    "ori": "ORI",
    "pkg": "PKG",
    "cache": "CACHE",
    "vec": "VEC",
    "fused": "MARK",
}


@dataclass(frozen=True)
class ScenarioFamily:
    """One registered scenario family (a Spack package, in spirit)."""

    name: str
    description: str
    versions: tuple[str, ...]
    default_version: str
    #: Properties the spec rules consult.
    charged: bool
    pure_water: bool
    has_constraints: bool
    #: Scalar defaults/limits.
    min_particles: int
    default_n: int
    default_temperature: float
    #: Particle density used for the concretize-time box-edge check,
    #: entities (molecules or atoms) per nm^3.
    entity_density: float
    #: Atoms per lattice entity (3 for water-lattice families).
    atoms_per_entity: int
    #: (concrete spec) -> ParticleSystem.
    builder: Callable[[ScenarioSpec], object]

    def box_edge(self, spec: ScenarioSpec) -> float:
        """Cubic box edge (nm) the builder will produce for ``spec``."""
        entities = max(1, spec["n"] // self.atoms_per_entity)
        return float((entities / self.entity_density) ** (1.0 / 3.0))


# ---------------------------------------------------------------------------
# Builders (thin adapters: concrete spec -> repro.md builder call)
# ---------------------------------------------------------------------------


def _build_water(spec: ScenarioSpec):
    from repro.md.water import build_water_system

    return build_water_system(
        spec["n"],
        temperature=spec["temp"],
        seed=spec["seed"],
        model=spec.version,
    )


def _build_ionic(spec: ScenarioSpec):
    from repro.md.water import build_ionic_solution

    return build_ionic_solution(
        spec["n"],
        temperature=spec["temp"],
        ion_frac=spec["ion_frac"],
        seed=spec["seed"],
    )


def _build_ljmix_pure(spec: ScenarioSpec):
    from repro.md.water import build_lj_fluid

    return build_lj_fluid(
        spec["n"], temperature=spec["temp"], seed=spec["seed"]
    )


def _build_ljmix(spec: ScenarioSpec):
    if spec.version == "argon":
        return _build_ljmix_pure(spec)
    from repro.md.water import build_lj_mixture

    return build_lj_mixture(
        spec["n"], temperature=spec["temp"], seed=spec["seed"]
    )


def _build_solute(spec: ScenarioSpec):
    from repro.md.water import build_embedded_solute

    return build_embedded_solute(
        spec["n"], temperature=spec["temp"], seed=spec["seed"]
    )


FAMILIES: dict[str, ScenarioFamily] = {}


def register_family(family: ScenarioFamily) -> None:
    """Register (or replace) a scenario family, with drift guards."""
    if not family.versions:
        raise ValueError(f"family '{family.name}' declares no versions")
    if family.default_version not in family.versions:
        raise ValueError(
            f"family '{family.name}' default version "
            f"{family.default_version!r} not in {family.versions}"
        )
    FAMILIES[family.name] = family


def get_family(name: str) -> ScenarioFamily:
    try:
        return FAMILIES[name]
    except KeyError:
        raise SpecParseError(
            f"unknown scenario family {name!r}; known: "
            f"{', '.join(sorted(FAMILIES))}"
        ) from None


register_family(ScenarioFamily(
    name="water",
    description="rigid 3-site water box (the paper's benchmark family)",
    versions=("spc", "spce", "tip3p"),
    default_version="spc",
    charged=True,
    pure_water=True,
    has_constraints=True,
    min_particles=3,
    default_n=900,
    default_temperature=300.0,
    entity_density=WATER_MOLECULES_PER_NM3,
    atoms_per_entity=3,
    builder=_build_water,
))

register_family(ScenarioFamily(
    name="ionic",
    description="SPC water with dissolved Na+/Cl- pairs",
    versions=("nacl",),
    default_version="nacl",
    charged=True,
    pure_water=False,
    has_constraints=True,
    min_particles=15,
    default_n=900,
    default_temperature=300.0,
    entity_density=WATER_MOLECULES_PER_NM3,
    atoms_per_entity=3,
    builder=_build_ionic,
))

register_family(ScenarioFamily(
    name="ljmix",
    description="uncharged LJ fluid: pure argon or a binary Ar/Kr mixture",
    versions=("argon", "arkr"),
    default_version="argon",
    charged=False,
    pure_water=False,
    has_constraints=False,
    min_particles=2,
    default_n=900,
    default_temperature=120.0,
    entity_density=LJ_FLUID_DENSITY,
    atoms_per_entity=1,
    builder=_build_ljmix,
))

register_family(ScenarioFamily(
    name="solute",
    description="one large uncharged LJ bead embedded in SPC water",
    versions=("lj",),
    default_version="lj",
    charged=True,
    pure_water=False,
    has_constraints=True,
    min_particles=21,
    default_n=900,
    default_temperature=300.0,
    entity_density=WATER_MOLECULES_PER_NM3,
    atoms_per_entity=3,
    builder=_build_solute,
))


# ---------------------------------------------------------------------------
# Spec -> executable pieces
# ---------------------------------------------------------------------------


def nonbonded_for(spec: ScenarioSpec):
    """`NonbondedParams` for a concrete spec (r_list = rcut + 0.1,
    matching the serve tier's historical request mapping)."""
    from repro.md.nonbonded import NonbondedParams

    _require_concrete(spec)
    return NonbondedParams(
        r_cut=spec["rcut"],
        r_list=spec["rcut"] + 0.1,
        coulomb_mode=ELEC_TO_COULOMB[spec["elec"]],
    )


def build_scenario(spec: ScenarioSpec):
    """Build ``(ParticleSystem, NonbondedParams)`` for a concrete spec.

    Deterministic in the spec alone: the same concrete spec always
    yields bit-identical positions/velocities/topology, which is what
    lets StepCache, residency, and fleet routing key on the spec's
    canonical strings.
    """
    _require_concrete(spec)
    family = get_family(spec.family)
    return family.builder(spec), nonbonded_for(spec)


def _integrator_for(spec: ScenarioSpec):
    from repro.md.integrator import IntegratorConfig

    if spec["ensemble"] == "nvt":
        return IntegratorConfig(
            thermostat="vrescale", target_temperature=spec["temp"]
        )
    return IntegratorConfig()


def _kernel_impl_for(spec: ScenarioSpec) -> str | None:
    impl = spec["kernel"]
    return None if impl == "auto" else impl


def engine_config_for(spec: ScenarioSpec, **overrides):
    """`EngineConfig` derived from a concrete spec.

    ``overrides`` pass through engine knobs that are job-shaped rather
    than scenario-shaped (report_interval, backend, resilience, ...).
    """
    from repro.core.engine import EngineConfig

    _require_concrete(spec)
    kwargs = dict(
        nonbonded=nonbonded_for(spec),
        integrator=_integrator_for(spec),
        optimization_level=RUNG_TO_LEVEL[spec["rung"]],
        kernel_impl=_kernel_impl_for(spec),
        constraint_algorithm=spec["constraints"],
    )
    kwargs.update(overrides)
    return EngineConfig(**kwargs)


def md_config_for(spec: ScenarioSpec, **overrides):
    """`MdConfig` (reference loop) derived from a concrete spec."""
    from repro.md.mdloop import MdConfig

    _require_concrete(spec)
    kwargs = dict(
        nonbonded=nonbonded_for(spec),
        integrator=_integrator_for(spec),
        use_pme=spec["elec"] == "pme",
        constraint_algorithm=spec["constraints"],
        kernel_impl=_kernel_impl_for(spec),
    )
    kwargs.update(overrides)
    return MdConfig(**kwargs)


def kernel_spec_name_for(spec: ScenarioSpec) -> str:
    """Strategy-kernel name (`repro.core.kernels.ALL_SPECS` key) for a
    concrete spec's rung."""
    _require_concrete(spec)
    return RUNG_TO_KERNEL_SPEC[spec["rung"]]


def scenario_fingerprint(spec: ScenarioSpec) -> str:
    """BLAKE2b over the concrete canonical string (stable across
    processes; the campaign report's cell identity)."""
    _require_concrete(spec)
    return hashlib.blake2b(
        spec.to_string().encode(), digest_size=16
    ).hexdigest()


def _require_concrete(spec: ScenarioSpec) -> None:
    if not isinstance(spec, ScenarioSpec) or not spec.concrete:
        raise SpecError(
            "a concrete spec is required here; call spec.concretize()"
        )


# ---------------------------------------------------------------------------
# Declared-matrix enumeration + drift audit (the CI smoke's backbone)
# ---------------------------------------------------------------------------


def variant_matrix():
    """Yield ``(text, family_name)`` covering the declared matrix:
    every family x version, and for every closed-domain variant each
    declared value (one factor at a time, others defaulted).

    Cells that trip a *declared* rule are part of the matrix too — the
    audit counts them as registered rejections, not failures.
    """
    for family in FAMILIES.values():
        for version in family.versions:
            head = f"{family.name}@{version}"
            yield head, family.name
            for name, variant in VARIANTS.items():
                if variant.families and family.name not in variant.families:
                    continue
                if variant.values is None:
                    continue
                for value in variant.values:
                    yield f"{head} {name}={value}", family.name


def audit() -> dict:
    """Concretize the full declared variant matrix.

    Returns counts plus per-cell outcomes.  Any failure that is *not* a
    declared dependency/conflict (i.e. an unknown variant, a parse
    error, or an unexpected exception) is **drift** between the declared
    matrix and the registry, and lands in ``drift`` — the CI smoke job
    fails on any entry there.
    """
    from repro.scenarios.spec import (
        SpecConflictError,
        SpecDependencyError,
    )

    ok: list[str] = []
    rejected: list[dict] = []
    drift: list[dict] = []
    for text, _family in variant_matrix():
        try:
            concrete = parse_spec(text).concretize()
        except (SpecConflictError, SpecDependencyError) as exc:
            rejected.append({"spec": text, "reason": str(exc)})
        except Exception as exc:  # noqa: BLE001 - drift must be visible
            drift.append({
                "spec": text,
                "error": f"{type(exc).__name__}: {exc}",
            })
        else:
            ok.append(concrete.to_string())
            # Round-trip stability is part of the declared contract.
            back = parse_spec(concrete.to_string()).concretize()
            if back != concrete:
                drift.append({
                    "spec": text,
                    "error": "canonical round-trip mismatch: "
                             f"{concrete.to_string()!r} -> "
                             f"{back.to_string()!r}",
                })
    return {
        "families": sorted(FAMILIES),
        "cells": len(ok) + len(rejected) + len(drift),
        "concretized": len(ok),
        "rejected": len(rejected),
        "drift": drift,
        "rejections": rejected,
    }


__all__ = [
    "ELEC_TO_COULOMB",
    "FAMILIES",
    "RUNGS",
    "RUNG_TO_KERNEL_SPEC",
    "RUNG_TO_LEVEL",
    "ScenarioFamily",
    "audit",
    "build_scenario",
    "concretize_text",
    "engine_config_for",
    "get_family",
    "kernel_spec_name_for",
    "md_config_for",
    "nonbonded_for",
    "register_family",
    "scenario_fingerprint",
    "variant_matrix",
]
