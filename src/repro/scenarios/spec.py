"""Scenario spec language + concretizer (DESIGN.md §15).

A *spec* is a compact description of one simulation scenario, modelled on
Spack's package specs::

    water@spce n=1500 ensemble=nvt elec=rf rung=fused platform=sw26010

The head names a **scenario family** and optional **version** (the
family's parameter set: water model, salt, mixture composition); the
remaining ``key=value`` tokens set **variants**.  An abstract spec may
leave anything out; :meth:`ScenarioSpec.concretize` fills defaults
(family-aware: an uncharged mixture defaults to ``elec=none`` where water
defaults to ``elec=rf``), enforces declared **dependencies** (``elec=pme``
needs a charged system and a PME-capable rung) and **conflicts**
(``constraints=settle`` needs a pure 3-site water topology), and returns
a fully-pinned concrete spec whose canonical string round-trips:
``parse_spec(str(spec)).concretize() == spec``.

Everything here is data + pure functions: the variant table and the rule
list *are* the matrix of supported scenarios, which is what lets the CI
smoke job diff declared variants against the registry and lets two
textually different spec strings share one fingerprint (the serve tier
dedups on the concrete canonical form, never the raw text).

Family records (builders, charge/constraint properties, versions) live
in :mod:`repro.scenarios.registry`; this module imports them lazily so
the spec grammar has no import-time dependency on the MD layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable


class SpecError(ValueError):
    """Base class for every spec-language failure."""


class SpecParseError(SpecError):
    """Malformed spec text / unknown family or version."""


class UnknownVariantError(SpecError):
    """Unknown variant name, or a value outside a closed domain."""


class SpecDependencyError(SpecError):
    """A declared ``depends_on`` requirement is not satisfied."""


class SpecConflictError(SpecError):
    """A declared conflict fires for this combination."""


# ---------------------------------------------------------------------------
# Variant declarations
# ---------------------------------------------------------------------------

ENSEMBLES = ("nve", "nvt")
ELEC_MODES = ("rf", "pme", "cut", "none")
CONSTRAINT_CHOICES = ("auto", "settle", "lincs", "shake")
#: Strategy rungs: the paper's Fig. 8 optimisation ladder.  ``fused`` is
#: the full SW_GROMACS stack (read/write caches + SIMD + Bit-Map marks).
RUNGS = ("ori", "pkg", "cache", "vec", "fused")
#: Rungs whose neighbour-search/comm model supports PME decomposition
#: (engine optimisation level >= 2).
PME_CAPABLE_RUNGS = ("cache", "vec", "fused")
KERNEL_IMPLS = ("auto", "scalar", "vectorized")
PLATFORMS = ("sw26010", "knl", "p100")


@dataclass(frozen=True)
class Variant:
    """One declared variant: name, type, domain, family-aware default.

    ``default`` is either a plain value or a callable taking the family
    record (``registry.ScenarioFamily``) — the Spack idiom of
    conditional defaults expressed as data.  ``families`` restricts a
    variant to specific families (None = every family).
    """

    name: str
    kind: type
    default: object
    values: tuple[str, ...] | None = None
    families: tuple[str, ...] | None = None
    doc: str = ""

    def convert(self, raw: object) -> object:
        """Coerce ``raw`` into this variant's type/domain."""
        if self.kind is str:
            val = str(raw).lower()
            if self.values is not None and val not in self.values:
                raise UnknownVariantError(
                    f"variant '{self.name}' has no value {val!r}; "
                    f"allowed: {', '.join(self.values)}"
                )
            return val
        try:
            if self.kind is int:
                val = int(str(raw), 10)
            else:
                val = float(raw)
        except (TypeError, ValueError):
            raise SpecParseError(
                f"variant '{self.name}' expects {self.kind.__name__}, "
                f"got {raw!r}"
            ) from None
        return val

    def default_for(self, family) -> object:
        if callable(self.default):
            return self.convert(self.default(family))
        return self.convert(self.default)


#: The full declared variant table, in canonical output order.
VARIANTS: dict[str, Variant] = {
    v.name: v
    for v in (
        Variant("n", int, lambda fam: fam.default_n,
                doc="target particle count"),
        Variant("ensemble", str, "nve", ENSEMBLES,
                doc="statistical ensemble (nvt couples a thermostat)"),
        Variant("elec", str, lambda fam: "rf" if fam.charged else "none",
                ELEC_MODES,
                doc="electrostatics: reaction field, PME (ewald "
                    "real-space + mesh), plain cutoff, or LJ-only"),
        Variant("constraints", str, "auto", CONSTRAINT_CHOICES,
                doc="constraint solver (auto = SETTLE for pure water, "
                    "SHAKE otherwise)"),
        Variant("rung", str, "fused", RUNGS,
                doc="strategy rung on the Fig. 8 optimisation ladder"),
        Variant("kernel", str, "auto", KERNEL_IMPLS,
                doc="force-kernel implementation (auto = $REPRO_KERNEL)"),
        Variant("platform", str, "sw26010", PLATFORMS,
                doc="platform model; CPE rungs exist only on sw26010"),
        Variant("seed", int, 2019, doc="build/thermalisation RNG seed"),
        Variant("rcut", float, 0.9, doc="short-range cutoff (nm)"),
        Variant("temp", float, lambda fam: fam.default_temperature,
                doc="thermalisation / thermostat temperature (K)"),
        Variant("ion_frac", float, 0.05, families=("ionic",),
                doc="fraction of lattice sites holding an ion"),
    )
}

#: Variants that pin the built particle system or its nonbonded
#: parameters — the spec half of ``JobRequest.system_key``.  Everything
#: else (ensemble, rung, kernel, platform) changes *how* the system is
#: driven, not *what* is built, so batches may still share one system.
SYSTEM_VARIANTS = ("n", "seed", "rcut", "temp", "elec", "ion_frac")


# ---------------------------------------------------------------------------
# Rules: depends_on / conflicts, Spack-style, as data
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    """One declared dependency or conflict.

    ``when`` decides whether the rule applies to a concrete spec;
    ``ok`` decides whether it is satisfied.  ``message`` is formatted
    with the spec and family and must *name* the violated requirement —
    that text is the actionable error the acceptance criteria demand.
    """

    kind: str  # "depends_on" | "conflicts"
    subject: str
    when: Callable
    ok: Callable
    message: str

    def check(self, spec: "ScenarioSpec", family) -> None:
        if not self.when(spec, family):
            return
        if self.ok(spec, family):
            return
        exc = (
            SpecDependencyError
            if self.kind == "depends_on"
            else SpecConflictError
        )
        raise exc(
            f"{self.kind}({self.subject!r}): "
            + self.message.format(spec=spec, family=family.name)
        )


RULES: tuple[Rule, ...] = (
    Rule(
        "depends_on",
        "elec=pme -> charged system",
        when=lambda s, f: s["elec"] == "pme",
        ok=lambda s, f: f.charged,
        message="elec=pme requires a charged system, but family "
                "'{family}' carries no charges (try elec=none)",
    ),
    Rule(
        "depends_on",
        "elec=pme -> PME-capable rung",
        when=lambda s, f: s["elec"] == "pme",
        ok=lambda s, f: s["rung"] in PME_CAPABLE_RUNGS,
        message="elec=pme requires a PME-capable rung "
                "(" + "|".join(PME_CAPABLE_RUNGS) + "), got rung={spec.rung}",
    ),
    Rule(
        "conflicts",
        "constraints=settle <-> non-water topology",
        when=lambda s, f: s["constraints"] == "settle",
        ok=lambda s, f: f.pure_water,
        message="constraints=settle requires a pure 3-site water "
                "topology; family '{family}' is not pure water "
                "(use constraints=shake or auto)",
    ),
    Rule(
        "depends_on",
        "constraints=settle|lincs|shake -> constrained topology",
        when=lambda s, f: s["constraints"] != "auto",
        ok=lambda s, f: f.has_constraints,
        message="constraints={spec.constraints} requires a constrained "
                "topology; family '{family}' declares none "
                "(leave constraints=auto)",
    ),
    Rule(
        "conflicts",
        "platform!=sw26010 <-> CPE rungs",
        when=lambda s, f: s["platform"] != "sw26010",
        ok=lambda s, f: s["rung"] == "ori",
        message="platform={spec.platform} conflicts with "
                "rung={spec.rung}: the CPE optimisation rungs exist "
                "only on sw26010 (use rung=ori for cross-platform runs)",
    ),
)


# ---------------------------------------------------------------------------
# The spec itself
# ---------------------------------------------------------------------------


def _format_value(val: object) -> str:
    if isinstance(val, float):
        return repr(val)
    return str(val)


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario: family, version, variant assignments.

    Abstract until :meth:`concretize` fills every variant; only concrete
    specs may be built, fingerprinted, or routed.
    """

    family: str
    version: str | None = None
    variants: dict = field(default_factory=dict)
    concrete: bool = False

    # -- access --------------------------------------------------------
    def __getitem__(self, name: str) -> object:
        try:
            return self.variants[name]
        except KeyError:
            raise KeyError(
                f"variant {name!r} not set on this "
                f"{'concrete' if self.concrete else 'abstract'} spec"
            ) from None

    def get(self, name: str, default=None):
        return self.variants.get(name, default)

    def __getattr__(self, name: str):
        # Convenience: spec.rung, spec.elec ... for declared variants.
        if name in VARIANTS:
            try:
                return self.variants[name]
            except KeyError:
                pass
        raise AttributeError(name)

    # -- canonical text form -------------------------------------------
    def to_string(self) -> str:
        head = self.family if self.version is None else (
            f"{self.family}@{self.version}"
        )
        parts = [head]
        for name in VARIANTS:
            if name in self.variants:
                parts.append(f"{name}={_format_value(self.variants[name])}")
        return " ".join(parts)

    def __str__(self) -> str:
        return self.to_string()

    def __hash__(self) -> int:
        return hash(self.to_string())

    def __eq__(self, other) -> bool:
        if not isinstance(other, ScenarioSpec):
            return NotImplemented
        return (
            self.concrete == other.concrete
            and self.to_string() == other.to_string()
        )

    def canonical(self) -> dict:
        """JSON-able canonical form (fixed key order)."""
        return {
            "family": self.family,
            "version": self.version,
            "variants": {
                name: self.variants[name]
                for name in VARIANTS
                if name in self.variants
            },
        }

    def system_canonical(self) -> str:
        """Canonical form of the *system-defining* subset (see
        :data:`SYSTEM_VARIANTS`): the scenario half of the serve tier's
        ``system_key`` and the fleet ring's routing key."""
        if not self.concrete:
            raise SpecError("system_canonical() needs a concrete spec")
        parts = [f"{self.family}@{self.version}"]
        for name in SYSTEM_VARIANTS:
            if name in self.variants:
                parts.append(f"{name}={_format_value(self.variants[name])}")
        return " ".join(parts)

    # -- concretization ------------------------------------------------
    def concretize(self) -> "ScenarioSpec":
        """Resolve to a concrete spec: version + every applicable
        variant pinned, dependencies and conflicts enforced.

        Raises a :class:`SpecError` subclass with a message naming the
        violated requirement; never returns a half-filled spec.
        """
        if self.concrete:
            return self
        from repro.scenarios.registry import get_family

        family = get_family(self.family)  # SpecParseError on unknown
        version = self.version or family.default_version
        if version not in family.versions:
            raise SpecParseError(
                f"family '{family.name}' has no version {version!r}; "
                f"known: {', '.join(family.versions)}"
            )

        resolved: dict = {}
        for name, variant in VARIANTS.items():
            applicable = (
                variant.families is None or family.name in variant.families
            )
            if name in self.variants:
                if not applicable:
                    raise UnknownVariantError(
                        f"variant '{name}' is not defined for family "
                        f"'{family.name}' (only for: "
                        f"{', '.join(variant.families)})"
                    )
                resolved[name] = variant.convert(self.variants[name])
            elif applicable:
                resolved[name] = variant.default_for(family)

        concrete = ScenarioSpec(
            family=family.name,
            version=version,
            variants=resolved,
            concrete=True,
        )
        _check_values(concrete, family)
        for rule in RULES:
            rule.check(concrete, family)
        return concrete


def _check_values(spec: ScenarioSpec, family) -> None:
    """Scalar sanity that does not fit the closed-domain table."""
    n = spec["n"]
    if n < family.min_particles:
        raise SpecConflictError(
            f"n={n} is below family '{family.name}'s minimum "
            f"({family.min_particles} particles)"
        )
    if spec["rcut"] <= 0:
        raise SpecConflictError(f"rcut must be > 0, got {spec['rcut']}")
    if spec["temp"] <= 0:
        raise SpecConflictError(f"temp must be > 0, got {spec['temp']}")
    frac = spec.get("ion_frac")
    if frac is not None and not 0.0 < frac <= 0.5:
        raise SpecConflictError(
            f"ion_frac must be in (0, 0.5], got {frac}"
        )
    # Geometry: the pair list needs a box of at least 2 x r_list per
    # edge.  Reject here, at concretization, with the fix spelled out —
    # not deep in the cell grid at runtime.
    edge = family.box_edge(spec)
    r_list = spec["rcut"] + 0.1
    if edge < 2.0 * r_list:
        raise SpecConflictError(
            f"n={n} at family '{family.name}' density gives a "
            f"{edge:.2f} nm box, smaller than 2 x r_list = "
            f"{2.0 * r_list:.2f} nm; raise n or lower rcut"
        )


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def parse_spec(text: str) -> ScenarioSpec:
    """Parse spec text into an *abstract* :class:`ScenarioSpec`.

    Grammar: ``family[@version] [name=value ...]`` — whitespace-
    separated, order-insensitive after the head.  Unknown names and
    type/domain errors fail here; family-dependent validation
    (applicability, dependencies, conflicts) waits for
    :meth:`ScenarioSpec.concretize`.
    """
    if not isinstance(text, str) or not text.strip():
        raise SpecParseError("empty scenario spec")
    tokens = text.split()
    head = tokens[0]
    if "=" in head:
        raise SpecParseError(
            f"spec must start with a family head, got {head!r} "
            "(expected 'family[@version] name=value ...')"
        )
    family, _, version = head.partition("@")
    family = family.lower()
    if not family:
        raise SpecParseError(f"missing family name in head {head!r}")
    variants: dict = {}
    for token in tokens[1:]:
        name, sep, raw = token.partition("=")
        if not sep or not name or not raw:
            raise SpecParseError(
                f"bad variant token {token!r} (expected name=value)"
            )
        name = name.lower()
        if name not in VARIANTS:
            raise UnknownVariantError(
                f"unknown variant {name!r}; known: "
                f"{', '.join(VARIANTS)}"
            )
        if name in variants:
            raise SpecParseError(f"duplicate variant {name!r}")
        # Eager type/domain coercion: a typo like ``ensemble=npt`` or
        # ``n=many`` fails here, at parse; only *family context*
        # (applicability, dependencies) waits for concretize().
        variants[name] = VARIANTS[name].convert(raw)
    return ScenarioSpec(
        family=family, version=(version or None).lower() if version else None,
        variants=variants,
    )


def spec_from_dict(data: dict) -> ScenarioSpec:
    """Build an abstract spec from its dict form.

    Accepts either ``{"spec": "water@spce n=1500 ..."}`` or the exploded
    form ``{"family": "water", "version": "spce", "n": 1500, ...}``.
    """
    if not isinstance(data, dict):
        raise SpecParseError(f"spec dict expected, got {type(data).__name__}")
    if "spec" in data:
        extra = set(data) - {"spec"}
        if extra:
            raise SpecParseError(
                f"dict with 'spec' text cannot also set {sorted(extra)}"
            )
        return parse_spec(data["spec"])
    if "family" not in data:
        raise SpecParseError("spec dict needs a 'family' (or 'spec') key")
    variants = {}
    for key, val in data.items():
        if key in ("family", "version"):
            continue
        if key not in VARIANTS:
            raise UnknownVariantError(
                f"unknown variant {key!r}; known: {', '.join(VARIANTS)}"
            )
        variants[key] = val
    version = data.get("version")
    return ScenarioSpec(
        family=str(data["family"]).lower(),
        version=str(version).lower() if version is not None else None,
        variants=variants,
    )


@lru_cache(maxsize=4096)
def concretize_text(text: str) -> ScenarioSpec:
    """``parse + concretize`` with a cache keyed on the raw text.

    The serve tier calls this on every fingerprint/system-key access;
    concretization is pure, so caching is safe and makes spec-bearing
    requests as cheap to hash as legacy ones.
    """
    return parse_spec(text).concretize()
