"""repro.scenarios — Spack-style scenario specs + campaign runner.

Public surface (DESIGN.md §15):

* spec language — :func:`parse_spec`, :func:`spec_from_dict`,
  :class:`ScenarioSpec` (abstract until ``.concretize()``), the
  :class:`SpecError` hierarchy;
* registry — :data:`FAMILIES`, :func:`register_family`,
  :func:`build_scenario`, :func:`engine_config_for`,
  :func:`md_config_for`, :func:`scenario_fingerprint`, :func:`audit`;
* campaign — :func:`expand_matrix`, :func:`plan_campaign`,
  :func:`run_campaign`.
"""

from repro.scenarios.spec import (
    RUNGS,
    SYSTEM_VARIANTS,
    VARIANTS,
    ScenarioSpec,
    SpecConflictError,
    SpecDependencyError,
    SpecError,
    SpecParseError,
    UnknownVariantError,
    concretize_text,
    parse_spec,
    spec_from_dict,
)
from repro.scenarios.registry import (
    FAMILIES,
    RUNG_TO_KERNEL_SPEC,
    RUNG_TO_LEVEL,
    ScenarioFamily,
    audit,
    build_scenario,
    engine_config_for,
    get_family,
    kernel_spec_name_for,
    md_config_for,
    nonbonded_for,
    register_family,
    scenario_fingerprint,
    variant_matrix,
)
from repro.scenarios.campaign import (
    CampaignCell,
    CampaignPlan,
    MatrixError,
    expand_matrix,
    plan_campaign,
    run_campaign,
)

__all__ = [
    "CampaignCell",
    "CampaignPlan",
    "FAMILIES",
    "MatrixError",
    "RUNGS",
    "RUNG_TO_KERNEL_SPEC",
    "RUNG_TO_LEVEL",
    "SYSTEM_VARIANTS",
    "ScenarioFamily",
    "ScenarioSpec",
    "SpecConflictError",
    "SpecDependencyError",
    "SpecError",
    "SpecParseError",
    "UnknownVariantError",
    "VARIANTS",
    "audit",
    "build_scenario",
    "concretize_text",
    "engine_config_for",
    "expand_matrix",
    "get_family",
    "kernel_spec_name_for",
    "md_config_for",
    "nonbonded_for",
    "parse_spec",
    "plan_campaign",
    "register_family",
    "run_campaign",
    "scenario_fingerprint",
    "spec_from_dict",
    "variant_matrix",
]
