"""Topology: atom types, LJ parameter tables, charges, bonded terms.

The nonbonded side mirrors GROMACS: per-type C6/C12 with geometric
combination, looked up through dense ``(n_types, n_types)`` matrices so
kernels can gather parameters by type index.  The bonded side carries
bonds, angles, dihedrals and rigid constraints as index arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.constants import AtomType


@dataclass(frozen=True)
class Bond:
    """Harmonic bond: ``V = k/2 (r - r0)^2``."""

    i: int
    j: int
    r0: float
    k: float


@dataclass(frozen=True)
class Angle:
    """Harmonic angle: ``V = k/2 (theta - theta0)^2`` (theta0 radians)."""

    i: int
    j: int
    k_index: int
    theta0: float
    k: float


@dataclass(frozen=True)
class Dihedral:
    """Periodic dihedral: ``V = k (1 + cos(n phi - phi0))``."""

    i: int
    j: int
    k_index: int
    l_index: int
    phi0: float
    k: float
    multiplicity: int = 1


@dataclass(frozen=True)
class Constraint:
    """Rigid distance constraint between two particles."""

    i: int
    j: int
    distance: float


class Topology:
    """Atom-type table plus per-particle assignments and bonded lists."""

    def __init__(self, atom_types: list[AtomType]) -> None:
        if not atom_types:
            raise ValueError("topology needs at least one atom type")
        names = [t.name for t in atom_types]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate atom type names: {names}")
        self.atom_types = list(atom_types)
        self._name_to_index = {t.name: i for i, t in enumerate(atom_types)}
        n = len(atom_types)
        c6 = np.array([t.c6 for t in atom_types])
        c12 = np.array([t.c12 for t in atom_types])
        # Geometric combination rule (GROMACS comb-rule 1 on C6/C12).
        self.c6_table = np.sqrt(np.outer(c6, c6))
        self.c12_table = np.sqrt(np.outer(c12, c12))
        self.masses_by_type = np.array([t.mass for t in atom_types])

        self.type_ids = np.empty(0, dtype=np.int32)
        self.charges = np.empty(0, dtype=np.float64)
        self.mol_ids = np.empty(0, dtype=np.int32)
        self.bonds: list[Bond] = []
        self.angles: list[Angle] = []
        self.dihedrals: list[Dihedral] = []
        self.constraints: list[Constraint] = []

    @property
    def n_types(self) -> int:
        return len(self.atom_types)

    @property
    def n_particles(self) -> int:
        return len(self.type_ids)

    def type_index(self, name: str) -> int:
        try:
            return self._name_to_index[name]
        except KeyError:
            raise KeyError(
                f"unknown atom type {name!r}; known: {sorted(self._name_to_index)}"
            ) from None

    def add_particles(
        self,
        type_names: list[str],
        charges: list[float],
        mol_id: int,
    ) -> np.ndarray:
        """Append one molecule's particles; returns their global indices."""
        if len(type_names) != len(charges):
            raise ValueError("type_names and charges must have equal length")
        start = self.n_particles
        ids = np.array([self.type_index(n) for n in type_names], dtype=np.int32)
        self.type_ids = np.concatenate([self.type_ids, ids])
        self.charges = np.concatenate([self.charges, np.asarray(charges, dtype=np.float64)])
        self.mol_ids = np.concatenate(
            [self.mol_ids, np.full(len(type_names), mol_id, dtype=np.int32)]
        )
        return np.arange(start, start + len(type_names))

    @property
    def masses(self) -> np.ndarray:
        """Per-particle masses gathered from the type table."""
        return self.masses_by_type[self.type_ids]

    def validate(self) -> None:
        """Check index arrays are consistent; raise on any violation."""
        n = self.n_particles
        if len(self.charges) != n or len(self.mol_ids) != n:
            raise ValueError("per-particle arrays have inconsistent lengths")
        for b in self.bonds:
            if not (0 <= b.i < n and 0 <= b.j < n and b.i != b.j):
                raise ValueError(f"bad bond {b}")
        for a in self.angles:
            if len({a.i, a.j, a.k_index}) != 3:
                raise ValueError(f"bad angle {a}")
            if not all(0 <= x < n for x in (a.i, a.j, a.k_index)):
                raise ValueError(f"angle index out of range: {a}")
        for d in self.dihedrals:
            if len({d.i, d.j, d.k_index, d.l_index}) != 4:
                raise ValueError(f"bad dihedral {d}")
            if not all(0 <= x < n for x in (d.i, d.j, d.k_index, d.l_index)):
                raise ValueError(f"dihedral index out of range: {d}")
        for c in self.constraints:
            if not (0 <= c.i < n and 0 <= c.j < n and c.i != c.j):
                raise ValueError(f"bad constraint {c}")
            if c.distance <= 0:
                raise ValueError(f"non-positive constraint distance: {c}")

    def n_constrained_dof(self) -> int:
        """Degrees of freedom removed by the rigid constraints."""
        return len(self.constraints)

    def lj_params_for(self, type_i: np.ndarray, type_j: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gather (C6, C12) for arrays of type-index pairs."""
        return self.c6_table[type_i, type_j], self.c12_table[type_i, type_j]
