"""LINCS constraint solver (Hess et al. 1997) — GROMACS' default.

LINCS resets constrained bonds in two phases: (1) solve the linearised
constraint equations with a truncated series expansion of the coupling
matrix inverse (``lincs_order`` terms), (2) correct for the rotational
lengthening of the projection with a few iterations.  Compared to SHAKE
it is non-iterative in phase 1 (fixed work per step) and vectorises
cleanly — which is also why it is the natural constraint kernel to
offload to CPEs.

This implementation follows the original paper's matrix formulation with
dense numpy linear algebra over the (sparse) constraint coupling matrix;
fine for the system sizes this repo simulates.  It is validated against
the SHAKE solver in `tests/md/test_lincs.py`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.box import Box
from repro.md.constraints import ConstraintArrays, ConstraintError
from repro.md.topology import Constraint


@dataclass(frozen=True)
class LincsConfig:
    lincs_order: int = 8  # series terms (GROMACS default 4; coupled
    # triangle constraints — rigid water — converge slowly, so we default
    # higher; GROMACS itself refuses LINCS for coupled angle constraints)
    lincs_iter: int = 4  # rotational correction iterations

    def __post_init__(self) -> None:
        if self.lincs_order < 1:
            raise ValueError(f"lincs_order must be >= 1: {self.lincs_order}")
        if self.lincs_iter < 1:
            raise ValueError(f"lincs_iter must be >= 1: {self.lincs_iter}")


class LincsSolver:
    """LINCS position projection for a fixed constraint topology."""

    def __init__(
        self,
        constraints: list[Constraint],
        masses: np.ndarray,
        config: LincsConfig | None = None,
    ) -> None:
        self.config = config or LincsConfig()
        self.arrays = ConstraintArrays.from_topology(constraints, masses)
        a = self.arrays
        self.n = len(a)
        if self.n == 0:
            return
        #: Sdiag[c] = 1 / sqrt(1/m_i + 1/m_j)
        self._sdiag = 1.0 / np.sqrt(a.inv_mi + a.inv_mj)
        self._d = np.sqrt(a.d2)
        # Connectivity: constraints sharing an atom couple.  Precompute the
        # signed mass factors of the coupling matrix A (Hess Eq. 5):
        # A_cc' = S_c S_c' * (+-) (1/m_shared) * (B_c . B_c'), where the
        # sign depends on whether the shared atom sits on the same side.
        couple_rows: list[int] = []
        couple_cols: list[int] = []
        couple_coef: list[float] = []
        atom_map: dict[int, list[tuple[int, int]]] = {}
        for c in range(self.n):
            atom_map.setdefault(int(a.i[c]), []).append((c, +1))
            atom_map.setdefault(int(a.j[c]), []).append((c, -1))
        inv_mass = {}
        for c in range(self.n):
            inv_mass[int(a.i[c])] = a.inv_mi[c]
            inv_mass[int(a.j[c])] = a.inv_mj[c]
        for atom, members in atom_map.items():
            for ci, si in members:
                for cj, sj in members:
                    if ci == cj:
                        continue
                    couple_rows.append(ci)
                    couple_cols.append(cj)
                    couple_coef.append(si * sj * inv_mass[atom])
        self._rows = np.array(couple_rows, dtype=np.int64)
        self._cols = np.array(couple_cols, dtype=np.int64)
        self._coef = np.array(couple_coef)

    @property
    def n_constraints(self) -> int:
        return self.n

    def _bond_dirs(self, positions: np.ndarray, box: Box) -> np.ndarray:
        a = self.arrays
        dr = box.displacement(positions[a.i], positions[a.j])
        norm = np.linalg.norm(dr, axis=1)
        return dr / norm[:, None]

    def _coupling(self, b: np.ndarray) -> np.ndarray:
        """Dense coupling matrix A (zero diagonal)."""
        mat = np.zeros((self.n, self.n))
        dots = np.sum(b[self._rows] * b[self._cols], axis=1)
        # A = I - S B M^-1 B^T S has *negated* coupling off the diagonal.
        np.add.at(
            mat,
            (self._rows, self._cols),
            -self._sdiag[self._rows] * self._sdiag[self._cols] * self._coef * dots,
        )
        return mat

    def _apply_lagrange(
        self, positions: np.ndarray, b: np.ndarray, lam: np.ndarray
    ) -> None:
        a = self.arrays
        scaled = (self._sdiag * lam)[:, None] * b
        np.add.at(positions, a.i, -a.inv_mi[:, None] * scaled)
        np.add.at(positions, a.j, a.inv_mj[:, None] * scaled)

    def _series_solve(self, mat: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """(I - A)^-1 rhs ~ sum_k A^k rhs, truncated at lincs_order."""
        sol = rhs.copy()
        term = rhs
        for _ in range(self.config.lincs_order):
            term = mat @ term
            sol += term
        return sol

    def apply_positions(
        self,
        positions: np.ndarray,
        reference: np.ndarray,
        box: Box,
        tolerance: float = 1e-8,
    ) -> int:
        """Project ``positions`` onto the constraints (in place).

        Returns the number of rotational-correction iterations used.
        Raises :class:`ConstraintError` if the final violation exceeds
        ``sqrt(tolerance)`` relative (grossly broken input geometry).
        """
        if self.n == 0:
            return 0
        a = self.arrays
        b = self._bond_dirs(reference, box)
        mat = self._coupling(b)

        # Phase 1: linear projection.
        dr = box.displacement(positions[a.i], positions[a.j])
        rhs = self._sdiag * (np.sum(b * dr, axis=1) - self._d)
        lam = self._series_solve(mat, rhs)
        self._apply_lagrange(positions, b, lam)

        # Phase 2: rotational lengthening correction.
        iterations = 0
        for _ in range(self.config.lincs_iter):
            iterations += 1
            dr = box.displacement(positions[a.i], positions[a.j])
            len2 = np.sum(dr * dr, axis=1)
            # p = sqrt(2 d^2 - l^2): corrected projection length.
            arg = np.maximum(2.0 * a.d2 - len2, 0.0)
            # p = sqrt(2 d^2 - l^2); rhs = S (d - p) shortens overlong bonds.
            rhs = self._sdiag * (self._d - np.sqrt(arg))
            lam = self._series_solve(mat, rhs)
            self._apply_lagrange(positions, b, lam)

        dr = box.displacement(positions[a.i], positions[a.j])
        violation = np.abs(np.sum(dr * dr, axis=1) - a.d2) / a.d2
        if violation.max() > np.sqrt(tolerance):
            raise ConstraintError(
                f"LINCS residual violation {violation.max():.2e} exceeds "
                f"{np.sqrt(tolerance):.2e}; input geometry too distorted"
            )
        return iterations

    def max_violation(self, positions: np.ndarray, box: Box) -> float:
        if self.n == 0:
            return 0.0
        a = self.arrays
        dr = box.displacement(positions[a.i], positions[a.j])
        return float(np.max(np.abs(np.sum(dr * dr, axis=1) - a.d2) / a.d2))

    def apply_velocities(
        self, velocities: np.ndarray, positions: np.ndarray, box: Box
    ) -> int:
        """Velocity projection: the linearised constraint equations along
        the current bond directions, solved with the same truncated
        series (LINCS applies to any linear quantity, velocities
        included)."""
        if self.n == 0:
            return 0
        a = self.arrays
        b = self._bond_dirs(positions, box)
        mat = self._coupling(b)
        # The truncated series converges slowly on coupled triangles;
        # re-applying the projection is equivalent to extending it and
        # converges geometrically.
        for iteration in range(1, self.config.lincs_iter + 1):
            dv = velocities[a.i] - velocities[a.j]
            rhs = self._sdiag * np.sum(b * dv, axis=1)
            lam = self._series_solve(mat, rhs)
            scaled = (self._sdiag * lam)[:, None] * b
            np.add.at(velocities, a.i, -a.inv_mi[:, None] * scaled)
            np.add.at(velocities, a.j, a.inv_mj[:, None] * scaled)
        return iteration
