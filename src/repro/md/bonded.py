"""Bonded interactions: bond stretch (2-body), angle (3-body), dihedral
(4-body) — the fixed-list interactions of the paper's Fig. 1.

All three are vectorised over the respective index lists.  Forces are
derived analytically and validated against numerical gradients in the
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.box import Box
from repro.md.system import ParticleSystem
from repro.md.topology import Angle, Bond, Dihedral


@dataclass
class BondedResult:
    energy_bonds: float
    energy_angles: float
    energy_dihedrals: float
    forces: np.ndarray

    @property
    def energy(self) -> float:
        return self.energy_bonds + self.energy_angles + self.energy_dihedrals


def _bond_arrays(bonds: list[Bond]) -> tuple[np.ndarray, ...]:
    i = np.array([b.i for b in bonds], dtype=np.int64)
    j = np.array([b.j for b in bonds], dtype=np.int64)
    r0 = np.array([b.r0 for b in bonds])
    k = np.array([b.k for b in bonds])
    return i, j, r0, k


def bond_forces(
    positions: np.ndarray, box: Box, bonds: list[Bond], forces: np.ndarray
) -> float:
    """Harmonic bonds: ``V = k/2 (r - r0)^2``.  Accumulates into ``forces``."""
    if not bonds:
        return 0.0
    i, j, r0, k = _bond_arrays(bonds)
    dr = box.displacement(positions[i], positions[j])
    r = np.sqrt(np.sum(dr * dr, axis=1))
    energy = float(np.sum(0.5 * k * (r - r0) ** 2))
    # F_i = -k (r - r0) * dr/r
    f = (-k * (r - r0) / r)[:, None] * dr
    np.add.at(forces, i, f)
    np.add.at(forces, j, -f)
    return energy


def angle_forces(
    positions: np.ndarray, box: Box, angles: list[Angle], forces: np.ndarray
) -> float:
    """Harmonic angles: ``V = k/2 (theta - theta0)^2`` with j the vertex."""
    if not angles:
        return 0.0
    ai = np.array([a.i for a in angles], dtype=np.int64)
    aj = np.array([a.j for a in angles], dtype=np.int64)
    ak = np.array([a.k_index for a in angles], dtype=np.int64)
    theta0 = np.array([a.theta0 for a in angles])
    k = np.array([a.k for a in angles])

    rij = box.displacement(positions[ai], positions[aj])
    rkj = box.displacement(positions[ak], positions[aj])
    nij = np.sqrt(np.sum(rij * rij, axis=1))
    nkj = np.sqrt(np.sum(rkj * rkj, axis=1))
    cos_t = np.sum(rij * rkj, axis=1) / (nij * nkj)
    cos_t = np.clip(cos_t, -1.0, 1.0)
    theta = np.arccos(cos_t)
    energy = float(np.sum(0.5 * k * (theta - theta0) ** 2))

    # F = -dV/dtheta * dtheta/dr with dtheta/dr = -(1/sin) dcos/dr, so the
    # two minus signs cancel into a positive prefactor.
    dvdt = k * (theta - theta0)
    sin_t = np.sqrt(np.maximum(1.0 - cos_t**2, 1e-12))
    fi = (dvdt / (nij * sin_t))[:, None] * (
        rkj / nkj[:, None] - (cos_t / nij)[:, None] * rij
    )
    fk = (dvdt / (nkj * sin_t))[:, None] * (
        rij / nij[:, None] - (cos_t / nkj)[:, None] * rkj
    )
    np.add.at(forces, ai, fi)
    np.add.at(forces, ak, fk)
    np.add.at(forces, aj, -(fi + fk))
    return energy


def dihedral_forces(
    positions: np.ndarray, box: Box, dihedrals: list[Dihedral], forces: np.ndarray
) -> float:
    """Periodic dihedrals: ``V = k (1 + cos(n phi - phi0))``.

    Gradient after Blondel & Karplus (the numerically stable form GROMACS
    uses).
    """
    if not dihedrals:
        return 0.0
    di = np.array([d.i for d in dihedrals], dtype=np.int64)
    dj = np.array([d.j for d in dihedrals], dtype=np.int64)
    dk = np.array([d.k_index for d in dihedrals], dtype=np.int64)
    dl = np.array([d.l_index for d in dihedrals], dtype=np.int64)
    phi0 = np.array([d.phi0 for d in dihedrals])
    kparam = np.array([d.k for d in dihedrals])
    mult = np.array([d.multiplicity for d in dihedrals])

    b1 = box.displacement(positions[dj], positions[di])  # i->j
    b2 = box.displacement(positions[dk], positions[dj])  # j->k
    b3 = box.displacement(positions[dl], positions[dk])  # k->l
    n1 = np.cross(b1, b2)
    n2 = np.cross(b2, b3)
    nb2 = np.sqrt(np.sum(b2 * b2, axis=1))
    m1 = np.cross(n1, b2 / nb2[:, None])
    x = np.sum(n1 * n2, axis=1)
    y = np.sum(m1 * n2, axis=1)
    phi = np.arctan2(y, x)
    energy = float(np.sum(kparam * (1.0 + np.cos(mult * phi - phi0))))
    dvdphi = -kparam * mult * np.sin(mult * phi - phi0)

    n1_sq = np.sum(n1 * n1, axis=1)
    n2_sq = np.sum(n2 * n2, axis=1)
    fi = (-dvdphi * nb2 / n1_sq)[:, None] * n1
    fl = (dvdphi * nb2 / n2_sq)[:, None] * n2
    s = (np.sum(b1 * b2, axis=1) / nb2**2)[:, None] * fi - (
        np.sum(b3 * b2, axis=1) / nb2**2
    )[:, None] * fl
    fj = -fi - s
    fk2 = -fl + s
    np.add.at(forces, di, fi)
    np.add.at(forces, dj, fj)
    np.add.at(forces, dk, fk2)
    np.add.at(forces, dl, fl)
    return energy


def compute_bonded(system: ParticleSystem) -> BondedResult:
    """All bonded terms for the system's topology."""
    forces = np.zeros_like(system.positions)
    topo = system.topology
    e_b = bond_forces(system.positions, system.box, topo.bonds, forces)
    e_a = angle_forces(system.positions, system.box, topo.angles, forces)
    e_d = dihedral_forces(system.positions, system.box, topo.dihedrals, forces)
    return BondedResult(e_b, e_a, e_d, forces)
