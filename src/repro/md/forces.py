"""Reference short-range force engine over the cluster pair list.

This is the float64 ground truth every strategy kernel is validated
against.  It expands cluster pairs into 4x4 particle-interaction tiles,
applies the validity mask (padding, self pairs, intra-molecular
exclusions, half-list deduplication), evaluates
`repro.md.nonbonded.pair_force_energy`, and scatter-adds forces back to
the original particle order — all in chunked numpy, no per-pair Python.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.nonbonded import NonbondedParams, pair_force_energy
from repro.md.pairlist import CLUSTER_SIZE, ClusterPairList
from repro.md.system import ParticleSystem


@dataclass
class ShortRangeResult:
    """Forces (original particle order) and summed potential energy."""

    forces: np.ndarray
    energy: float
    n_pairs_in_cutoff: int
    #: Scalar virial W = sum_pairs F_ij . r_ij (pressure: P = (2 Ekin + W)
    #: / (3 V)).  Counted once per unordered pair.
    virial: float = 0.0


def tile_indices(
    pair_ci: np.ndarray, pair_cj: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Particle slot indices for the 4x4 tiles of each cluster pair.

    Returns ``(slot_i, slot_j)`` with shape (M, 4, 4): entry [m, a, b] is
    the interaction of the a-th particle of cluster ci[m] with the b-th of
    cluster cj[m].
    """
    lane = np.arange(CLUSTER_SIZE)
    slot_i = (
        pair_ci.astype(np.int64)[:, None, None] * CLUSTER_SIZE
        + lane[None, :, None]
    )
    slot_j = (
        pair_cj.astype(np.int64)[:, None, None] * CLUSTER_SIZE
        + lane[None, None, :]
    )
    slot_i = np.broadcast_to(slot_i, (len(pair_ci), CLUSTER_SIZE, CLUSTER_SIZE))
    slot_j = np.broadcast_to(slot_j, (len(pair_cj), CLUSTER_SIZE, CLUSTER_SIZE))
    return slot_i, slot_j


def tile_validity(
    plist: ClusterPairList,
    pair_ci: np.ndarray,
    pair_cj: np.ndarray,
    slot_i: np.ndarray,
    slot_j: np.ndarray,
    mol_sorted: np.ndarray,
) -> np.ndarray:
    """Boolean mask of interactions to evaluate within each 4x4 tile.

    Excludes padding slots, intra-molecular pairs (GROMACS exclusions),
    and — on diagonal tiles of a half list — the lower triangle plus the
    self interaction so each particle pair is counted exactly once.
    """
    real = plist.real
    valid = real[slot_i] & real[slot_j]
    valid &= mol_sorted[slot_i] != mol_sorted[slot_j]
    diag = pair_ci == pair_cj
    if plist.half:
        valid[diag] &= slot_i[diag] < slot_j[diag]
    else:
        valid[diag] &= slot_i[diag] != slot_j[diag]
    return valid


def compute_short_range(
    system: ParticleSystem,
    plist: ClusterPairList,
    params: NonbondedParams,
    dtype: type = np.float64,
    chunk_pairs: int = 65536,
    reuse_gathers: bool = True,
) -> ShortRangeResult:
    """Evaluate LJ + short-range Coulomb over the pair list.

    ``dtype`` selects the arithmetic precision: float64 is the reference,
    float32 models the paper's mixed-precision production path.

    ``reuse_gathers`` routes the step-invariant gathers (charges, type
    ids, molecule ids — fixed between pair-list rebuilds) through the
    list's memo (:meth:`~repro.md.pairlist.ClusterPairList.gather_cached`)
    so repeated per-step evaluations skip them; the values are identical
    either way (the ablation flag exists for the reuse bit-identity
    tests and the `bench_step_reuse` baseline).
    """
    box = plist.box
    pos = plist.current_positions(system).astype(dtype)
    if reuse_gathers:
        q = plist.gather_cached(system.charges, dtype=dtype)
        types = plist.gather_cached(
            system.topology.type_ids, fill=0, dtype=np.int64
        )
        mol = plist.gather_cached(
            system.topology.mol_ids, fill=-1, dtype=np.int64
        )
    else:
        q = plist.gather(system.charges).astype(dtype)
        types = plist.gather(system.topology.type_ids, fill=0).astype(np.int64)
        mol = plist.gather(system.topology.mol_ids, fill=-1).astype(np.int64)
    # Padding slots get mol -1; make each unique so the exclusion test
    # (equal mol id) never accidentally masks real pairs, while padding is
    # already excluded via `real`.
    c6_tab = system.topology.c6_table.astype(dtype)
    c12_tab = system.topology.c12_table.astype(dtype)
    box_arr = box.array.astype(dtype)

    f_sorted = np.zeros((plist.n_slots, 3), dtype=np.float64)
    energy = 0.0
    virial = 0.0
    n_in_cutoff = 0
    m_total = plist.n_cluster_pairs
    for lo in range(0, m_total, chunk_pairs):
        hi = min(m_total, lo + chunk_pairs)
        ci = plist.pair_ci[lo:hi]
        cj = plist.pair_cj[lo:hi]
        slot_i, slot_j = tile_indices(ci, cj)
        valid = tile_validity(plist, ci, cj, slot_i, slot_j, mol)

        dr = pos[slot_i] - pos[slot_j]
        dr -= box_arr * np.round(dr / box_arr)
        r2 = np.sum(dr * dr, axis=-1)

        qq = q[slot_i] * q[slot_j]
        ti, tj = types[slot_i], types[slot_j]
        c6 = c6_tab[ti, tj]
        c12 = c12_tab[ti, tj]

        f_scalar, e = pair_force_energy(r2, qq, c6, c12, params, mask=valid)
        n_in_cutoff += int(np.count_nonzero(f_scalar != 0))
        energy += float(e.sum(dtype=np.float64))
        # W = sum F . dr = sum f_scalar * r^2 (F is along +dr for i).
        virial += float((f_scalar.astype(np.float64) * r2).sum())
        fvec = (f_scalar[..., None] * dr).astype(np.float64)

        flat_i = slot_i.ravel()
        flat_j = slot_j.ravel()
        flat_f = fvec.reshape(-1, 3)
        np.add.at(f_sorted, flat_i, flat_f)
        if plist.half:
            np.add.at(f_sorted, flat_j, -flat_f)

    forces = np.zeros((system.n_particles, 3), dtype=np.float64)
    plist.scatter_add(forces, f_sorted)
    if not plist.half:
        # A full list visits each unordered pair twice (and computes both
        # sides); each visit deposits only the i-side force, so energy and
        # virial are double counted and must be halved — the RCA trade-off.
        energy *= 0.5
        virial *= 0.5
    return ShortRangeResult(
        forces=forces,
        energy=energy,
        n_pairs_in_cutoff=n_in_cutoff,
        virial=virial,
    )


def brute_force_short_range(
    system: ParticleSystem, params: NonbondedParams
) -> ShortRangeResult:
    """O(N^2) evaluation without any pair list — the oracle of oracles."""
    pos = system.box.wrap(system.positions)
    n = len(pos)
    topo = system.topology
    forces = np.zeros((n, 3))
    energy = 0.0
    virial = 0.0
    n_in = 0
    chunk = max(1, int(2e6) // max(n, 1))
    for lo in range(0, n, chunk):
        hi = min(n, lo + chunk)
        dr = pos[lo:hi, None, :] - pos[None, :, :]
        dr -= system.box.array * np.round(dr / system.box.array)
        r2 = np.sum(dr * dr, axis=-1)
        idx_i = np.arange(lo, hi)[:, None]
        idx_j = np.arange(n)[None, :]
        valid = (idx_i != idx_j) & (topo.mol_ids[idx_i] != topo.mol_ids[idx_j])
        qq = system.charges[idx_i] * system.charges[idx_j]
        c6, c12 = topo.lj_params_for(
            np.broadcast_to(topo.type_ids[idx_i], r2.shape),
            np.broadcast_to(topo.type_ids[idx_j], r2.shape),
        )
        f_scalar, e = pair_force_energy(r2, qq, c6, c12, params, mask=valid)
        # Every pair appears twice in the full N^2 sweep.
        energy += 0.5 * float(e.sum())
        virial += 0.5 * float((f_scalar * r2).sum())
        n_in += int(np.count_nonzero(f_scalar != 0)) // 2
        forces[lo:hi] += (f_scalar[..., None] * dr).sum(axis=1)
    return ShortRangeResult(
        forces=forces, energy=energy, n_pairs_in_cutoff=n_in, virial=virial
    )
