"""The MD workflow of the paper's Fig. 1, reference (x86-like) edition.

``MdLoop`` runs initialise -> [neighbour search -> forces -> update ->
constraints -> output]* with per-kernel wall-time instrumentation using
the paper's Table 1 kernel taxonomy.  It is the double-precision ground
truth the SW26010 engine (`repro.core.engine.SWGromacsEngine`) is
validated against, and the "x86 / knl" curve of the Fig. 13 accuracy
experiment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.hw.perf import KernelTiming
from repro.trace.events import CAT_STEP, MPE_TRACK, NULL_TRACER, NullTracer
from repro.md.bonded import compute_bonded
from repro.md.constraints import build_constraint_solver
from repro.md.integrator import IntegratorConfig, LeapfrogIntegrator
from repro.md.nonbonded import NonbondedParams
from repro.md.pairlist import ClusterPairList, build_pair_list
from repro.parallel.pool import shared_backend
from repro.md.pme import PmeParams, PmeSolver
from repro.md.reporter import EnergyFrame, EnergyReporter
from repro.md.system import ParticleSystem
from repro.resilience import (
    CheckpointError,
    MdCheckpoint,
    ResiliencePolicy,
    capture,
    save_checkpoint,
)
from repro.resilience import restore as restore_checkpoint_state

#: Kernel names following the paper's Table 1.
KERNEL_NEIGHBOR = "Neighbor search"
KERNEL_FORCE = "Force"
KERNEL_PME = "PME mesh"
KERNEL_BONDED = "Bonded"
KERNEL_UPDATE = "Update"
KERNEL_CONSTRAINTS = "Constraints"
KERNEL_COMM = "Comm. energies"
KERNEL_OUTPUT = "Write traj"
KERNEL_CHECKPOINT = "Checkpoint"


@dataclass
class MdConfig:
    """Everything an MD run needs besides the system itself."""

    nonbonded: NonbondedParams = field(default_factory=NonbondedParams)
    integrator: IntegratorConfig = field(default_factory=IntegratorConfig)
    use_pme: bool = False
    pme: PmeParams = field(default_factory=PmeParams)
    precision: type = np.float64
    constraint_algorithm: str = "auto"  # auto | shake | lincs | settle
    output_interval: int = 0  # 0 = no trajectory output
    report_interval: int = 100
    #: Step-compute reuse (DESIGN.md §8): route the step-invariant
    #: gathers (charges/types/mols) through the pair list's memo.  Forces
    #: are bit-identical either way; False is the ablation baseline.
    step_reuse: bool = True
    #: Checkpoint cadence/path (fault injection is an engine-side
    #: concept; the reference loop only checkpoints).
    resilience: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    #: Host-parallel execution backend (DESIGN.md §9): "serial", "pool",
    #: or None for ``REPRO_BACKEND``-or-serial.  Used for the pair-list
    #: exact filter; the list is bit-identical either way.
    backend: str | None = None
    workers: int | None = None
    #: Short-range kernel implementation: "scalar" (chunked reference)
    #: or "vectorized" (panel-fed batch, `repro.core.vectorized`); None
    #: resolves ``REPRO_KERNEL``-or-scalar.  Forces are bit-identical
    #: either way.
    kernel_impl: str | None = None

    def __post_init__(self) -> None:
        if self.use_pme and self.nonbonded.coulomb_mode != "ewald":
            raise ValueError(
                "use_pme requires coulomb_mode='ewald' for the real-space part"
            )
        if self.use_pme and abs(self.pme.beta - self.nonbonded.ewald_beta) > 1e-9:
            raise ValueError(
                f"PME beta {self.pme.beta} != real-space beta "
                f"{self.nonbonded.ewald_beta}"
            )


@dataclass
class MdResult:
    """Run outcome: final state, energy series, per-kernel timings."""

    system: ParticleSystem
    reporter: EnergyReporter
    timing: KernelTiming
    n_steps: int
    n_pairlist_rebuilds: int
    trajectory_frames: list[np.ndarray] = field(default_factory=list)
    checkpoints_written: int = 0


class MdLoop:
    """Reference MD driver."""

    def __init__(
        self,
        system: ParticleSystem,
        config: MdConfig | None = None,
        tracer: NullTracer = NULL_TRACER,
    ) -> None:
        self.system = system
        self.config = config or MdConfig()
        #: Timeline tracer: step phases land on the MPE track as measured
        #: wall time (this is the reference x86-like engine, so wall time
        #: is the honest unit; conversion to cycles uses the tracer's
        #: clock).
        self.tracer = tracer
        self.shake = build_constraint_solver(
            system, self.config.constraint_algorithm
        )
        self.integrator = LeapfrogIntegrator(self.config.integrator, self.shake)
        self.backend = shared_backend(self.config.backend, self.config.workers)
        self.pme = (
            PmeSolver(system.box, self.config.pme) if self.config.use_pme else None
        )
        # Imported lazily: repro.core.engine imports this module, so a
        # top-level import of repro.core.vectorized would be circular
        # through the packages' __init__ re-exports.
        from repro.core.vectorized import resolve_kernel_impl

        #: Resolved once for the whole run; per-step dispatch is a string
        #: compare, not an env lookup.
        self.kernel_impl = resolve_kernel_impl(self.config.kernel_impl)
        self.pairlist: ClusterPairList | None = None
        self._potential = 0.0
        self._start_step = 0
        self._next_step = 0
        self._pairlist_rebuild_step = 0
        self._pairlist_ref_positions: np.ndarray | None = None
        self._restart_ref_positions: np.ndarray | None = None
        self._checkpoints_written = 0
        #: Accounting carried through restore() so a restarted run's
        #: MdResult matches the uninterrupted one (None = fresh start).
        self._restored_history: dict | None = None
        self._restored_trajectory: list[np.ndarray] = []
        #: Live run state, referenced by checkpoint() mid-run.
        self._reporter: EnergyReporter | None = None
        self._trajectory: list[np.ndarray] = []
        self._rebuilds = 0

    def _add(self, timing: KernelTiming, kernel: str, dt: float) -> None:
        """Record one measured step-phase duration (timing + trace)."""
        timing.add(kernel, dt)
        if self.tracer.enabled:
            self.tracer.emit_seconds(kernel, CAT_STEP, MPE_TRACK, dt)

    def compute_forces(self, timing: KernelTiming | None = None) -> tuple[np.ndarray, float]:
        """All forces and the total potential at the current positions."""
        from repro.core.vectorized import compute_short_range_impl

        timing = timing if timing is not None else KernelTiming()
        assert self.pairlist is not None, "neighbour list not built"
        t0 = time.perf_counter()
        sr = compute_short_range_impl(
            self.system, self.pairlist, self.config.nonbonded,
            dtype=self.config.precision,
            reuse_gathers=self.config.step_reuse,
            impl=self.kernel_impl,
        )
        self._add(timing, KERNEL_FORCE, time.perf_counter() - t0)
        forces = sr.forces
        potential = sr.energy

        if self.pme is not None:
            t0 = time.perf_counter()
            pme_res = self.pme.compute(self.system)
            self._add(timing, KERNEL_PME, time.perf_counter() - t0)
            forces = forces + pme_res.forces
            potential += pme_res.energy

        topo = self.system.topology
        if topo.bonds or topo.angles or topo.dihedrals:
            t0 = time.perf_counter()
            bonded = compute_bonded(self.system)
            self._add(timing, KERNEL_BONDED, time.perf_counter() - t0)
            forces = forces + bonded.forces
            potential += bonded.energy
        return forces, potential

    def _rebuild_pairlist(self, timing: KernelTiming, step: int = 0) -> None:
        t0 = time.perf_counter()
        self.pairlist = build_pair_list(
            self.system, self.config.nonbonded.r_list, backend=self.backend
        )
        self._add(timing, KERNEL_NEIGHBOR, time.perf_counter() - t0)
        self._pairlist_rebuild_step = step
        self._pairlist_ref_positions = self.system.positions.copy()

    def _rebuild_from_checkpoint(self, timing: KernelTiming) -> None:
        """Regenerate the mid-interval pair list after a restart:
        building from the checkpointed reference positions reproduces the
        interrupted run's list bit-for-bit."""
        if self._restart_ref_positions is None:
            raise CheckpointError(
                "restarted mid pair-list interval but the checkpoint "
                "carried no reference positions"
            )
        saved = self.system.positions
        self.system.positions = self._restart_ref_positions
        try:
            self._rebuild_pairlist(timing, self._pairlist_rebuild_step)
        finally:
            self.system.positions = saved
            self._restart_ref_positions = None

    def _history_dict(self) -> dict:
        """Accumulated accounting to stow in a checkpoint (v2)."""
        frames = self._reporter.frames if self._reporter is not None else []
        return {
            "n_pairlist_rebuilds": int(self._rebuilds),
            "checkpoints_written": int(self._checkpoints_written),
            "reporter_frames": [
                [f.step, f.potential, f.kinetic, f.temperature]
                for f in frames
            ],
        }

    def checkpoint(self, step: int | None = None) -> MdCheckpoint:
        """Snapshot the run (``step`` = next step to execute)."""
        return capture(
            self.system,
            self.integrator,
            step=self._next_step if step is None else step,
            pairlist_rebuild_step=self._pairlist_rebuild_step,
            pairlist_ref_positions=self._pairlist_ref_positions,
            meta={"driver": "mdloop", "n_particles": self.system.n_particles},
            history=self._history_dict(),
            trajectory=(
                np.stack(self._trajectory) if self._trajectory else None
            ),
        )

    def restore(self, ckpt: MdCheckpoint) -> None:
        """Resume from a checkpoint: the next :meth:`run` continues at
        ``ckpt.step`` and reproduces the uninterrupted run bit-for-bit."""
        restore_checkpoint_state(ckpt, self.system, self.integrator)
        self._start_step = self._next_step = ckpt.step
        self._pairlist_rebuild_step = ckpt.pairlist_rebuild_step
        self._restart_ref_positions = ckpt.pairlist_ref_positions
        self.pairlist = None
        if ckpt.history is not None:
            self._restored_history = dict(ckpt.history)
        else:
            # Pre-v2 checkpoint: reconstruct the counters (reporter
            # history is unrecoverable and restarts empty).
            nstlist = self.config.nonbonded.nstlist
            every = self.config.resilience.checkpoint_every
            self._restored_history = {
                "n_pairlist_rebuilds": -(-ckpt.step // nstlist),
                "checkpoints_written": ckpt.step // every if every else 0,
                "reporter_frames": [],
            }
        self._restored_trajectory = (
            [np.array(f) for f in ckpt.trajectory]
            if ckpt.trajectory is not None
            else []
        )

    def run(self, n_steps: int) -> MdResult:
        """Run ``n_steps`` of MD, recording energies and kernel timings.

        After :meth:`restore` the loop continues from the checkpointed
        step, so ``n_steps`` is the *total* trajectory length.
        """
        if n_steps < 0:
            raise ValueError(f"n_steps must be non-negative: {n_steps}")
        cfg = self.config
        policy = cfg.resilience
        timing = KernelTiming()
        hist = self._restored_history or {}
        reporter = EnergyReporter(interval=cfg.report_interval)
        reporter.frames.extend(
            EnergyFrame(int(r[0]), float(r[1]), float(r[2]), float(r[3]))
            for r in hist.get("reporter_frames", [])
        )
        trajectory: list[np.ndarray] = list(self._restored_trajectory)
        # Restart-invariant accounting: counters resume from the restored
        # base (zero on a fresh start — a second run() on the same loop no
        # longer inherits the first run's checkpoint count).
        self._rebuilds = int(hist.get("n_pairlist_rebuilds", 0))
        self._checkpoints_written = int(hist.get("checkpoints_written", 0))
        self._reporter = reporter
        self._trajectory = trajectory

        for step in range(self._start_step, n_steps):
            if step % cfg.nonbonded.nstlist == 0:
                self._rebuild_pairlist(timing, step)
                self._rebuilds += 1
            elif self.pairlist is None:
                # Regenerating the checkpointed list is recovery work,
                # not a new rebuild — the uninterrupted run never did it.
                self._rebuild_from_checkpoint(timing)

            forces, potential = self.compute_forces(timing)

            t0 = time.perf_counter()
            self.integrator.step(self.system, forces)
            self._next_step = step + 1
            dt_update = time.perf_counter() - t0
            # SHAKE runs inside the integrator; attribute its share to the
            # Constraints kernel proportionally to constraint count.
            if self.shake is not None and self.shake.n_constraints:
                self._add(timing, KERNEL_UPDATE, dt_update * 0.4)
                self._add(timing, KERNEL_CONSTRAINTS, dt_update * 0.6)
            else:
                self._add(timing, KERNEL_UPDATE, dt_update)

            t0 = time.perf_counter()
            # Kinetic energy and temperature are only observable through
            # the reporter, so off-interval steps skip both reductions.
            if step % reporter.interval == 0:
                reporter.maybe_record(
                    step,
                    potential,
                    self.system.kinetic_energy(),
                    self.system.temperature(),
                )
            self._add(timing, KERNEL_COMM, time.perf_counter() - t0)

            if cfg.output_interval and step % cfg.output_interval == 0:
                t0 = time.perf_counter()
                trajectory.append(self.system.positions.copy())
                self._add(timing, KERNEL_OUTPUT, time.perf_counter() - t0)

            if (
                policy.checkpoint_every
                and (step + 1) % policy.checkpoint_every == 0
            ):
                t0 = time.perf_counter()
                # Count the in-flight checkpoint before capturing so its
                # own history includes it — a restart from this file has
                # "written" it.
                self._checkpoints_written += 1
                save_checkpoint(
                    self.checkpoint(step + 1), policy.checkpoint_path
                )
                self._add(timing, KERNEL_CHECKPOINT, time.perf_counter() - t0)

        return MdResult(
            system=self.system,
            reporter=reporter,
            timing=timing,
            n_steps=n_steps,
            n_pairlist_rebuilds=self._rebuilds,
            trajectory_frames=trajectory,
            checkpoints_written=self._checkpoints_written,
        )
