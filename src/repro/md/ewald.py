"""Exact (direct-sum) Ewald electrostatics — the oracle PME is tested
against.

Smooth PME approximates the reciprocal-space sum with B-spline
interpolation on an FFT grid; this module evaluates the same sum exactly
(O(N * K^3), usable only for small systems), plus the identical self and
exclusion corrections, so `tests/md/test_pme.py` can pin PME's error to
the interpolation order instead of trusting two approximations to agree.

Conventions follow Essmann et al. (1995):

    E_rec = f / (2 pi V) * sum_{m != 0} exp(-pi^2 m^2 / beta^2) / m^2
            * |S(m)|^2,           S(m) = sum_i q_i exp(2 pi i m . r_i)

with m ranging over reciprocal lattice vectors (integer triples divided
by the box lengths).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.box import Box
from repro.md.system import ParticleSystem
from repro.util.units import COULOMB_CONSTANT


@dataclass(frozen=True)
class EwaldParams:
    """Direct Ewald configuration: splitting beta and reciprocal cutoff."""

    beta: float = 3.12341
    kmax: int = 12  # reciprocal vectors per dimension: |m_i| <= kmax

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise ValueError(f"beta must be positive: {self.beta}")
        if self.kmax < 1:
            raise ValueError(f"kmax must be >= 1: {self.kmax}")


@dataclass
class EwaldResult:
    energy_reciprocal: float
    energy_self: float
    energy_exclusion: float
    forces: np.ndarray

    @property
    def energy(self) -> float:
        return self.energy_reciprocal + self.energy_self + self.energy_exclusion


class DirectEwaldSolver:
    """Exact reciprocal-space Ewald for orthorhombic boxes.

    Vectorised over all (m, particle) pairs; memory is O(N * K^3), so
    keep systems small (the test oracle role).
    """

    def __init__(self, box: Box, params: EwaldParams | None = None) -> None:
        self.box = box
        self.params = params or EwaldParams()
        k = self.params.kmax
        grid = np.arange(-k, k + 1)
        mx, my, mz = np.meshgrid(grid, grid, grid, indexing="ij")
        m_int = np.stack([mx.ravel(), my.ravel(), mz.ravel()], axis=1)
        m_int = m_int[np.any(m_int != 0, axis=1)]  # drop m = 0
        self._m = m_int / box.array[None, :]  # reciprocal vectors (1/nm)
        m2 = np.sum(self._m * self._m, axis=1)
        self._weight = (
            np.exp(-np.pi**2 * m2 / self.params.beta**2)
            / m2
            / (2.0 * np.pi * box.volume)
        )

    def reciprocal(
        self, positions: np.ndarray, charges: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Exact reciprocal energy and forces."""
        pos = self.box.wrap(np.asarray(positions, dtype=np.float64))
        q = np.asarray(charges, dtype=np.float64)
        phase = 2.0 * np.pi * (pos @ self._m.T)  # (N, M)
        cos_p = np.cos(phase)
        sin_p = np.sin(phase)
        s_re = q @ cos_p  # (M,)
        s_im = q @ sin_p
        energy = float(
            COULOMB_CONSTANT * np.sum(self._weight * (s_re**2 + s_im**2))
        )
        # F_i = -dE/dr_i: the structure-factor derivative gives, per mode,
        # 4 pi f w q_i m (sin_i * S_re - cos_i * S_im).
        coeff = 4.0 * np.pi * COULOMB_CONSTANT * self._weight  # (M,)
        lever = sin_p * (coeff * s_re)[None, :] - cos_p * (coeff * s_im)[None, :]
        forces = (q[:, None] * lever) @ self._m
        return energy, forces

    def self_energy(self, charges: np.ndarray) -> float:
        return float(
            -COULOMB_CONSTANT
            * self.params.beta
            / np.sqrt(np.pi)
            * np.sum(np.asarray(charges) ** 2)
        )

    def exclusion_correction(
        self, system: ParticleSystem
    ) -> tuple[float, np.ndarray]:
        """Identical to PME's: remove erf(beta r)/r for intra-molecular
        pairs (delegates to the PME implementation to guarantee parity)."""
        from repro.md.pme import PmeParams, PmeSolver

        pme = PmeSolver(
            self.box, PmeParams(beta=self.params.beta)
        )
        return pme.exclusion_correction(system)

    def compute(self, system: ParticleSystem) -> EwaldResult:
        e_rec, f_rec = self.reciprocal(system.positions, system.charges)
        e_self = self.self_energy(system.charges)
        e_excl, f_excl = self.exclusion_correction(system)
        return EwaldResult(
            energy_reciprocal=e_rec,
            energy_self=e_self,
            energy_exclusion=e_excl,
            forces=f_rec + f_excl,
        )
