"""Velocity-Verlet integrator (GROMACS ``integrator = md-vv``).

Unlike leapfrog, md-vv keeps positions and velocities synchronous, which
makes on-step kinetic energies exact (leapfrog's are half-step averaged).
The constraint coupling follows RATTLE: position projection after the
drift, velocity projection after the second kick.

The force evaluation between the two half-kicks is supplied by the
caller (`VelocityVerletIntegrator.step` takes a ``force_fn``), so the
same integrator drives the reference engine and the simulated-chip
engine.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.md.integrator import IntegratorConfig
from repro.md.system import ParticleSystem


class VelocityVerletIntegrator:
    """md-vv with optional constraints (RATTLE coupling)."""

    def __init__(
        self,
        config: IntegratorConfig,
        constraints=None,
        seed: int = 7,
    ) -> None:
        self.config = config
        self.constraints = constraints
        self._rng = np.random.default_rng(seed)
        self._step_count = 0

    def step(
        self,
        system: ParticleSystem,
        forces: np.ndarray,
        force_fn: Callable[[ParticleSystem], np.ndarray],
    ) -> np.ndarray:
        """Advance one dt; returns the forces at the new positions.

        ``forces`` are the forces at the current positions; ``force_fn``
        re-evaluates them after the drift (velocity-Verlet needs both).
        """
        cfg = self.config
        dt = cfg.dt
        inv_m = 1.0 / system.masses[:, None]

        # First half-kick + drift.
        system.velocities += 0.5 * dt * forces * inv_m
        old_positions = system.positions.copy()
        system.positions = system.positions + system.velocities * dt

        if self.constraints is not None and self.constraints.n_constraints:
            self.constraints.apply_positions(
                system.positions, old_positions, system.box
            )
            system.velocities = (
                system.box.minimum_image(system.positions - old_positions) / dt
            )

        # Second half-kick with the new forces.
        new_forces = force_fn(system)
        system.velocities += 0.5 * dt * new_forces * inv_m
        if self.constraints is not None and self.constraints.n_constraints:
            self.constraints.apply_velocities(
                system.velocities, system.positions, system.box
            )

        if cfg.thermostat != "none":
            self._apply_thermostat(system)

        system.positions = system.box.wrap(system.positions)
        self._step_count += 1
        if (
            cfg.remove_com_interval > 0
            and self._step_count % cfg.remove_com_interval == 0
        ):
            system.remove_com_motion()
        return new_forces

    def _apply_thermostat(self, system: ParticleSystem) -> None:
        # Same weak-coupling / stochastic rescale options as leapfrog.
        from repro.md.integrator import LeapfrogIntegrator

        LeapfrogIntegrator._apply_thermostat(self, system)  # type: ignore[arg-type]
