"""Leapfrog integrator with thermostats and constraint coupling.

GROMACS' default ``md`` integrator is leapfrog; the paper's workflow
(Fig. 1) runs force -> update -> constraints each step.  Thermostats:

* ``none``      — NVE,
* ``berendsen`` — weak-coupling rescale,
* ``vrescale``  — Bussi stochastic velocity rescale (canonical).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.constraints import ShakeSolver
from repro.md.system import ParticleSystem
from repro.util.units import KB_KJ_PER_MOL_K

THERMOSTATS = ("none", "berendsen", "vrescale")


@dataclass
class IntegratorConfig:
    dt: float = 0.002  # ps
    thermostat: str = "none"
    target_temperature: float = 300.0
    tau_t: float = 0.1  # ps coupling time
    remove_com_interval: int = 100

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError(f"dt must be positive: {self.dt}")
        if self.thermostat not in THERMOSTATS:
            raise ValueError(
                f"thermostat {self.thermostat!r} not in {THERMOSTATS}"
            )
        if self.tau_t <= 0:
            raise ValueError(f"tau_t must be positive: {self.tau_t}")


class LeapfrogIntegrator:
    """Leapfrog (velocity offset by dt/2) with optional SHAKE/RATTLE."""

    def __init__(
        self,
        config: IntegratorConfig,
        constraints: ShakeSolver | None = None,
        seed: int = 7,
    ) -> None:
        self.config = config
        self.constraints = constraints
        self._rng = np.random.default_rng(seed)
        self._step_count = 0

    def get_state(self) -> dict:
        """JSON-serialisable internals for checkpointing.

        Captures the thermostat RNG (bit-generator state) and the step
        counter (COM-removal scheduling) — everything needed to resume
        the stochastic trajectory bit-identically.
        """
        return {
            "rng": self._rng.bit_generator.state,
            "step_count": self._step_count,
        }

    def set_state(self, state: dict) -> None:
        """Restore internals captured by :meth:`get_state`."""
        self._rng.bit_generator.state = state["rng"]
        self._step_count = int(state["step_count"])

    def step(self, system: ParticleSystem, forces: np.ndarray) -> None:
        """Advance positions/velocities one dt using ``forces``."""
        cfg = self.config
        dt = cfg.dt
        inv_m = 1.0 / system.masses[:, None]

        if cfg.thermostat != "none":
            self._apply_thermostat(system)

        # v(t + dt/2) = v(t - dt/2) + F(t)/m * dt
        system.velocities += forces * inv_m * dt
        old_positions = system.positions.copy()
        system.positions = system.positions + system.velocities * dt

        if self.constraints is not None and self.constraints.n_constraints:
            self.constraints.apply_positions(
                system.positions, old_positions, system.box
            )
            # Constrained velocities: (x_new - x_old)/dt under minimum
            # image — solvers may return coordinates shifted by a box
            # vector (SETTLE reconstructs molecules near the reference).
            system.velocities = (
                system.box.minimum_image(system.positions - old_positions) / dt
            )
            self.constraints.apply_velocities(
                system.velocities, system.positions, system.box
            )

        system.positions = system.box.wrap(system.positions)
        self._step_count += 1
        if (
            cfg.remove_com_interval > 0
            and self._step_count % cfg.remove_com_interval == 0
        ):
            system.remove_com_motion()

    def _apply_thermostat(self, system: ParticleSystem) -> None:
        cfg = self.config
        t_now = system.temperature()
        if t_now <= 0:
            return
        if cfg.thermostat == "berendsen":
            lam2 = 1.0 + cfg.dt / cfg.tau_t * (cfg.target_temperature / t_now - 1.0)
            system.velocities *= np.sqrt(max(lam2, 0.0))
        elif cfg.thermostat == "vrescale":
            # Bussi et al. 2007 stochastic velocity rescaling.
            ndof = system.n_dof()
            ekin = system.kinetic_energy()
            ekin_target = 0.5 * ndof * KB_KJ_PER_MOL_K * cfg.target_temperature
            c = np.exp(-cfg.dt / cfg.tau_t)
            r1 = self._rng.normal()
            sum_r2 = self._rng.chisquare(ndof - 1)
            ekin_new = (
                ekin * c
                + ekin_target / ndof * (1.0 - c) * (r1**2 + sum_r2)
                + 2.0 * r1 * np.sqrt(ekin * ekin_target / ndof * c * (1.0 - c))
            )
            system.velocities *= np.sqrt(max(ekin_new, 1e-12) / ekin)
