"""Cluster Verlet pair list (the Páll-Hess scheme GROMACS 5.x uses).

Particles are spatially sorted and grouped into clusters of 4; the pair
list stores *cluster pairs* whose bounding spheres are within ``rlist`` of
each other.  Kernels then evaluate all 4x4 = 16 particle interactions of a
cluster pair at once — exactly the structure the paper's particle packages
(Fig. 2) and SIMD kernels (§3.4) exploit: one cluster = one package.

A *half* list contains each unordered cluster pair once (Newton's third
law applied in the kernel); the *full* list of the RCA baseline
(Algorithm 2) duplicates every pair so each side updates only its own
forces at the cost of doubled computation.

The list is rebuilt every ``nstlist`` steps with a buffer
(``rlist > rcut``), as in the paper's Table 3 (nstlist = 10, rlist = 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.box import Box
from repro.md.cells import CellGrid
from repro.md.system import ParticleSystem
from repro.parallel.pool import as_input, shared_inputs

CLUSTER_SIZE = 4

#: Cap on distinct (array, dtype, fill) gather memo entries per list —
#: generous for real kernels (positions/charges/types/mols and a few
#: study properties) while bounding long multi-property sweeps.
GATHER_CACHE_MAX = 16


@dataclass
class ClusterPairList:
    """Spatially sorted particles, 4-particle clusters, and cluster pairs."""

    box: Box
    rlist: float
    half: bool
    #: original particle index per sorted slot; -1 marks padding.
    perm: np.ndarray
    #: True for slots holding a real particle.
    real: np.ndarray
    #: positions in sorted order *at build time* (padding slots duplicate a
    #: nearby real one).  Between rebuilds particles move; kernels must use
    #: :meth:`current_positions`, not this snapshot.
    sorted_positions: np.ndarray
    #: for each padding slot, the slot index of the real particle whose
    #: position it mirrors (identity for real slots).
    pad_source: np.ndarray
    #: cluster pairs in CSR form, sorted by i-cluster.
    pair_ci: np.ndarray
    pair_cj: np.ndarray
    i_starts: np.ndarray

    @property
    def n_real(self) -> int:
        return int(self.real.sum())

    @property
    def n_slots(self) -> int:
        return len(self.perm)

    @property
    def n_clusters(self) -> int:
        return self.n_slots // CLUSTER_SIZE

    @property
    def n_cluster_pairs(self) -> int:
        return len(self.pair_ci)

    def pairs_of_cluster(self, ci: int) -> np.ndarray:
        """j-clusters paired with i-cluster ``ci`` (CSR slice)."""
        if not 0 <= ci < self.n_clusters:
            raise IndexError(f"cluster {ci} out of range [0, {self.n_clusters})")
        return self.pair_cj[self.i_starts[ci] : self.i_starts[ci + 1]]

    def current_positions(self, system: ParticleSystem) -> np.ndarray:
        """Sorted-slot positions reflecting the system's *current* state.

        Particles move between list rebuilds; this regathers positions
        through ``perm`` (padding slots mirror their source particle) so
        force kernels always act on fresh coordinates.
        """
        pos = np.empty((self.n_slots, 3))
        wrapped = self.box.wrap(system.positions)
        pos[self.real] = wrapped[self.perm[self.real]]
        pad = ~self.real
        if pad.any():
            pos[pad] = pos[self.pad_source[pad]]
        return pos

    def gather(self, per_particle: np.ndarray, fill: float = 0.0) -> np.ndarray:
        """Reorder a per-particle array into sorted slots (padding = fill)."""
        arr = np.asarray(per_particle)
        out_shape = (self.n_slots,) + arr.shape[1:]
        out = np.full(out_shape, fill, dtype=arr.dtype)
        out[self.real] = arr[self.perm[self.real]]
        return out

    def gather_cached(
        self,
        per_particle: np.ndarray,
        fill: float = 0.0,
        dtype: np.dtype | type | None = None,
    ) -> np.ndarray:
        """Memoised :meth:`gather` for step-invariant per-particle arrays.

        Charges, type ids, and molecule ids never change between pair-list
        rebuilds, yet the force path re-gathered them every step.  The memo
        is keyed on the source array's identity (plus dtype/fill), lives on
        this list instance, and therefore dies with it at the next rebuild —
        the invalidation rule of DESIGN.md §8.  Returned arrays are marked
        read-only: they are shared across steps, so an accidental in-place
        edit must fail loudly instead of corrupting later steps.

        Only use for arrays that are immutable for the lifetime of this
        list (positions must keep going through :meth:`current_positions`).
        """
        key = (
            id(per_particle),
            None if dtype is None else np.dtype(dtype).str,
            float(fill),
        )
        cache = self.__dict__.setdefault("_gather_cache", {})
        out = cache.get(key)
        if out is None:
            # Bounded FIFO: a long multi-property sweep against one
            # long-lived list cannot grow the memo without limit.
            while len(cache) >= GATHER_CACHE_MAX:
                cache.pop(next(iter(cache)))
            out = self.gather(per_particle, fill)
            if dtype is not None and out.dtype != np.dtype(dtype):
                out = out.astype(dtype)
            out.setflags(write=False)
            cache[key] = out
        return out

    def invalidate(self) -> None:
        """Drop memoised gathers and tile panels.  `StepCache.invalidate`
        calls this for every pinned list, so the rebuild/restore
        invalidation rule of DESIGN.md §8 covers these memos too."""
        self.__dict__.pop("_gather_cache", None)
        self.__dict__.pop("_panel_cache", None)

    def scatter_add(self, target: np.ndarray, sorted_values: np.ndarray) -> None:
        """Accumulate sorted-slot values back into original particle order."""
        if len(sorted_values) != self.n_slots:
            raise ValueError(
                f"sorted_values has {len(sorted_values)} slots, expected {self.n_slots}"
            )
        np.add.at(target, self.perm[self.real], sorted_values[self.real])

    def to_full(self) -> "ClusterPairList":
        """Duplicate every off-diagonal pair: the RCA full list (Algorithm 2)."""
        if not self.half:
            return self
        off = self.pair_ci != self.pair_cj
        ci = np.concatenate([self.pair_ci, self.pair_cj[off]])
        cj = np.concatenate([self.pair_cj, self.pair_ci[off]])
        order = np.argsort(ci, kind="stable")
        ci, cj = ci[order], cj[order]
        starts = np.searchsorted(ci, np.arange(self.n_clusters + 1))
        return ClusterPairList(
            box=self.box,
            rlist=self.rlist,
            half=False,
            perm=self.perm,
            real=self.real,
            sorted_positions=self.sorted_positions,
            pad_source=self.pad_source,
            pair_ci=ci.astype(np.int32),
            pair_cj=cj.astype(np.int32),
            i_starts=starts.astype(np.int64),
        )

    def average_neighbors_per_cluster(self) -> float:
        if self.n_clusters == 0:
            return 0.0
        return self.n_cluster_pairs / self.n_clusters


def _cluster_geometry(
    sorted_pos: np.ndarray, box: Box
) -> tuple[np.ndarray, np.ndarray]:
    """Bounding-sphere centre and radius per cluster (min-image safe)."""
    n_clusters = len(sorted_pos) // CLUSTER_SIZE
    members = sorted_pos.reshape(n_clusters, CLUSTER_SIZE, 3)
    anchor = members[:, 0:1, :]
    rel = box.minimum_image(members - anchor)
    centers = box.wrap(anchor[:, 0, :] + rel.mean(axis=1))
    radii = np.sqrt(
        np.max(np.sum((rel - rel.mean(axis=1, keepdims=True)) ** 2, axis=2), axis=1)
    )
    return centers, radii


def _cluster_particles(
    positions: np.ndarray, box: Box
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Spatially sort and group particles into per-cell clusters of 4.

    Each grid cell's particles are padded to a multiple of 4 so no cluster
    spans a cell boundary — this keeps bounding spheres tight (GROMACS pads
    its grid columns the same way).  The sort cell targets ~4 clusters per
    cell to bound padding overhead.

    Returns ``(perm, real, sorted_pos, pad_source)`` in slot order.
    """
    n = len(positions)
    density = n / box.volume
    # ~16 particles per sort cell -> ~4 clusters, <~15 % padding overhead.
    target_edge = (16.0 / max(density, 1e-12)) ** (1.0 / 3.0)
    grid = CellGrid.build(positions, box, min_cell_edge=max(target_edge, 1e-3))
    counts = np.diff(grid.cell_starts)
    padded = (counts + CLUSTER_SIZE - 1) // CLUSTER_SIZE * CLUSTER_SIZE
    n_slots = int(padded.sum())

    perm = np.full(n_slots, -1, dtype=np.int64)
    real = np.zeros(n_slots, dtype=bool)
    sorted_pos = np.empty((n_slots, 3))
    # Destination slot of each sorted particle: its cell's padded base plus
    # its rank within the cell.
    padded_starts = np.concatenate([[0], np.cumsum(padded)])
    within = np.arange(n) - np.repeat(grid.cell_starts[:-1], counts)
    dest = np.repeat(padded_starts[:-1], counts) + within
    perm[dest] = grid.order
    real[dest] = True
    sorted_pos[dest] = positions[grid.order]
    # Padding slots copy their cell's last real particle (or the global
    # first particle for empty boxes) so cluster geometry stays tight.
    pad_source = np.arange(n_slots, dtype=np.int64)
    if n_slots > n:
        empty = ~real
        last_real = np.maximum.accumulate(
            np.where(real, np.arange(n_slots), -1)
        )
        src = last_real[empty]
        src = np.where(src >= 0, src, int(np.argmax(real)) if real.any() else 0)
        pad_source[empty] = src
        sorted_pos[empty] = sorted_pos[src]
    return perm, real, sorted_pos, pad_source


def build_pair_list(
    system: ParticleSystem,
    rlist: float,
    half: bool = True,
    exact_filter: bool = True,
    backend=None,
) -> ClusterPairList:
    """Build the cluster pair list for the current positions.

    Steps: spatially sort and cluster particles per cell; generate
    candidate cluster pairs with a periodic KD-tree over cluster centres
    (radius = rlist + 2 r_max, so no true pair can be missed); prefilter by
    per-pair bounding spheres; then (``exact_filter``) keep only pairs with
    an actual particle distance below ``rlist`` — the 4x4 distance work the
    paper's §3.5 neighbour-search kernel performs.

    ``backend`` (an `ExecutionBackend` or None for in-process) fans the
    exact-filter chunks — the dominant cost on large systems — across
    worker processes; chunk results concatenate in order, so the built
    list is bit-identical regardless of backend.
    """
    from scipy.spatial import cKDTree

    box = system.box
    box.check_cutoff(rlist)
    positions = box.wrap(system.positions)

    perm, real, sorted_pos, pad_source = _cluster_particles(positions, box)
    centers, radii = _cluster_geometry(sorted_pos, box)
    n_clusters = len(centers)
    r_max = float(radii.max()) if n_clusters else 0.0
    search = rlist + 2.0 * r_max
    if search >= box.min_edge / 2.0:
        # KD-tree periodic queries require radius < half the box; fall back
        # to the all-pairs candidate set (small systems only).
        a, b = np.triu_indices(n_clusters, k=1)
        ci = np.concatenate([a, np.arange(n_clusters)]).astype(np.int64)
        cj = np.concatenate([b, np.arange(n_clusters)]).astype(np.int64)
    else:
        # boxsize requires strictly in-range coordinates.
        pts = np.minimum(centers, np.nextafter(box.array, -np.inf))
        tree = cKDTree(pts, boxsize=box.array)
        pairs = tree.query_pairs(search, output_type="ndarray")
        diag = np.arange(n_clusters, dtype=np.int64)
        ci = np.concatenate([pairs[:, 0].astype(np.int64), diag])
        cj = np.concatenate([pairs[:, 1].astype(np.int64), diag])

    if len(ci):
        # Bounding-sphere prefilter (per-pair radii are tighter than the
        # uniform query radius).
        d = box.distance(centers[ci], centers[cj])
        keep = d <= rlist + radii[ci] + radii[cj]
        ci, cj = ci[keep], cj[keep]
        if exact_filter and len(ci):
            keep = _exact_cluster_filter(
                sorted_pos, box, ci, cj, rlist, backend=backend
            )
            ci, cj = ci[keep], cj[keep]
        order2 = np.argsort(ci, kind="stable")
        ci, cj = ci[order2], cj[order2]

    i_starts = np.searchsorted(ci, np.arange(n_clusters + 1))
    plist = ClusterPairList(
        box=box,
        rlist=rlist,
        half=True,
        perm=perm,
        real=real,
        sorted_positions=sorted_pos,
        pad_source=pad_source,
        pair_ci=ci.astype(np.int32),
        pair_cj=cj.astype(np.int32),
        i_starts=i_starts.astype(np.int64),
    )
    # Candidates are generated in canonical ci <= cj form (a half list);
    # the RCA full list is derived by mirroring.
    return plist if half else plist.to_full()


@dataclass
class _ExactFilterTask:
    """One chunk of candidate cluster pairs for the exact distance filter."""

    positions: object  # sorted slot positions (SharedArray under pool)
    box: np.ndarray
    ci: np.ndarray
    cj: np.ndarray
    rlist: float


def _exact_filter_job(task: _ExactFilterTask) -> np.ndarray:
    """Boolean keep mask for one chunk (pure; runs in any process)."""
    members = as_input(task.positions).reshape(-1, CLUSTER_SIZE, 3)
    dr = members[task.ci, :, None, :] - members[task.cj, None, :, :]
    dr -= task.box * np.round(dr / task.box)
    r2 = np.sum(dr * dr, axis=-1)
    return r2.min(axis=(1, 2)) < task.rlist * task.rlist


def _exact_cluster_filter(
    sorted_pos: np.ndarray,
    box: Box,
    ci: np.ndarray,
    cj: np.ndarray,
    rlist: float,
    chunk: int = 262144,
    serial_chunk: int = 8192,
    backend=None,
) -> np.ndarray:
    """True where some 4x4 particle distance of the cluster pair < rlist.

    Chunked to bound the 16x distance-matrix memory; with a parallel
    ``backend`` and more than one chunk, chunks run on worker processes
    (same math, ordered concatenation — bit-identical output).  The
    serial path iterates in much smaller blocks (``serial_chunk``) so
    the per-block 4x4x3 float64 panels stay cache-resident — a ~1.6x
    wall-clock win over letting the temporaries spill to main memory;
    the keep mask is elementwise per pair, so block size never changes
    the result.
    """
    box_arr = box.array
    if getattr(backend, "parallel", False) and len(ci) > chunk:
        bounds = range(0, len(ci), chunk)
        with shared_inputs(backend, positions=sorted_pos) as shared:
            masks = backend.map(
                _exact_filter_job,
                [
                    _ExactFilterTask(
                        positions=shared["positions"],
                        box=box_arr,
                        ci=ci[lo : lo + chunk],
                        cj=cj[lo : lo + chunk],
                        rlist=rlist,
                    )
                    for lo in bounds
                ],
            )
        return np.concatenate(masks)
    keep = np.empty(len(ci), dtype=bool)
    for lo in range(0, len(ci), serial_chunk):
        hi = min(len(ci), lo + serial_chunk)
        keep[lo:hi] = _exact_filter_job(
            _ExactFilterTask(sorted_pos, box_arr, ci[lo:hi], cj[lo:hi], rlist)
        )
    return keep


def brute_force_pairs(system: ParticleSystem, r_cut: float) -> set[tuple[int, int]]:
    """All particle pairs within ``r_cut`` by O(N^2) search (test oracle)."""
    pos = system.box.wrap(system.positions)
    n = len(pos)
    pairs: set[tuple[int, int]] = set()
    # Chunk rows to bound the O(N^2) memory footprint.
    chunk = max(1, int(4e6) // max(n, 1))
    for lo in range(0, n, chunk):
        hi = min(n, lo + chunk)
        d = system.box.distance(pos[lo:hi, None, :], pos[None, :, :])
        ii, jj = np.nonzero(d < r_cut)
        ii = ii + lo
        upper = ii < jj
        pairs.update(zip(ii[upper].tolist(), jj[upper].tolist()))
    return pairs


def pair_list_covers(
    plist: ClusterPairList, pairs: set[tuple[int, int]]
) -> bool:
    """Check every oracle particle pair lies in some listed cluster pair.

    Fully vectorised: listed cluster pairs and queried pairs are encoded
    as ``ci * n_clusters + cj`` scalars and membership-tested with
    `np.isin` (tests pin the result to a scalar reference walk).
    """
    if not pairs:
        return True
    n_clusters = plist.n_clusters
    listed = np.unique(
        plist.pair_ci.astype(np.int64) * n_clusters
        + plist.pair_cj.astype(np.int64)
    )
    slot_of = np.full(
        int(plist.perm.max()) + 1 if len(plist.perm) else 0, -1, dtype=np.int64
    )
    real = plist.perm >= 0
    slot_of[plist.perm[real]] = np.nonzero(real)[0]
    query = np.array(list(pairs), dtype=np.int64)
    ci = slot_of[query[:, 0]] // CLUSTER_SIZE
    cj = slot_of[query[:, 1]] // CLUSTER_SIZE
    if plist.half:
        # The half list stores each unordered pair once, canonically.
        ci, cj = np.minimum(ci, cj), np.maximum(ci, cj)
    return bool(np.all(np.isin(ci * n_clusters + cj, listed)))
