"""Cell grid for O(N) neighbour candidate generation.

Points are binned into a periodic grid of cells whose edge is at least the
search radius, so all neighbours of a point lie in its own or the 26
adjacent cells.  The grid stores points in CSR form (sorted index array +
per-cell offsets), which lets the pair-list builder gather whole cells
with numpy slices instead of per-point Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.box import Box


@dataclass
class CellGrid:
    """Periodic cell decomposition of a set of points."""

    box: Box
    n_cells_dim: np.ndarray  # (3,) cells per dimension
    cell_ids: np.ndarray  # (N,) flat cell id per point
    order: np.ndarray  # (N,) point indices sorted by cell id
    cell_starts: np.ndarray  # (n_cells + 1,) CSR offsets into `order`

    @classmethod
    def build(cls, points: np.ndarray, box: Box, min_cell_edge: float) -> "CellGrid":
        """Bin ``points`` into cells with edge >= ``min_cell_edge``."""
        if min_cell_edge <= 0:
            raise ValueError(f"min_cell_edge must be positive: {min_cell_edge}")
        pts = box.wrap(np.asarray(points, dtype=np.float64))
        edges = box.array
        n_dim = np.maximum(1, np.floor(edges / min_cell_edge).astype(np.int64))
        cell_edge = edges / n_dim
        coords = np.floor(pts / cell_edge).astype(np.int64)
        # Guard against points exactly on the upper boundary after wrap.
        coords = np.minimum(coords, n_dim - 1)
        flat = (coords[:, 0] * n_dim[1] + coords[:, 1]) * n_dim[2] + coords[:, 2]
        order = np.argsort(flat, kind="stable")
        n_cells = int(n_dim.prod())
        counts = np.bincount(flat, minlength=n_cells)
        starts = np.concatenate([[0], np.cumsum(counts)])
        return cls(box, n_dim, flat, order, starts)

    @property
    def n_cells(self) -> int:
        return int(self.n_cells_dim.prod())

    @property
    def n_points(self) -> int:
        return len(self.cell_ids)

    def cell_members(self, flat_cell: int) -> np.ndarray:
        """Point indices in one cell."""
        if not 0 <= flat_cell < self.n_cells:
            raise IndexError(f"cell {flat_cell} out of range [0, {self.n_cells})")
        return self.order[self.cell_starts[flat_cell] : self.cell_starts[flat_cell + 1]]

    def unflatten(self, flat_cell: np.ndarray) -> np.ndarray:
        """Flat cell ids -> (..., 3) integer coordinates."""
        nz = self.n_cells_dim[2]
        ny = self.n_cells_dim[1]
        z = flat_cell % nz
        y = (flat_cell // nz) % ny
        x = flat_cell // (nz * ny)
        return np.stack([x, y, z], axis=-1)

    def flatten(self, coords: np.ndarray) -> np.ndarray:
        """(..., 3) integer coordinates (periodically wrapped) -> flat ids."""
        wrapped = np.mod(coords, self.n_cells_dim)
        return (
            wrapped[..., 0] * self.n_cells_dim[1] + wrapped[..., 1]
        ) * self.n_cells_dim[2] + wrapped[..., 2]

    def neighbor_offsets(self, half: bool) -> np.ndarray:
        """The 27 (full) or 14 (half, incl. self) relative cell offsets.

        The half set is chosen so each unordered cell pair appears exactly
        once across the whole grid (lexicographic positive direction).
        """
        offs = np.array(
            [(dx, dy, dz) for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)],
            dtype=np.int64,
        )
        if not half:
            return offs
        keep = []
        for o in offs:
            if tuple(o) == (0, 0, 0):
                keep.append(o)
            elif (o[0], o[1], o[2]) > (0, 0, 0):
                keep.append(o)
        return np.array(keep, dtype=np.int64)
