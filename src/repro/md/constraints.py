"""Rigid constraints via SHAKE (the paper's "Constraints" kernel).

Rigid SPC water carries three distance constraints per molecule (O-H1,
O-H2, H1-H2).  SHAKE iteratively projects positions back onto the
constraint manifold after each unconstrained integrator step; RATTLE's
velocity stage keeps velocities tangent to it.

The implementation is vectorised across all constraints per iteration
(Jacobi-style updates rather than Gauss-Seidel — order-independent, so
results are reproducible regardless of constraint ordering).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.box import Box
from repro.md.topology import Constraint


class ConstraintError(RuntimeError):
    """Raised when SHAKE fails to converge (blown-up dynamics)."""


@dataclass
class ConstraintArrays:
    """Constraint lists flattened to numpy (built once per topology)."""

    i: np.ndarray
    j: np.ndarray
    d2: np.ndarray  # target squared distances
    inv_mi: np.ndarray
    inv_mj: np.ndarray

    @classmethod
    def from_topology(cls, constraints: list[Constraint], masses: np.ndarray) -> "ConstraintArrays":
        i = np.array([c.i for c in constraints], dtype=np.int64)
        j = np.array([c.j for c in constraints], dtype=np.int64)
        d = np.array([c.distance for c in constraints])
        return cls(
            i=i,
            j=j,
            d2=d * d,
            inv_mi=1.0 / masses[i],
            inv_mj=1.0 / masses[j],
        )

    def __len__(self) -> int:
        return len(self.i)


class ShakeSolver:
    """SHAKE position projection + RATTLE velocity projection."""

    def __init__(
        self,
        constraints: list[Constraint],
        masses: np.ndarray,
        tolerance: float = 1e-8,
        max_iterations: int = 500,
    ) -> None:
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive: {tolerance}")
        self.arrays = ConstraintArrays.from_topology(constraints, masses)
        self.tolerance = tolerance
        self.max_iterations = max_iterations

    @property
    def n_constraints(self) -> int:
        return len(self.arrays)

    def apply_positions(
        self,
        positions: np.ndarray,
        reference: np.ndarray,
        box: Box,
    ) -> int:
        """Project ``positions`` onto the constraints (in place).

        ``reference`` holds pre-step positions; SHAKE's Lagrange directions
        use the *reference* bond vectors, which keeps the scheme
        symplectic.  Returns the iteration count.
        """
        if self.n_constraints == 0:
            return 0
        a = self.arrays
        ref_dr = box.displacement(reference[a.i], reference[a.j])
        inv_m_sum = a.inv_mi + a.inv_mj
        for iteration in range(1, self.max_iterations + 1):
            dr = box.displacement(positions[a.i], positions[a.j])
            r2 = np.sum(dr * dr, axis=1)
            diff = r2 - a.d2
            if np.all(np.abs(diff) < self.tolerance * a.d2):
                return iteration - 1
            # Lagrange multiplier per constraint (Jacobi sweep with a
            # relaxation factor for stability of shared-atom triangles).
            # The denominator degenerates when the current bond vector
            # turns near-orthogonal to the reference one; floor it at its
            # ideal value (2 * inv_m_sum * d^2) to keep the update bounded
            # rather than dividing by ~0.
            denom = 2.0 * inv_m_sum * np.sum(dr * ref_dr, axis=1)
            floor = 0.2 * 2.0 * inv_m_sum * a.d2
            denom = np.where(denom > floor, denom, floor)
            g = diff / denom
            g *= 0.8  # under-relaxation; triangle constraints share atoms
            np.add.at(positions, a.i, -(a.inv_mi * g)[:, None] * ref_dr)
            np.add.at(positions, a.j, (a.inv_mj * g)[:, None] * ref_dr)
        raise ConstraintError(
            f"SHAKE failed to converge in {self.max_iterations} iterations "
            f"(max violation {np.abs(diff).max():.3e})"
        )

    def apply_velocities(
        self,
        velocities: np.ndarray,
        positions: np.ndarray,
        box: Box,
    ) -> int:
        """RATTLE stage: remove velocity components along constraints."""
        if self.n_constraints == 0:
            return 0
        a = self.arrays
        dr = box.displacement(positions[a.i], positions[a.j])
        inv_m_sum = a.inv_mi + a.inv_mj
        for iteration in range(1, self.max_iterations + 1):
            dv = velocities[a.i] - velocities[a.j]
            rv = np.sum(dr * dv, axis=1)
            if np.all(np.abs(rv) < self.tolerance * np.sqrt(a.d2)):
                return iteration - 1
            kappa = rv / (inv_m_sum * np.sum(dr * dr, axis=1))
            kappa *= 0.8
            np.add.at(velocities, a.i, -(a.inv_mi * kappa)[:, None] * dr)
            np.add.at(velocities, a.j, (a.inv_mj * kappa)[:, None] * dr)
        raise ConstraintError(
            f"RATTLE failed to converge in {self.max_iterations} iterations"
        )

    def max_violation(self, positions: np.ndarray, box: Box) -> float:
        """Largest relative constraint violation |r^2 - d^2| / d^2."""
        if self.n_constraints == 0:
            return 0.0
        a = self.arrays
        dr = box.displacement(positions[a.i], positions[a.j])
        r2 = np.sum(dr * dr, axis=1)
        return float(np.max(np.abs(r2 - a.d2) / a.d2))


CONSTRAINT_ALGORITHMS = ("auto", "shake", "lincs", "settle")


def build_constraint_solver(system, algorithm: str = "auto"):
    """Constraint-solver factory (GROMACS' ``constraint-algorithm``).

    * ``settle`` — analytical rigid-water reset; requires a pure 3-site
      water topology;
    * ``lincs``  — series-expansion projection (slow convergence on the
      coupled water triangles, like the real LINCS);
    * ``shake``  — iterative Jacobi projection;
    * ``auto``   — SETTLE for pure water, SHAKE otherwise.

    Returns ``None`` when the topology has no constraints.
    """
    if algorithm not in CONSTRAINT_ALGORITHMS:
        raise ValueError(
            f"unknown constraint algorithm {algorithm!r}; "
            f"choose from {CONSTRAINT_ALGORITHMS}"
        )
    topo = system.topology
    if not topo.constraints:
        return None
    if algorithm == "auto":
        from repro.md.settle import SettleSolver

        try:
            return SettleSolver.from_water_topology(system)
        except ValueError:
            return ShakeSolver(topo.constraints, system.masses)
    if algorithm == "settle":
        from repro.md.settle import SettleSolver

        return SettleSolver.from_water_topology(system)
    if algorithm == "lincs":
        from repro.md.lincs import LincsSolver

        return LincsSolver(topo.constraints, system.masses)
    return ShakeSolver(topo.constraints, system.masses)
