"""Energy/temperature reporting — the observables of the paper's Fig. 13.

The accuracy experiment records total energy and temperature every 100
steps of a long run and compares the SW26010 mixed-precision trajectory
against the x86 double-precision reference; :class:`EnergyReporter`
collects exactly those series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class EnergyFrame:
    """One report row."""

    step: int
    potential: float
    kinetic: float
    temperature: float

    @property
    def total(self) -> float:
        return self.potential + self.kinetic


@dataclass
class EnergyReporter:
    """Collects frames every ``interval`` steps."""

    interval: int = 100
    frames: list[EnergyFrame] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(f"interval must be >= 1: {self.interval}")

    def maybe_record(
        self, step: int, potential: float, kinetic: float, temperature: float
    ) -> bool:
        """Record when ``step`` falls on the interval; returns True if kept."""
        if step % self.interval != 0:
            return False
        self.frames.append(EnergyFrame(step, potential, kinetic, temperature))
        return True

    # -- series accessors (paper Fig. 13 axes) --------------------------------
    def steps(self) -> np.ndarray:
        return np.array([f.step for f in self.frames])

    def total_energy(self) -> np.ndarray:
        return np.array([f.total for f in self.frames])

    def temperature(self) -> np.ndarray:
        return np.array([f.temperature for f in self.frames])

    def drift_per_step(self) -> float:
        """Linear drift of total energy (kJ/mol/step) over the run."""
        if len(self.frames) < 2:
            return 0.0
        steps = self.steps().astype(np.float64)
        slope = np.polyfit(steps, self.total_energy(), 1)[0]
        return float(slope)

    def energy_std(self) -> float:
        """Standard deviation of total energy about its mean."""
        if len(self.frames) < 2:
            return 0.0
        return float(np.std(self.total_energy()))
