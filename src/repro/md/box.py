"""Orthorhombic periodic box with minimum-image arithmetic.

All distance computations in the engine go through this module so the
periodic convention lives in exactly one place.  Vector routines accept
arbitrary leading shapes and are fully numpy-vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Box:
    """An orthorhombic periodic cell with edge lengths ``lengths`` (nm)."""

    lengths: tuple[float, float, float]

    def __post_init__(self) -> None:
        if len(self.lengths) != 3 or any(l <= 0 for l in self.lengths):
            raise ValueError(f"box needs three positive edge lengths: {self.lengths}")

    @classmethod
    def cubic(cls, edge: float) -> "Box":
        return cls((edge, edge, edge))

    @property
    def array(self) -> np.ndarray:
        return np.asarray(self.lengths, dtype=np.float64)

    @property
    def volume(self) -> float:
        lx, ly, lz = self.lengths
        return lx * ly * lz

    @property
    def min_edge(self) -> float:
        return min(self.lengths)

    def wrap(self, positions: np.ndarray) -> np.ndarray:
        """Map positions into [0, L) per dimension (out-of-place)."""
        pos = np.asarray(positions, dtype=np.float64)
        return np.mod(pos, self.array)

    def minimum_image(self, dr: np.ndarray) -> np.ndarray:
        """Apply the minimum-image convention to displacement vectors."""
        dr = np.asarray(dr, dtype=np.float64)
        box = self.array
        return dr - box * np.round(dr / box)

    def displacement(self, r_a: np.ndarray, r_b: np.ndarray) -> np.ndarray:
        """Minimum-image displacement(s) ``r_a - r_b``."""
        return self.minimum_image(np.asarray(r_a, dtype=np.float64) - np.asarray(r_b, dtype=np.float64))

    def distance(self, r_a: np.ndarray, r_b: np.ndarray) -> np.ndarray:
        """Minimum-image distance(s) between position arrays."""
        d = self.displacement(r_a, r_b)
        return np.sqrt(np.sum(d * d, axis=-1))

    def check_cutoff(self, r_cut: float) -> None:
        """Raise if ``r_cut`` violates the minimum-image requirement."""
        if r_cut <= 0:
            raise ValueError(f"cutoff must be positive: {r_cut}")
        if 2.0 * r_cut > self.min_edge:
            raise ValueError(
                f"cutoff {r_cut} nm needs a box edge of at least {2 * r_cut} nm; "
                f"box is {self.lengths}"
            )
