"""System builders: SPC water boxes and an LJ test fluid.

These stand in for the paper's ``water_GMX50_bare`` benchmark inputs: the
builder produces a box with the requested particle count at bulk water
density, molecules on a jittered lattice with random orientations (enough
to start a stable constrained simulation without an external equilibration
tool).
"""

from __future__ import annotations

import numpy as np

from repro.md.box import Box
from repro.md.constants import (
    LJ_FLUID,
    LJ_FLUID_DENSITY,
    SPC,
    WATER_MODELS,
    WATER_MOLECULES_PER_NM3,
    WaterGeometry,
    WaterModel,
)
from repro.md.system import ParticleSystem
from repro.md.topology import Constraint, Topology


def _random_rotation(rng: np.random.Generator) -> np.ndarray:
    """Uniform random rotation matrix (QR of a Gaussian matrix)."""
    m = rng.normal(size=(3, 3))
    q, r = np.linalg.qr(m)
    q *= np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    return q


def _lattice_sites(n_sites: int, box_edge: float) -> np.ndarray:
    """First ``n_sites`` points of a cubic lattice filling the box."""
    per_dim = int(np.ceil(n_sites ** (1.0 / 3.0)))
    spacing = box_edge / per_dim
    grid = (np.arange(per_dim) + 0.5) * spacing
    pts = np.stack(np.meshgrid(grid, grid, grid, indexing="ij"), axis=-1)
    return pts.reshape(-1, 3)[:n_sites]


def build_water_system(
    n_particles: int,
    temperature: float = 300.0,
    density: float = WATER_MOLECULES_PER_NM3,
    seed: int = 2019,
    jitter: float = 0.02,
    model: WaterModel | str = SPC,
) -> ParticleSystem:
    """Build a rigid 3-site water box with ~``n_particles`` atoms.

    ``model`` selects the parameter set ("spc", "spce", "tip3p" or a
    `WaterModel`).  Molecules sit on a jittered cubic lattice with random
    orientations; the box edge follows from the molecule count and
    ``density``.  Velocities are Maxwell-Boltzmann at ``temperature``.
    """
    if isinstance(model, str):
        try:
            model = WATER_MODELS[model.lower()]
        except KeyError:
            raise ValueError(
                f"unknown water model {model!r}; known: {sorted(WATER_MODELS)}"
            ) from None
    if n_particles < 3:
        raise ValueError(f"need at least one molecule (3 particles): {n_particles}")
    n_mol = max(1, n_particles // 3)
    edge = (n_mol / density) ** (1.0 / 3.0)
    rng = np.random.default_rng(seed)

    topo = Topology([model.oxygen_type(), model.hydrogen_type()])
    geometry = WaterGeometry(r_oh=model.r_oh, angle_deg=model.angle_deg)
    offsets = geometry.site_offsets()
    sites = _lattice_sites(n_mol, edge)
    spacing = edge / int(np.ceil(n_mol ** (1.0 / 3.0)))
    sites = sites + rng.uniform(-jitter, jitter, size=sites.shape) * spacing

    positions = np.empty((n_mol * 3, 3))
    for m in range(n_mol):
        rot = _random_rotation(rng)
        ids = topo.add_particles(
            ["OW", "HW", "HW"],
            [model.q_oxygen, model.q_hydrogen, model.q_hydrogen],
            mol_id=m,
        )
        positions[ids] = sites[m] + offsets @ rot.T
        o, h1, h2 = (int(i) for i in ids)
        topo.constraints.append(Constraint(o, h1, model.r_oh))
        topo.constraints.append(Constraint(o, h2, model.r_oh))
        topo.constraints.append(Constraint(h1, h2, model.r_hh))

    system = ParticleSystem(positions, Box.cubic(edge), topo)
    system.thermalize(temperature, rng)
    return system


def build_lj_fluid(
    n_particles: int,
    temperature: float = 120.0,
    density: float = LJ_FLUID_DENSITY,
    seed: int = 2019,
    jitter: float = 0.05,
) -> ParticleSystem:
    """Build a one-site LJ fluid (argon-like) — the fast test workload."""
    if n_particles < 2:
        raise ValueError(f"need at least two particles: {n_particles}")
    edge = (n_particles / density) ** (1.0 / 3.0)
    rng = np.random.default_rng(seed)

    topo = Topology([LJ_FLUID])
    positions = _lattice_sites(n_particles, edge)
    spacing = edge / int(np.ceil(n_particles ** (1.0 / 3.0)))
    positions = positions + rng.uniform(-jitter, jitter, size=positions.shape) * spacing
    for p in range(n_particles):
        topo.add_particles(["AR"], [0.0], mol_id=p)

    system = ParticleSystem(positions, Box.cubic(edge), topo)
    system.thermalize(temperature, rng)
    return system
