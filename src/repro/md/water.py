"""System builders: SPC water boxes, an LJ test fluid, and the scenario
families layered on them (ionic solution, binary LJ mixture, embedded
LJ solute).

These stand in for the paper's ``water_GMX50_bare`` benchmark inputs: the
builder produces a box with the requested particle count at bulk water
density, molecules on a jittered lattice with random orientations (enough
to start a stable constrained simulation without an external equilibration
tool).  The scenario builders compose the same lattice/rotation/topology
machinery so the `repro.scenarios` registry can treat "add a workload"
as data rather than new physics.
"""

from __future__ import annotations

import numpy as np

from repro.md.box import Box
from repro.md.constants import (
    CL_ION,
    ION_CHARGE_CL,
    ION_CHARGE_NA,
    LJ_FLUID,
    LJ_FLUID_B,
    LJ_FLUID_DENSITY,
    NA_ION,
    SOLUTE_LJ,
    SPC,
    WATER_MODELS,
    WATER_MOLECULES_PER_NM3,
    WaterGeometry,
    WaterModel,
)
from repro.md.system import ParticleSystem
from repro.md.topology import Constraint, Topology


def _random_rotation(rng: np.random.Generator) -> np.ndarray:
    """Uniform random rotation matrix (QR of a Gaussian matrix)."""
    m = rng.normal(size=(3, 3))
    q, r = np.linalg.qr(m)
    q *= np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    return q


def _lattice_sites(n_sites: int, box_edge: float) -> np.ndarray:
    """First ``n_sites`` points of a cubic lattice filling the box."""
    per_dim = int(np.ceil(n_sites ** (1.0 / 3.0)))
    spacing = box_edge / per_dim
    grid = (np.arange(per_dim) + 0.5) * spacing
    pts = np.stack(np.meshgrid(grid, grid, grid, indexing="ij"), axis=-1)
    return pts.reshape(-1, 3)[:n_sites]


def build_water_system(
    n_particles: int,
    temperature: float = 300.0,
    density: float = WATER_MOLECULES_PER_NM3,
    seed: int = 2019,
    jitter: float = 0.02,
    model: WaterModel | str = SPC,
) -> ParticleSystem:
    """Build a rigid 3-site water box with ~``n_particles`` atoms.

    ``model`` selects the parameter set ("spc", "spce", "tip3p" or a
    `WaterModel`).  Molecules sit on a jittered cubic lattice with random
    orientations; the box edge follows from the molecule count and
    ``density``.  Velocities are Maxwell-Boltzmann at ``temperature``.
    """
    if isinstance(model, str):
        try:
            model = WATER_MODELS[model.lower()]
        except KeyError:
            raise ValueError(
                f"unknown water model {model!r}; known: {sorted(WATER_MODELS)}"
            ) from None
    if n_particles < 3:
        raise ValueError(f"need at least one molecule (3 particles): {n_particles}")
    n_mol = max(1, n_particles // 3)
    edge = (n_mol / density) ** (1.0 / 3.0)
    rng = np.random.default_rng(seed)

    topo = Topology([model.oxygen_type(), model.hydrogen_type()])
    geometry = WaterGeometry(r_oh=model.r_oh, angle_deg=model.angle_deg)
    offsets = geometry.site_offsets()
    sites = _lattice_sites(n_mol, edge)
    spacing = edge / int(np.ceil(n_mol ** (1.0 / 3.0)))
    sites = sites + rng.uniform(-jitter, jitter, size=sites.shape) * spacing

    positions = np.empty((n_mol * 3, 3))
    for m in range(n_mol):
        rot = _random_rotation(rng)
        ids = topo.add_particles(
            ["OW", "HW", "HW"],
            [model.q_oxygen, model.q_hydrogen, model.q_hydrogen],
            mol_id=m,
        )
        positions[ids] = sites[m] + offsets @ rot.T
        o, h1, h2 = (int(i) for i in ids)
        topo.constraints.append(Constraint(o, h1, model.r_oh))
        topo.constraints.append(Constraint(o, h2, model.r_oh))
        topo.constraints.append(Constraint(h1, h2, model.r_hh))

    system = ParticleSystem(positions, Box.cubic(edge), topo)
    system.thermalize(temperature, rng)
    return system


def _resolve_water_model(model: WaterModel | str) -> WaterModel:
    if isinstance(model, str):
        try:
            return WATER_MODELS[model.lower()]
        except KeyError:
            raise ValueError(
                f"unknown water model {model!r}; known: {sorted(WATER_MODELS)}"
            ) from None
    return model


def _add_water_molecule(
    topo: Topology,
    positions: np.ndarray,
    site: np.ndarray,
    rot: np.ndarray,
    offsets: np.ndarray,
    model: WaterModel,
    mol_id: int,
) -> None:
    """Append one rigid 3-site water at ``site`` with orientation ``rot``."""
    ids = topo.add_particles(
        ["OW", "HW", "HW"],
        [model.q_oxygen, model.q_hydrogen, model.q_hydrogen],
        mol_id=mol_id,
    )
    positions[ids] = site + offsets @ rot.T
    o, h1, h2 = (int(i) for i in ids)
    topo.constraints.append(Constraint(o, h1, model.r_oh))
    topo.constraints.append(Constraint(o, h2, model.r_oh))
    topo.constraints.append(Constraint(h1, h2, model.r_hh))


def build_ionic_solution(
    n_particles: int,
    temperature: float = 300.0,
    ion_frac: float = 0.05,
    density: float = WATER_MOLECULES_PER_NM3,
    seed: int = 2019,
    jitter: float = 0.02,
    model: WaterModel | str = SPC,
) -> ParticleSystem:
    """Build SPC water with dissolved Na+/Cl- pairs (~``n_particles`` atoms).

    ``ion_frac`` is the fraction of lattice sites carrying an ion instead
    of a water molecule; pairs are always balanced (net charge exactly
    zero).  Ions are LJ+point-charge sites sharing the water lattice, so
    the system reuses the water box machinery unchanged: jittered cubic
    lattice, random orientations for the waters, Maxwell-Boltzmann
    velocities.  Water molecules keep their rigid constraints; the ions
    are unconstrained — SETTLE is therefore *not* applicable (the
    scenario layer declares that conflict).
    """
    if n_particles < 5:
        raise ValueError(
            f"need at least one water + one ion pair (5 atoms): {n_particles}"
        )
    if not 0.0 < ion_frac <= 0.5:
        raise ValueError(f"ion_frac must be in (0, 0.5]: {ion_frac}")
    model = _resolve_water_model(model)
    n_sites = max(3, n_particles // 3)
    n_pairs = max(1, int(round(ion_frac * n_sites / 2.0)))
    if n_sites - 2 * n_pairs < 1:
        raise ValueError(
            f"ion_frac {ion_frac} leaves no water on a {n_sites}-site lattice"
        )
    edge = (n_sites / density) ** (1.0 / 3.0)
    rng = np.random.default_rng(seed)

    topo = Topology(
        [model.oxygen_type(), model.hydrogen_type(), NA_ION, CL_ION]
    )
    geometry = WaterGeometry(r_oh=model.r_oh, angle_deg=model.angle_deg)
    offsets = geometry.site_offsets()
    sites = _lattice_sites(n_sites, edge)
    spacing = edge / int(np.ceil(n_sites ** (1.0 / 3.0)))
    sites = sites + rng.uniform(-jitter, jitter, size=sites.shape) * spacing

    # Deterministic, seeded ion placement: which lattice sites hold ions.
    ion_sites = rng.choice(n_sites, size=2 * n_pairs, replace=False)
    na_sites = set(int(s) for s in ion_sites[:n_pairs])
    cl_sites = set(int(s) for s in ion_sites[n_pairs:])

    n_atoms = 3 * (n_sites - 2 * n_pairs) + 2 * n_pairs
    positions = np.empty((n_atoms, 3))
    for s in range(n_sites):
        if s in na_sites:
            ids = topo.add_particles(["NA"], [ION_CHARGE_NA], mol_id=s)
            positions[ids] = sites[s]
        elif s in cl_sites:
            ids = topo.add_particles(["CL"], [ION_CHARGE_CL], mol_id=s)
            positions[ids] = sites[s]
        else:
            rot = _random_rotation(rng)
            _add_water_molecule(
                topo, positions, sites[s], rot, offsets, model, mol_id=s
            )

    system = ParticleSystem(positions, Box.cubic(edge), topo)
    system.thermalize(temperature, rng)
    return system


def build_embedded_solute(
    n_particles: int,
    temperature: float = 300.0,
    density: float = WATER_MOLECULES_PER_NM3,
    seed: int = 2019,
    jitter: float = 0.02,
    model: WaterModel | str = SPC,
) -> ParticleSystem:
    """Build SPC water around one large uncharged LJ solute bead.

    The solute sits at the box centre; lattice sites inside its exclusion
    radius are carved out so the surrounding waters start overlap-free.
    The solute is heavy (:data:`~repro.md.constants.SOLUTE_LJ`) and
    unconstrained, so the topology is *not* pure 3-site water — the
    scenario layer uses that to reject ``constraints=settle``.
    """
    if n_particles < 7:
        raise ValueError(
            f"need the solute + at least two waters (7 atoms): {n_particles}"
        )
    model = _resolve_water_model(model)
    n_sites = max(2, (n_particles - 1) // 3)
    edge = (n_sites / density) ** (1.0 / 3.0)
    rng = np.random.default_rng(seed)

    topo = Topology([model.oxygen_type(), model.hydrogen_type(), SOLUTE_LJ])
    geometry = WaterGeometry(r_oh=model.r_oh, angle_deg=model.angle_deg)
    offsets = geometry.site_offsets()
    sites = _lattice_sites(n_sites, edge)
    spacing = edge / int(np.ceil(n_sites ** (1.0 / 3.0)))
    sites = sites + rng.uniform(-jitter, jitter, size=sites.shape) * spacing

    # Carve out lattice sites the solute would overlap (minimum-image).
    center = np.full(3, edge / 2.0)
    delta = sites - center
    delta -= edge * np.round(delta / edge)
    r_excl = 0.55 * 0.60 + 0.10  # just over (sigma_sol + sigma_ow) / 2
    keep = np.flatnonzero(np.linalg.norm(delta, axis=1) > r_excl)
    if len(keep) < 2:
        raise ValueError(
            f"solute exclusion leaves {len(keep)} waters; raise n_particles"
        )

    n_atoms = 1 + 3 * len(keep)
    positions = np.empty((n_atoms, 3))
    ids = topo.add_particles(["SOL"], [0.0], mol_id=0)
    positions[ids] = center
    for m, s in enumerate(keep, start=1):
        rot = _random_rotation(rng)
        _add_water_molecule(
            topo, positions, sites[s], rot, offsets, model, mol_id=m
        )

    system = ParticleSystem(positions, Box.cubic(edge), topo)
    system.thermalize(temperature, rng)
    return system


def build_lj_mixture(
    n_particles: int,
    temperature: float = 120.0,
    density: float = LJ_FLUID_DENSITY,
    seed: int = 2019,
    jitter: float = 0.05,
    fraction_b: float = 0.5,
) -> ParticleSystem:
    """Build a binary LJ mixture (argon/krypton-like, uncharged).

    Species assignment is deterministic by lattice index (every
    ``1/fraction_b``-th site is species B), so the composition is exact
    and seed-independent; positions and velocities follow the same
    jittered-lattice + Maxwell-Boltzmann recipe as :func:`build_lj_fluid`.
    """
    if n_particles < 2:
        raise ValueError(f"need at least two particles: {n_particles}")
    if not 0.0 < fraction_b < 1.0:
        raise ValueError(f"fraction_b must be in (0, 1): {fraction_b}")
    edge = (n_particles / density) ** (1.0 / 3.0)
    rng = np.random.default_rng(seed)

    topo = Topology([LJ_FLUID, LJ_FLUID_B])
    positions = _lattice_sites(n_particles, edge)
    spacing = edge / int(np.ceil(n_particles ** (1.0 / 3.0)))
    positions = positions + rng.uniform(-jitter, jitter, size=positions.shape) * spacing
    stride = max(2, int(round(1.0 / fraction_b)))
    for p in range(n_particles):
        name = "KR" if p % stride == stride - 1 else "AR"
        topo.add_particles([name], [0.0], mol_id=p)

    system = ParticleSystem(positions, Box.cubic(edge), topo)
    system.thermalize(temperature, rng)
    return system


def build_lj_fluid(
    n_particles: int,
    temperature: float = 120.0,
    density: float = LJ_FLUID_DENSITY,
    seed: int = 2019,
    jitter: float = 0.05,
) -> ParticleSystem:
    """Build a one-site LJ fluid (argon-like) — the fast test workload."""
    if n_particles < 2:
        raise ValueError(f"need at least two particles: {n_particles}")
    edge = (n_particles / density) ** (1.0 / 3.0)
    rng = np.random.default_rng(seed)

    topo = Topology([LJ_FLUID])
    positions = _lattice_sites(n_particles, edge)
    spacing = edge / int(np.ceil(n_particles ** (1.0 / 3.0)))
    positions = positions + rng.uniform(-jitter, jitter, size=positions.shape) * spacing
    for p in range(n_particles):
        topo.add_particles(["AR"], [0.0], mol_id=p)

    system = ParticleSystem(positions, Box.cubic(edge), topo)
    system.thermalize(temperature, rng)
    return system
