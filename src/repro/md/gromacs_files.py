"""GROMACS file formats: ``.gro`` structures and ``.mdp`` run parameters.

The paper's artifact description builds its inputs from the
``water_GMX50_bare`` benchmark archive (folders ``0384``, ``0768``, ...
named by the particle count in thousands) and a ``.mdp`` whose key
settings it lists in Table 3.  This module provides:

* a fixed-column ``.gro`` writer/reader (positions + optional
  velocities) round-tripping our `ParticleSystem`s;
* an ``.mdp`` parser/emitter mapping the Table 3 keys onto
  `NonbondedParams` / `IntegratorConfig`;
* :func:`benchmark_case` — the ``water_GMX50_bare`` folder-name
  convention (``"0048"`` -> a 48,000-particle water box).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.box import Box
from repro.md.constants import SPC_HYDROGEN, SPC_OXYGEN
from repro.md.integrator import IntegratorConfig
from repro.md.nonbonded import NonbondedParams
from repro.md.system import ParticleSystem
from repro.md.topology import Topology
from repro.md.water import build_water_system

_GRO_NAME = {0: "OW", 1: "HW"}  # type index -> atom name for water


def write_gro(
    system: ParticleSystem,
    sink,
    title: str = "repro water",
    include_velocities: bool = True,
) -> None:
    """Write the system in GROMACS ``.gro`` fixed-column format."""
    lines = [title, f"{system.n_particles:5d}"]
    topo = system.topology
    pos = system.box.wrap(system.positions)
    vel = system.velocities
    for idx in range(system.n_particles):
        res = int(topo.mol_ids[idx]) + 1
        name = topo.atom_types[topo.type_ids[idx]].name
        row = (
            f"{res % 100000:5d}{'SOL':<5s}{name:>5s}{(idx + 1) % 100000:5d}"
            f"{pos[idx, 0]:8.3f}{pos[idx, 1]:8.3f}{pos[idx, 2]:8.3f}"
        )
        if include_velocities:
            row += f"{vel[idx, 0]:8.4f}{vel[idx, 1]:8.4f}{vel[idx, 2]:8.4f}"
        lines.append(row)
    lx, ly, lz = system.box.lengths
    lines.append(f"{lx:10.5f}{ly:10.5f}{lz:10.5f}")
    sink.write("\n".join(lines) + "\n")


@dataclass
class GroData:
    """Raw contents of a ``.gro`` file."""

    title: str
    residue_ids: np.ndarray
    residue_names: list[str]
    atom_names: list[str]
    positions: np.ndarray
    velocities: np.ndarray | None
    box: Box


def read_gro(source) -> GroData:
    """Parse a ``.gro`` file (fixed columns, velocities optional)."""
    text = source.read()
    lines = text.splitlines()
    if len(lines) < 3:
        raise ValueError("truncated .gro file")
    title = lines[0]
    n = int(lines[1])
    if len(lines) < n + 3:
        raise ValueError(f".gro declares {n} atoms but has {len(lines) - 3} rows")
    res_ids, res_names, names = [], [], []
    pos = np.empty((n, 3))
    has_vel = len(lines[2]) >= 68
    vel = np.zeros((n, 3)) if has_vel else None
    for k in range(n):
        row = lines[2 + k]
        res_ids.append(int(row[0:5]))
        res_names.append(row[5:10].strip())
        names.append(row[10:15].strip())
        pos[k] = [float(row[20:28]), float(row[28:36]), float(row[36:44])]
        if has_vel:
            vel[k] = [float(row[44:52]), float(row[52:60]), float(row[60:68])]
    box_fields = [float(v) for v in lines[2 + n].split()]
    box = Box(tuple(box_fields[:3]))
    return GroData(
        title=title,
        residue_ids=np.array(res_ids),
        residue_names=res_names,
        atom_names=names,
        positions=pos,
        velocities=vel,
        box=box,
    )


def system_from_gro(data: GroData) -> ParticleSystem:
    """Rebuild a water `ParticleSystem` from parsed ``.gro`` data.

    Only SOL (3-site water) residues are supported — the paper's
    benchmark content.
    """
    from repro.md.constants import SPC_Q_HYDROGEN, SPC_Q_OXYGEN, SPC_RHH, SPC_ROH
    from repro.md.topology import Constraint

    topo = Topology([SPC_OXYGEN, SPC_HYDROGEN])
    n = len(data.positions)
    if n % 3:
        raise ValueError("water .gro must have 3 atoms per molecule")
    for m in range(n // 3):
        base = 3 * m
        expect = ("OW", "HW", "HW")
        got = tuple(data.atom_names[base : base + 3])
        if got != expect:
            raise ValueError(f"molecule {m}: expected {expect}, got {got}")
        ids = topo.add_particles(
            ["OW", "HW", "HW"],
            [SPC_Q_OXYGEN, SPC_Q_HYDROGEN, SPC_Q_HYDROGEN],
            mol_id=m,
        )
        o, h1, h2 = (int(i) for i in ids)
        topo.constraints.append(Constraint(o, h1, SPC_ROH))
        topo.constraints.append(Constraint(o, h2, SPC_ROH))
        topo.constraints.append(Constraint(h1, h2, SPC_RHH))
    return ParticleSystem(
        data.positions, data.box, topo, velocities=data.velocities
    )


# ---------------------------------------------------------------------------
# .mdp run parameters (paper Table 3)
# ---------------------------------------------------------------------------

#: The paper's Table 3 input deck.
PAPER_TABLE3_MDP = {
    "integrator": "md",
    "dt": "0.002",
    "nstlist": "10",
    "ns-type": "grid",
    "coulombtype": "PME",
    "rlist": "1.0",
    "rcoulomb": "1.0",
    "rvdw": "1.0",
    "cutoff-scheme": "verlet",
    "tcoupl": "v-rescale",
    "ref-t": "300",
    "constraints": "h-bonds",
    "constraint-algorithm": "settle",
}


def parse_mdp(source) -> dict[str, str]:
    """Parse ``key = value`` lines (``;`` comments, GROMACS style)."""
    params: dict[str, str] = {}
    for raw in source.read().splitlines():
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise ValueError(f"malformed .mdp line: {raw!r}")
        key, value = (part.strip() for part in line.split("=", 1))
        params[key.lower().replace("_", "-")] = value
    return params


def write_mdp(params: dict[str, str], sink) -> None:
    width = max((len(k) for k in params), default=0)
    sink.write(
        "\n".join(f"{k:<{width}s} = {v}" for k, v in params.items()) + "\n"
    )


def mdp_to_configs(
    params: dict[str, str],
) -> tuple[NonbondedParams, IntegratorConfig, str]:
    """Map .mdp keys onto our configs; returns (nonbonded, integrator,
    constraint_algorithm).  Unknown keys are ignored (GROMACS tolerates
    extras); inconsistent cutoffs raise."""
    rlist = float(params.get("rlist", "1.0"))
    rcoulomb = float(params.get("rcoulomb", str(rlist)))
    rvdw = float(params.get("rvdw", str(rlist)))
    if abs(rcoulomb - rvdw) > 1e-9:
        raise ValueError(
            f"rcoulomb ({rcoulomb}) != rvdw ({rvdw}): unsupported"
        )
    coulombtype = params.get("coulombtype", "PME").lower()
    mode = {"pme": "ewald", "reaction-field": "rf", "cut-off": "cut"}.get(
        coulombtype
    )
    if mode is None:
        raise ValueError(f"unsupported coulombtype {coulombtype!r}")
    nonbonded = NonbondedParams(
        r_cut=rcoulomb,
        r_list=max(rlist, rcoulomb),
        nstlist=int(params.get("nstlist", "10")),
        coulomb_mode=mode,
    )
    tcoupl = params.get("tcoupl", "no").lower()
    thermostat = {
        "no": "none",
        "berendsen": "berendsen",
        "v-rescale": "vrescale",
    }.get(tcoupl)
    if thermostat is None:
        raise ValueError(f"unsupported tcoupl {tcoupl!r}")
    integrator = IntegratorConfig(
        dt=float(params.get("dt", "0.002")),
        thermostat=thermostat,
        target_temperature=float(params.get("ref-t", "300")),
        tau_t=float(params.get("tau-t", "0.1")),
    )
    algorithm = params.get("constraint-algorithm", "auto").lower()
    if algorithm == "lincs":
        pass
    elif algorithm in ("settle", "shake", "auto"):
        pass
    else:
        raise ValueError(f"unsupported constraint-algorithm {algorithm!r}")
    return nonbonded, integrator, algorithm


# ---------------------------------------------------------------------------
# water_GMX50_bare benchmark cases
# ---------------------------------------------------------------------------


def benchmark_case(folder_name: str, seed: int = 2019) -> ParticleSystem:
    """Build the water box a ``water_GMX50_bare`` folder denotes.

    Folder names give the particle count in thousands ("0048" = 48,000
    particles; "3072" = the paper's 3 M case).
    """
    if not folder_name.isdigit():
        raise ValueError(
            f"benchmark folder names are zero-padded numbers: {folder_name!r}"
        )
    n_particles = int(folder_name) * 1000
    if n_particles < 3:
        raise ValueError(f"empty benchmark case {folder_name!r}")
    return build_water_system(n_particles, seed=seed)
