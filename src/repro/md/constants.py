"""Force-field constants: the SPC water model and an LJ test fluid.

The paper's benchmark is the GROMACS ``water`` case (SPC/E-like 3-site
water).  We carry the SPC parameter set: an oxygen LJ site plus three
point charges, rigid geometry enforced by constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AtomType:
    """One nonbonded atom type: LJ C6/C12 (GROMACS convention) + mass."""

    name: str
    mass: float  # amu
    c6: float  # kJ mol^-1 nm^6
    c12: float  # kJ mol^-1 nm^12

    @classmethod
    def from_sigma_epsilon(cls, name: str, mass: float, sigma: float, epsilon: float) -> "AtomType":
        """Build from sigma (nm) / epsilon (kJ/mol): C6=4*eps*sigma^6 etc."""
        return cls(name, mass, 4.0 * epsilon * sigma**6, 4.0 * epsilon * sigma**12)


# --- three-site rigid water models ------------------------------------------


@dataclass(frozen=True)
class WaterModel:
    """A rigid 3-site water parameter set (GROMACS' spc/spce/tip3p)."""

    name: str
    sigma: float  # nm, oxygen LJ
    epsilon: float  # kJ/mol, oxygen LJ
    q_oxygen: float
    r_oh: float  # nm
    angle_deg: float

    @property
    def q_hydrogen(self) -> float:
        return -self.q_oxygen / 2.0

    @property
    def r_hh(self) -> float:
        return float(2.0 * self.r_oh * np.sin(np.radians(self.angle_deg) / 2.0))

    def oxygen_type(self) -> AtomType:
        return AtomType.from_sigma_epsilon(
            "OW", 15.9994, self.sigma, self.epsilon
        )

    def hydrogen_type(self) -> AtomType:
        return AtomType("HW", 1.008, 0.0, 0.0)


SPC = WaterModel("spc", 0.316557, 0.650194, -0.82, 0.1, 109.47)
SPCE = WaterModel("spce", 0.316557, 0.650194, -0.8476, 0.1, 109.47)
TIP3P = WaterModel("tip3p", 0.315061, 0.636386, -0.834, 0.09572, 104.52)

WATER_MODELS = {m.name: m for m in (SPC, SPCE, TIP3P)}

#: SPC oxygen: sigma = 0.316557 nm, epsilon = 0.650194 kJ/mol.
SPC_OXYGEN = SPC.oxygen_type()
#: SPC hydrogen has no LJ site.
SPC_HYDROGEN = SPC.hydrogen_type()

SPC_Q_OXYGEN = SPC.q_oxygen
SPC_Q_HYDROGEN = SPC.q_hydrogen
#: O-H bond length (nm) and H-O-H angle (degrees) of rigid SPC.
SPC_ROH = SPC.r_oh
SPC_ANGLE_DEG = SPC.angle_deg
#: H-H distance implied by the rigid geometry (law of cosines).
SPC_RHH = SPC.r_hh

#: Bulk water molecule density at 300 K, molecules / nm^3.
WATER_MOLECULES_PER_NM3 = 33.33

# --- generic LJ fluid (argon-like, used by fast unit tests) -----------------
LJ_FLUID = AtomType.from_sigma_epsilon("AR", 39.948, 0.3405, 0.996)
#: Reduced density 0.8 for liquid argon, particles / nm^3.
LJ_FLUID_DENSITY = 0.8 / 0.3405**3

# --- monatomic ions (aqueous NaCl, Joung-Cheatham-like SPC set) -------------
#: Na+ LJ site; charge (+1) is carried per particle by the topology.
NA_ION = AtomType.from_sigma_epsilon("NA", 22.98977, 0.2160, 1.4754)
#: Cl- LJ site; charge (-1) is carried per particle by the topology.
CL_ION = AtomType.from_sigma_epsilon("CL", 35.45300, 0.4830, 0.0535)
ION_CHARGE_NA = 1.0
ION_CHARGE_CL = -1.0

# --- second LJ species (krypton-like) for the binary mixture ----------------
LJ_FLUID_B = AtomType.from_sigma_epsilon("KR", 83.798, 0.3633, 1.389)

# --- one big uncharged LJ sphere embedded in water --------------------------
#: A coarse solute bead (~2x water oxygen sigma), massive enough to sit
#: nearly still over short test trajectories.
SOLUTE_LJ = AtomType.from_sigma_epsilon("SOL", 120.0, 0.60, 1.20)


@dataclass(frozen=True)
class WaterGeometry:
    """Rigid-water site placement relative to the oxygen."""

    r_oh: float = SPC.r_oh
    angle_deg: float = SPC.angle_deg

    def site_offsets(self) -> np.ndarray:
        """Offsets of (O, H1, H2) from the oxygen position, shape (3, 3)."""
        half = np.radians(self.angle_deg) / 2.0
        h1 = np.array([self.r_oh * np.sin(half), self.r_oh * np.cos(half), 0.0])
        h2 = np.array([-self.r_oh * np.sin(half), self.r_oh * np.cos(half), 0.0])
        return np.stack([np.zeros(3), h1, h2])
