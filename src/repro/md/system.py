"""ParticleSystem: the complete simulation state.

Positions/velocities/forces live in float64 "master" arrays (the reference
precision); kernels that model the paper's mixed-precision path down-cast
on entry.  The system owns the box and topology and offers derived
quantities (kinetic energy, temperature, degrees of freedom).
"""

from __future__ import annotations


import numpy as np

from repro.md.box import Box
from repro.md.topology import Topology
from repro.util.units import KB_KJ_PER_MOL_K


class ParticleSystem:
    """State container for one MD system."""

    def __init__(
        self,
        positions: np.ndarray,
        box: Box,
        topology: Topology,
        velocities: np.ndarray | None = None,
    ) -> None:
        pos = np.asarray(positions, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise ValueError(f"positions must be (N, 3), got {pos.shape}")
        if topology.n_particles != len(pos):
            raise ValueError(
                f"topology has {topology.n_particles} particles, "
                f"positions have {len(pos)}"
            )
        topology.validate()
        self.positions = box.wrap(pos)
        self.box = box
        self.topology = topology
        if velocities is None:
            self.velocities = np.zeros_like(self.positions)
        else:
            vel = np.asarray(velocities, dtype=np.float64)
            if vel.shape != self.positions.shape:
                raise ValueError(f"velocities shape {vel.shape} != positions")
            self.velocities = vel.copy()
        self.forces = np.zeros_like(self.positions)

    @property
    def n_particles(self) -> int:
        return len(self.positions)

    @property
    def masses(self) -> np.ndarray:
        return self.topology.masses

    @property
    def charges(self) -> np.ndarray:
        return self.topology.charges

    def n_dof(self) -> int:
        """Translational degrees of freedom: 3N - constraints - 3 (COM)."""
        return 3 * self.n_particles - self.topology.n_constrained_dof() - 3

    def kinetic_energy(self) -> float:
        """Total kinetic energy in kJ/mol."""
        v2 = np.sum(self.velocities * self.velocities, axis=1)
        return float(0.5 * np.dot(self.masses, v2))

    def temperature(self) -> float:
        """Instantaneous temperature in K."""
        return 2.0 * self.kinetic_energy() / (self.n_dof() * KB_KJ_PER_MOL_K)

    def thermalize(self, temperature: float, rng: np.random.Generator) -> None:
        """Draw Maxwell-Boltzmann velocities and remove COM drift."""
        if temperature < 0:
            raise ValueError(f"temperature must be non-negative: {temperature}")
        sigma = np.sqrt(KB_KJ_PER_MOL_K * temperature / self.masses)
        self.velocities = rng.normal(size=self.positions.shape) * sigma[:, None]
        self.remove_com_motion()
        # Rescale to hit the target temperature exactly.
        current = self.temperature()
        if current > 0:
            self.velocities *= np.sqrt(temperature / current)

    def remove_com_motion(self) -> None:
        """Zero the centre-of-mass velocity."""
        m = self.masses
        com_v = (m[:, None] * self.velocities).sum(axis=0) / m.sum()
        self.velocities -= com_v

    def copy(self) -> "ParticleSystem":
        """Deep copy of the dynamic state (topology/box are shared)."""
        dup = ParticleSystem.__new__(ParticleSystem)
        dup.positions = self.positions.copy()
        dup.velocities = self.velocities.copy()
        dup.forces = self.forces.copy()
        dup.box = self.box
        dup.topology = self.topology
        return dup
