"""Pressure from the virial theorem.

``P = (2 E_kin + W) / (3 V)`` with W the pair virial (sum of F.r over
unordered pairs).  Units: kJ/(mol nm^3), convertible to bar with
:data:`PRESSURE_UNIT_TO_BAR` (GROMACS' ``PRESFAC``).
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.md.forces import ShortRangeResult
from repro.md.system import ParticleSystem

#: kJ/(mol nm^3) -> bar (GROMACS PRESFAC = 16.6054).
PRESSURE_UNIT_TO_BAR: float = 16.6054


@dataclass
class PressureResult:
    kinetic_term: float  # 2 Ekin / (3V), kJ/(mol nm^3)
    virial_term: float  # W / (3V)
    pressure: float  # kJ/(mol nm^3)

    @property
    def bar(self) -> float:
        return self.pressure * PRESSURE_UNIT_TO_BAR


def compute_pressure(
    system: ParticleSystem, short_range: ShortRangeResult
) -> PressureResult:
    """Instantaneous pressure from kinetic energy + short-range virial.

    The constraint virial of rigid molecules is not computed separately;
    for equilibrated rigid water it is absorbed by the kinetic term's
    constrained degrees of freedom (GROMACS reports the same quantity
    through its constraint-virial path).
    """
    volume = system.box.volume
    ekin = system.kinetic_energy()
    kinetic_term = 2.0 * ekin / (3.0 * volume)
    virial_term = short_range.virial / (3.0 * volume)
    return PressureResult(
        kinetic_term=kinetic_term,
        virial_term=virial_term,
        pressure=kinetic_term + virial_term,
    )


def ideal_gas_pressure(system: ParticleSystem) -> float:
    """2 E_kin / (3 V): the zero-interaction (virial-free) pressure."""
    return 2.0 * system.kinetic_energy() / (3.0 * system.box.volume)
