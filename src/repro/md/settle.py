"""SETTLE: analytical rigid-water constraint reset (Miyamoto & Kollman
1992) — what GROMACS actually uses for water (the paper's benchmark is
pure water, so its "Constraints" kernel is SETTLE).

Unlike SHAKE/LINCS, SETTLE solves the three coupled constraints of a
rigid three-site water *exactly* in closed form: it constructs a frame
from the pre-step triangle, finds the rotation (phi, psi, theta) that
restores the canonical geometry while conserving momentum, and applies
it.  The implementation below is fully vectorised over all molecules.

Validated in `tests/md/test_settle.py`: exact constraint satisfaction
(~1e-10 relative), linear-momentum conservation, agreement with SHAKE in
the small-displacement limit, and NVE stability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.box import Box
from repro.md.constraints import ConstraintError


def _normalize(v: np.ndarray) -> np.ndarray:
    return v / np.linalg.norm(v, axis=-1, keepdims=True)


@dataclass
class SettleParameters:
    """Canonical rigid geometry derived from (d_OH, d_HH, m_O, m_H)."""

    ra: float  # COM -> O distance along the symmetry axis
    rb: float  # COM -> HH-midpoint distance (opposite side)
    rc: float  # half the H-H distance
    m_o: float
    m_h: float

    @classmethod
    def from_geometry(cls, d_oh: float, d_hh: float, m_o: float, m_h: float) -> "SettleParameters":
        if not 0 < d_hh < 2 * d_oh:
            raise ValueError(
                f"impossible rigid water: d_OH={d_oh}, d_HH={d_hh}"
            )
        rc = d_hh / 2.0
        t = np.sqrt(d_oh**2 - rc**2)  # O -> HH-midpoint altitude
        total = m_o + 2.0 * m_h
        ra = t * 2.0 * m_h / total
        rb = t - ra
        return cls(ra=ra, rb=rb, rc=rc, m_o=m_o, m_h=m_h)


class SettleSolver:
    """Vectorised SETTLE over a set of (O, H, H) index triples."""

    def __init__(
        self,
        oxygen: np.ndarray,
        hydrogen1: np.ndarray,
        hydrogen2: np.ndarray,
        params: SettleParameters,
    ) -> None:
        self.o = np.asarray(oxygen, dtype=np.int64)
        self.h1 = np.asarray(hydrogen1, dtype=np.int64)
        self.h2 = np.asarray(hydrogen2, dtype=np.int64)
        if not (len(self.o) == len(self.h1) == len(self.h2)):
            raise ValueError("site index arrays must have equal length")
        self.params = params

    @classmethod
    def from_water_topology(cls, system) -> "SettleSolver":
        """Build from a `ParticleSystem` whose molecules are 3-site waters
        in (O, H, H) order with O-H / H-H constraints."""
        topo = system.topology
        mol = topo.mol_ids
        order = np.argsort(mol, kind="stable")
        n = len(order)
        if n % 3:
            raise ValueError("not a pure 3-site water system")
        trip = order.reshape(-1, 3)
        o, h1, h2 = trip[:, 0], trip[:, 1], trip[:, 2]
        masses = system.masses
        if not (np.all(masses[o] > masses[h1]) and np.all(masses[h1] == masses[h2])):
            raise ValueError("molecules are not (heavy, light, light) triples")
        # Pull the rigid distances from the constraint list.
        d_oh = d_hh = None
        o_set = set(int(x) for x in o)
        for c in topo.constraints:
            if (c.i in o_set) != (c.j in o_set):
                d_oh = c.distance
            elif c.i not in o_set and c.j not in o_set:
                d_hh = c.distance
        if d_oh is None or d_hh is None:
            raise ValueError("constraint list lacks O-H or H-H distances")
        params = SettleParameters.from_geometry(
            d_oh, d_hh, float(masses[o[0]]), float(masses[h1[0]])
        )
        return cls(o, h1, h2, params)

    @property
    def n_constraints(self) -> int:
        return 3 * len(self.o)

    def apply_positions(
        self, positions: np.ndarray, reference: np.ndarray, box: Box
    ) -> int:
        """Analytically reset every water (in place).  Returns 0 (no
        iteration).  ``reference`` holds the pre-step (rigid) positions."""
        if len(self.o) == 0:
            return 0
        p = self.params
        ma, mb = p.m_o, p.m_h
        total = ma + 2.0 * mb

        # Work in molecule-local, minimum-image-consistent coordinates:
        # unwrap each site relative to the reference oxygen.
        ref_a = reference[self.o]
        a0 = np.zeros_like(ref_a)
        b0 = box.minimum_image(reference[self.h1] - ref_a)
        c0 = box.minimum_image(reference[self.h2] - ref_a)
        a1 = box.minimum_image(positions[self.o] - ref_a)
        b1 = box.minimum_image(positions[self.h1] - ref_a)
        c1 = box.minimum_image(positions[self.h2] - ref_a)

        com = (ma * a1 + mb * b1 + mb * c1) / total
        xa1 = a1 - com
        xb1 = b1 - com
        xc1 = c1 - com
        xb0 = b0 - a0
        xc0 = c0 - a0

        # Orthonormal frame: z from the reference plane, x toward the
        # displaced oxygen, y completing.
        zaxis = _normalize(np.cross(xb0, xc0))
        xaxis = _normalize(np.cross(xa1, zaxis))
        yaxis = _normalize(np.cross(zaxis, xaxis))
        # Rows of the rotation matrix (world -> primed).
        rot = np.stack([xaxis, yaxis, zaxis], axis=1)  # (M, 3, 3)

        def to_prime(v):
            return np.einsum("mij,mj->mi", rot, v)

        b0p = to_prime(xb0)
        c0p = to_prime(xc0)
        a1p = to_prime(xa1)
        b1p = to_prime(xb1)
        c1p = to_prime(xc1)

        sinphi = np.clip(a1p[:, 2] / p.ra, -1.0, 1.0)
        cosphi = np.sqrt(np.maximum(1.0 - sinphi**2, 1e-16))
        sinpsi = np.clip(
            (b1p[:, 2] - c1p[:, 2]) / (2.0 * p.rc * cosphi), -1.0, 1.0
        )
        cospsi = np.sqrt(1.0 - sinpsi**2)

        ya2 = p.ra * cosphi
        xb2 = -p.rc * cospsi
        yb2 = -p.rb * cosphi - p.rc * sinpsi * sinphi
        yc2 = -p.rb * cosphi + p.rc * sinpsi * sinphi

        alpha = xb2 * (b0p[:, 0] - c0p[:, 0]) + b0p[:, 1] * yb2 + c0p[:, 1] * yc2
        beta = xb2 * (c0p[:, 1] - b0p[:, 1]) + b0p[:, 0] * yb2 + c0p[:, 0] * yc2
        gamma = (
            b0p[:, 0] * b1p[:, 1]
            - b1p[:, 0] * b0p[:, 1]
            + c0p[:, 0] * c1p[:, 1]
            - c1p[:, 0] * c0p[:, 1]
        )
        a2b2 = alpha**2 + beta**2
        under = a2b2 - gamma**2
        if np.any(under < -1e-12 * a2b2):
            raise ConstraintError(
                "SETTLE determinant negative: geometry too distorted"
            )
        sintheta = (alpha * gamma - beta * np.sqrt(np.maximum(under, 0.0))) / a2b2
        sintheta = np.clip(sintheta, -1.0, 1.0)
        costheta = np.sqrt(1.0 - sintheta**2)

        za2 = p.ra * sinphi
        zb2 = -p.rb * sinphi + p.rc * sinpsi * cosphi
        zc2 = -p.rb * sinphi - p.rc * sinpsi * cosphi

        xa3 = -ya2 * sintheta
        ya3 = ya2 * costheta
        za3 = za2
        xb3 = xb2 * costheta - yb2 * sintheta
        yb3 = xb2 * sintheta + yb2 * costheta
        zb3 = zb2
        xc3 = -xb2 * costheta - yc2 * sintheta
        yc3 = -xb2 * sintheta + yc2 * costheta
        zc3 = zc2

        a3p = np.stack([xa3, ya3, za3], axis=1)
        b3p = np.stack([xb3, yb3, zb3], axis=1)
        c3p = np.stack([xc3, yc3, zc3], axis=1)

        def from_prime(v):
            return np.einsum("mji,mj->mi", rot, v)

        positions[self.o] = ref_a + from_prime(a3p) + com
        positions[self.h1] = ref_a + from_prime(b3p) + com
        positions[self.h2] = ref_a + from_prime(c3p) + com
        return 0

    def apply_velocities(
        self, velocities: np.ndarray, positions: np.ndarray, box: Box
    ) -> int:
        """Exact velocity constraint (Miyamoto-Kollman part 2): solve the
        3x3 linear system for the bond-direction impulses per molecule."""
        if len(self.o) == 0:
            return 0
        p = self.params
        e_ab = _normalize(box.minimum_image(positions[self.h1] - positions[self.o]))
        e_bc = _normalize(box.minimum_image(positions[self.h2] - positions[self.h1]))
        e_ca = _normalize(box.minimum_image(positions[self.o] - positions[self.h2]))
        v_ab = np.sum((velocities[self.h1] - velocities[self.o]) * e_ab, axis=1)
        v_bc = np.sum((velocities[self.h2] - velocities[self.h1]) * e_bc, axis=1)
        v_ca = np.sum((velocities[self.o] - velocities[self.h2]) * e_ca, axis=1)

        ma, mb = p.m_o, p.m_h
        cos_a = np.sum(-e_ab * e_ca, axis=1)
        cos_b = np.sum(-e_bc * e_ab, axis=1)
        cos_c = np.sum(-e_ca * e_bc, axis=1)

        m = len(self.o)
        mat = np.empty((m, 3, 3))
        mat[:, 0, 0] = 1.0 / ma + 1.0 / mb
        mat[:, 0, 1] = (1.0 / mb) * cos_b
        mat[:, 0, 2] = (1.0 / ma) * cos_a
        mat[:, 1, 0] = (1.0 / mb) * cos_b
        mat[:, 1, 1] = 2.0 / mb
        mat[:, 1, 2] = (1.0 / mb) * cos_c
        mat[:, 2, 0] = (1.0 / ma) * cos_a
        mat[:, 2, 1] = (1.0 / mb) * cos_c
        mat[:, 2, 2] = 1.0 / ma + 1.0 / mb
        rhs = np.stack([v_ab, v_bc, v_ca], axis=1)
        tau = np.linalg.solve(mat, rhs[..., None])[..., 0]

        velocities[self.o] += (tau[:, 0:1] * e_ab - tau[:, 2:3] * e_ca) / ma
        velocities[self.h1] += (tau[:, 1:2] * e_bc - tau[:, 0:1] * e_ab) / mb
        velocities[self.h2] += (tau[:, 2:3] * e_ca - tau[:, 1:2] * e_bc) / mb
        return 0

    def max_violation(self, positions: np.ndarray, box: Box) -> float:
        p = self.params
        t = p.ra + p.rb
        d_oh = np.sqrt(t**2 + p.rc**2)
        d_hh = 2.0 * p.rc
        worst = 0.0
        for pair, target in (
            ((self.o, self.h1), d_oh),
            ((self.o, self.h2), d_oh),
            ((self.h1, self.h2), d_hh),
        ):
            d = box.distance(positions[pair[0]], positions[pair[1]])
            worst = max(worst, float(np.abs(d**2 - target**2).max() / target**2))
        return worst
