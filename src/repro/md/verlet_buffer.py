"""Verlet-buffer estimation (GROMACS' ``verlet-buffer-tolerance``).

The pair-list buffer ``rlist - rcut`` trades neighbour-search frequency
against list size: it must cover the largest likely pair displacement
accumulated over ``nstlist`` steps.  GROMACS sizes it from kinetic
theory; we use the same idea:

    sigma_1d = sqrt(kB T / m) * nstlist * dt      (per particle, per axis)
    buffer   = z * sqrt(2) * sigma_1d             (relative pair motion)

with ``z`` a coverage factor (z = 6 keeps even the worst-case pair of a
few-thousand-particle system inside the buffer per rebuild — drift below
GROMACS' default 0.005 kJ/mol/ps tolerance for water).

`check_buffer_sufficient` is the empirical counterpart: it measures
actual displacements over a run and verifies no interacting pair was
missed — used by the property tests.
"""

from __future__ import annotations

import numpy as np

from repro.md.system import ParticleSystem
from repro.util.units import KB_KJ_PER_MOL_K


def estimate_buffer(
    system: ParticleSystem,
    temperature: float,
    dt: float,
    nstlist: int,
    coverage_z: float = 6.0,
) -> float:
    """Kinetic-theory pair-list buffer (nm) for the given run settings."""
    if temperature < 0 or dt <= 0 or nstlist < 1:
        raise ValueError(
            f"bad inputs: T={temperature}, dt={dt}, nstlist={nstlist}"
        )
    if coverage_z <= 0:
        raise ValueError(f"coverage_z must be positive: {coverage_z}")
    # The lightest mobile particle dominates the displacement tail.  For
    # constrained molecules the relevant mass is closer to the molecular
    # mass, but using the atomic minimum is conservative (larger buffer).
    m_min = float(system.masses.min())
    sigma_1d = np.sqrt(KB_KJ_PER_MOL_K * temperature / m_min) * nstlist * dt
    return float(coverage_z * np.sqrt(2.0) * sigma_1d)


def recommend_rlist(
    system: ParticleSystem,
    r_cut: float,
    temperature: float,
    dt: float,
    nstlist: int,
    coverage_z: float = 6.0,
) -> float:
    """rcut + estimated buffer, clamped to the minimum-image bound."""
    buffer = estimate_buffer(system, temperature, dt, nstlist, coverage_z)
    r_list = r_cut + buffer
    max_r = system.box.min_edge / 2.0 * (1.0 - 1e-9)
    if r_list > max_r:
        raise ValueError(
            f"recommended rlist {r_list:.3f} nm exceeds the minimum-image "
            f"bound {max_r:.3f} nm; reduce nstlist or the cutoff"
        )
    return r_list


def max_pair_displacement(
    before: np.ndarray, after: np.ndarray, box
) -> float:
    """Largest relative displacement any *pair* can have accumulated:
    twice the largest single-particle move (worst case, opposite
    directions)."""
    moves = np.linalg.norm(box.minimum_image(after - before), axis=1)
    return float(2.0 * moves.max()) if len(moves) else 0.0


def check_buffer_sufficient(
    before: np.ndarray,
    after: np.ndarray,
    box,
    r_cut: float,
    r_list: float,
) -> bool:
    """True when no pair outside ``r_list`` at build time can have come
    within ``r_cut`` by the time of ``after`` (sufficient condition)."""
    return max_pair_displacement(before, after, box) <= (r_list - r_cut)
