"""Steepest-descent energy minimisation (GROMACS' ``steep``).

Freshly built lattices contain close contacts; a few dozen descent steps
relax them so the leapfrog integrator starts from a physical state — the
same preparation the paper's water benchmark inputs received.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.constraints import ShakeSolver
from repro.md.mdloop import MdConfig, MdLoop
from repro.md.system import ParticleSystem


@dataclass
class MinimizeResult:
    initial_energy: float
    final_energy: float
    n_steps: int
    converged: bool
    max_force: float


def minimize(
    system: ParticleSystem,
    config: MdConfig,
    n_steps: int = 200,
    initial_step: float = 0.01,
    force_tolerance: float = 100.0,
) -> MinimizeResult:
    """Steepest descent with adaptive step size (in place).

    Each iteration displaces along the force by ``step / max|F|``; accepted
    moves grow the step 1.2x, rejected moves shrink it 0.2x (GROMACS'
    scheme).  Constrained systems re-project onto the constraint manifold
    after every accepted move.
    """
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1: {n_steps}")
    loop = MdLoop(system, config)
    shake = (
        ShakeSolver(system.topology.constraints, system.masses)
        if system.topology.constraints
        else None
    )

    loop._rebuild_pairlist(loop_timing := _fresh_timing())
    forces, energy = loop.compute_forces(loop_timing)
    initial_energy = energy
    step = initial_step
    steps_done = 0
    converged = False
    max_step = 0.05  # nm; larger moves outrun the constraint solvers
    for i in range(n_steps):
        steps_done = i + 1
        fmax = float(np.abs(forces).max())
        if fmax < force_tolerance:
            converged = True
            break
        step = min(step, max_step)
        trial = system.positions + forces * (step / fmax)
        if shake is not None:
            try:
                shake.apply_positions(trial, system.positions, system.box)
            except Exception:
                # Move too large for the projection: reject and shrink.
                step *= 0.2
                continue
        old_positions = system.positions
        system.positions = system.box.wrap(trial)
        # Displacements can exceed the pair-list buffer; rebuild each trial.
        loop._rebuild_pairlist(loop_timing)
        new_forces, new_energy = loop.compute_forces(loop_timing)
        if new_energy < energy:
            energy, forces = new_energy, new_forces
            step *= 1.2
        else:
            system.positions = old_positions
            loop._rebuild_pairlist(loop_timing)
            step *= 0.2
            if step < 1e-8:
                break
    system.velocities[:] = 0.0
    return MinimizeResult(
        initial_energy=initial_energy,
        final_energy=energy,
        n_steps=steps_done,
        converged=converged,
        max_force=float(np.abs(forces).max()),
    )


def _fresh_timing():
    from repro.hw.perf import KernelTiming

    return KernelTiming()
