"""Smooth Particle-Mesh Ewald (PME) long-range electrostatics.

The paper's benchmark uses ``coulombtype = PME`` (Table 3); PME's
reciprocal part is the FFT-heavy kernel behind the communication costs in
its Table 1.  This is a full smooth-PME implementation after Essmann et
al. (1995):

* order-``n`` cardinal B-spline charge spreading onto a 3-D grid,
* 3-D FFT, influence-function convolution
  ``G(m) = exp(-pi^2 m^2 / beta^2) * B(m) / (2 pi V m^2)``,
* energy from the reciprocal sum, forces by analytic differentiation of
  the spline weights,
* self-energy and intra-molecular exclusion corrections so the *total*
  electrostatic energy (together with the ``ewald`` real-space mode of
  `repro.md.nonbonded`) is physical — validated against the Madelung
  constant of rock salt in the test suite.

Everything is vectorised over particles; the only Python loops run over
the three dimensions and the spline order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import erf

from repro.md.box import Box
from repro.md.system import ParticleSystem
from repro.util.units import COULOMB_CONSTANT


@dataclass(frozen=True)
class PmeParams:
    """PME configuration: spline order, grid spacing, splitting beta."""

    order: int = 4
    grid_spacing: float = 0.12  # nm, GROMACS' fourierspacing default
    beta: float = 3.12341  # must match NonbondedParams.ewald_beta

    def __post_init__(self) -> None:
        if self.order < 2:
            raise ValueError(f"spline order must be >= 2: {self.order}")
        if self.grid_spacing <= 0:
            raise ValueError(f"grid spacing must be positive: {self.grid_spacing}")
        if self.beta <= 0:
            raise ValueError(f"beta must be positive: {self.beta}")

    def grid_dims(self, box: Box) -> tuple[int, int, int]:
        """Grid size per dimension: at least order, at least L / spacing."""
        return tuple(
            max(self.order, int(np.ceil(length / self.grid_spacing)))
            for length in box.lengths
        )


def bspline_m(order: int, x: np.ndarray) -> np.ndarray:
    """Cardinal B-spline ``M_order(x)`` (support ``(0, order)``)."""
    x = np.asarray(x, dtype=np.float64)
    if order == 1:
        return np.where((x >= 0) & (x < 1), 1.0, 0.0)
    prev = bspline_m(order - 1, x)
    prev_shift = bspline_m(order - 1, x - 1.0)
    return (x / (order - 1)) * prev + ((order - x) / (order - 1)) * prev_shift


def spline_weights(order: int, frac: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Spreading weights and derivatives for fractional offsets ``frac``.

    ``frac`` is ``u - floor(u)`` in grid units, shape (N,).  Returns
    ``(w, dw)`` of shape (N, order): the weight on grid point
    ``floor(u) - order + 1 + j`` and its derivative with respect to ``u``.
    """
    frac = np.asarray(frac, dtype=np.float64)
    j = np.arange(order)[None, :]
    arg = frac[:, None] + (order - 1 - j)
    w = bspline_m(order, arg)
    # dM_n(x)/dx = M_{n-1}(x) - M_{n-1}(x - 1)
    dw = bspline_m(order - 1, arg) - bspline_m(order - 1, arg - 1.0)
    return w, dw


def euler_spline_b2(order: int, k: int) -> np.ndarray:
    """|b(m)|^2 interpolation factors for a dimension of ``k`` grid points."""
    m = np.arange(k)
    j = np.arange(order - 1)
    mn = bspline_m(order, j + 1.0)  # M_n(1), ..., M_n(n-1)
    phase = np.exp(2j * np.pi * np.outer(m, j) / k)
    denom = phase @ mn
    b2 = np.empty(k, dtype=np.float64)
    mag2 = np.abs(denom) ** 2
    with np.errstate(divide="ignore"):
        b2 = np.where(mag2 > 1e-12, 1.0 / np.maximum(mag2, 1e-300), 0.0)
    return b2


@dataclass
class PmeResult:
    """Reciprocal energy/forces plus the correction terms."""

    energy_reciprocal: float
    energy_self: float
    energy_exclusion: float
    forces: np.ndarray  # reciprocal + exclusion-correction forces

    @property
    def energy(self) -> float:
        return self.energy_reciprocal + self.energy_self + self.energy_exclusion


class PmeSolver:
    """Reusable PME solver for a fixed box/topology (grid cached)."""

    def __init__(self, box: Box, params: PmeParams) -> None:
        self.box = box
        self.params = params
        self.dims = params.grid_dims(box)
        kx, ky, kz = self.dims
        # Influence function G(m) on the FFT grid (zero at m = 0).
        mx = np.fft.fftfreq(kx, d=1.0 / kx)
        my = np.fft.fftfreq(ky, d=1.0 / ky)
        mz = np.fft.fftfreq(kz, d=1.0 / kz)
        lx, ly, lz = box.lengths
        m2 = (
            (mx[:, None, None] / lx) ** 2
            + (my[None, :, None] / ly) ** 2
            + (mz[None, None, :] / lz) ** 2
        )
        b2 = (
            euler_spline_b2(params.order, kx)[:, None, None]
            * euler_spline_b2(params.order, ky)[None, :, None]
            * euler_spline_b2(params.order, kz)[None, None, :]
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            g = (
                np.exp(-np.pi**2 * m2 / params.beta**2)
                / (2.0 * np.pi * box.volume * m2)
                * b2
            )
        g[0, 0, 0] = 0.0
        self._g = g

    def spread(self, positions: np.ndarray, charges: np.ndarray) -> tuple[np.ndarray, list]:
        """Spread charges onto the grid; returns (grid, spread context)."""
        pos = self.box.wrap(positions)
        order = self.params.order
        grid = np.zeros(self.dims)
        ctx = []
        idx_all = []
        w_all = []
        dw_all = []
        for dim in range(3):
            k = self.dims[dim]
            u = pos[:, dim] / self.box.lengths[dim] * k
            base = np.floor(u).astype(np.int64)
            w, dw = spline_weights(order, u - base)
            idx = (base[:, None] - order + 1 + np.arange(order)[None, :]) % k
            idx_all.append(idx)
            w_all.append(w)
            dw_all.append(dw)
        # Tensor-product deposit, vectorised over particles.
        n = len(pos)
        wx, wy, wz = w_all
        ix, iy, iz = idx_all
        weights = (
            wx[:, :, None, None] * wy[:, None, :, None] * wz[:, None, None, :]
        ) * charges[:, None, None, None]
        flat = (
            (ix[:, :, None, None] * self.dims[1] + iy[:, None, :, None])
            * self.dims[2]
            + iz[:, None, None, :]
        )
        np.add.at(grid.reshape(-1), flat.ravel(), weights.ravel())
        return grid, [idx_all, w_all, dw_all]

    def reciprocal(self, system: ParticleSystem) -> tuple[float, np.ndarray]:
        """Reciprocal-space energy and forces."""
        charges = system.charges
        grid, (idx_all, w_all, dw_all) = self.spread(system.positions, charges)
        fgrid = np.fft.fftn(grid)
        energy = float(COULOMB_CONSTANT * np.sum(self._g * np.abs(fgrid) ** 2))
        # dE/dQ_g: with E = f * sum_m G |F(Q)|^2 and numpy's normalised
        # ifftn, the derivative is N_grid * IFFT(2 G F(Q)) — the factor 2
        # comes from |F|^2 = F F*, the N_grid undoes ifftn's 1/N.
        n_grid = np.prod(self.dims)
        phi = (
            np.real(np.fft.ifftn(2.0 * self._g * fgrid))
            * n_grid
            * COULOMB_CONSTANT
        )
        ix, iy, iz = idx_all
        wx, wy, wz = w_all
        dwx, dwy, dwz = dw_all
        phi_vals = phi[
            ix[:, :, None, None], iy[:, None, :, None], iz[:, None, None, :]
        ]
        kx, ky, kz = self.dims
        lx, ly, lz = self.box.lengths
        fx = -(charges * kx / lx) * np.einsum(
            "nijk,ni,nj,nk->n", phi_vals, dwx, wy, wz
        )
        fy = -(charges * ky / ly) * np.einsum(
            "nijk,ni,nj,nk->n", phi_vals, wx, dwy, wz
        )
        fz = -(charges * kz / lz) * np.einsum(
            "nijk,ni,nj,nk->n", phi_vals, wx, wy, dwz
        )
        return energy, np.stack([fx, fy, fz], axis=1)

    def self_energy(self, charges: np.ndarray) -> float:
        """Ewald self-interaction correction."""
        return float(
            -COULOMB_CONSTANT * self.params.beta / np.sqrt(np.pi) * np.sum(charges**2)
        )

    def exclusion_correction(
        self, system: ParticleSystem
    ) -> tuple[float, np.ndarray]:
        """Remove reciprocal-space interactions of excluded (intra-molecular)
        pairs: subtract ``f q_i q_j erf(beta r) / r`` and its force."""
        topo = system.topology
        mol = topo.mol_ids
        # Excluded pairs: all intra-molecular i < j.
        order = np.argsort(mol, kind="stable")
        sorted_mol = mol[order]
        boundaries = np.nonzero(np.diff(sorted_mol))[0] + 1
        groups = np.split(order, boundaries)
        pi_list, pj_list = [], []
        for g in groups:
            if len(g) < 2:
                continue
            a, b = np.triu_indices(len(g), k=1)
            pi_list.append(g[a])
            pj_list.append(g[b])
        if not pi_list:
            return 0.0, np.zeros_like(system.positions)
        pi = np.concatenate(pi_list)
        pj = np.concatenate(pj_list)
        dr = system.box.displacement(system.positions[pi], system.positions[pj])
        r2 = np.sum(dr * dr, axis=1)
        r = np.sqrt(r2)
        qq = system.charges[pi] * system.charges[pj]
        beta = self.params.beta
        erf_br = erf(beta * r)
        energy = float(-COULOMB_CONSTANT * np.sum(qq * erf_br / r))
        # d/dr [ -erf(beta r)/r ] gives the correction force scalar.
        gauss = np.exp(-((beta * r) ** 2))
        f_scalar = -COULOMB_CONSTANT * qq * (
            erf_br / r2 - 2.0 * beta / np.sqrt(np.pi) * gauss / r
        ) / r
        forces = np.zeros_like(system.positions)
        fvec = f_scalar[:, None] * dr
        np.add.at(forces, pi, fvec)
        np.add.at(forces, pj, -fvec)
        return energy, forces

    def compute(self, system: ParticleSystem) -> PmeResult:
        """Full long-range contribution (reciprocal + self + exclusions)."""
        e_rec, f_rec = self.reciprocal(system)
        e_self = self.self_energy(system.charges)
        e_excl, f_excl = self.exclusion_correction(system)
        return PmeResult(
            energy_reciprocal=e_rec,
            energy_self=e_self,
            energy_exclusion=e_excl,
            forces=f_rec + f_excl,
        )
