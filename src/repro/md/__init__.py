"""GROMACS-like molecular dynamics engine (the paper's application).

Public surface:

* builders — :func:`build_water_system`, :func:`build_lj_fluid`;
* state — :class:`ParticleSystem`, :class:`Box`, :class:`Topology`;
* neighbour search — :func:`build_pair_list`, :class:`ClusterPairList`;
* forces — :func:`compute_short_range` (reference), :class:`PmeSolver`,
  :func:`compute_bonded`, :class:`NonbondedParams`;
* dynamics — :class:`LeapfrogIntegrator`, :class:`ShakeSolver`,
  :class:`MdLoop` / :class:`MdConfig` (the Fig. 1 workflow).
"""

from repro.md.box import Box
from repro.md.bonded import compute_bonded
from repro.md.constraints import (
    ConstraintError,
    ShakeSolver,
    build_constraint_solver,
)
from repro.md.ewald import DirectEwaldSolver, EwaldParams
from repro.md.forces import (
    ShortRangeResult,
    brute_force_short_range,
    compute_short_range,
)
from repro.md.gromacs_files import (
    PAPER_TABLE3_MDP,
    benchmark_case,
    mdp_to_configs,
    parse_mdp,
    read_gro,
    system_from_gro,
    write_gro,
)
from repro.md.integrator import IntegratorConfig, LeapfrogIntegrator
from repro.md.lincs import LincsConfig, LincsSolver
from repro.md.mdloop import MdConfig, MdLoop, MdResult
from repro.md.nonbonded import NonbondedParams, pair_force_energy
from repro.md.pairlist import (
    CLUSTER_SIZE,
    ClusterPairList,
    build_pair_list,
    brute_force_pairs,
    pair_list_covers,
)
from repro.md.minimize import MinimizeResult, minimize
from repro.md.pme import PmeParams, PmeSolver
from repro.md.pressure import compute_pressure, ideal_gas_pressure
from repro.md.reporter import EnergyReporter
from repro.md.settle import SettleParameters, SettleSolver
from repro.md.velocity_verlet import VelocityVerletIntegrator
from repro.md.system import ParticleSystem
from repro.md.topology import Angle, Bond, Constraint, Dihedral, Topology
from repro.md.water import (
    build_embedded_solute,
    build_ionic_solution,
    build_lj_fluid,
    build_lj_mixture,
    build_water_system,
)

__all__ = [
    "Angle",
    "DirectEwaldSolver",
    "EwaldParams",
    "LincsConfig",
    "LincsSolver",
    "MinimizeResult",
    "PAPER_TABLE3_MDP",
    "SettleParameters",
    "SettleSolver",
    "VelocityVerletIntegrator",
    "benchmark_case",
    "build_constraint_solver",
    "compute_pressure",
    "ideal_gas_pressure",
    "mdp_to_configs",
    "minimize",
    "parse_mdp",
    "read_gro",
    "system_from_gro",
    "write_gro",
    "Bond",
    "Box",
    "CLUSTER_SIZE",
    "ClusterPairList",
    "Constraint",
    "ConstraintError",
    "Dihedral",
    "EnergyReporter",
    "IntegratorConfig",
    "LeapfrogIntegrator",
    "MdConfig",
    "MdLoop",
    "MdResult",
    "NonbondedParams",
    "ParticleSystem",
    "PmeParams",
    "PmeSolver",
    "ShakeSolver",
    "ShortRangeResult",
    "Topology",
    "brute_force_pairs",
    "brute_force_short_range",
    "build_embedded_solute",
    "build_ionic_solution",
    "build_lj_fluid",
    "build_lj_mixture",
    "build_pair_list",
    "build_water_system",
    "compute_bonded",
    "compute_short_range",
    "pair_force_energy",
    "pair_list_covers",
]
