"""Nonbonded interaction model: LJ + short-range Coulomb pair math.

One function, :func:`pair_force_energy`, is the single source of truth for
the per-pair physics.  The float64 reference engine, the float32
mixed-precision path, and every strategy kernel in `repro.core.kernels`
call it, so functional-equivalence tests between strategies are tests of
bookkeeping, never of divergent physics.

Coulomb variants (paper Table 3 uses PME; its real-space part is the
``ewald`` mode here):

* ``rf``    — reaction field with eps_rf = infinity,
* ``ewald`` — erfc-attenuated real space (PME's short-range half),
* ``cut``   — plain truncated 1/r,
* ``none``  — LJ only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import erfc

from repro.util.units import COULOMB_CONSTANT

COULOMB_MODES = ("rf", "ewald", "cut", "none")


@dataclass(frozen=True)
class NonbondedParams:
    """Cutoffs and Coulomb configuration (paper Table 3 equivalents)."""

    r_cut: float = 1.0
    r_list: float = 1.1
    nstlist: int = 10
    coulomb_mode: str = "rf"
    #: Ewald splitting parameter beta (1/nm); GROMACS-like default for
    #: rcut = 1.0 nm and rtol = 1e-5.
    ewald_beta: float = 3.12341
    #: Shift the LJ potential so V(r_cut) = 0 (GROMACS verlet scheme).
    shift_lj: bool = True

    def __post_init__(self) -> None:
        if self.r_cut <= 0:
            raise ValueError(f"r_cut must be positive: {self.r_cut}")
        if self.r_list < self.r_cut:
            raise ValueError(
                f"r_list ({self.r_list}) must be >= r_cut ({self.r_cut})"
            )
        if self.nstlist < 1:
            raise ValueError(f"nstlist must be >= 1: {self.nstlist}")
        if self.coulomb_mode not in COULOMB_MODES:
            raise ValueError(
                f"coulomb_mode {self.coulomb_mode!r} not in {COULOMB_MODES}"
            )

    @property
    def krf(self) -> float:
        """Reaction-field quadratic coefficient (eps_rf = infinity)."""
        return 1.0 / (2.0 * self.r_cut**3)

    @property
    def crf(self) -> float:
        """Reaction-field constant shift making V(r_cut) = 0."""
        return 3.0 / (2.0 * self.r_cut)


def lj_shift_energy(c6: np.ndarray, c12: np.ndarray, r_cut: float) -> np.ndarray:
    """Potential-shift constant: V_LJ(r_cut) per pair."""
    inv6 = (1.0 / r_cut) ** 6
    return c12 * inv6 * inv6 - c6 * inv6


def pair_force_energy(
    r2: np.ndarray,
    qq: np.ndarray,
    c6: np.ndarray,
    c12: np.ndarray,
    params: NonbondedParams,
    mask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Force scalar and energy for particle pairs.

    Arguments are broadcastable arrays: squared distances ``r2``, raw
    charge products ``qq`` (plain ``q_i * q_j``, *without* the electric
    conversion factor — the Coulomb constant is applied inside this
    function), and LJ ``c6`` / ``c12``.  Returns ``(f_scalar, energy)``
    where the force on i is ``f_scalar * (r_i - r_j)`` — i.e.
    f_scalar = -(dV/dr)/r.

    ``mask`` marks pairs that interact; masked-out entries contribute
    exactly zero and are guarded against r2 = 0 (padding particles overlap
    in space, so the guard is mandatory, mirroring GROMACS' own masked
    SIMD kernels).

    Everything is computed in the dtype of ``r2`` — float32 in the
    mixed-precision kernels, float64 in the reference engine.
    """
    r2 = np.asarray(r2)
    dtype = r2.dtype
    if mask is None:
        mask = np.ones(r2.shape, dtype=bool)
    cutoff_mask = mask & (r2 < dtype.type(params.r_cut) ** 2) & (r2 > 0)
    safe_r2 = np.where(cutoff_mask, r2, dtype.type(1.0))
    inv_r2 = dtype.type(1.0) / safe_r2
    inv_r6 = inv_r2 * inv_r2 * inv_r2

    c6 = np.asarray(c6, dtype=dtype)
    c12 = np.asarray(c12, dtype=dtype)
    qq = np.asarray(qq, dtype=dtype)

    # Lennard-Jones (Eq. 1-2 of the paper).
    e_lj = c12 * inv_r6 * inv_r6 - c6 * inv_r6
    f_lj = (
        dtype.type(12.0) * c12 * inv_r6 * inv_r6 - dtype.type(6.0) * c6 * inv_r6
    ) * inv_r2
    if params.shift_lj:
        e_lj = e_lj - lj_shift_energy(c6, c12, params.r_cut).astype(dtype)

    # Coulomb.
    felec = dtype.type(COULOMB_CONSTANT)
    if params.coulomb_mode == "none":
        e_coul = np.zeros_like(e_lj)
        f_coul = np.zeros_like(f_lj)
    else:
        inv_r = np.sqrt(inv_r2)
        if params.coulomb_mode == "cut":
            e_coul = felec * qq * inv_r
            f_coul = felec * qq * inv_r * inv_r2
        elif params.coulomb_mode == "rf":
            krf = dtype.type(params.krf)
            crf = dtype.type(params.crf)
            e_coul = felec * qq * (inv_r + krf * safe_r2 - crf)
            f_coul = felec * qq * (inv_r * inv_r2 - dtype.type(2.0) * krf)
        else:  # ewald real space
            beta = dtype.type(params.ewald_beta)
            r = np.sqrt(safe_r2)
            erfc_br = erfc(beta * r).astype(dtype)
            gauss = np.exp(-((beta * r) ** 2)).astype(dtype)
            two_beta_over_sqrt_pi = dtype.type(2.0 * params.ewald_beta / np.sqrt(np.pi))
            e_coul = felec * qq * erfc_br * inv_r
            f_coul = (
                felec
                * qq
                * (erfc_br * inv_r + two_beta_over_sqrt_pi * gauss)
                * inv_r2
            )

    zero = dtype.type(0.0)
    f_scalar = np.where(cutoff_mask, f_lj + f_coul, zero)
    energy = np.where(cutoff_mask, e_lj + e_coul, zero)
    return f_scalar, energy
