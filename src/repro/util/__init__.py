"""Shared utilities: configuration, unit constants, table formatting.

These helpers are deliberately dependency-free (numpy only) so every other
subpackage can import them without cycles.
"""

from repro.util.tables import format_table, format_series
from repro.util.units import (
    KB_KJ_PER_MOL_K,
    COULOMB_CONSTANT,
    AMU,
    NM,
    PS,
)

__all__ = [
    "format_table",
    "format_series",
    "KB_KJ_PER_MOL_K",
    "COULOMB_CONSTANT",
    "AMU",
    "NM",
    "PS",
]
