"""Physical unit constants in the GROMACS unit system.

GROMACS (and therefore this reproduction) works in:

* length      — nanometres (nm)
* time        — picoseconds (ps)
* mass        — atomic mass units (amu)
* energy      — kJ/mol
* charge      — elementary charges (e)
* temperature — kelvin (K)

With these base units, velocity is nm/ps, force is kJ/(mol nm), and the
equations of motion need no extra conversion factors.
"""

from __future__ import annotations

#: Boltzmann constant in kJ/(mol K) — GROMACS' ``BOLTZ``.
KB_KJ_PER_MOL_K: float = 0.008_314_462_618

#: Electric conversion factor f = 1/(4 pi eps0) in kJ nm / (mol e^2) —
#: GROMACS' ``ONE_4PI_EPS0``.  The Coulomb energy between two unit charges
#: one nanometre apart is exactly this many kJ/mol.
COULOMB_CONSTANT: float = 138.935_458

#: One atomic mass unit expressed in the internal mass unit (identity; kept
#: symbolic so call sites read naturally).
AMU: float = 1.0

#: One nanometre in internal length units (identity).
NM: float = 1.0

#: One picosecond in internal time units (identity).
PS: float = 1.0

#: Avogadro's number, 1/mol (used only by I/O formatting helpers).
AVOGADRO: float = 6.022_140_76e23

#: Degrees-of-freedom removed per SHAKE/SETTLE-constrained bond.
DOF_PER_CONSTRAINT: int = 1


def kinetic_temperature(kinetic_energy: float, ndof: int) -> float:
    """Convert kinetic energy (kJ/mol) to an instantaneous temperature (K).

    ``T = 2 Ekin / (ndof * kB)``.  ``ndof`` must already account for removed
    centre-of-mass motion and constraints.
    """
    if ndof <= 0:
        raise ValueError(f"ndof must be positive, got {ndof}")
    return 2.0 * kinetic_energy / (ndof * KB_KJ_PER_MOL_K)
