"""Plain-text table/series formatting for benchmark harness output.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output consistent and diff-able (fixed column widths, no
locale-dependent formatting).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _cell(value: object, width: int) -> str:
    if isinstance(value, float):
        text = f"{value:.4g}"
    else:
        text = str(value)
    return text.rjust(width)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table."""
    rows = [list(r) for r in rows]
    for r in rows:
        if len(r) != len(headers):
            raise ValueError(
                f"row has {len(r)} cells but table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    rendered_rows = []
    for r in rows:
        rendered = []
        for j, v in enumerate(r):
            text = f"{v:.4g}" if isinstance(v, float) else str(v)
            widths[j] = max(widths[j], len(text))
            rendered.append(text)
        rendered_rows.append(rendered)
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one figure series as ``name: (x, y)`` pairs, one per line."""
    if len(xs) != len(ys):
        raise ValueError(f"series {name!r}: {len(xs)} xs vs {len(ys)} ys")
    lines = [f"series {name} [{x_label} -> {y_label}]"]
    for x, y in zip(xs, ys):
        lines.append(f"  {x}: {y:.4g}")
    return "\n".join(lines)


def format_ratio(measured: float, paper: float) -> str:
    """One-line 'measured vs paper' comparison used by EXPERIMENTS.md dumps."""
    if paper == 0:
        return f"measured={measured:.4g} paper=0"
    return (
        f"measured={measured:.4g} paper={paper:.4g} "
        f"ratio={measured / paper:.2f}x"
    )
