"""Job model for the simulation service (DESIGN.md §10).

A :class:`JobRequest` is a *parametric* description of work — never raw
arrays — so it travels as one JSON object over the wire and pickles
cheaply to pool workers.  Two request kinds map onto the repo's two
execution entry points:

* ``kernel`` — one strategy-kernel evaluation (`repro.core.kernels.
  run_kernel`) on a deterministically built water box;
* ``md``     — a full engine run (`repro.core.engine.SWGromacsEngine`)
  with minimisation + thermalisation, mirroring ``repro run``.

Every execution path here is a pure function of the request: the same
request always produces bit-identical results, which is what makes
request-level deduplication (``batcher.py``) *safe* rather than merely
plausible.  Two fingerprints capture that:

* :meth:`JobRequest.fingerprint` — BLAKE2b over the canonical execution
  parameters (tenant/priority/timeout excluded: they affect *when*, not
  *what*).  Identical fingerprints ⇒ identical results ⇒ one execution
  fans out to every waiter.
* :meth:`JobRequest.system_key` — the subset that pins the particle
  system and pair list.  Requests sharing a system key but differing in
  strategy spec are *compatible*: :func:`execute_batch` runs them on one
  worker with one shared :class:`~repro.core.stepcache.StepCache`, so
  the functional force evaluation is shared through the cache's position
  fingerprints exactly as a Fig. 8/9 sweep shares it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields

import numpy as np

from repro.core.stepcache import StepCache, position_fingerprint

#: Request kinds.
KIND_KERNEL = "kernel"
KIND_MD = "md"
JOB_KINDS = (KIND_KERNEL, KIND_MD)

#: Strategy-spec names accepted for ``kernel`` requests (validated
#: lazily against `repro.core.kernels.ALL_SPECS` on first use).
_SPEC_NAMES: tuple[str, ...] | None = None


def _spec_names() -> tuple[str, ...]:
    global _SPEC_NAMES
    if _SPEC_NAMES is None:
        from repro.core.kernels import ALL_SPECS

        _SPEC_NAMES = tuple(sorted(ALL_SPECS))
    return _SPEC_NAMES


class InvalidRequestError(ValueError):
    """A request that can never execute (bad kind/spec/sizes)."""


@dataclass(frozen=True)
class JobRequest:
    """One unit of client-visible work.

    Execution-relevant fields feed the fingerprint; scheduling fields
    (``tenant``, ``priority``, ``timeout_s``) do not — a high-priority
    request deduplicates against a low-priority identical one.
    """

    kind: str = KIND_KERNEL
    n_particles: int = 900
    spec: str = "MARK"  # kernel strategy (kernel kind only)
    steps: int = 5  # md step count (md kind only)
    level: int = 3  # md optimisation level (md kind only)
    r_cut: float = 0.9
    seed: int = 2019
    tenant: str = "default"
    priority: int = 0  # larger = served sooner within a tenant
    timeout_s: float | None = None  # wall deadline from admission
    #: Return the per-particle force block in the payload (kernel kind
    #: only).  Execution-relevant — it changes the payload shape — so it
    #: joins the fingerprint, but only when True: default requests keep
    #: their historical fingerprints (and durable result-store keys).
    return_forces: bool = False
    #: Scenario spec text (DESIGN.md §15), e.g. ``"water@spce n=1500
    #: ensemble=nvt elec=rf"``.  When set, the *concretized* spec
    #: replaces ``n_particles``/``spec``/``level``/``r_cut``/``seed`` as
    #: the system/strategy description: the fingerprint and system key
    #: derive from the concrete canonical form, so two textually
    #: different spellings that concretize identically deduplicate.
    scenario: str | None = None

    def validate(self) -> None:
        """Raise :class:`InvalidRequestError` on a request that can
        never execute (checked at admission, not deep in a worker)."""
        if self.kind not in JOB_KINDS:
            raise InvalidRequestError(
                f"unknown job kind {self.kind!r}; expected one of {JOB_KINDS}"
            )
        if self.scenario is not None:
            # Concretization IS the validation: dependency/conflict
            # violations surface here, at admission, with the violated
            # rule named — never as a runtime build failure.
            from repro.scenarios.spec import SpecError

            try:
                self.resolved_scenario()
            except SpecError as exc:
                raise InvalidRequestError(
                    f"invalid scenario spec: {exc}"
                ) from exc
        if (
            self.scenario is None
            and self.kind == KIND_KERNEL
            and self.spec not in _spec_names()
        ):
            raise InvalidRequestError(
                f"unknown kernel spec {self.spec!r}; known: {_spec_names()}"
            )
        if self.scenario is None and self.n_particles < 3:
            raise InvalidRequestError(
                f"n_particles must be >= 3: {self.n_particles}"
            )
        if self.kind == KIND_MD and self.steps < 1:
            raise InvalidRequestError(f"steps must be >= 1: {self.steps}")
        if self.kind == KIND_MD and not 0 <= self.level <= 3:
            raise InvalidRequestError(f"level must be 0..3: {self.level}")
        if self.r_cut <= 0:
            raise InvalidRequestError(f"r_cut must be > 0: {self.r_cut}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise InvalidRequestError(
                f"timeout_s must be > 0 when set: {self.timeout_s}"
            )
        if self.return_forces and self.kind != KIND_KERNEL:
            raise InvalidRequestError(
                "return_forces is only meaningful for kernel requests"
            )

    # -- identity ----------------------------------------------------------
    def resolved_scenario(self):
        """The concretized :class:`~repro.scenarios.spec.ScenarioSpec`
        for :attr:`scenario`, or None.  Cached on the spec text, so
        fingerprint/system-key access stays cheap."""
        if self.scenario is None:
            return None
        from repro.scenarios.spec import concretize_text

        return concretize_text(self.scenario)

    @property
    def kernel_spec_name(self) -> str:
        """Strategy-kernel name to execute: the scenario rung's rung->
        strategy mapping when a spec is set, else :attr:`spec`."""
        if self.scenario is not None:
            from repro.scenarios.registry import kernel_spec_name_for

            return kernel_spec_name_for(self.resolved_scenario())
        return self.spec

    def canonical(self) -> dict:
        """Execution-relevant fields only, in a fixed order.

        Spec-bearing requests canonicalize through the *concrete* spec
        string: ``"water elec=rf"`` and ``"water@spc"`` share one
        fingerprint because they concretize identically (the satellite
        dedup fix — the batcher and durable store key on this).
        """
        if self.scenario is not None:
            out = {
                "kind": self.kind,
                "scenario": self.resolved_scenario().to_string(),
            }
            if self.kind == KIND_MD:
                out["steps"] = int(self.steps)
            if self.return_forces:
                out["return_forces"] = True
            return out
        out = {
            "kind": self.kind,
            "n_particles": int(self.n_particles),
            "r_cut": float(self.r_cut),
            "seed": int(self.seed),
        }
        if self.kind == KIND_KERNEL:
            out["spec"] = self.spec
        else:
            out["steps"] = int(self.steps)
            out["level"] = int(self.level)
        if self.return_forces:
            out["return_forces"] = True
        return out

    @property
    def fingerprint(self) -> str:
        """Dedup key: BLAKE2b over the canonical parameter JSON."""
        blob = json.dumps(self.canonical(), sort_keys=True).encode()
        return hashlib.blake2b(blob, digest_size=16).hexdigest()

    @property
    def system_key(self) -> tuple:
        """Batching-compatibility key: requests sharing it run against
        the same particle system, pair list, *and* nonbonded parameters,
        so one worker can serve them all off one shared `StepCache`.

        Spec-bearing requests key on the concrete spec's system-defining
        subset (family/version/n/seed/rcut/temp/elec/...), which is also
        what the fleet ring routes on — residency affinity and sharded
        dedup locality hold for scenarios exactly as for legacy keys.
        """
        if self.scenario is not None:
            return (
                self.kind,
                "scenario",
                self.resolved_scenario().system_canonical(),
            )
        return (
            self.kind,
            int(self.n_particles),
            float(self.r_cut),
            int(self.seed),
        )

    # -- wire format -------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobRequest":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise InvalidRequestError(
                f"unknown request field(s): {sorted(unknown)}"
            )
        return cls(**data)


@dataclass(frozen=True)
class JobError:
    """Structured failure/rejection reason (wire-stable)."""

    code: str
    message: str

    def to_dict(self) -> dict:
        return {"code": self.code, "message": self.message}

    @classmethod
    def from_dict(cls, data: dict) -> "JobError":
        return cls(code=data["code"], message=data["message"])


@dataclass
class JobResult:
    """Terminal outcome of one accepted job.

    ``payload`` carries the kind-specific numbers (see the executors
    below); ``executed`` is False when the result was fanned out from a
    deduplicated sibling execution; ``attempts`` counts executions
    including retries (0 for pure fan-out recipients).  ``result_code``
    distinguishes non-execution completions — ``duplicate_completed``
    when the durable result store answered a fingerprint it had already
    seen (possibly in a previous service incarnation) — from fresh or
    fanned-out executions (None).
    """

    job_id: int
    fingerprint: str
    kind: str
    ok: bool
    payload: dict | None = None
    error: JobError | None = None
    executed: bool = True
    attempts: int = 1
    queue_seconds: float = 0.0
    execute_seconds: float = 0.0
    result_code: str | None = None

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "ok": self.ok,
            "payload": json_safe_payload(self.payload),
            "error": self.error.to_dict() if self.error else None,
            "executed": self.executed,
            "attempts": self.attempts,
            "queue_seconds": self.queue_seconds,
            "execute_seconds": self.execute_seconds,
            "result_code": self.result_code,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobResult":
        err = data.get("error")
        return cls(
            job_id=data["job_id"],
            fingerprint=data["fingerprint"],
            kind=data["kind"],
            ok=data["ok"],
            payload=data.get("payload"),
            error=JobError.from_dict(err) if err else None,
            executed=data.get("executed", True),
            attempts=data.get("attempts", 1),
            queue_seconds=data.get("queue_seconds", 0.0),
            execute_seconds=data.get("execute_seconds", 0.0),
            result_code=data.get("result_code"),
        )


# ---------------------------------------------------------------------------
# Execution (pure functions of the request; pool-worker safe)
# ---------------------------------------------------------------------------


def _build_request_system(request: JobRequest):
    """Deterministic system + nonbonded params for a request.

    Spec-bearing requests build through the scenario registry; legacy
    requests keep the historical water path bit-for-bit (a water spec
    with matching n/seed/rcut produces the identical system — the
    registry calls the same builder with the same arguments).
    """
    if request.scenario is not None:
        from repro.scenarios.registry import build_scenario

        return build_scenario(request.resolved_scenario())
    from repro.md.nonbonded import NonbondedParams
    from repro.md.water import build_water_system

    nb = NonbondedParams(
        r_cut=request.r_cut, r_list=request.r_cut + 0.1, coulomb_mode="rf"
    )
    system = build_water_system(request.n_particles, seed=request.seed)
    return system, nb


def _kernel_payload(result, forces: np.ndarray) -> dict:
    return {
        "energy": float(result.energy),
        "forces_fp": position_fingerprint(forces).hex(),
        "modelled_seconds": float(result.elapsed_seconds),
        "breakdown": {k: float(v) for k, v in result.breakdown.items()},
    }


def json_safe_payload(payload: dict | None) -> dict | None:
    """Payload with array/handle values reduced to JSON types.

    In-process consumers see force blocks as ndarrays (zero extra
    copies); the wire (`JobResult.to_dict`) and the durable result store
    serialise to JSON, where arrays become nested lists and any
    unresolved arena descriptor becomes its dict form.
    """
    if payload is None:
        return None
    out: dict = {}
    for key, val in payload.items():
        if isinstance(val, np.ndarray):
            out[key] = val.tolist()
        elif hasattr(val, "to_dict"):
            out[key] = val.to_dict()
        else:
            out[key] = val
    return out


def execute_kernel_request(
    request: JobRequest, cache: StepCache | None = None
) -> dict:
    """Run one strategy kernel for ``request`` (the direct path the
    served result is pinned against in ``tests/serve/``)."""
    from repro.core.kernels import ALL_SPECS, run_kernel
    from repro.md.pairlist import build_pair_list

    system, nb = _build_request_system(request)
    plist = build_pair_list(system, nb.r_list)
    result = run_kernel(
        system, plist, nb, ALL_SPECS[request.kernel_spec_name], cache=cache
    )
    payload = _kernel_payload(result, result.forces)
    if request.return_forces:
        payload["forces"] = np.ascontiguousarray(result.forces)
    return payload


def execute_md_request(request: JobRequest, progress=None) -> dict:
    """Run the full engine for ``request`` (mirrors ``repro run``).

    ``progress`` is an optional :class:`~repro.durable.progress.
    ProgressWriter`-shaped object; the engine's step loop publishes
    partial step counts through it (functional no-op on results).
    """
    import numpy as _np

    from repro.core.engine import EngineConfig, SWGromacsEngine
    from repro.md.mdloop import MdConfig
    from repro.md.minimize import minimize

    system, nb = _build_request_system(request)
    minimize(system, MdConfig(nonbonded=nb), n_steps=60)
    if request.scenario is not None:
        from repro.scenarios.registry import engine_config_for

        spec = request.resolved_scenario()
        system.thermalize(spec.temp, _np.random.default_rng(spec.seed + 1))
        config = engine_config_for(
            spec,
            report_interval=max(request.steps // 5, 1),
            backend="serial",  # pool workers force nested-serial anyway
        )
    else:
        system.thermalize(300.0, _np.random.default_rng(request.seed + 1))
        config = EngineConfig(
            nonbonded=nb,
            optimization_level=request.level,
            report_interval=max(request.steps // 5, 1),
            backend="serial",  # pool workers force nested-serial anyway
        )
    engine = SWGromacsEngine(system, config)
    result = engine.run(request.steps, progress=progress)
    return result.summary()


def execute_request(request: JobRequest) -> dict:
    """Execute one request in the calling process (serial reference)."""
    request.validate()
    if request.kind == KIND_KERNEL:
        return execute_kernel_request(request)
    return execute_md_request(request)


@dataclass(frozen=True)
class BatchOutcome:
    """What one worker hands back for one execution batch."""

    payloads: list[dict]  # aligned with the batch's distinct requests
    cache_stats: dict = field(default_factory=dict)
    #: Resident-cache snapshot of the executing worker (occupancy,
    #: capacity); empty on the cold path (DESIGN.md §14).
    resident: dict = field(default_factory=dict)


def execute_batch(
    requests: tuple[JobRequest, ...],
    progress_paths: dict[str, str] | None = None,
) -> BatchOutcome:
    """Execute a batch of *distinct* requests on one worker.

    Kernel requests sharing a :attr:`JobRequest.system_key` share one
    system build, one pair list, and one :class:`StepCache`, so the
    functional short-range evaluation runs once per (work list,
    positions) — identical sharing, and therefore identical results, to
    `run_strategy_sweep` (bit-identity is test-enforced there and
    re-asserted against the direct path in ``tests/serve/``).  MD and
    non-matching requests execute independently.

    ``progress_paths`` (fingerprint → file path) threads per-unit
    progress files into MD executions for the ``progress`` wire op.
    """
    from repro.core.kernels import ALL_SPECS, run_kernel
    from repro.md.pairlist import build_pair_list

    payloads: list[dict | None] = [None] * len(requests)
    cache_stats = {"sr_evals": 0, "sr_hits": 0}

    # Group kernel requests by system key, preserving batch order.
    groups: dict[tuple, list[int]] = {}
    for idx, req in enumerate(requests):
        if req.kind == KIND_KERNEL:
            groups.setdefault(req.system_key, []).append(idx)
        else:
            payloads[idx] = execute_md_request(
                req, progress=_progress_writer(req, progress_paths)
            )

    for indices in groups.values():
        first = requests[indices[0]]
        system, nb = _build_request_system(first)
        plist = build_pair_list(system, nb.r_list)
        cache = StepCache()
        for idx in indices:
            req = requests[idx]
            result = run_kernel(
                system, plist, nb, ALL_SPECS[req.kernel_spec_name], cache=cache
            )
            payloads[idx] = _kernel_payload(result, result.forces)
            if req.return_forces:
                payloads[idx]["forces"] = np.ascontiguousarray(result.forces)
        cache_stats["sr_evals"] += cache.stats.sr_evals
        cache_stats["sr_hits"] += cache.stats.sr_hits

    return BatchOutcome(payloads=list(payloads), cache_stats=cache_stats)


def _progress_writer(request: JobRequest, progress_paths: dict | None):
    """A ProgressWriter for this unit's file, or None."""
    if not progress_paths:
        return None
    path = progress_paths.get(request.fingerprint)
    if path is None:
        return None
    from repro.durable.progress import ProgressWriter, progress_interval

    return ProgressWriter(path, interval=progress_interval(request.steps))


def execute_batch_task(task: tuple) -> BatchOutcome:
    """Pool-mappable wrapper: ``(requests, progress_paths)`` in one
    picklable item (``backend.map`` passes exactly one argument)."""
    requests, progress_paths = task
    return execute_batch(requests, progress_paths=progress_paths)
