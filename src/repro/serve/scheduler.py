"""Fair-share tenant scheduling (DESIGN.md §10).

Classic virtual-time fair queueing, sized for a job queue rather than a
packet switch: every tenant carries a *virtual service time* — the job
count it has been charged so far — and dispatch always picks the backlogged
tenant with the smallest one (name order breaks ties, so the schedule is
deterministic and replayable).

Two details keep it honest over a long-lived service:

* A tenant that goes idle and returns re-enters at
  ``max(own_time, min over backlogged tenants)`` — it cannot bank idle
  time and then starve everyone (the standard virtual-clock catch-up).
* Batches may carry several tenants' jobs (cross-tenant dedup); each
  tenant is charged exactly its own member count, so sharing an
  execution never shifts cost between tenants.
"""

from __future__ import annotations


class FairShareScheduler:
    """Pick the next tenant to serve; charge service as it happens."""

    def __init__(self) -> None:
        self._vtime: dict[str, float] = {}

    def pick(self, backlogged: list[str]) -> str:
        """Tenant to serve next among those with queued work."""
        if not backlogged:
            raise ValueError("no backlogged tenants to pick from")
        # The floor is taken over tenants with service history only: an
        # unknown (new or long-idle) tenant must not drag it to zero,
        # or it would never be caught up.
        known = [self._vtime[t] for t in backlogged if t in self._vtime]
        floor = min(known) if known else 0.0
        for t in backlogged:
            # Catch-up: a new or long-idle tenant starts at the current
            # floor instead of zero.
            self._vtime[t] = max(self._vtime.get(t, floor), floor)
        return min(backlogged, key=lambda t: (self._vtime[t], t))

    def charge(self, shares: dict[str, float]) -> None:
        """Charge dispatched work (jobs per tenant) to virtual time."""
        for tenant, cost in shares.items():
            self._vtime[tenant] = self._vtime.get(tenant, 0.0) + cost

    def virtual_time(self, tenant: str) -> float:
        return self._vtime.get(tenant, 0.0)

    def as_dict(self) -> dict[str, float]:
        return dict(sorted(self._vtime.items()))
