"""Worker-resident simulation state (DESIGN.md §14).

Every served kernel job used to pay a *cold build* — system
construction, cluster pair-list build, and `StepCache` priming — which
BENCH_step.json shows is 5-7x the cost of one steady-state step.  This
module keeps that state *resident* in the executing process across
batches: a bounded LRU of :class:`ResidentEntry` objects keyed by
``(system_key, execution-relevant config fingerprint)``.  A hit skips
the build entirely; the warm `StepCache` then shares the functional
short-range evaluation across the batch exactly as the cold path does.

Bit-identity is the contract, residency only moves *when* state is
built, never *what* is computed:

* `run_kernel` is a pure function of (system, plist, nb, spec) — it
  never mutates positions — so a resident system is byte-equal to a
  freshly built one (the drift guard below re-checks this on every
  lookup and invalidates instead of trusting it).
* warm `StepCache` reuse is already proven bitwise identical to cold
  evaluation (tests/core/test_stepcache.py); the vectorized
  `CompactPanels` buffer pools memoise *on the resident pair list*
  (``PANEL_CACHE_ATTR``), so they ride along and are dropped with it.
* the config fingerprint folds in `resolve_kernel_impl(None)`: if the
  worker's ``REPRO_KERNEL`` resolution changes, the key changes, and
  stale-impl state can never answer.

Residency is kernel-kind only.  MD jobs thermalize and integrate —
their positions *must* drift — so they execute cold, as before.

Affinity (the reason residency hits): :func:`lane_for_system` mirrors
the fleet's consistent-hash ring one level down, mapping a
``system_key`` onto a pool *lane* (`repro.parallel.pool.PoolBackend`
per-lane executors), so consecutive batches for one system land in the
process already holding it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.stepcache import StepCache, position_fingerprint
from repro.parallel.pool import ArenaHandle
from repro.serve.jobs import (
    KIND_KERNEL,
    BatchOutcome,
    JobRequest,
    _build_request_system,
    _kernel_payload,
    _progress_writer,
    execute_md_request,
)

#: Default bound on resident systems per worker process.  Entries are a
#: system + pair list + StepCache worth of arrays; four of the serve
#: tier's default 300-particle boxes is ~single-digit MB.
DEFAULT_RESIDENT_CAPACITY = 4


def config_fingerprint() -> tuple:
    """Execution-relevant configuration of *this* process.

    Joins the residency key so entries built under one configuration
    can never answer under another.  Currently the resolved kernel
    implementation (explicit env ``REPRO_KERNEL`` or the scalar
    default) — the one process-level knob that selects between
    bit-identical evaluation paths but distinct cached buffer shapes.
    """
    from repro.core.vectorized import resolve_kernel_impl

    return ("impl", resolve_kernel_impl(None))


def resident_key(request: JobRequest) -> tuple:
    """LRU key for ``request``: system identity x process config."""
    return (request.system_key, config_fingerprint())


@dataclass
class ResidentEntry:
    """One warm system: everything a kernel batch needs, pre-built."""

    system: object
    nb: object
    plist: object
    cache: StepCache
    positions_fp: bytes
    hits: int = 0


@dataclass
class ResidentStats:
    """Process-lifetime residency counters (reported as deltas)."""

    hits: int = 0
    misses: int = 0
    builds: int = 0
    evictions: int = 0
    invalidations: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "resident_hits": self.hits,
            "resident_misses": self.misses,
            "resident_builds": self.builds,
            "resident_evictions": self.evictions,
            "resident_invalidations": self.invalidations,
        }


class ResidentCache:
    """Bounded LRU of :class:`ResidentEntry` keyed by :func:`resident_key`.

    Invalidation rules (DESIGN.md §14):

    * **drift guard** — on every hit the entry's stored position
      fingerprint is re-checked against the live system; any mismatch
      (something mutated a resident system) invalidates the entry and
      rebuilds cold.  Residency can go *slow*, never *wrong*.
    * **LRU pressure** — exceeding ``capacity`` evicts the
      least-recently-used entry and invalidates its `StepCache` (which
      also drops the pair list's panel/gather memos).
    * **process death** — entries live in worker memory only; a lane
      crash discards the process and the next batch rebuilds cold
      (test-enforced in tests/serve/test_residency.py).
    """

    def __init__(self, capacity: int = DEFAULT_RESIDENT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"resident capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._entries: dict[tuple, ResidentEntry] = {}  # insertion = LRU order
        self.stats = ResidentStats()

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[tuple]:
        return list(self._entries)

    def set_capacity(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"resident capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._evict_over_capacity()

    # -- lookup ------------------------------------------------------------
    def get_or_build(self, request: JobRequest) -> ResidentEntry:
        """Warm entry for ``request``'s system, building on miss."""
        key = resident_key(request)
        entry = self._entries.get(key)
        if entry is not None:
            if position_fingerprint(entry.system.positions) != entry.positions_fp:
                # Drift guard: resident positions no longer match the
                # deterministic build — never answer from mutated state.
                self._drop(key)
                self.stats.invalidations += 1
                entry = None
            else:
                # Refresh LRU position (dicts preserve insertion order).
                del self._entries[key]
                self._entries[key] = entry
                self.stats.hits += 1
                entry.hits += 1
                return entry

        self.stats.misses += 1
        entry = self._build(request)
        self.stats.builds += 1
        self._entries[key] = entry
        self._evict_over_capacity()
        return entry

    def invalidate(self, key: tuple | None = None) -> int:
        """Drop one entry (or all with ``None``); returns count dropped."""
        keys = [key] if key is not None else list(self._entries)
        dropped = 0
        for k in keys:
            if k in self._entries:
                self._drop(k)
                self.stats.invalidations += 1
                dropped += 1
        return dropped

    # -- internals ---------------------------------------------------------
    def _build(self, request: JobRequest) -> ResidentEntry:
        from repro.md.pairlist import build_pair_list

        system, nb = _build_request_system(request)
        plist = build_pair_list(system, nb.r_list)
        return ResidentEntry(
            system=system,
            nb=nb,
            plist=plist,
            cache=StepCache(),
            positions_fp=position_fingerprint(system.positions),
        )

    def _drop(self, key: tuple) -> None:
        entry = self._entries.pop(key)
        entry.cache.invalidate()

    def _evict_over_capacity(self) -> None:
        while len(self._entries) > self.capacity:
            oldest = next(iter(self._entries))
            self._drop(oldest)
            self.stats.evictions += 1

    def stats_dict(self) -> dict[str, int]:
        out = self.stats.as_dict()
        out["resident_occupancy"] = len(self._entries)
        return out


# ---------------------------------------------------------------------------
# Process-global cache (what pool-lane workers actually use)
# ---------------------------------------------------------------------------

_PROCESS_CACHE: ResidentCache | None = None


def process_resident_cache(
    capacity: int = DEFAULT_RESIDENT_CAPACITY,
) -> ResidentCache:
    """The calling process's resident cache (created on first use).

    Lane workers are long-lived single processes, so module state *is*
    the residency store; ``capacity`` re-bounds an existing cache
    (evicting LRU-first) rather than replacing it.
    """
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = ResidentCache(capacity)
    elif _PROCESS_CACHE.capacity != capacity:
        _PROCESS_CACHE.set_capacity(capacity)
    return _PROCESS_CACHE


def reset_process_cache() -> None:
    """Drop this process's resident cache (tests / worker recycling)."""
    global _PROCESS_CACHE
    if _PROCESS_CACHE is not None:
        _PROCESS_CACHE.invalidate()
    _PROCESS_CACHE = None


# ---------------------------------------------------------------------------
# Affinity: system_key -> pool lane (the fleet ring, one level down)
# ---------------------------------------------------------------------------

_LANE_RINGS: dict[int, object] = {}


def lane_for_system(system_key: tuple, lane_count: int) -> int:
    """Deterministic lane owning ``system_key``.

    Consistent hash over lane ids ``lane-0..N-1`` using the same
    ring/stable-key machinery the fleet router uses over workers, so
    the serve tier's placement argument (jobs sharing a system key land
    together) holds at both levels.  Imported lazily: `repro.fleet`
    imports the serve layer at module scope, so a top-level import here
    would cycle.
    """
    if lane_count <= 1:
        return 0
    ring = _LANE_RINGS.get(lane_count)
    if ring is None:
        from repro.fleet.ring import HashRing

        ring = HashRing()
        for lane in range(lane_count):
            ring.add(f"lane-{lane}")
        _LANE_RINGS[lane_count] = ring
    from repro.fleet.ring import stable_key

    return int(ring.route(stable_key(system_key)).split("-", 1)[1])


# ---------------------------------------------------------------------------
# Resident batch execution (pool-mappable, mirrors jobs.execute_batch)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResidentBatchTask:
    """One picklable resident-execution submission for a pool lane."""

    requests: tuple[JobRequest, ...]
    progress_paths: dict | None = None
    capacity: int = DEFAULT_RESIDENT_CAPACITY
    arena: ArenaHandle | None = None


def execute_batch_with(
    cache: ResidentCache,
    requests: tuple[JobRequest, ...],
    progress_paths: dict | None = None,
    arena: ArenaHandle | None = None,
) -> BatchOutcome:
    """Execute a batch against ``cache`` (resident twin of
    `repro.serve.jobs.execute_batch`).

    Payloads are bit-identical to the cold path: residency reuses the
    exact sharing `execute_batch` already had (one system / pair list /
    `StepCache` per system-key group), only across *batches* instead of
    within one.  Counters are reported as **per-batch deltas** — a warm
    `StepCache` accumulates over its lifetime, and the service sums
    outcome stats per batch.

    When ``arena`` is given, requested force blocks are packed into the
    shared-memory arena and payloads carry small ``forces_ref``
    descriptors instead of pickled arrays (overflow falls back to
    in-payload arrays — slower, never wrong).
    """
    from repro.core.kernels import ALL_SPECS, run_kernel

    payloads: list[dict | None] = [None] * len(requests)

    groups: dict[tuple, list[int]] = {}
    for idx, req in enumerate(requests):
        if req.kind == KIND_KERNEL:
            groups.setdefault(req.system_key, []).append(idx)
        else:
            payloads[idx] = execute_md_request(
                req, progress=_progress_writer(req, progress_paths)
            )

    stats0 = cache.stats.as_dict()
    cache_stats = {"sr_evals": 0, "sr_hits": 0}
    force_blocks: list[tuple[int, np.ndarray]] = []
    for indices in groups.values():
        entry = cache.get_or_build(requests[indices[0]])
        sr_evals0 = entry.cache.stats.sr_evals
        sr_hits0 = entry.cache.stats.sr_hits
        for idx in indices:
            req = requests[idx]
            result = run_kernel(
                entry.system,
                entry.plist,
                entry.nb,
                ALL_SPECS[req.kernel_spec_name],
                cache=entry.cache,
            )
            payloads[idx] = _kernel_payload(result, result.forces)
            if getattr(req, "return_forces", False):
                force_blocks.append((idx, result.forces))
        cache_stats["sr_evals"] += entry.cache.stats.sr_evals - sr_evals0
        cache_stats["sr_hits"] += entry.cache.stats.sr_hits - sr_hits0

    _attach_forces(payloads, force_blocks, arena)

    stats1 = cache.stats.as_dict()
    for key, val in stats1.items():
        cache_stats[key] = val - stats0[key]
    resident = {"occupancy": len(cache), "capacity": cache.capacity}
    return BatchOutcome(
        payloads=list(payloads), cache_stats=cache_stats, resident=resident
    )


def _attach_forces(
    payloads: list,
    force_blocks: list[tuple[int, np.ndarray]],
    arena: ArenaHandle | None,
) -> None:
    """Attach requested force arrays: arena refs when they fit, inline
    ndarrays otherwise (the caller JSON-sanitises at wire boundaries)."""
    if not force_blocks:
        return
    refs = None
    if arena is not None:
        refs = arena.pack([forces for _, forces in force_blocks])
    if refs is not None:
        for (idx, _), ref in zip(force_blocks, refs):
            payloads[idx]["forces_ref"] = ref
    else:
        for idx, forces in force_blocks:
            payloads[idx]["forces"] = np.ascontiguousarray(forces)


def execute_batch_resident(task: ResidentBatchTask) -> BatchOutcome:
    """Pool-mappable resident execution (runs in a lane worker; uses
    the process-global cache so state survives across submissions)."""
    cache = process_resident_cache(task.capacity)
    return execute_batch_with(
        cache, task.requests, task.progress_paths, task.arena
    )


# ---------------------------------------------------------------------------
# Warmup (the `warmup` wire op's worker half)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WarmupTask:
    """Pre-build residency for one request before a burst."""

    request: JobRequest
    capacity: int = DEFAULT_RESIDENT_CAPACITY


def warmup_with(cache: ResidentCache, request: JobRequest) -> dict:
    """Build (or refresh) residency for ``request``'s system in ``cache``.

    Runs one real kernel evaluation through the resident `StepCache` so
    the first post-warmup job is a pure hit — short-range result,
    packed layouts, partitions, and panel pools all primed with exactly
    the keys `run_kernel` will ask for.  MD requests are not resident
    (their positions must drift) and report so instead of building.
    """
    if request.kind != KIND_KERNEL:
        return {"resident": False, "reason": "md jobs execute cold"}
    from repro.core.kernels import ALL_SPECS, run_kernel

    builds0 = cache.stats.builds
    entry = cache.get_or_build(request)
    run_kernel(
        entry.system, entry.plist, entry.nb,
        ALL_SPECS[request.kernel_spec_name],
        cache=entry.cache,
    )
    return {
        "resident": True,
        "built": cache.stats.builds > builds0,
        "occupancy": len(cache),
        "capacity": cache.capacity,
    }


def warmup_job(task: WarmupTask) -> dict:
    """Pool-mappable warmup (runs in a lane worker against the
    process-global cache)."""
    if task.request.kind != KIND_KERNEL:
        return {"resident": False, "reason": "md jobs execute cold"}
    return warmup_with(process_resident_cache(task.capacity), task.request)
