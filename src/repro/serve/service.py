"""The long-lived asyncio simulation service (DESIGN.md §10).

Dataflow, request to result::

    client ──admit──▶ JobQueue ──pick──▶ FairShareScheduler
                                  │
                            Batcher.collect          (dedup + batching)
                                  │
                        backend.map(execute_batch)   (one pool worker)
                                  │
                            fan-out to waiters ──▶ JobResult futures

The service owns one asyncio event loop; every data structure above is
touched only from that loop, so there is no locking — blocking work
(the pool ``map`` call) runs in ``asyncio.to_thread`` and returns to the
loop for fan-out.  Concurrency across batches is capped by a semaphore
sized to the backend's worker count, which is how jobs "pack onto pool
workers": each in-flight batch occupies exactly one worker.

Guarantees (test-enforced in ``tests/serve/``):

* **bit-identity** — a served payload equals the direct
  `run_kernel`/engine call for the same request, including through dedup
  and batching;
* **no lost jobs** — an accepted job always resolves: payload,
  structured error, or completion during graceful drain;
* **deterministic admission** — over-capacity submissions are rejected
  with a wire-stable reason code, never dropped;
* **clean drain** — :meth:`SimulationService.drain` stops admission,
  finishes every accepted job, closes the shared pool backend
  (`repro.parallel.pool.close_shared_backend`), and wakes
  :meth:`run_until_drained`.

Failures and deadlines are charged through the resilience layer's
:class:`~repro.resilience.retry.RetryPolicy`: a crashed worker or
transient execution error is reissued with exponential backoff up to
``max_attempts``; a job whose deadline lapses is failed with a
structured ``timeout``/``deadline_expired`` error instead of silently
running forever.

With ``journal_dir`` set, the durable layer (DESIGN.md §12) extends
"no lost jobs" across process death: acceptance and resolution are
journaled (`repro.durable.journal`), a restarted service replays the
difference bit-identically, completed payloads persist in the
fingerprint→result store (`repro.durable.results`) and answer
duplicate submissions — across restarts — with the structured
``duplicate_completed`` result code.  Per-tenant SLO metrics
(`repro.durable.slo`) and the streaming ``progress`` op are always on.
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.durable.journal import JobJournal, JournalRecovery
from repro.durable.progress import read_progress
from repro.durable.results import CODE_DUPLICATE_COMPLETED, ResultStore
from repro.durable.slo import SloTracker
from repro.parallel.pool import (
    ArenaHandle,
    WorkerCrashError,
    close_shared_backend,
    shared_backend,
)
from repro.resilience.retry import DEFAULT_RETRY, RetryPolicy
from repro.serve.batcher import Batch, Batcher
from repro.serve.jobs import (
    KIND_MD,
    BatchOutcome,
    InvalidRequestError,
    JobError,
    JobRequest,
    JobResult,
    execute_batch,
    execute_batch_task,
    json_safe_payload,
)
from repro.serve.residency import (
    DEFAULT_RESIDENT_CAPACITY,
    ResidentBatchTask,
    ResidentCache,
    WarmupTask,
    execute_batch_resident,
    execute_batch_with,
    lane_for_system,
    warmup_job,
    warmup_with,
)
from repro.serve.queue import (
    REASON_DEADLINE,
    REASON_EXECUTION,
    REASON_INVALID,
    REASON_TIMEOUT,
    Job,
    JobQueue,
)
from repro.serve.scheduler import FairShareScheduler
from repro.trace.events import (
    CAT_DURABLE,
    CAT_SERVE,
    NULL_TRACER,
    SERVE_TRACK,
    NullTracer,
)


class AdmissionRejected(RuntimeError):
    """Raised by the in-process API when admission control says no."""

    def __init__(self, error: JobError) -> None:
        super().__init__(f"{error.code}: {error.message}")
        self.error = error


@dataclass
class ServeConfig:
    """Service knobs: capacity, batching, execution, and retry."""

    #: Admission window (total queued jobs).
    max_depth: int = 64
    #: Optional per-tenant queued-job cap.
    max_per_tenant: int | None = None
    #: Max distinct execution units per dispatched batch.
    max_batch: int = 16
    #: Coalesce identical/compatible requests (False = ablation baseline).
    dedup: bool = True
    #: Concurrent in-flight batches (None = backend worker count).
    max_inflight: int | None = None
    #: Host execution backend selection (`repro.parallel.pool`).
    backend: str | None = None
    workers: int | None = None
    #: Reissue policy for crashed/failed executions.
    retry: RetryPolicy = field(default_factory=lambda: DEFAULT_RETRY)
    #: Wall seconds per modelled backoff cycle (the service waits for
    #: real time, not simulated time; 1 µs/cycle puts the default
    #: policy's first backoff at 2 ms).
    backoff_cycle_s: float = 1e-6
    #: Durable layer root (DESIGN.md §12).  None = in-memory only; set
    #: to enable the job journal + result store and crash-safe restart.
    journal_dir: str | None = None
    #: Result-store bound (LRU-evicted fingerprint→result entries).
    result_store_max: int = 512
    #: Journal records per segment before atomic rotation.
    journal_segment_records: int = 1024
    #: fsync after every journal record (power-loss strictness; the
    #: default flush-per-record already survives ``kill -9``).
    journal_fsync: bool = False
    #: Resident-state layer (DESIGN.md §14): workers keep warm systems
    #: across batches and the service routes batches to the lane that
    #: already holds them.  False = cold-dispatch ablation baseline.
    resident: bool = True
    #: Warm systems kept per worker process (LRU beyond this).
    resident_capacity: int = DEFAULT_RESIDENT_CAPACITY
    #: Per-lane shared-memory output arena for zero-copy force blocks
    #: (0 disables arenas; oversize blocks fall back to pickled arrays).
    arena_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1 when set: {self.max_inflight}"
            )
        if self.backoff_cycle_s < 0:
            raise ValueError(
                f"backoff_cycle_s must be >= 0: {self.backoff_cycle_s}"
            )
        if self.result_store_max < 1:
            raise ValueError(
                f"result_store_max must be >= 1: {self.result_store_max}"
            )
        if self.journal_segment_records < 1:
            raise ValueError(
                "journal_segment_records must be >= 1: "
                f"{self.journal_segment_records}"
            )
        if self.resident_capacity < 1:
            raise ValueError(
                f"resident_capacity must be >= 1: {self.resident_capacity}"
            )
        if self.arena_bytes < 0:
            raise ValueError(
                f"arena_bytes must be >= 0: {self.arena_bytes}"
            )


@dataclass
class ServiceStats:
    """Service-lifetime counters (wire-exported by the ``stats`` op)."""

    accepted: int = 0
    rejected: int = 0
    rejected_by_reason: dict = field(default_factory=dict)
    completed: int = 0
    failed: int = 0
    failed_by_reason: dict = field(default_factory=dict)
    batches: int = 0
    executed_units: int = 0
    dedup_hits: int = 0
    retries: int = 0
    #: Worker-side StepCache sharing across batched units.
    sr_evals: int = 0
    sr_hits: int = 0
    #: Resident-state layer (DESIGN.md §14): warm-system reuse across
    #: batches, summed from per-batch worker deltas (fleet-mergeable).
    resident_hits: int = 0
    resident_misses: int = 0
    resident_builds: int = 0
    resident_evictions: int = 0
    resident_invalidations: int = 0
    warmups: int = 0
    #: Durable layer: jobs replayed from the journal at restart, and
    #: submissions answered from the cross-restart result store.
    journal_replays: int = 0
    store_hits: int = 0
    drained: bool = False

    def record_failure(self, code: str, n: int = 1) -> None:
        self.failed += n
        self.failed_by_reason[code] = self.failed_by_reason.get(code, 0) + n

    def as_dict(self) -> dict:
        return {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "rejected_by_reason": dict(self.rejected_by_reason),
            "completed": self.completed,
            "failed": self.failed,
            "failed_by_reason": dict(self.failed_by_reason),
            "batches": self.batches,
            "executed_units": self.executed_units,
            "dedup_hits": self.dedup_hits,
            "retries": self.retries,
            "sr_evals": self.sr_evals,
            "sr_hits": self.sr_hits,
            "resident_hits": self.resident_hits,
            "resident_misses": self.resident_misses,
            "resident_builds": self.resident_builds,
            "resident_evictions": self.resident_evictions,
            "resident_invalidations": self.resident_invalidations,
            "warmups": self.warmups,
            "journal_replays": self.journal_replays,
            "store_hits": self.store_hits,
            "drained": self.drained,
        }


class SimulationService:
    """Queue → batcher → scheduler → pool, as one asyncio object.

    Use as an async context manager (starts/drains the scheduler), or
    call :meth:`start` / :meth:`drain` explicitly::

        async with SimulationService(ServeConfig(max_depth=8)) as svc:
            result = await svc.submit_and_wait(JobRequest(n_particles=300))
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        tracer: NullTracer = NULL_TRACER,
    ) -> None:
        self.config = config or ServeConfig()
        self.tracer = tracer
        self.queue = JobQueue(
            max_depth=self.config.max_depth,
            max_per_tenant=self.config.max_per_tenant,
        )
        self.batcher = Batcher(
            max_batch=self.config.max_batch, dedup=self.config.dedup
        )
        self.scheduler = FairShareScheduler()
        self.stats = ServiceStats()
        self.backend = None
        self.paused = False
        self._job_ids = iter(range(1, 1 << 62))
        #: Pending accepted jobs by id (for the ``wait`` op).
        self._jobs: dict[int, Job] = {}
        #: Terminal results by id (kept for the service lifetime; the
        #: queue bound keeps admission — and thus this dict — finite per
        #: drain cycle, and a drained service is done).
        self._results: dict[int, JobResult] = {}
        #: fingerprint -> jobs waiting on an *executing* unit (late
        #: arrivals join in-flight work instead of re-queueing it).
        self._inflight: dict[str, list[Job]] = {}
        self._cond: asyncio.Condition | None = None
        self._sem: asyncio.Semaphore | None = None
        self._scheduler_task: asyncio.Task | None = None
        self._batch_tasks: set[asyncio.Task] = set()
        self._servers: list[asyncio.AbstractServer] = []
        self._drained_event: asyncio.Event | None = None
        self._t0 = 0.0
        # Durable layer (None unless journal_dir is configured).
        self.slo = SloTracker()
        self.journal: JobJournal | None = None
        self.store: ResultStore | None = None
        self.recovery: JournalRecovery | None = None
        #: fingerprint -> progress file of the executing MD unit.
        self._progress_paths: dict[str, str] = {}
        self._progress_dir: str | None = None
        self._progress_tmp: str | None = None
        # Resident-state layer (DESIGN.md §14).
        #: lane -> shared-memory output arena (created lazily, parent-
        #: owned, unlinked at drain).
        self._arenas: dict[int, ArenaHandle] = {}
        #: lane -> latest worker-reported resident snapshot.
        self._lane_resident: dict[int, dict] = {}
        #: Service-owned cache for the serial (inline) execution path.
        self._serial_resident: ResidentCache | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "SimulationService":
        loop = asyncio.get_running_loop()
        self._t0 = loop.time()
        self.backend = shared_backend(self.config.backend, self.config.workers)
        inflight = self.config.max_inflight
        if inflight is None:
            inflight = max(int(getattr(self.backend, "n_workers", 1)), 1)
        self._cond = asyncio.Condition()
        self._sem = asyncio.Semaphore(inflight)
        self._drained_event = asyncio.Event()
        self._open_durable()
        if self.recovery is not None:
            self._replay_pending(self.recovery)
        self._scheduler_task = asyncio.create_task(self._scheduler_loop())
        return self

    def _open_durable(self) -> None:
        """Open (or create) the journal + result store and recover the
        previous incarnation's state; set up the progress directory."""
        if self.config.journal_dir is None:
            # Progress streaming works without durability; publish into
            # a service-owned tempdir removed at drain.
            self._progress_tmp = tempfile.mkdtemp(prefix="repro-progress-")
            self._progress_dir = self._progress_tmp
            return
        root = Path(self.config.journal_dir)
        self.journal = JobJournal(
            root / "journal",
            segment_records=self.config.journal_segment_records,
            fsync_each=self.config.journal_fsync,
        )
        self.store = ResultStore(
            root / "results", max_entries=self.config.result_store_max
        )
        progress = root / "progress"
        progress.mkdir(parents=True, exist_ok=True)
        self._progress_dir = str(progress)
        self.recovery = self.journal.recover()
        # New job ids start above everything the journal has seen, so a
        # client's pre-crash job id stays valid for ``wait``/``progress``.
        self._job_ids = iter(range(self.recovery.max_jid + 1, 1 << 62))

    def _replay_pending(self, recovery: JournalRecovery) -> None:
        """Re-enqueue every accepted-but-unresolved journaled job.

        Jobs are pure functions of their fingerprinted request, so
        re-execution is bit-identical to the run the crash interrupted.
        Replayed jobs keep their original ids, bypass admission capacity
        (they were admitted once already), and answer from the result
        store when an identical fingerprint completed before the crash.
        """
        loop = asyncio.get_running_loop()
        for pending in recovery.pending:
            try:
                request = JobRequest.from_dict(pending.request)
                request.validate()
            except (InvalidRequestError, TypeError, KeyError) as exc:
                # A journaled request that no longer parses cannot be
                # completed; resolve it as failed instead of looping.
                self.journal.failed(
                    pending.jid,
                    pending.fingerprint,
                    REASON_INVALID,
                    f"unreplayable journal record: {exc}",
                )
                continue
            now = loop.time()
            job = Job(
                request=request,
                job_id=pending.jid,
                seq=self.queue.next_seq(),
                future=loop.create_future(),
                submitted_at=now,
                journaled=True,
                replayed=True,
            )
            self.stats.accepted += 1
            self.stats.journal_replays += 1
            self._jobs[job.job_id] = job
            self.slo.observe_submitted(request.tenant)
            if self.tracer.enabled:
                self.tracer.instant(
                    "journal_replay", CAT_DURABLE, SERVE_TRACK,
                    job_id=job.job_id, tenant=request.tenant,
                    fingerprint=request.fingerprint[:8],
                )
            record = (
                self.store.get(request.fingerprint)
                if self.store is not None
                else None
            )
            if record is not None:
                # The same work completed (under another job id) before
                # the crash: answer from the store, bit-identically.
                self.stats.store_hits += 1
                self._finish(job, self._store_result(job, record))
                self.stats.completed += 1
                continue
            self.queue.push(job)

    async def __aenter__(self) -> "SimulationService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.drain()

    async def _notify(self) -> None:
        async with self._cond:
            self._cond.notify_all()

    async def pause(self) -> None:
        """Stop dispatching (admission continues; queue fills)."""
        self.paused = True

    async def resume(self) -> None:
        self.paused = False
        await self._notify()

    async def drain(self) -> ServiceStats:
        """Graceful shutdown: refuse new work, finish all accepted work,
        release the pool backend.  Idempotent."""
        if self._drained_event is None:
            raise RuntimeError("service was never started")
        self.queue.draining = True
        self.paused = False  # a paused service still drains
        await self._notify()
        if self._scheduler_task is not None:
            await self._scheduler_task
            self._scheduler_task = None
        while self._batch_tasks:
            await asyncio.gather(*tuple(self._batch_tasks))
        # close() stops accepting; in-flight connections (including the
        # one that requested this drain) finish on their own transports —
        # wait_closed() here would deadlock the drain op's own handler.
        for server in self._servers:
            server.close()
        self._servers.clear()
        close_shared_backend()
        self.backend = None
        # Arenas are parent-owned precisely so this unlink runs even
        # when lanes crashed mid-batch (no stranded /dev/shm segments).
        for arena in self._arenas.values():
            arena.unlink()
        self._arenas.clear()
        if self._serial_resident is not None:
            self._serial_resident.invalidate()
            self._serial_resident = None
        # Durable epilogue: every accepted job has resolved, so the
        # journal can seal its open segment and the store fsync its
        # directory — a restart after a clean drain replays nothing.
        if self.journal is not None:
            self.journal.close()
        if self.store is not None:
            self.store.sync()
        if self._progress_tmp is not None:
            shutil.rmtree(self._progress_tmp, ignore_errors=True)
            self._progress_tmp = None
        self.stats.drained = True
        self._drained_event.set()
        return self.stats

    async def run_until_drained(self) -> ServiceStats:
        """Block until some client (or signal handler) triggers drain."""
        await self._drained_event.wait()
        return self.stats

    # ------------------------------------------------------------------
    # in-process API
    # ------------------------------------------------------------------
    async def submit(self, request: JobRequest) -> Job:
        """Admit one request; returns the accepted :class:`Job` (await
        ``job.future`` for its :class:`JobResult`) or raises
        :class:`AdmissionRejected` with the structured reason."""
        loop = asyncio.get_running_loop()
        hit = self._try_store_hit(request, loop)
        if hit is not None:
            return hit
        decision = self.queue.admit(request)
        if not decision.accepted:
            self.stats.rejected += 1
            code = decision.error.code
            self.stats.rejected_by_reason[code] = (
                self.stats.rejected_by_reason.get(code, 0) + 1
            )
            self.slo.observe_rejected(request.tenant, code)
            if self.tracer.enabled:
                self.tracer.instant(
                    f"reject:{code}", CAT_SERVE, SERVE_TRACK,
                    tenant=request.tenant,
                )
            raise AdmissionRejected(decision.error)
        now = loop.time()
        job = Job(
            request=request,
            job_id=next(self._job_ids),
            seq=self.queue.next_seq(),
            future=loop.create_future(),
            submitted_at=now,
            deadline=(
                now + request.timeout_s
                if request.timeout_s is not None
                else None
            ),
        )
        self.stats.accepted += 1
        self._jobs[job.job_id] = job
        self.slo.observe_submitted(request.tenant)
        if self.journal is not None:
            # Journal before acknowledging: once the caller holds the
            # Job, a crash must not lose it.
            self.journal.accepted(
                job.job_id, request.fingerprint, request.tenant,
                request.to_dict(),
            )
            job.journaled = True
        fp = request.fingerprint
        if self.config.dedup and fp in self._inflight:
            # Identical work is already executing: join it instead of
            # queueing a second execution.
            self._inflight[fp].append(job)
            self.stats.dedup_hits += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    "dedup_join", CAT_SERVE, SERVE_TRACK,
                    job_id=job.job_id, fingerprint=fp[:8],
                )
            return job
        self.queue.push(job)
        await self._notify()
        return job

    async def submit_and_wait(self, request: JobRequest) -> JobResult:
        job = await self.submit(request)
        return await job.future

    async def warmup(self, request: JobRequest) -> dict:
        """Pre-build residency for ``request``'s system (the ``warmup``
        wire op): after this, the first job of a burst is a warm hit
        instead of paying the 5-7x cold build.  Returns the worker's
        report (``resident``/``built``/``occupancy``/``lane``)."""
        request.validate()
        if not self.config.resident:
            return {"resident": False, "reason": "residency disabled"}
        if self.queue.draining:
            return {"resident": False, "reason": "service is draining"}
        info = await asyncio.to_thread(self._warmup_blocking, request)
        self.stats.warmups += 1
        return info

    def _warmup_blocking(self, request: JobRequest) -> dict:
        backend = self.backend
        if backend is None or not getattr(backend, "parallel", False):
            info = warmup_with(self._serial_cache(), request)
            info["lane"] = 0
            return info
        lane = lane_for_system(request.system_key, backend.lane_count)
        task = WarmupTask(
            request=request, capacity=self.config.resident_capacity
        )
        with backend.lane_lock(lane):
            info = backend.run_on(lane, warmup_job, task)
        info["lane"] = lane
        if info.get("resident"):
            self._lane_resident[lane] = {
                "occupancy": info.get("occupancy"),
                "capacity": info.get("capacity"),
            }
        return info

    def resident_summary(self) -> dict:
        """Occupancy/hit-rate snapshot for the ``stats`` op."""
        s = self.stats
        lookups = s.resident_hits + s.resident_misses
        lanes = {
            str(lane): dict(info)
            for lane, info in sorted(self._lane_resident.items())
        }
        if self._serial_resident is not None:
            lanes["serial"] = {
                "occupancy": len(self._serial_resident),
                "capacity": self._serial_resident.capacity,
            }
        return {
            "enabled": self.config.resident,
            "capacity": self.config.resident_capacity,
            "hits": s.resident_hits,
            "misses": s.resident_misses,
            "hit_rate": (s.resident_hits / lookups) if lookups else 0.0,
            "builds": s.resident_builds,
            "evictions": s.resident_evictions,
            "invalidations": s.resident_invalidations,
            "warmups": s.warmups,
            "occupancy": sum(
                int(info.get("occupancy") or 0) for info in lanes.values()
            ),
            "lanes": lanes,
        }

    def _try_store_hit(self, request: JobRequest, loop) -> Job | None:
        """Answer a submission from the durable result store, if it holds
        this fingerprint (serve-level memoization above ``StepCache``).

        Ordered after validity/drain checks but *before* capacity: a
        duplicate of completed work never costs queue space and never
        sees ``queue_full``.  Returns an already-resolved Job carrying
        the structured ``duplicate_completed`` result code, or None.
        """
        if self.store is None or self.queue.draining:
            return None
        try:
            request.validate()
        except InvalidRequestError:
            return None  # let queue.admit produce the structured reject
        record = self.store.get(request.fingerprint)
        if record is None:
            return None
        job = Job(
            request=request,
            job_id=next(self._job_ids),
            seq=self.queue.next_seq(),
            future=loop.create_future(),
            submitted_at=loop.time(),
        )
        self.stats.accepted += 1
        self.stats.store_hits += 1
        self._jobs[job.job_id] = job
        self.slo.observe_submitted(request.tenant)
        if self.tracer.enabled:
            self.tracer.instant(
                "store_hit", CAT_DURABLE, SERVE_TRACK,
                job_id=job.job_id, tenant=request.tenant,
                fingerprint=request.fingerprint[:8],
            )
        self._finish(job, self._store_result(job, record))
        self.stats.completed += 1
        return job

    def _store_result(self, job: Job, record: dict) -> JobResult:
        """A JobResult served from the durable store (not executed)."""
        return JobResult(
            job_id=job.job_id,
            fingerprint=job.request.fingerprint,
            kind=record.get("kind", job.request.kind),
            ok=True,
            payload=record["payload"],
            executed=False,
            attempts=0,
            result_code=CODE_DUPLICATE_COMPLETED,
        )

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _dispatchable(self) -> bool:
        return bool(len(self.queue)) and not self.paused

    def _drain_complete(self) -> bool:
        return self.queue.draining and not len(self.queue)

    async def _scheduler_loop(self) -> None:
        while True:
            async with self._cond:
                await self._cond.wait_for(
                    lambda: self._dispatchable() or self._drain_complete()
                )
            if not self._dispatchable():
                if self._drain_complete():
                    return
                continue
            tenant = self.scheduler.pick(self.queue.tenants())
            seed = self.queue.pop(tenant)
            batch = self.batcher.collect(seed, self.queue)
            self.scheduler.charge(batch.tenant_shares())
            self.stats.batches += 1
            self.stats.dedup_hits += batch.dedup_hits
            await self._sem.acquire()
            task = asyncio.create_task(self._run_batch(batch))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    def _execute_blocking(
        self,
        units: tuple[JobRequest, ...],
        progress_paths: dict[str, str] | None = None,
    ) -> BatchOutcome:
        """One batch on one worker (or inline under the serial backend).

        With residency on, the batch is routed to the *lane* owning its
        system key (`lane_for_system` — every unit in a batch shares one
        key by `Batcher` construction), so consecutive batches for one
        system land in the process already holding it warm.  The lane
        lock spans execution *and* arena decode: the lane's output arena
        is only valid until its next task.
        """
        backend = self.backend
        if backend is None or not getattr(backend, "parallel", False):
            if self.config.resident:
                return execute_batch_with(
                    self._serial_cache(), units, progress_paths
                )
            return execute_batch(units, progress_paths=progress_paths)
        if not self.config.resident:
            # backend.map passes exactly one pickled argument per item,
            # so units and progress paths ride together as a task tuple.
            return backend.map(execute_batch_task, [(units, progress_paths)])[0]
        lane = lane_for_system(units[0].system_key, backend.lane_count)
        task = ResidentBatchTask(
            requests=tuple(units),
            progress_paths=progress_paths,
            capacity=self.config.resident_capacity,
            arena=self._lane_arena(lane),
        )
        with backend.lane_lock(lane):
            outcome = backend.run_on(lane, execute_batch_resident, task)
            self._resolve_arena_refs(outcome, lane)
        if outcome.resident:
            self._lane_resident[lane] = dict(outcome.resident)
        return outcome

    def _serial_cache(self) -> ResidentCache:
        """The serial path's resident cache (service-owned, not process-
        global: two services in one process must not share residency)."""
        if self._serial_resident is None:
            self._serial_resident = ResidentCache(
                self.config.resident_capacity
            )
        return self._serial_resident

    def _lane_arena(self, lane: int) -> ArenaHandle | None:
        """This lane's output arena, created on first use (parent-owned
        so a crashed lane cannot strand the segment)."""
        if self.config.arena_bytes <= 0:
            return None
        arena = self._arenas.get(lane)
        if arena is None:
            arena = ArenaHandle.allocate(self.config.arena_bytes)
            self._arenas[lane] = arena
        return arena

    def _resolve_arena_refs(self, outcome: BatchOutcome, lane: int) -> None:
        """Materialise arena-resident force blocks while the lane lock
        still protects the arena (one memcpy replaces pickle+IPC)."""
        arena = self._arenas.get(lane)
        if arena is None:
            return
        import numpy as _np

        for payload in outcome.payloads:
            if payload is None:
                continue
            ref = payload.pop("forces_ref", None)
            if ref is not None:
                payload["forces"] = _np.array(arena.read(ref))

    def _progress_files(
        self, units: tuple[JobRequest, ...]
    ) -> dict[str, str]:
        """Register a progress-publish file per MD unit in this batch."""
        paths: dict[str, str] = {}
        if self._progress_dir is None:
            return paths
        for unit in units:
            if unit.kind == KIND_MD:
                path = os.path.join(
                    self._progress_dir, f"{unit.fingerprint}.progress"
                )
                paths[unit.fingerprint] = path
                self._progress_paths[unit.fingerprint] = path
        return paths

    def _release_progress_files(self, paths: dict[str, str]) -> None:
        for fp, path in paths.items():
            self._progress_paths.pop(fp, None)
            try:
                os.unlink(path)
            except OSError:
                pass

    def _fail_jobs(self, jobs: list[Job], error: JobError) -> None:
        loop = asyncio.get_running_loop()
        for job in jobs:
            result = JobResult(
                job_id=job.job_id,
                fingerprint=job.request.fingerprint,
                kind=job.request.kind,
                ok=False,
                error=error,
                executed=False,
                attempts=job.attempts,
                queue_seconds=max(
                    (job.dispatched_at or loop.time()) - job.submitted_at, 0.0
                ),
            )
            self._finish(job, result)
        self.stats.record_failure(error.code, len(jobs))

    def _finish(self, job: Job, result: JobResult) -> None:
        self._results[job.job_id] = result
        self._jobs.pop(job.job_id, None)
        if self.journal is not None and job.journaled:
            if result.ok:
                self.journal.completed(
                    job.job_id, result.fingerprint, code=result.result_code
                )
            else:
                self.journal.failed(
                    job.job_id, result.fingerprint,
                    result.error.code, result.error.message,
                )
        if (
            self.store is not None
            and result.ok
            and result.executed
            and result.payload is not None
        ):
            self.store.put(
                result.fingerprint,
                {
                    "kind": result.kind,
                    "payload": json_safe_payload(result.payload),
                },
            )
        self.slo.observe_result(
            job.request.tenant,
            result.ok,
            result.queue_seconds,
            result.execute_seconds,
            attempts=result.attempts,
            replayed=job.replayed,
            store_hit=result.result_code == CODE_DUPLICATE_COMPLETED,
        )
        if job.future is not None and not job.future.done():
            job.future.set_result(result)

    async def _run_batch(self, batch: Batch) -> None:
        loop = asyncio.get_running_loop()
        try:
            now = loop.time()
            for job in batch.jobs:
                job.dispatched_at = now

            # Deadline admission at dispatch: jobs already out of time
            # fail fast (and drop units nobody is waiting on anymore).
            live_waiters: dict[str, list[Job]] = {}
            expired: list[Job] = []
            for fp, jobs in batch.waiters.items():
                alive = []
                for job in jobs:
                    if job.deadline is not None and job.deadline <= now:
                        expired.append(job)
                    else:
                        alive.append(job)
                if alive:
                    live_waiters[fp] = alive
            if expired:
                self._fail_jobs(
                    expired,
                    JobError(
                        REASON_DEADLINE,
                        "deadline expired before the job was dispatched",
                    ),
                )
            units = tuple(
                u for u in batch.units if u.fingerprint in live_waiters
            )
            if not units:
                return
            for fp in live_waiters:
                self._inflight.setdefault(fp, [])

            deadlines = [
                j.deadline for js in live_waiters.values() for j in js
            ]
            timeout = (
                max(d - now for d in deadlines)
                if all(d is not None for d in deadlines) and deadlines
                else None
            )

            progress_paths = self._progress_files(units)
            outcome: BatchOutcome | None = None
            error: JobError | None = None
            attempts = 0
            policy = self.config.retry
            while outcome is None and error is None:
                attempts += 1
                for job in batch.jobs:
                    job.attempts = attempts
                try:
                    call = asyncio.to_thread(
                        self._execute_blocking, units, progress_paths
                    )
                    outcome = await (
                        asyncio.wait_for(call, timeout)
                        if timeout is not None
                        else call
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    # Out of time: a retry could not finish any sooner.
                    error = JobError(
                        REASON_TIMEOUT,
                        f"execution exceeded the {timeout:.3f}s deadline "
                        f"window after {attempts} attempt(s)",
                    )
                except WorkerCrashError as exc:
                    # The transient failure class: reissue with backoff,
                    # like a failed DMA transaction (DESIGN.md §7).
                    if attempts >= policy.max_attempts:
                        error = JobError(
                            REASON_EXECUTION,
                            f"{type(exc).__name__}: {exc} "
                            f"(after {attempts} attempt(s))",
                        )
                    else:
                        self.stats.retries += 1
                        await asyncio.sleep(
                            policy.backoff_seconds(
                                attempts, self.config.backoff_cycle_s
                            )
                        )
                except Exception as exc:
                    # Deterministic task errors would fail identically on
                    # every reissue — fail fast with the real cause.
                    error = JobError(
                        REASON_EXECUTION, f"{type(exc).__name__}: {exc}"
                    )

            done = loop.time()
            self._release_progress_files(progress_paths)
            self.stats.executed_units += len(units) if outcome else 0
            if outcome is not None:
                for key, val in outcome.cache_stats.items():
                    setattr(
                        self.stats, key, getattr(self.stats, key, 0) + val
                    )

            for i, unit in enumerate(units):
                fp = unit.fingerprint
                # Late joiners landed in _inflight while we executed.
                waiters = live_waiters.get(fp, []) + self._inflight.pop(fp, [])
                if error is not None:
                    self._fail_jobs(waiters, error)
                    continue
                payload = outcome.payloads[i]
                for k, job in enumerate(waiters):
                    result = JobResult(
                        job_id=job.job_id,
                        fingerprint=fp,
                        kind=unit.kind,
                        ok=True,
                        payload=payload,
                        executed=(k == 0),
                        attempts=attempts if k == 0 else 0,
                        queue_seconds=max(
                            job.dispatched_at - job.submitted_at, 0.0
                        ),
                        execute_seconds=done - now,
                    )
                    self._finish(job, result)
                    self.stats.completed += 1
                    if self.tracer.enabled:
                        t0 = self._t0
                        self.tracer.span_seconds(
                            f"queue:{job.job_id}", CAT_SERVE, SERVE_TRACK,
                            job.submitted_at - t0,
                            job.dispatched_at - job.submitted_at,
                            tenant=job.request.tenant,
                        )
                        self.tracer.span_seconds(
                            f"exec:{job.job_id}", CAT_SERVE, SERVE_TRACK,
                            now - t0, done - now,
                            fingerprint=fp[:8], executed=(k == 0),
                            batch_units=len(units),
                        )
        finally:
            self._sem.release()
            await self._notify()

    # ------------------------------------------------------------------
    # wire protocol (JSON lines, one request per connection)
    # ------------------------------------------------------------------
    async def serve_unix(self, path: str) -> None:
        self._servers.append(
            await asyncio.start_unix_server(self._handle_connection, path=path)
        )

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0) -> int:
        server = await asyncio.start_server(
            self._handle_connection, host=host, port=port
        )
        self._servers.append(server)
        return server.sockets[0].getsockname()[1]

    async def _handle_connection(self, reader, writer) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                msg = json.loads(line)
                if isinstance(msg, dict) and msg.get("op") == "progress":
                    # The one streaming op: multiple JSON lines on a
                    # single connection, terminated by the final result.
                    await self._stream_progress(msg, writer)
                    return
                response = await self._dispatch_op(msg)
            except AdmissionRejected as exc:
                response = {"ok": False, "error": exc.error.to_dict()}
            except Exception as exc:  # malformed input must not kill the loop
                response = {
                    "ok": False,
                    "error": {
                        "code": "bad_request",
                        "message": f"{type(exc).__name__}: {exc}",
                    },
                }
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _stream_progress(self, msg: dict, writer) -> None:
        """Stream ``{"done": false, "progress": ...}`` lines for one job
        until it resolves, then the final ``{"done": true, "result": ...}``
        line.  Long MD jobs report partial step counts published by the
        engine's step loop (`repro.durable.progress`)."""
        try:
            job_id = int(msg["job_id"])
        except (KeyError, TypeError, ValueError):
            writer.write(
                json.dumps(
                    {
                        "ok": False,
                        "error": {
                            "code": "bad_request",
                            "message": "progress op requires a job_id",
                        },
                    }
                ).encode()
                + b"\n"
            )
            await writer.drain()
            return
        interval = max(float(msg.get("interval_s", 0.05)), 0.01)
        try:
            while True:
                if job_id in self._results:
                    result = self._results[job_id]
                    writer.write(
                        json.dumps(
                            {"ok": True, "done": True,
                             "result": result.to_dict()}
                        ).encode()
                        + b"\n"
                    )
                    await writer.drain()
                    return
                job = self._jobs.get(job_id)
                if job is None:
                    writer.write(
                        json.dumps(
                            {
                                "ok": False,
                                "error": {
                                    "code": "unknown_job",
                                    "message": f"no job with id {job_id}",
                                },
                            }
                        ).encode()
                        + b"\n"
                    )
                    await writer.drain()
                    return
                writer.write(
                    json.dumps(
                        {"ok": True, "done": False,
                         "progress": self._progress_snapshot(job)}
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                try:
                    # Wake early when the job resolves (shield: the
                    # timeout must not cancel the job's own future).
                    await asyncio.wait_for(
                        asyncio.shield(job.future), timeout=interval
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    pass
        except (ConnectionError, OSError):
            return  # client went away mid-stream

    def _progress_snapshot(self, job: Job) -> dict:
        snap = {
            "job_id": job.job_id,
            "kind": job.request.kind,
            "state": "executing" if job.dispatched_at else "queued",
            "attempts": job.attempts,
        }
        path = self._progress_paths.get(job.request.fingerprint)
        if path is not None:
            data = read_progress(path)
            if data is not None:
                snap["steps_done"] = data.get("steps_done")
                snap["steps_total"] = data.get("steps_total")
        return snap

    async def _dispatch_op(self, msg: dict) -> dict:
        op = msg.get("op")
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "stats":
            loop = asyncio.get_running_loop()
            response = {
                "ok": True,
                "stats": self.stats.as_dict(),
                "queue_depth": len(self.queue),
                "tenants": self.scheduler.as_dict(),
                "tenant_queues": self.queue.tenant_queues(loop.time()),
                "resident": self.resident_summary(),
            }
            if self.journal is not None:
                response["durable"] = {
                    "journal_replays": self.stats.journal_replays,
                    "journal_records": self.journal.appended,
                    "journal_corrupt_records": (
                        self.recovery.corrupt_records
                        if self.recovery is not None
                        else 0
                    ),
                    "store": self.store.stats(),
                }
            return response
        if op == "metrics":
            loop = asyncio.get_running_loop()
            return {
                "ok": True,
                "metrics": self.slo.as_dict(
                    tenant_queues=self.queue.tenant_queues(loop.time())
                ),
            }
        if op == "pause":
            await self.pause()
            return {"ok": True, "paused": True}
        if op == "resume":
            await self.resume()
            return {"ok": True, "paused": False}
        if op == "drain":
            stats = await self.drain()
            return {"ok": True, "stats": stats.as_dict()}
        if op == "warmup":
            request = JobRequest.from_dict(msg.get("job") or {})
            info = await self.warmup(request)
            return {"ok": True, "warmup": info}
        if op == "submit":
            request = JobRequest.from_dict(msg.get("job") or {})
            job = await self.submit(request)
            if msg.get("wait", True):
                result = await job.future
                return {"ok": True, "result": result.to_dict()}
            return {"ok": True, "job_id": job.job_id}
        if op == "wait":
            job_id = int(msg["job_id"])
            if job_id in self._results:
                return {"ok": True, "result": self._results[job_id].to_dict()}
            job = self._jobs.get(job_id)
            if job is None:
                return {
                    "ok": False,
                    "error": {
                        "code": "unknown_job",
                        "message": f"no job with id {job_id}",
                    },
                }
            result = await job.future
            return {"ok": True, "result": result.to_dict()}
        return {
            "ok": False,
            "error": {"code": "unknown_op", "message": f"unknown op {op!r}"},
        }
