"""The long-lived asyncio simulation service (DESIGN.md §10).

Dataflow, request to result::

    client ──admit──▶ JobQueue ──pick──▶ FairShareScheduler
                                  │
                            Batcher.collect          (dedup + batching)
                                  │
                        backend.map(execute_batch)   (one pool worker)
                                  │
                            fan-out to waiters ──▶ JobResult futures

The service owns one asyncio event loop; every data structure above is
touched only from that loop, so there is no locking — blocking work
(the pool ``map`` call) runs in ``asyncio.to_thread`` and returns to the
loop for fan-out.  Concurrency across batches is capped by a semaphore
sized to the backend's worker count, which is how jobs "pack onto pool
workers": each in-flight batch occupies exactly one worker.

Guarantees (test-enforced in ``tests/serve/``):

* **bit-identity** — a served payload equals the direct
  `run_kernel`/engine call for the same request, including through dedup
  and batching;
* **no lost jobs** — an accepted job always resolves: payload,
  structured error, or completion during graceful drain;
* **deterministic admission** — over-capacity submissions are rejected
  with a wire-stable reason code, never dropped;
* **clean drain** — :meth:`SimulationService.drain` stops admission,
  finishes every accepted job, closes the shared pool backend
  (`repro.parallel.pool.close_shared_backend`), and wakes
  :meth:`run_until_drained`.

Failures and deadlines are charged through the resilience layer's
:class:`~repro.resilience.retry.RetryPolicy`: a crashed worker or
transient execution error is reissued with exponential backoff up to
``max_attempts``; a job whose deadline lapses is failed with a
structured ``timeout``/``deadline_expired`` error instead of silently
running forever.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

from repro.parallel.pool import (
    WorkerCrashError,
    close_shared_backend,
    shared_backend,
)
from repro.resilience.retry import DEFAULT_RETRY, RetryPolicy
from repro.serve.batcher import Batch, Batcher
from repro.serve.jobs import (
    BatchOutcome,
    JobError,
    JobRequest,
    JobResult,
    execute_batch,
)
from repro.serve.queue import (
    REASON_DEADLINE,
    REASON_EXECUTION,
    REASON_TIMEOUT,
    Job,
    JobQueue,
)
from repro.serve.scheduler import FairShareScheduler
from repro.trace.events import CAT_SERVE, NULL_TRACER, SERVE_TRACK, NullTracer


class AdmissionRejected(RuntimeError):
    """Raised by the in-process API when admission control says no."""

    def __init__(self, error: JobError) -> None:
        super().__init__(f"{error.code}: {error.message}")
        self.error = error


@dataclass
class ServeConfig:
    """Service knobs: capacity, batching, execution, and retry."""

    #: Admission window (total queued jobs).
    max_depth: int = 64
    #: Optional per-tenant queued-job cap.
    max_per_tenant: int | None = None
    #: Max distinct execution units per dispatched batch.
    max_batch: int = 16
    #: Coalesce identical/compatible requests (False = ablation baseline).
    dedup: bool = True
    #: Concurrent in-flight batches (None = backend worker count).
    max_inflight: int | None = None
    #: Host execution backend selection (`repro.parallel.pool`).
    backend: str | None = None
    workers: int | None = None
    #: Reissue policy for crashed/failed executions.
    retry: RetryPolicy = field(default_factory=lambda: DEFAULT_RETRY)
    #: Wall seconds per modelled backoff cycle (the service waits for
    #: real time, not simulated time; 1 µs/cycle puts the default
    #: policy's first backoff at 2 ms).
    backoff_cycle_s: float = 1e-6

    def __post_init__(self) -> None:
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1 when set: {self.max_inflight}"
            )
        if self.backoff_cycle_s < 0:
            raise ValueError(
                f"backoff_cycle_s must be >= 0: {self.backoff_cycle_s}"
            )


@dataclass
class ServiceStats:
    """Service-lifetime counters (wire-exported by the ``stats`` op)."""

    accepted: int = 0
    rejected: int = 0
    rejected_by_reason: dict = field(default_factory=dict)
    completed: int = 0
    failed: int = 0
    failed_by_reason: dict = field(default_factory=dict)
    batches: int = 0
    executed_units: int = 0
    dedup_hits: int = 0
    retries: int = 0
    #: Worker-side StepCache sharing across batched units.
    sr_evals: int = 0
    sr_hits: int = 0
    drained: bool = False

    def record_failure(self, code: str, n: int = 1) -> None:
        self.failed += n
        self.failed_by_reason[code] = self.failed_by_reason.get(code, 0) + n

    def as_dict(self) -> dict:
        return {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "rejected_by_reason": dict(self.rejected_by_reason),
            "completed": self.completed,
            "failed": self.failed,
            "failed_by_reason": dict(self.failed_by_reason),
            "batches": self.batches,
            "executed_units": self.executed_units,
            "dedup_hits": self.dedup_hits,
            "retries": self.retries,
            "sr_evals": self.sr_evals,
            "sr_hits": self.sr_hits,
            "drained": self.drained,
        }


class SimulationService:
    """Queue → batcher → scheduler → pool, as one asyncio object.

    Use as an async context manager (starts/drains the scheduler), or
    call :meth:`start` / :meth:`drain` explicitly::

        async with SimulationService(ServeConfig(max_depth=8)) as svc:
            result = await svc.submit_and_wait(JobRequest(n_particles=300))
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        tracer: NullTracer = NULL_TRACER,
    ) -> None:
        self.config = config or ServeConfig()
        self.tracer = tracer
        self.queue = JobQueue(
            max_depth=self.config.max_depth,
            max_per_tenant=self.config.max_per_tenant,
        )
        self.batcher = Batcher(
            max_batch=self.config.max_batch, dedup=self.config.dedup
        )
        self.scheduler = FairShareScheduler()
        self.stats = ServiceStats()
        self.backend = None
        self.paused = False
        self._job_ids = iter(range(1, 1 << 62))
        #: Pending accepted jobs by id (for the ``wait`` op).
        self._jobs: dict[int, Job] = {}
        #: Terminal results by id (kept for the service lifetime; the
        #: queue bound keeps admission — and thus this dict — finite per
        #: drain cycle, and a drained service is done).
        self._results: dict[int, JobResult] = {}
        #: fingerprint -> jobs waiting on an *executing* unit (late
        #: arrivals join in-flight work instead of re-queueing it).
        self._inflight: dict[str, list[Job]] = {}
        self._cond: asyncio.Condition | None = None
        self._sem: asyncio.Semaphore | None = None
        self._scheduler_task: asyncio.Task | None = None
        self._batch_tasks: set[asyncio.Task] = set()
        self._servers: list[asyncio.AbstractServer] = []
        self._drained_event: asyncio.Event | None = None
        self._t0 = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "SimulationService":
        loop = asyncio.get_running_loop()
        self._t0 = loop.time()
        self.backend = shared_backend(self.config.backend, self.config.workers)
        inflight = self.config.max_inflight
        if inflight is None:
            inflight = max(int(getattr(self.backend, "n_workers", 1)), 1)
        self._cond = asyncio.Condition()
        self._sem = asyncio.Semaphore(inflight)
        self._drained_event = asyncio.Event()
        self._scheduler_task = asyncio.create_task(self._scheduler_loop())
        return self

    async def __aenter__(self) -> "SimulationService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.drain()

    async def _notify(self) -> None:
        async with self._cond:
            self._cond.notify_all()

    async def pause(self) -> None:
        """Stop dispatching (admission continues; queue fills)."""
        self.paused = True

    async def resume(self) -> None:
        self.paused = False
        await self._notify()

    async def drain(self) -> ServiceStats:
        """Graceful shutdown: refuse new work, finish all accepted work,
        release the pool backend.  Idempotent."""
        if self._drained_event is None:
            raise RuntimeError("service was never started")
        self.queue.draining = True
        self.paused = False  # a paused service still drains
        await self._notify()
        if self._scheduler_task is not None:
            await self._scheduler_task
            self._scheduler_task = None
        while self._batch_tasks:
            await asyncio.gather(*tuple(self._batch_tasks))
        # close() stops accepting; in-flight connections (including the
        # one that requested this drain) finish on their own transports —
        # wait_closed() here would deadlock the drain op's own handler.
        for server in self._servers:
            server.close()
        self._servers.clear()
        close_shared_backend()
        self.backend = None
        self.stats.drained = True
        self._drained_event.set()
        return self.stats

    async def run_until_drained(self) -> ServiceStats:
        """Block until some client (or signal handler) triggers drain."""
        await self._drained_event.wait()
        return self.stats

    # ------------------------------------------------------------------
    # in-process API
    # ------------------------------------------------------------------
    async def submit(self, request: JobRequest) -> Job:
        """Admit one request; returns the accepted :class:`Job` (await
        ``job.future`` for its :class:`JobResult`) or raises
        :class:`AdmissionRejected` with the structured reason."""
        loop = asyncio.get_running_loop()
        decision = self.queue.admit(request)
        if not decision.accepted:
            self.stats.rejected += 1
            code = decision.error.code
            self.stats.rejected_by_reason[code] = (
                self.stats.rejected_by_reason.get(code, 0) + 1
            )
            if self.tracer.enabled:
                self.tracer.instant(
                    f"reject:{code}", CAT_SERVE, SERVE_TRACK,
                    tenant=request.tenant,
                )
            raise AdmissionRejected(decision.error)
        now = loop.time()
        job = Job(
            request=request,
            job_id=next(self._job_ids),
            seq=self.queue.next_seq(),
            future=loop.create_future(),
            submitted_at=now,
            deadline=(
                now + request.timeout_s
                if request.timeout_s is not None
                else None
            ),
        )
        self.stats.accepted += 1
        self._jobs[job.job_id] = job
        fp = request.fingerprint
        if self.config.dedup and fp in self._inflight:
            # Identical work is already executing: join it instead of
            # queueing a second execution.
            self._inflight[fp].append(job)
            self.stats.dedup_hits += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    "dedup_join", CAT_SERVE, SERVE_TRACK,
                    job_id=job.job_id, fingerprint=fp[:8],
                )
            return job
        self.queue.push(job)
        await self._notify()
        return job

    async def submit_and_wait(self, request: JobRequest) -> JobResult:
        job = await self.submit(request)
        return await job.future

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _dispatchable(self) -> bool:
        return bool(len(self.queue)) and not self.paused

    def _drain_complete(self) -> bool:
        return self.queue.draining and not len(self.queue)

    async def _scheduler_loop(self) -> None:
        while True:
            async with self._cond:
                await self._cond.wait_for(
                    lambda: self._dispatchable() or self._drain_complete()
                )
            if not self._dispatchable():
                if self._drain_complete():
                    return
                continue
            tenant = self.scheduler.pick(self.queue.tenants())
            seed = self.queue.pop(tenant)
            batch = self.batcher.collect(seed, self.queue)
            self.scheduler.charge(batch.tenant_shares())
            self.stats.batches += 1
            self.stats.dedup_hits += batch.dedup_hits
            await self._sem.acquire()
            task = asyncio.create_task(self._run_batch(batch))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    def _execute_blocking(self, units: tuple[JobRequest, ...]) -> BatchOutcome:
        """One batch on one worker (or inline under the serial backend)."""
        backend = self.backend
        if backend is not None and getattr(backend, "parallel", False):
            return backend.map(execute_batch, [units])[0]
        return execute_batch(units)

    def _fail_jobs(self, jobs: list[Job], error: JobError) -> None:
        loop = asyncio.get_running_loop()
        for job in jobs:
            result = JobResult(
                job_id=job.job_id,
                fingerprint=job.request.fingerprint,
                kind=job.request.kind,
                ok=False,
                error=error,
                executed=False,
                attempts=job.attempts,
                queue_seconds=max(
                    (job.dispatched_at or loop.time()) - job.submitted_at, 0.0
                ),
            )
            self._finish(job, result)
        self.stats.record_failure(error.code, len(jobs))

    def _finish(self, job: Job, result: JobResult) -> None:
        self._results[job.job_id] = result
        self._jobs.pop(job.job_id, None)
        if job.future is not None and not job.future.done():
            job.future.set_result(result)

    async def _run_batch(self, batch: Batch) -> None:
        loop = asyncio.get_running_loop()
        try:
            now = loop.time()
            for job in batch.jobs:
                job.dispatched_at = now

            # Deadline admission at dispatch: jobs already out of time
            # fail fast (and drop units nobody is waiting on anymore).
            live_waiters: dict[str, list[Job]] = {}
            expired: list[Job] = []
            for fp, jobs in batch.waiters.items():
                alive = []
                for job in jobs:
                    if job.deadline is not None and job.deadline <= now:
                        expired.append(job)
                    else:
                        alive.append(job)
                if alive:
                    live_waiters[fp] = alive
            if expired:
                self._fail_jobs(
                    expired,
                    JobError(
                        REASON_DEADLINE,
                        "deadline expired before the job was dispatched",
                    ),
                )
            units = tuple(
                u for u in batch.units if u.fingerprint in live_waiters
            )
            if not units:
                return
            for fp in live_waiters:
                self._inflight.setdefault(fp, [])

            deadlines = [
                j.deadline for js in live_waiters.values() for j in js
            ]
            timeout = (
                max(d - now for d in deadlines)
                if all(d is not None for d in deadlines) and deadlines
                else None
            )

            outcome: BatchOutcome | None = None
            error: JobError | None = None
            attempts = 0
            policy = self.config.retry
            while outcome is None and error is None:
                attempts += 1
                for job in batch.jobs:
                    job.attempts = attempts
                try:
                    call = asyncio.to_thread(self._execute_blocking, units)
                    outcome = await (
                        asyncio.wait_for(call, timeout)
                        if timeout is not None
                        else call
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    # Out of time: a retry could not finish any sooner.
                    error = JobError(
                        REASON_TIMEOUT,
                        f"execution exceeded the {timeout:.3f}s deadline "
                        f"window after {attempts} attempt(s)",
                    )
                except WorkerCrashError as exc:
                    # The transient failure class: reissue with backoff,
                    # like a failed DMA transaction (DESIGN.md §7).
                    if attempts >= policy.max_attempts:
                        error = JobError(
                            REASON_EXECUTION,
                            f"{type(exc).__name__}: {exc} "
                            f"(after {attempts} attempt(s))",
                        )
                    else:
                        self.stats.retries += 1
                        await asyncio.sleep(
                            policy.backoff_seconds(
                                attempts, self.config.backoff_cycle_s
                            )
                        )
                except Exception as exc:
                    # Deterministic task errors would fail identically on
                    # every reissue — fail fast with the real cause.
                    error = JobError(
                        REASON_EXECUTION, f"{type(exc).__name__}: {exc}"
                    )

            done = loop.time()
            self.stats.executed_units += len(units) if outcome else 0
            if outcome is not None:
                for key, val in outcome.cache_stats.items():
                    setattr(
                        self.stats, key, getattr(self.stats, key, 0) + val
                    )

            for i, unit in enumerate(units):
                fp = unit.fingerprint
                # Late joiners landed in _inflight while we executed.
                waiters = live_waiters.get(fp, []) + self._inflight.pop(fp, [])
                if error is not None:
                    self._fail_jobs(waiters, error)
                    continue
                payload = outcome.payloads[i]
                for k, job in enumerate(waiters):
                    result = JobResult(
                        job_id=job.job_id,
                        fingerprint=fp,
                        kind=unit.kind,
                        ok=True,
                        payload=payload,
                        executed=(k == 0),
                        attempts=attempts if k == 0 else 0,
                        queue_seconds=max(
                            job.dispatched_at - job.submitted_at, 0.0
                        ),
                        execute_seconds=done - now,
                    )
                    self._finish(job, result)
                    self.stats.completed += 1
                    if self.tracer.enabled:
                        t0 = self._t0
                        self.tracer.span_seconds(
                            f"queue:{job.job_id}", CAT_SERVE, SERVE_TRACK,
                            job.submitted_at - t0,
                            job.dispatched_at - job.submitted_at,
                            tenant=job.request.tenant,
                        )
                        self.tracer.span_seconds(
                            f"exec:{job.job_id}", CAT_SERVE, SERVE_TRACK,
                            now - t0, done - now,
                            fingerprint=fp[:8], executed=(k == 0),
                            batch_units=len(units),
                        )
        finally:
            self._sem.release()
            await self._notify()

    # ------------------------------------------------------------------
    # wire protocol (JSON lines, one request per connection)
    # ------------------------------------------------------------------
    async def serve_unix(self, path: str) -> None:
        self._servers.append(
            await asyncio.start_unix_server(self._handle_connection, path=path)
        )

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0) -> int:
        server = await asyncio.start_server(
            self._handle_connection, host=host, port=port
        )
        self._servers.append(server)
        return server.sockets[0].getsockname()[1]

    async def _handle_connection(self, reader, writer) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                msg = json.loads(line)
                response = await self._dispatch_op(msg)
            except AdmissionRejected as exc:
                response = {"ok": False, "error": exc.error.to_dict()}
            except Exception as exc:  # malformed input must not kill the loop
                response = {
                    "ok": False,
                    "error": {
                        "code": "bad_request",
                        "message": f"{type(exc).__name__}: {exc}",
                    },
                }
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch_op(self, msg: dict) -> dict:
        op = msg.get("op")
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "stats":
            loop = asyncio.get_running_loop()
            return {
                "ok": True,
                "stats": self.stats.as_dict(),
                "queue_depth": len(self.queue),
                "tenants": self.scheduler.as_dict(),
                "tenant_queues": self.queue.tenant_queues(loop.time()),
            }
        if op == "pause":
            await self.pause()
            return {"ok": True, "paused": True}
        if op == "resume":
            await self.resume()
            return {"ok": True, "paused": False}
        if op == "drain":
            stats = await self.drain()
            return {"ok": True, "stats": stats.as_dict()}
        if op == "submit":
            request = JobRequest.from_dict(msg.get("job") or {})
            job = await self.submit(request)
            if msg.get("wait", True):
                result = await job.future
                return {"ok": True, "result": result.to_dict()}
            return {"ok": True, "job_id": job.job_id}
        if op == "wait":
            job_id = int(msg["job_id"])
            if job_id in self._results:
                return {"ok": True, "result": self._results[job_id].to_dict()}
            job = self._jobs.get(job_id)
            if job is None:
                return {
                    "ok": False,
                    "error": {
                        "code": "unknown_job",
                        "message": f"no job with id {job_id}",
                    },
                }
            result = await job.future
            return {"ok": True, "result": result.to_dict()}
        return {
            "ok": False,
            "error": {"code": "unknown_op", "message": f"unknown op {op!r}"},
        }
