"""Bounded priority job queue with admission control (DESIGN.md §10).

The queue is a plain synchronous data structure — all async signalling
lives in :mod:`repro.serve.service`, which owns the event loop — so the
admission semantics are unit-testable without a running service.

Admission is *deterministic* and *reasoned*: :meth:`JobQueue.admit`
returns an :class:`AdmissionDecision` naming exactly why a request was
turned away (wire-stable reason codes below), never silently dropping
it.  Once a job is accepted it is never lost: it either completes, fails
with a structured error, or is drained to completion at shutdown
(service-level guarantee, test-enforced).

Ordering: within a tenant, higher ``priority`` first, FIFO within a
priority level (a monotone sequence number breaks ties, so ordering is
total and replayable).  Cross-tenant ordering is the fair-share
scheduler's job (:mod:`repro.serve.scheduler`), which is why the queue
keeps one heap per tenant instead of a single global one.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.serve.jobs import InvalidRequestError, JobError, JobRequest

#: Wire-stable rejection reason codes.
REASON_QUEUE_FULL = "queue_full"
REASON_TENANT_QUOTA = "tenant_quota"
REASON_DRAINING = "draining"
REASON_INVALID = "invalid_request"
#: Terminal failure codes (post-admission).
REASON_TIMEOUT = "timeout"
REASON_DEADLINE = "deadline_expired"
REASON_EXECUTION = "execution_failed"


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    accepted: bool
    error: JobError | None = None

    @classmethod
    def ok(cls) -> "AdmissionDecision":
        return cls(accepted=True)

    @classmethod
    def reject(cls, code: str, message: str) -> "AdmissionDecision":
        return cls(accepted=False, error=JobError(code=code, message=message))


@dataclass
class Job:
    """One accepted request plus its service-side bookkeeping."""

    request: JobRequest
    job_id: int
    #: Monotone admission sequence (FIFO tie-break within a priority).
    seq: int
    #: asyncio.Future resolved with a JobResult (created by the service).
    future: object | None = None
    submitted_at: float = 0.0
    dispatched_at: float = 0.0
    #: Absolute loop-time deadline (None = no timeout requested).
    deadline: float | None = None
    attempts: int = 0
    #: Acceptance was journaled — resolution must be journaled too.
    journaled: bool = False
    #: Replayed from the journal after a restart (SLO attribution).
    replayed: bool = False

    @property
    def sort_key(self) -> tuple:
        return (-self.request.priority, self.seq)


@dataclass
class QueueStats:
    accepted: int = 0
    rejected: int = 0
    rejected_by_reason: dict = field(default_factory=dict)

    def record_reject(self, code: str) -> None:
        self.rejected += 1
        self.rejected_by_reason[code] = (
            self.rejected_by_reason.get(code, 0) + 1
        )


class JobQueue:
    """Bounded multi-tenant priority queue.

    ``max_depth`` bounds the *total* queued job count; ``max_per_tenant``
    (optional) additionally bounds any single tenant, so one chatty
    client cannot occupy the whole admission window.
    """

    def __init__(
        self,
        max_depth: int = 64,
        max_per_tenant: int | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1: {max_depth}")
        if max_per_tenant is not None and max_per_tenant < 1:
            raise ValueError(
                f"max_per_tenant must be >= 1 when set: {max_per_tenant}"
            )
        self.max_depth = max_depth
        self.max_per_tenant = max_per_tenant
        self.stats = QueueStats()
        self.draining = False
        self._seq = itertools.count()
        #: tenant -> heap of (sort_key, Job)
        self._heaps: dict[str, list[tuple[tuple, Job]]] = {}

    # -- introspection -----------------------------------------------------
    @property
    def depth(self) -> int:
        return sum(len(h) for h in self._heaps.values())

    def tenant_depth(self, tenant: str) -> int:
        return len(self._heaps.get(tenant, ()))

    def tenants(self) -> list[str]:
        """Tenants with at least one queued job (sorted for determinism)."""
        return sorted(t for t, h in self._heaps.items() if h)

    def tenant_queues(self, now: float) -> dict:
        """Per-tenant backlog snapshot for the ``stats`` op: queued-job
        depth and the age of the oldest queued job (seconds since its
        admission, on the caller's clock — the service passes loop
        time, matching ``Job.submitted_at``)."""
        out: dict[str, dict] = {}
        for tenant in self.tenants():
            jobs = [job for _, job in self._heaps[tenant]]
            oldest = min(job.submitted_at for job in jobs)
            out[tenant] = {
                "depth": len(jobs),
                "oldest_age_seconds": max(now - oldest, 0.0),
            }
        return out

    def __len__(self) -> int:
        return self.depth

    # -- admission ---------------------------------------------------------
    def admit(self, request: JobRequest) -> AdmissionDecision:
        """Check a request against validity, drain state, and capacity.

        Does not enqueue — the service enqueues via :meth:`push` after a
        positive decision (so it can attach the future first).
        """
        decision = self._check(request)
        if not decision.accepted:
            self.stats.record_reject(decision.error.code)
        return decision

    def _check(self, request: JobRequest) -> AdmissionDecision:
        try:
            request.validate()
        except InvalidRequestError as exc:
            return AdmissionDecision.reject(REASON_INVALID, str(exc))
        if self.draining:
            return AdmissionDecision.reject(
                REASON_DRAINING,
                "service is draining and no longer accepts jobs",
            )
        if self.depth >= self.max_depth:
            return AdmissionDecision.reject(
                REASON_QUEUE_FULL,
                f"queue is full ({self.depth}/{self.max_depth} jobs queued)",
            )
        if (
            self.max_per_tenant is not None
            and self.tenant_depth(request.tenant) >= self.max_per_tenant
        ):
            return AdmissionDecision.reject(
                REASON_TENANT_QUOTA,
                f"tenant {request.tenant!r} already has "
                f"{self.tenant_depth(request.tenant)} queued jobs "
                f"(cap {self.max_per_tenant})",
            )
        return AdmissionDecision.ok()

    # -- mutation ----------------------------------------------------------
    def next_seq(self) -> int:
        return next(self._seq)

    def push(self, job: Job) -> None:
        heap = self._heaps.setdefault(job.request.tenant, [])
        heapq.heappush(heap, (job.sort_key, job))
        self.stats.accepted += 1

    def pop(self, tenant: str) -> Job:
        """Highest-priority (then FIFO) job of one tenant."""
        heap = self._heaps[tenant]
        _, job = heapq.heappop(heap)
        if not heap:
            del self._heaps[tenant]
        return job

    def pop_matching(self, predicate) -> Optional[Job]:
        """Remove and return the best queued job satisfying ``predicate``
        (used by the batcher to pull compatible jobs from any tenant);
        None when nothing matches.  Scans in tenant order then heap
        order, so the choice is deterministic."""
        for tenant in self.tenants():
            heap = self._heaps[tenant]
            for _, job in sorted(heap):
                if predicate(job):
                    # Rebuild the heap without this job (heaps are small:
                    # bounded by max_depth).
                    remaining = [entry for entry in heap if entry[1] is not job]
                    heapq.heapify(remaining)
                    if remaining:
                        self._heaps[tenant] = remaining
                    else:
                        del self._heaps[tenant]
                    return job
        return None
