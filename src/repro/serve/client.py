"""Synchronous JSON-lines client for the simulation service.

One connection per request keeps the protocol trivial (a request line
out, a response line back) and makes the client usable from plain
scripts, the ``repro submit`` CLI, threads, and test harnesses without
touching asyncio.  Errors come back structured: a rejected or failed
operation raises :class:`ServeRequestError` carrying the wire reason
code, so callers can branch on ``exc.code`` (``queue_full``,
``draining``, ``timeout``, ...) instead of parsing messages.

Startup races are first-class: a fleet or CI harness routinely connects
before the service has bound its socket.  ``connect_retries`` /
``connect_backoff`` retry the *initial connect* (refused or not-yet-
bound socket — never an in-flight request) with bounded exponential
backoff; exhaustion surfaces as :class:`ServeRequestError` with the
structured code ``connect_failed``.
"""

from __future__ import annotations

import json
import socket
import time

from repro.serve.jobs import JobRequest, JobResult

#: Retried connect errors: the service is not (yet) listening.  A
#: FileNotFoundError is the Unix-socket flavour of "refused" — the path
#: is not bound yet.
_RETRYABLE_CONNECT = (ConnectionRefusedError, FileNotFoundError)
#: Cap on one backoff sleep, so long retry budgets stay responsive.
_MAX_BACKOFF_S = 1.0


class ServeConnectionError(ConnectionError):
    """The service socket could not be reached."""


class ServeRequestError(RuntimeError):
    """The service answered with a structured error."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ServeClient:
    """Talk to a running :class:`~repro.serve.service.SimulationService`.

    Address: either ``socket_path`` (Unix domain socket) or
    ``host``/``port`` (TCP).  ``timeout`` bounds each round trip
    (None = wait forever — submit-and-wait legitimately blocks for the
    whole job duration).  ``connect_retries`` retries a refused/unbound
    initial connect that many times with exponential backoff starting at
    ``connect_backoff`` seconds (capped at 1 s per sleep); 0 preserves
    fail-fast behaviour.
    """

    def __init__(
        self,
        socket_path: str | None = None,
        host: str | None = None,
        port: int | None = None,
        timeout: float | None = None,
        connect_retries: int = 0,
        connect_backoff: float = 0.05,
    ) -> None:
        if socket_path is None and (host is None or port is None):
            raise ValueError("need socket_path or host+port")
        if connect_retries < 0:
            raise ValueError(f"connect_retries must be >= 0: {connect_retries}")
        if connect_backoff < 0:
            raise ValueError(f"connect_backoff must be >= 0: {connect_backoff}")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.connect_backoff = connect_backoff

    # -- transport ---------------------------------------------------------
    def _where(self) -> str:
        return self.socket_path or f"{self.host}:{self.port}"

    def _connect_once(self) -> socket.socket:
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
            return sock
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )

    def _connect(self) -> socket.socket:
        attempts = 0
        while True:
            attempts += 1
            try:
                return self._connect_once()
            except _RETRYABLE_CONNECT as exc:
                if attempts <= self.connect_retries:
                    time.sleep(
                        min(
                            self.connect_backoff * 2 ** (attempts - 1),
                            _MAX_BACKOFF_S,
                        )
                    )
                    continue
                if self.connect_retries:
                    # A retry budget was configured and spent: that is a
                    # structured outcome, not a transport surprise.
                    raise ServeRequestError(
                        "connect_failed",
                        f"cannot reach simulation service at "
                        f"{self._where()} after {attempts} connect "
                        f"attempt(s): {exc}",
                    ) from exc
                raise ServeConnectionError(
                    f"cannot reach simulation service at "
                    f"{self._where()}: {exc}"
                ) from exc
            except OSError as exc:
                raise ServeConnectionError(
                    f"cannot reach simulation service at "
                    f"{self._where()}: {exc}"
                ) from exc

    def request(self, payload: dict) -> dict:
        """One wire round trip; raises on structured errors."""
        with self._connect() as sock:
            sock.sendall(json.dumps(payload).encode() + b"\n")
            chunks = []
            while True:
                data = sock.recv(65536)
                if not data:
                    break
                chunks.append(data)
                if data.endswith(b"\n"):
                    break
        raw = b"".join(chunks)
        if not raw:
            raise ServeConnectionError(
                "service closed the connection without answering"
            )
        response = json.loads(raw)
        if not response.get("ok"):
            err = response.get("error") or {}
            raise ServeRequestError(
                err.get("code", "unknown"), err.get("message", "")
            )
        return response

    # -- operations --------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("ok"))

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def pause(self) -> None:
        self.request({"op": "pause"})

    def resume(self) -> None:
        self.request({"op": "resume"})

    def drain(self) -> dict:
        """Gracefully drain the service; returns its final stats."""
        return self.request({"op": "drain"})["stats"]

    def submit(
        self, request: JobRequest | dict, wait: bool = True
    ) -> JobResult | int:
        """Submit a job.  ``wait=True`` blocks until the terminal
        :class:`JobResult`; ``wait=False`` returns the job id for a later
        :meth:`wait` call."""
        job = (
            request.to_dict()
            if isinstance(request, JobRequest)
            else dict(request)
        )
        response = self.request({"op": "submit", "job": job, "wait": wait})
        if wait:
            return JobResult.from_dict(response["result"])
        return int(response["job_id"])

    def wait(self, job_id: int) -> JobResult:
        response = self.request({"op": "wait", "job_id": job_id})
        return JobResult.from_dict(response["result"])

    def warmup(self, request: JobRequest | dict) -> dict:
        """Pre-build worker residency for the request's system before a
        burst (DESIGN.md §14); returns the worker's warmup report
        (``resident``/``built``/``occupancy``/``lane``)."""
        job = (
            request.to_dict()
            if isinstance(request, JobRequest)
            else dict(request)
        )
        return self.request({"op": "warmup", "job": job})["warmup"]

    def metrics(self) -> dict:
        """Per-tenant SLO metrics (p50/p99 latency, queue age, rejection
        and retry rates, journal replay counts — DESIGN.md §12)."""
        return self.request({"op": "metrics"})["metrics"]

    def progress(self, job_id: int, interval_s: float = 0.05):
        """Stream progress snapshots for one job.

        A generator over the service's streaming ``progress`` op: yields
        ``{"done": False, "progress": {...}}`` dicts (long MD jobs carry
        ``steps_done``/``steps_total`` published from the engine's step
        loop) and finally ``{"done": True, "result": JobResult}`` with
        the decoded terminal result.  One connection, many lines — the
        only multi-line op in the protocol."""
        payload = {"op": "progress", "job_id": job_id,
                   "interval_s": interval_s}
        with self._connect() as sock:
            sock.sendall(json.dumps(payload).encode() + b"\n")
            buffer = b""
            while True:
                data = sock.recv(65536)
                if not data:
                    if buffer:
                        raise ServeConnectionError(
                            "service closed mid-line during progress stream"
                        )
                    return
                buffer += data
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    response = json.loads(line)
                    if not response.get("ok"):
                        err = response.get("error") or {}
                        raise ServeRequestError(
                            err.get("code", "unknown"), err.get("message", "")
                        )
                    if response.get("done"):
                        yield {
                            "done": True,
                            "result": JobResult.from_dict(response["result"]),
                        }
                        return
                    yield {"done": False, "progress": response["progress"]}
