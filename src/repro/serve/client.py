"""Synchronous JSON-lines client for the simulation service.

One connection per request keeps the protocol trivial (a request line
out, a response line back) and makes the client usable from plain
scripts, the ``repro submit`` CLI, threads, and test harnesses without
touching asyncio.  Errors come back structured: a rejected or failed
operation raises :class:`ServeRequestError` carrying the wire reason
code, so callers can branch on ``exc.code`` (``queue_full``,
``draining``, ``timeout``, ...) instead of parsing messages.
"""

from __future__ import annotations

import json
import socket

from repro.serve.jobs import JobRequest, JobResult


class ServeConnectionError(ConnectionError):
    """The service socket could not be reached."""


class ServeRequestError(RuntimeError):
    """The service answered with a structured error."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ServeClient:
    """Talk to a running :class:`~repro.serve.service.SimulationService`.

    Address: either ``socket_path`` (Unix domain socket) or
    ``host``/``port`` (TCP).  ``timeout`` bounds each round trip
    (None = wait forever — submit-and-wait legitimately blocks for the
    whole job duration).
    """

    def __init__(
        self,
        socket_path: str | None = None,
        host: str | None = None,
        port: int | None = None,
        timeout: float | None = None,
    ) -> None:
        if socket_path is None and (host is None or port is None):
            raise ValueError("need socket_path or host+port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ---------------------------------------------------------
    def _connect(self) -> socket.socket:
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
            else:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            return sock
        except OSError as exc:
            raise ServeConnectionError(
                f"cannot reach simulation service at "
                f"{self.socket_path or f'{self.host}:{self.port}'}: {exc}"
            ) from exc

    def request(self, payload: dict) -> dict:
        """One wire round trip; raises on structured errors."""
        with self._connect() as sock:
            sock.sendall(json.dumps(payload).encode() + b"\n")
            chunks = []
            while True:
                data = sock.recv(65536)
                if not data:
                    break
                chunks.append(data)
                if data.endswith(b"\n"):
                    break
        raw = b"".join(chunks)
        if not raw:
            raise ServeConnectionError(
                "service closed the connection without answering"
            )
        response = json.loads(raw)
        if not response.get("ok"):
            err = response.get("error") or {}
            raise ServeRequestError(
                err.get("code", "unknown"), err.get("message", "")
            )
        return response

    # -- operations --------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("ok"))

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def pause(self) -> None:
        self.request({"op": "pause"})

    def resume(self) -> None:
        self.request({"op": "resume"})

    def drain(self) -> dict:
        """Gracefully drain the service; returns its final stats."""
        return self.request({"op": "drain"})["stats"]

    def submit(
        self, request: JobRequest | dict, wait: bool = True
    ) -> JobResult | int:
        """Submit a job.  ``wait=True`` blocks until the terminal
        :class:`JobResult`; ``wait=False`` returns the job id for a later
        :meth:`wait` call."""
        job = (
            request.to_dict()
            if isinstance(request, JobRequest)
            else dict(request)
        )
        response = self.request({"op": "submit", "job": job, "wait": wait})
        if wait:
            return JobResult.from_dict(response["result"])
        return int(response["job_id"])

    def wait(self, job_id: int) -> JobResult:
        response = self.request({"op": "wait", "job_id": job_id})
        return JobResult.from_dict(response["result"])
