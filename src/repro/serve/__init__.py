"""repro.serve: the async simulation service (DESIGN.md §10).

Turns the one-shot simulator into a long-lived multi-tenant service:
a bounded priority job queue with reasoned admission control, a batcher
that deduplicates identical requests and coalesces compatible ones onto
shared `StepCache` executions, a deterministic fair-share scheduler, and
an asyncio service speaking JSON lines over Unix/TCP sockets, executing
over the host-parallel pool backend (DESIGN.md §9).

Quickstart (in-process)::

    import asyncio
    from repro.serve import JobRequest, ServeConfig, SimulationService

    async def main():
        async with SimulationService(ServeConfig(max_depth=8)) as svc:
            result = await svc.submit_and_wait(JobRequest(n_particles=300))
            print(result.payload["energy"])

    asyncio.run(main())

Or as a daemon: ``repro serve --socket /tmp/repro.sock`` and
``repro submit --socket /tmp/repro.sock -n 300``.  Add
``--journal-dir DIR`` for crash-safe restarts (`repro.durable`,
DESIGN.md §12): accepted jobs are journaled and replayed bit-identically
after a kill, completed payloads answer duplicates across restarts with
the ``duplicate_completed`` result code, and per-tenant SLO metrics are
served by ``repro submit --op metrics``.
"""

from repro.durable.results import CODE_DUPLICATE_COMPLETED
from repro.serve.batcher import Batch, Batcher
from repro.serve.client import (
    ServeClient,
    ServeConnectionError,
    ServeRequestError,
)
from repro.serve.jobs import (
    JOB_KINDS,
    KIND_KERNEL,
    KIND_MD,
    BatchOutcome,
    InvalidRequestError,
    JobError,
    JobRequest,
    JobResult,
    execute_batch,
    execute_request,
)
from repro.serve.queue import (
    REASON_DEADLINE,
    REASON_DRAINING,
    REASON_EXECUTION,
    REASON_INVALID,
    REASON_QUEUE_FULL,
    REASON_TENANT_QUOTA,
    REASON_TIMEOUT,
    AdmissionDecision,
    Job,
    JobQueue,
)
from repro.serve.scheduler import FairShareScheduler
from repro.serve.service import (
    AdmissionRejected,
    ServeConfig,
    ServiceStats,
    SimulationService,
)

__all__ = [
    "Batch",
    "Batcher",
    "CODE_DUPLICATE_COMPLETED",
    "ServeClient",
    "ServeConnectionError",
    "ServeRequestError",
    "JOB_KINDS",
    "KIND_KERNEL",
    "KIND_MD",
    "BatchOutcome",
    "InvalidRequestError",
    "JobError",
    "JobRequest",
    "JobResult",
    "execute_batch",
    "execute_request",
    "REASON_DEADLINE",
    "REASON_DRAINING",
    "REASON_EXECUTION",
    "REASON_INVALID",
    "REASON_QUEUE_FULL",
    "REASON_TENANT_QUOTA",
    "REASON_TIMEOUT",
    "AdmissionDecision",
    "Job",
    "JobQueue",
    "FairShareScheduler",
    "AdmissionRejected",
    "ServeConfig",
    "ServiceStats",
    "SimulationService",
]
