"""Request coalescing: dedup + compatible batching (DESIGN.md §10).

Two throughput levers, both safe because execution is a pure function of
the request (see :mod:`repro.serve.jobs`):

* **Dedup** — jobs with the same :attr:`JobRequest.fingerprint` collapse
  into one *unit*: one execution, the result fanned back out to every
  waiter.  The second and later arrivals cost nothing but a dictionary
  insert, the serving analogue of `StepCache`'s latest-fingerprint hit.
* **Batching** — distinct units sharing a :attr:`JobRequest.system_key`
  ride in one :class:`Batch` to one pool worker, where
  :func:`repro.serve.jobs.execute_batch` serves them all off one shared
  `StepCache` (one system build, one pair list, one short-range
  evaluation per work list) — the sweep-style reuse of DESIGN.md §8
  applied across *requests* instead of ladder rungs.

The batcher pulls compatible jobs across tenant boundaries: identical
work submitted by two tenants still executes once.  Fair-share
accounting is unaffected — the scheduler charges every member job to
its own tenant (:meth:`Batch.tenant_shares`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serve.jobs import JobRequest
from repro.serve.queue import Job, JobQueue


@dataclass
class Batch:
    """One dispatch unit: distinct requests plus their waiter fan-out."""

    #: Distinct requests, in first-arrival order; what the worker runs.
    units: list[JobRequest] = field(default_factory=list)
    #: fingerprint -> every Job waiting on that unit (first = executor).
    waiters: dict[str, list[Job]] = field(default_factory=dict)

    @property
    def n_units(self) -> int:
        return len(self.units)

    @property
    def n_jobs(self) -> int:
        return sum(len(js) for js in self.waiters.values())

    @property
    def jobs(self) -> list[Job]:
        return [j for js in self.waiters.values() for j in js]

    @property
    def dedup_hits(self) -> int:
        """Jobs served without their own execution."""
        return self.n_jobs - self.n_units

    def tenant_shares(self) -> dict[str, int]:
        """Job count per tenant (fair-share charging unit)."""
        shares: dict[str, int] = {}
        for job in self.jobs:
            t = job.request.tenant
            shares[t] = shares.get(t, 0) + 1
        return shares

    def add(self, job: Job) -> bool:
        """Attach a job; True if it added a new execution unit."""
        fp = job.request.fingerprint
        if fp in self.waiters:
            self.waiters[fp].append(job)
            return False
        self.units.append(job.request)
        self.waiters[fp] = [job]
        return True


class Batcher:
    """Builds batches from the queue around one seed job."""

    def __init__(self, max_batch: int = 16, dedup: bool = True) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1: {max_batch}")
        self.max_batch = max_batch
        self.dedup = dedup

    def collect(self, seed: Job, queue: JobQueue) -> Batch:
        """One batch: the seed plus every queued job that can share its
        dispatch (same fingerprint, or same system key up to
        ``max_batch`` distinct units).  With ``dedup`` off, every job is
        its own batch — the ablation baseline the throughput benchmark
        measures against."""
        batch = Batch()
        batch.add(seed)
        if not self.dedup:
            return batch
        key = seed.request.system_key

        def compatible(job: Job) -> bool:
            fp = job.request.fingerprint
            if fp in batch.waiters:
                return True  # pure dedup: no new unit
            return (
                job.request.system_key == key
                and batch.n_units < self.max_batch
            )

        while True:
            job = queue.pop_matching(compatible)
            if job is None:
                return batch
            batch.add(job)
