"""Chrome-trace / Perfetto JSON export of a recorded event timeline.

Produces the `Trace Event Format`_ JSON-object flavour: a
``{"traceEvents": [...]}`` document of complete ("X") events plus
metadata ("M") events naming one thread per track — CPE 00..63, MPE and
DMA — all under a single process.  Load the file in ``chrome://tracing``
or https://ui.perfetto.dev to inspect the pipeline overlap visually.

Timestamps are converted from chip cycles to microseconds (the format's
native unit) through ``ChipParams.clock_hz``.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json

from repro.hw.params import ChipParams
from repro.trace.events import DMA_TRACK, MPE_TRACK, Tracer, track_label

#: Process id for the (single) simulated core group.
PID = 0

#: Stable thread ids: CPEs keep their id; pseudo-tracks map above them so
#: every tid is non-negative (Perfetto sorts tracks by tid).
_TID_MPE = 1000
_TID_DMA = 1001


def _tid(cpe_id: int) -> int:
    if cpe_id == MPE_TRACK:
        return _TID_MPE
    if cpe_id == DMA_TRACK:
        return _TID_DMA
    return cpe_id


def to_chrome_trace(
    tracer: Tracer, params: ChipParams | None = None
) -> dict:
    """Convert a tracer's events into a Chrome-trace JSON object."""
    params = params or tracer.params
    us_per_cycle = 1e6 * params.cycle_s
    trace_events: list[dict] = []
    for track in tracer.tracks():
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": PID,
                "tid": _tid(track),
                "args": {"name": track_label(track, params)},
            }
        )
    trace_events.append(
        {
            "ph": "M",
            "name": "process_name",
            "pid": PID,
            "tid": 0,
            "args": {"name": "SW26010 core group (simulated)"},
        }
    )
    for e in tracer.events:
        rec = {
            "ph": "X",
            "name": e.name,
            "cat": e.category,
            "pid": PID,
            "tid": _tid(e.cpe_id),
            "ts": e.start_cycle * us_per_cycle,
            "dur": e.duration_cycles * us_per_cycle,
        }
        if e.args:
            rec["args"] = dict(e.args)
        trace_events.append(rec)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock_hz": params.clock_hz,
            "n_cpes": params.n_cpes,
            "source": "repro.trace (SW_GROMACS reproduction)",
        },
    }


def write_chrome_trace(
    tracer: Tracer, path: str, params: ChipParams | None = None
) -> dict:
    """Serialise the tracer to ``path``; returns the exported object."""
    doc = to_chrome_trace(tracer, params)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return doc


def validate_chrome_trace(doc: dict) -> list[str]:
    """Schema check for the exported object; returns a list of problems.

    Covers what Perfetto's importer actually requires: a ``traceEvents``
    list; every event has a phase; "X" events carry name/pid/tid plus
    numeric non-negative ts/dur; "M" metadata events carry an args.name.
    An empty list means the document is loadable.
    """
    problems: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = e.get("ph")
        if ph not in ("X", "M", "i", "B", "E"):
            problems.append(f"event {i}: bad phase {ph!r}")
            continue
        if "pid" not in e or "tid" not in e:
            problems.append(f"event {i}: missing pid/tid")
        if ph == "X":
            for key in ("name", "ts", "dur"):
                if key not in e:
                    problems.append(f"event {i}: X event missing {key!r}")
            ts, dur = e.get("ts", 0), e.get("dur", 0)
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"event {i}: bad ts {ts!r}")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: bad dur {dur!r}")
        elif ph == "M":
            if e.get("name") not in ("thread_name", "process_name"):
                problems.append(f"event {i}: unknown metadata {e.get('name')!r}")
            elif "name" not in e.get("args", {}):
                problems.append(f"event {i}: metadata without args.name")
    try:
        json.dumps(doc)
    except (TypeError, ValueError) as exc:
        problems.append(f"not JSON-serialisable: {exc}")
    return problems
