"""Per-CPE event-timeline tracing for the simulated SW26010 core group.

The cost model accumulates scalar sums (`PerfCounters`, `KernelTiming`);
this module records *where on the timeline* those cycles and bytes land,
so the pipeline overlap we claim can be observed instead of assumed.

Units: every event carries ``start_cycle`` / ``duration_cycles`` in chip
cycles (``ChipParams.clock_hz``).  Each event lives on a *track*: CPE
tracks are ``cpe_id`` 0..63, plus two pseudo-tracks, :data:`MPE_TRACK`
(serial MPE work, step phases) and :data:`DMA_TRACK` (the CG's shared DMA
engine).

Two tracer implementations share one interface:

* :class:`NullTracer` — the default everywhere.  ``enabled`` is False and
  every method is a no-op; hot paths guard emission with
  ``if tracer.enabled:`` so the untraced path costs a single attribute
  load (benchmarked <2 % on a water step in
  ``benchmarks/bench_trace_overhead.py``).
* :class:`Tracer` — records :class:`TraceEvent` objects and keeps a
  per-track cursor so sequential emitters (`emit`) need no explicit
  timestamps, while timeline-aware emitters (`span`) place events
  absolutely.

Export to Chrome/Perfetto JSON lives in :mod:`repro.trace.export`;
derived metrics (overlap, occupancy, DMA histogram, roofline) in
:mod:`repro.trace.analyze`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.params import ChipParams, DEFAULT_PARAMS

#: Pseudo-track ids (real CPEs are 0..n_cpes-1).
MPE_TRACK = -1
DMA_TRACK = -2
#: The serving layer's timeline (queue waits, batch executions,
#: admission rejects) — wall time mapped through the chip clock so
#: service spans land on the same axis as simulated work.
SERVE_TRACK = -3
#: The fleet tier's timeline (routing decisions, worker registration,
#: death/drain transitions, job reassignments) — same wall-to-cycle
#: mapping as SERVE_TRACK, one level further out.
FLEET_TRACK = -4

#: Event categories used by the built-in instrumentation.
CAT_COMPUTE = "compute"
CAT_DMA = "dma"
CAT_GLD = "gld"
CAT_GST = "gst"
CAT_INIT = "init"
CAT_REDUCTION = "reduction"
CAT_KERNEL = "kernel"
CAT_STEP = "step_phase"
CAT_PIPELINE = "pipeline"
CAT_FAULT = "fault"
CAT_CHECKPOINT = "checkpoint"
CAT_SERVE = "serve"
CAT_FLEET = "fleet"
#: Durable-layer events on SERVE_TRACK: journal replays at restart,
#: result-store hits, segment rotations (DESIGN.md §12).
CAT_DURABLE = "durable"


@dataclass
class TraceEvent:
    """One complete span on one track of the core-group timeline."""

    name: str
    category: str
    cpe_id: int
    start_cycle: float
    duration_cycles: float
    args: dict = field(default_factory=dict)

    @property
    def end_cycle(self) -> float:
        return self.start_cycle + self.duration_cycles


class NullTracer:
    """Do-nothing tracer: the zero-overhead default.

    Also serves as the base class / interface definition for
    :class:`Tracer`, so ``tracer: NullTracer`` annotations accept both.
    """

    enabled: bool = False

    def span(
        self,
        name: str,
        category: str,
        cpe_id: int,
        start_cycle: float,
        duration_cycles: float,
        **args,
    ) -> None:
        """Record a complete event at an absolute timeline position."""

    def emit(
        self, name: str, category: str, cpe_id: int, duration_cycles: float, **args
    ) -> None:
        """Record an event at the track's current cursor and advance it."""

    def instant(self, name: str, category: str, cpe_id: int, **args) -> None:
        """Record a zero-duration marker at the track's cursor."""

    def span_seconds(
        self,
        name: str,
        category: str,
        cpe_id: int,
        start_s: float,
        duration_s: float,
        **args,
    ) -> None:
        """`span` with seconds converted through the tracer's clock."""

    def emit_seconds(
        self, name: str, category: str, cpe_id: int, duration_s: float, **args
    ) -> None:
        """`emit` with seconds converted through the tracer's clock."""

    def advance(self, cpe_id: int, cycles: float) -> None:
        """Move a track's cursor forward without recording an event."""

    def absorb(self, events: list["TraceEvent"], track_offset: int = 0) -> None:
        """Merge a worker-local tracer's events (no-op here)."""

    def cursor(self, cpe_id: int) -> float:
        """Current cursor of a track (0.0 when untouched)."""
        return 0.0

    def end_cycle(self) -> float:
        """Latest event end over all tracks (0.0 when empty)."""
        return 0.0


class Tracer(NullTracer):
    """Recording tracer: an append-only event list plus track cursors."""

    enabled = True

    def __init__(self, params: ChipParams = DEFAULT_PARAMS) -> None:
        self.params = params
        self.events: list[TraceEvent] = []
        self._cursors: dict[int, float] = {}

    # --- core emission -----------------------------------------------------
    def span(
        self,
        name: str,
        category: str,
        cpe_id: int,
        start_cycle: float,
        duration_cycles: float,
        **args,
    ) -> None:
        if duration_cycles < 0:
            raise ValueError(
                f"negative duration for event {name!r}: {duration_cycles}"
            )
        self.events.append(
            TraceEvent(name, category, cpe_id, start_cycle, duration_cycles, args)
        )
        end = start_cycle + duration_cycles
        if end > self._cursors.get(cpe_id, 0.0):
            self._cursors[cpe_id] = end

    def emit(
        self, name: str, category: str, cpe_id: int, duration_cycles: float, **args
    ) -> None:
        self.span(
            name, category, cpe_id, self._cursors.get(cpe_id, 0.0),
            duration_cycles, **args,
        )

    def instant(self, name: str, category: str, cpe_id: int, **args) -> None:
        self.span(name, category, cpe_id, self._cursors.get(cpe_id, 0.0), 0.0, **args)

    # --- seconds helpers ---------------------------------------------------
    def span_seconds(
        self,
        name: str,
        category: str,
        cpe_id: int,
        start_s: float,
        duration_s: float,
        **args,
    ) -> None:
        hz = self.params.clock_hz
        self.span(name, category, cpe_id, start_s * hz, duration_s * hz, **args)

    def emit_seconds(
        self, name: str, category: str, cpe_id: int, duration_s: float, **args
    ) -> None:
        self.emit(name, category, cpe_id, duration_s * self.params.clock_hz, **args)

    # --- cursors -----------------------------------------------------------
    def advance(self, cpe_id: int, cycles: float) -> None:
        if cycles < 0:
            raise ValueError(f"cannot advance cursor backwards: {cycles}")
        self._cursors[cpe_id] = self._cursors.get(cpe_id, 0.0) + cycles

    def cursor(self, cpe_id: int) -> float:
        return self._cursors.get(cpe_id, 0.0)

    def end_cycle(self) -> float:
        if not self.events:
            return 0.0
        return max(e.end_cycle for e in self.events)

    # --- merging -----------------------------------------------------------
    def absorb(self, events: list[TraceEvent], track_offset: int = 0) -> None:
        """Merge another tracer's recorded events into this timeline.

        The host-parallel backend (DESIGN.md §9) gives each worker a
        private tracer; on join the parent absorbs the per-worker event
        lists in a deterministic order (CPE-id / rank order), so the
        merged timeline is bit-identical to a serial run.  Events keep
        their absolute positions; ``track_offset`` shifts non-negative
        track ids (multi-rank merges place rank r at offset r * n_cpes;
        the MPE/DMA pseudo-tracks are never shifted).
        """
        for e in events:
            track = e.cpe_id + track_offset if e.cpe_id >= 0 else e.cpe_id
            self.span(
                e.name, e.category, track, e.start_cycle,
                e.duration_cycles, **e.args,
            )

    # --- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def tracks(self) -> list[int]:
        """Sorted track ids that carry at least one event."""
        return sorted({e.cpe_id for e in self.events})

    def select(
        self, category: str | None = None, cpe_id: int | None = None
    ) -> list[TraceEvent]:
        return [
            e
            for e in self.events
            if (category is None or e.category == category)
            and (cpe_id is None or e.cpe_id == cpe_id)
        ]

    def total_cycles(
        self, category: str | None = None, cpe_id: int | None = None
    ) -> float:
        return sum(e.duration_cycles for e in self.select(category, cpe_id))

    def total_seconds(
        self, category: str | None = None, cpe_id: int | None = None
    ) -> float:
        return self.total_cycles(category, cpe_id) * self.params.cycle_s

    def by_name_seconds(self, category: str | None = None) -> dict[str, float]:
        """Event name -> summed duration in seconds (KernelTiming shape)."""
        out: dict[str, float] = {}
        for e in self.select(category):
            out[e.name] = out.get(e.name, 0.0) + e.duration_cycles
        return {k: v * self.params.cycle_s for k, v in out.items()}

    def clear(self) -> None:
        self.events.clear()
        self._cursors.clear()


#: Shared stateless no-op tracer: the default for every instrumented path.
NULL_TRACER = NullTracer()


def track_label(cpe_id: int, params: ChipParams = DEFAULT_PARAMS) -> str:
    """Human-readable track name ("CPE 07", "MPE", "DMA")."""
    if cpe_id == MPE_TRACK:
        return "MPE"
    if cpe_id == DMA_TRACK:
        return "DMA"
    if cpe_id == SERVE_TRACK:
        return "SERVE"
    if cpe_id == FLEET_TRACK:
        return "FLEET"
    if 0 <= cpe_id < params.n_cpes:
        return f"CPE {cpe_id:02d}"
    return f"track {cpe_id}"
