"""Event-timeline tracing and analysis for the SW26010 simulator.

Public surface:

* :class:`Tracer` / :class:`NullTracer` / :data:`NULL_TRACER` — the
  span/instant recording API (no-op by default, see
  :mod:`repro.trace.events`);
* :class:`TraceEvent`, :data:`MPE_TRACK`, :data:`DMA_TRACK` — the event
  model and pseudo-track ids;
* :func:`to_chrome_trace` / :func:`write_chrome_trace` /
  :func:`validate_chrome_trace` — Chrome/Perfetto JSON export;
* :func:`measure_overlap`, :func:`occupancy`, :func:`load_imbalance`,
  :func:`dma_bandwidth_histogram`, :func:`roofline_point`,
  :func:`summarize` — derived metrics.
"""

from repro.trace.analyze import (
    DmaBucket,
    FaultReport,
    OverlapReport,
    RooflinePoint,
    dma_bandwidth_histogram,
    fault_report,
    load_imbalance,
    measure_overlap,
    occupancy,
    roofline_point,
    summarize,
)
from repro.trace.events import (
    CAT_CHECKPOINT,
    CAT_COMPUTE,
    CAT_DMA,
    CAT_FAULT,
    CAT_GLD,
    CAT_GST,
    CAT_INIT,
    CAT_KERNEL,
    CAT_PIPELINE,
    CAT_REDUCTION,
    CAT_SERVE,
    CAT_STEP,
    DMA_TRACK,
    MPE_TRACK,
    SERVE_TRACK,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    track_label,
)
from repro.trace.export import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "CAT_CHECKPOINT",
    "CAT_COMPUTE",
    "CAT_DMA",
    "CAT_FAULT",
    "CAT_GLD",
    "CAT_GST",
    "CAT_INIT",
    "CAT_KERNEL",
    "CAT_PIPELINE",
    "CAT_REDUCTION",
    "CAT_SERVE",
    "CAT_STEP",
    "DMA_TRACK",
    "SERVE_TRACK",
    "DmaBucket",
    "FaultReport",
    "MPE_TRACK",
    "NULL_TRACER",
    "NullTracer",
    "OverlapReport",
    "RooflinePoint",
    "TraceEvent",
    "Tracer",
    "dma_bandwidth_histogram",
    "fault_report",
    "load_imbalance",
    "measure_overlap",
    "occupancy",
    "roofline_point",
    "summarize",
    "to_chrome_trace",
    "track_label",
    "validate_chrome_trace",
    "write_chrome_trace",
]
