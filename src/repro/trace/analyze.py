"""Derived metrics from a recorded event timeline.

Everything `PerfCounters` *assumes* (the pipeline-overlap scalar, balanced
CPEs, the Table 2 bandwidth curve) can be *measured* from a trace:

* :func:`measure_overlap` — the compute/DMA overlap fraction actually
  realised on the timeline, comparable to ``ChipParams.pipeline_overlap``;
* :func:`occupancy` / :func:`load_imbalance` — per-CPE busy fractions and
  the critical/mean ratio the partitioner tries to minimise;
* :func:`dma_bandwidth_histogram` — achieved GB/s per transaction block
  size, regenerating the paper's Table 2 from recorded transactions
  instead of the closed-form model;
* :func:`roofline_point` — arithmetic intensity and achieved GFLOP/s
  against the core group's bandwidth/compute ceilings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.params import ChipParams
from repro.trace.events import (
    CAT_COMPUTE,
    CAT_DMA,
    CAT_FAULT,
    CAT_GLD,
    CAT_GST,
    DMA_TRACK,
    TraceEvent,
    Tracer,
)

#: Categories that occupy a CPE's execution pipeline.
CPE_BUSY_CATEGORIES = (CAT_COMPUTE, CAT_GLD, CAT_GST)


def _span(events: list[TraceEvent]) -> tuple[float, float]:
    """(first start, last end) over the given events; (0, 0) when empty."""
    if not events:
        return 0.0, 0.0
    return (
        min(e.start_cycle for e in events),
        max(e.end_cycle for e in events),
    )


@dataclass
class OverlapReport:
    """Measured compute/DMA overlap over one traced parallel region."""

    compute_cycles: float  # critical-CPE compute busy time
    dma_cycles: float  # DMA-track busy time
    makespan_cycles: float  # last end - first start over both
    hidden_cycles: float  # compute + dma - makespan

    @property
    def overlap_fraction(self) -> float:
        """The scalar `PerfCounters.elapsed_seconds` would need:
        ``T = C + D - overlap * min(C, D)`` solved for ``overlap``."""
        denom = min(self.compute_cycles, self.dma_cycles)
        if denom <= 0.0:
            return 1.0
        return min(max(self.hidden_cycles / denom, 0.0), 1.0)


def measure_overlap(tracer: Tracer) -> OverlapReport:
    """Measure the realised compute/DMA overlap from the timeline.

    Compute time is the *critical* CPE's busy cycles (the same max-over-
    CPEs quantity the cost model charges); DMA time is the DMA track's
    busy cycles in the ``dma`` category (init/reduction passes are
    separate categories and excluded, matching the parallel-region
    definition of ``PerfCounters.elapsed_seconds``).
    """
    compute = [e for e in tracer.events if e.category == CAT_COMPUTE and e.cpe_id >= 0]
    dma = [e for e in tracer.events if e.category == CAT_DMA and e.cpe_id == DMA_TRACK]
    per_cpe: dict[int, float] = {}
    for e in compute:
        per_cpe[e.cpe_id] = per_cpe.get(e.cpe_id, 0.0) + e.duration_cycles
    c = max(per_cpe.values()) if per_cpe else 0.0
    d = sum(e.duration_cycles for e in dma)
    lo, hi = _span(compute + dma)
    makespan = hi - lo
    return OverlapReport(
        compute_cycles=c,
        dma_cycles=d,
        makespan_cycles=makespan,
        hidden_cycles=c + d - makespan,
    )


def occupancy(tracer: Tracer) -> dict[int, float]:
    """Per-CPE busy fraction over the CPE-activity makespan."""
    events = [
        e
        for e in tracer.events
        if e.cpe_id >= 0 and e.category in CPE_BUSY_CATEGORIES
    ]
    lo, hi = _span(events)
    makespan = hi - lo
    if makespan <= 0.0:
        return {}
    busy: dict[int, float] = {}
    for e in events:
        busy[e.cpe_id] = busy.get(e.cpe_id, 0.0) + e.duration_cycles
    return {cpe: cycles / makespan for cpe, cycles in sorted(busy.items())}


def load_imbalance(tracer: Tracer) -> float:
    """Critical / mean CPE busy time (1.0 = perfectly balanced)."""
    occ = occupancy(tracer)
    if not occ:
        return 1.0
    values = list(occ.values())
    mean = sum(values) / len(values)
    if mean <= 0.0:
        return 1.0
    return max(values) / mean


@dataclass
class DmaBucket:
    """Aggregated DMA activity for one transaction block size."""

    size_bytes: int
    n_transactions: int
    bytes_total: int
    seconds: float

    @property
    def bandwidth_gbs(self) -> float:
        if self.seconds <= 0.0:
            return 0.0
        return self.bytes_total / self.seconds / 1e9


def dma_bandwidth_histogram(
    tracer: Tracer, params: ChipParams | None = None
) -> list[DmaBucket]:
    """Achieved bandwidth per block size from recorded DMA transactions.

    Only per-transaction events carrying a ``size_bytes`` arg contribute
    (the `DmaEngine` hooks attach it); aggregate kernel-phase spans
    without a block size are skipped.  Driving `hw.dma.bandwidth_table`'s
    traffic pattern through a traced engine regenerates the paper's
    Table 2 from events.
    """
    params = params or tracer.params
    buckets: dict[int, DmaBucket] = {}
    for e in tracer.events:
        if e.category != CAT_DMA or "size_bytes" not in e.args:
            continue
        size = int(e.args["size_bytes"])
        count = int(e.args.get("count", 1))
        b = buckets.get(size)
        if b is None:
            b = buckets[size] = DmaBucket(size, 0, 0, 0.0)
        b.n_transactions += count
        b.bytes_total += size * count
        b.seconds += e.duration_cycles * params.cycle_s
    return [buckets[size] for size in sorted(buckets)]


@dataclass
class RooflinePoint:
    """One kernel's position against the core-group roofline."""

    flops: float
    dma_bytes: float
    makespan_seconds: float
    peak_gflops: float
    stream_bandwidth_gbs: float

    @property
    def intensity(self) -> float:
        """Arithmetic intensity, FLOP per DMA byte."""
        if self.dma_bytes <= 0.0:
            return float("inf")
        return self.flops / self.dma_bytes

    @property
    def achieved_gflops(self) -> float:
        if self.makespan_seconds <= 0.0:
            return 0.0
        return self.flops / self.makespan_seconds / 1e9

    @property
    def attainable_gflops(self) -> float:
        """Roofline ceiling at this intensity."""
        return min(self.peak_gflops, self.intensity * self.stream_bandwidth_gbs)

    @property
    def bound(self) -> str:
        ridge = self.peak_gflops / self.stream_bandwidth_gbs
        return "memory" if self.intensity < ridge else "compute"


def roofline_point(
    tracer: Tracer, params: ChipParams | None = None
) -> RooflinePoint:
    """Place the traced execution on the core group's roofline.

    FLOPs come from compute events' ``flops`` args (the kernel hooks
    attach an LJ+RF per-pair estimate); events without the arg fall back
    to 1 FLOP/cycle/lane.  Bytes are the DMA events' recorded traffic.
    """
    flops = 0.0
    for e in tracer.events:
        if e.category != CAT_COMPUTE:
            continue
        if "flops" in e.args:
            flops += float(e.args["flops"])
        else:
            flops += e.duration_cycles * (params or tracer.params).simd_width_floats
    params = params or tracer.params
    dma_bytes = 0.0
    for e in tracer.events:
        if e.category != CAT_DMA:
            continue
        if "bytes" in e.args:
            dma_bytes += float(e.args["bytes"])
        elif "size_bytes" in e.args:
            dma_bytes += float(e.args["size_bytes"]) * int(e.args.get("count", 1))
    region = [
        e for e in tracer.events if e.category in (CAT_COMPUTE, CAT_DMA)
    ]
    lo, hi = _span(region)
    return RooflinePoint(
        flops=flops,
        dma_bytes=dma_bytes,
        makespan_seconds=(hi - lo) * params.cycle_s,
        peak_gflops=params.peak_gflops_per_cg,
        stream_bandwidth_gbs=params.dma_curve[-1][1],
    )


@dataclass
class FaultReport:
    """Injected-fault recovery overhead measured from the timeline."""

    n_events: int  # retry/loss trace events
    n_retries: int  # reissued transactions/messages
    retried_bytes: int  # payload that re-entered the bandwidth curve
    retry_cycles: float  # total recovery time (resends + backoff)
    total_cycles: float  # all-event busy cycles for the overhead ratio

    @property
    def overhead_fraction(self) -> float:
        """Recovery time as a fraction of all recorded busy time."""
        if self.total_cycles <= 0.0:
            return 0.0
        return self.retry_cycles / self.total_cycles


def fault_report(tracer: Tracer) -> FaultReport:
    """Aggregate the ``fault`` category: what recovery actually cost.

    The retry hooks (`DmaEngine._charge_faults`, `SimComm`) emit one
    event per retry round carrying ``count`` and ``size_bytes`` args;
    this folds them into the overhead numbers `repro trace`/`repro run`
    print, closing the loop on the retry cost accounting: the overhead
    the cost model charged is the overhead the timeline shows.
    """
    events = tracer.select(CAT_FAULT)
    n_retries = 0
    retried_bytes = 0
    retry_cycles = 0.0
    for e in events:
        count = int(e.args.get("count", 1))
        n_retries += count
        retried_bytes += int(e.args.get("size_bytes", 0)) * count
        retry_cycles += e.duration_cycles
    return FaultReport(
        n_events=len(events),
        n_retries=n_retries,
        retried_bytes=retried_bytes,
        retry_cycles=retry_cycles,
        total_cycles=sum(e.duration_cycles for e in tracer.events),
    )


def summarize(tracer: Tracer) -> str:
    """Human-readable analysis block (used by ``repro trace``)."""
    ov = measure_overlap(tracer)
    imb = load_imbalance(tracer)
    occ = occupancy(tracer)
    rl = roofline_point(tracer)
    lines = [
        f"events              : {len(tracer)} on {len(tracer.tracks())} tracks",
        f"makespan            : {ov.makespan_cycles * tracer.params.cycle_s * 1e6:.2f} us",
        f"measured overlap    : {ov.overlap_fraction:.3f} "
        f"(model assumes {tracer.params.pipeline_overlap:.2f})",
        f"load imbalance      : {imb:.3f} over {len(occ)} CPEs",
        f"arithmetic intensity: {rl.intensity:.2f} flop/byte "
        f"({rl.bound}-bound; ridge at "
        f"{rl.peak_gflops / rl.stream_bandwidth_gbs:.1f})",
        f"achieved            : {rl.achieved_gflops:.1f} GFLOP/s "
        f"(roofline ceiling {rl.attainable_gflops:.1f})",
    ]
    hist = dma_bandwidth_histogram(tracer)
    if hist:
        lines.append("DMA bandwidth by block size:")
        for b in hist:
            lines.append(
                f"  {b.size_bytes:6d} B x{b.n_transactions:<8d} "
                f"{b.bandwidth_gbs:6.2f} GB/s"
            )
    faults = fault_report(tracer)
    if faults.n_events:
        lines.append(
            f"fault recovery      : {faults.n_retries} retries "
            f"({faults.retried_bytes} B re-sent), "
            f"{faults.overhead_fraction:.2%} of busy time"
        )
    return "\n".join(lines)
