"""Checkpoint overhead on the water step loop: must stay under 2 %.

Two costs matter, and both are bounded here:

1. **modelled** — what the resilience layer charges the chip for the
   checkpoint writes (the "Checkpoint" row of `KernelTiming`): syscalls
   plus the float64 payload at disk bandwidth.  Amortised over the
   checkpoint cadence this must stay below 2 % of modelled step time,
   or the simulated machine would spend its exascale-resilience budget
   on I/O.
2. **measured** — the real wall time `save_checkpoint` spends
   serialising, hashing, fsyncing, and renaming, relative to the real
   wall time of one functional MD step at the same cadence.

The cadence is one checkpoint every 50 steps — already far denser than
GROMACS' default (one write per 15 wall-clock *minutes*, i.e. many
thousands of steps), so passing here means any sane cadence passes.
"""

from __future__ import annotations

import time

from repro.core.engine import (
    KERNEL_CHECKPOINT,
    EngineConfig,
    SWGromacsEngine,
)
from repro.resilience import ResiliencePolicy, load_checkpoint, save_checkpoint

from conftest import cached_water, emit

N_PARTICLES = 1500
N_STEPS = 50
CHECKPOINT_EVERY = 50
BUDGET = 0.02


def test_checkpoint_overhead(benchmark, nb_paper, tmp_path):
    path = str(tmp_path / "state.ckpt")
    policy = ResiliencePolicy(
        checkpoint_every=CHECKPOINT_EVERY, checkpoint_path=path
    )
    engine = SWGromacsEngine(
        cached_water(N_PARTICLES).copy(),
        EngineConfig(nonbonded=nb_paper, resilience=policy),
    )

    t0 = time.perf_counter()
    result = benchmark.pedantic(
        lambda: engine.run(N_STEPS), rounds=1, iterations=1
    )
    wall_run_seconds = time.perf_counter() - t0
    assert result.checkpoints_written == N_STEPS // CHECKPOINT_EVERY

    # 1. Modelled: the Checkpoint row against everything else.
    ckpt_modelled = result.timing.seconds[KERNEL_CHECKPOINT]
    step_modelled = result.timing.total() - ckpt_modelled
    modelled_fraction = ckpt_modelled / step_modelled
    assert modelled_fraction < BUDGET, (
        f"modelled checkpoint cost is {modelled_fraction:.2%} of step time "
        f"(budget {BUDGET:.0%}) at cadence {CHECKPOINT_EVERY}"
    )

    # 2. Measured: wall time of the writes at the same cadence vs the
    #    wall time of the functional steps that ran between them.
    ckpt = engine.checkpoint()
    t0 = time.perf_counter()
    n_writes = 10
    for _ in range(n_writes):
        save_checkpoint(ckpt, path)
    write_seconds = (time.perf_counter() - t0) / n_writes
    wall_step_seconds = (wall_run_seconds - write_seconds * result.checkpoints_written) / N_STEPS
    measured_fraction = write_seconds / (CHECKPOINT_EVERY * wall_step_seconds)
    assert measured_fraction < BUDGET, (
        f"measured checkpoint write is {measured_fraction:.2%} of wall step "
        f"time (budget {BUDGET:.0%}) at cadence {CHECKPOINT_EVERY}"
    )

    # Sanity: what was written is a valid, loadable checkpoint.
    assert load_checkpoint(path).n_particles == engine.system.n_particles

    emit(
        benchmark,
        f"Checkpoint overhead ({N_PARTICLES} particles, every "
        f"{CHECKPOINT_EVERY} steps):\n"
        f"  modelled  {modelled_fraction:8.4%} of step time (budget {BUDGET:.0%})\n"
        f"  measured  {measured_fraction:8.4%} of wall step time "
        f"({write_seconds * 1e3:.2f} ms/write, "
        f"{wall_step_seconds * 1e3:.1f} ms/step)",
        modelled_fraction=round(modelled_fraction, 6),
        measured_fraction=round(measured_fraction, 6),
        write_ms=round(write_seconds * 1e3, 3),
    )
