"""Fig. 11 + Table 4 + Eqs. (3)-(4) — cross-platform TTF comparison.

Evaluates the paper's own TTF equations from the Table 4 constants,
derives the "fair" chip counts (150 SW26010 vs 1 KNL; 24 vs 1 P100), and
regenerates the nine Fig. 11 bars from our measured whole-application
speedup.
"""

import pytest

from repro.analysis.figures import PAPER_EQ3_TTF_KNL, PAPER_EQ4_TTF_P100
from repro.core.engine import run_optimization_ladder
from repro.core.platforms import fair_chip_count, modelled_figure11, ttf_ratio
from repro.md.water import build_water_system
from repro.util.tables import format_table

from conftest import emit


def test_eq3_eq4_ttf_ratios(benchmark):
    ratios = benchmark(
        lambda: (ttf_ratio("SW26010", "KNL"), ttf_ratio("SW26010", "P100"))
    )
    knl, p100 = ratios
    text = format_table(
        ["comparison", "measured", "paper"],
        [
            ("TTF_SW / TTF_KNL (Eq. 3)", knl, PAPER_EQ3_TTF_KNL),
            ("TTF_SW / TTF_P100 (Eq. 4)", p100, PAPER_EQ4_TTF_P100),
        ],
        title="Eqs. (3)-(4) — TTF ratios from Table 4",
    )
    emit(benchmark, text, ttf_knl=round(knl, 1), ttf_p100=round(p100, 1))
    assert knl == pytest.approx(150, rel=0.03)
    assert p100 == pytest.approx(24, rel=0.03)
    assert fair_chip_count("KNL") == pytest.approx(150, abs=5)
    assert fair_chip_count("P100") == pytest.approx(24, abs=2)


def test_fig11_bars(benchmark, nb_paper, case2_local_particles):
    def build():
        ladder = run_optimization_ladder(
            lambda n: build_water_system(n, seed=2019),
            case2_local_particles,
            n_cgs=512,
            nonbonded=nb_paper,
            output_interval=100,
        )
        overall = ladder["Ori"].total() / ladder["Other"].total()
        return overall, modelled_figure11(overall)

    overall, bars = benchmark.pedantic(build, rounds=1, iterations=1)
    paper_bars = {
        "150x MPE": 1.0, "KNL": 1.77, "150x CPE": 18.06,
        "24x MPE": 1.0, "1x P100": 22.77, "24x CPE": 22.92,
        "48x MPE": 1.0, "2x P100": 17.20, "48x CPE": 21.47,
    }
    text = format_table(
        ["configuration", "measured x", "paper x"],
        [(b.label, b.speedup, paper_bars[b.label]) for b in bars],
        title="Fig. 11 — cross-platform whole-application speedups",
    )
    emit(benchmark, text, overall_cpe_speedup=round(overall, 1))

    by_label = {b.label: b.speedup for b in bars}
    # Paper's claims: CPE versions beat both comparators at the fair chip
    # counts, and 48 CPEs beat 2 P100s (better scalability).
    assert by_label["150x CPE"] > by_label["KNL"]
    assert by_label["24x CPE"] > by_label["1x P100"] * 0.9
    assert by_label["48x CPE"] > by_label["2x P100"]
