"""Ablation benches for the design choices DESIGN.md §5 calls out.

1. §3.5 — direct-mapped vs two-way cache in pair-list generation;
2. §3.6 — MPI vs RDMA message-cost sweep;
3. §3.7 — naive vs fast trajectory I/O;
4. Bit-Map payoff vs touched-line density (marked vs unmarked reduction);
5. cache-line geometry (packages per line);
6. AOS vs SOA pre-treatment cost (Fig. 6).
"""

import numpy as np

from repro.core.comm_opt import message_sweep
from repro.core.fastio import io_model_seconds
from repro.core.kernels import ALL_SPECS, run_kernel
from repro.core.pairlist_cpe import adversarial_trace, cache_study, search_kernel_seconds
from repro.core.reduction import init_cost, reduction_cost
from repro.hw.params import DEFAULT_PARAMS
from repro.md.pairlist import build_pair_list
from repro.util.tables import format_table

from conftest import cached_water, emit


def test_ablation_pairlist_cache(benchmark, nb_paper):
    """§3.5: the two-way cache removes the search kernel's thrashing."""
    system = cached_water(3000)
    plist = build_pair_list(system, nb_paper.r_list)

    def run():
        study = cache_study(adversarial_trace(200_000))
        t_direct = search_kernel_seconds(plist, study.direct_miss_ratio)
        t_two_way = search_kernel_seconds(plist, study.two_way_miss_ratio)
        return study, t_direct, t_two_way

    study, t_direct, t_two_way = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["cache", "miss ratio", "search time (ms)"],
        [
            ("direct-mapped", study.direct_miss_ratio, t_direct * 1e3),
            ("two-way", study.two_way_miss_ratio, t_two_way * 1e3),
        ],
        title="§3.5 — search-kernel cache organisation (paper: >85% -> ~10%)",
    )
    emit(
        benchmark,
        text,
        direct_miss=round(study.direct_miss_ratio, 3),
        two_way_miss=round(study.two_way_miss_ratio, 3),
        speedup=round(t_direct / t_two_way, 2),
    )
    assert study.direct_miss_ratio > 0.85
    assert study.two_way_miss_ratio < 0.15
    assert t_direct / t_two_way > 2.0


def test_ablation_rdma_sweep(benchmark):
    """§3.6: RDMA vs MPI across message sizes."""
    rows = benchmark(message_sweep)
    text = format_table(
        ["size (B)", "MPI (us)", "RDMA (us)", "speedup"],
        [
            (r.size_bytes, r.mpi_seconds * 1e6, r.rdma_seconds * 1e6, r.speedup)
            for r in rows
        ],
        title="§3.6 — MPI vs RDMA single-message cost",
    )
    emit(benchmark, text, small_msg_speedup=round(rows[0].speedup, 2))
    assert all(r.speedup > 1.0 for r in rows)
    assert rows[0].speedup >= rows[-1].speedup  # latency-dominated win


def test_ablation_fast_io(benchmark):
    """§3.7: buffered write + fast formatter vs fwrite + stdlib %f.

    Paper: I/O ~30 % of large runs, 'significantly reduced'.
    """
    sizes = (48_000, 3_000_000)

    def run():
        return {
            n: (io_model_seconds(n, fast=False), io_model_seconds(n, fast=True))
            for n in sizes
        }

    costs = benchmark(run)
    rows = []
    for n, (slow, fast) in costs.items():
        rows.append((n, slow.total * 1e3, fast.total * 1e3, slow.total / fast.total))
    text = format_table(
        ["particles", "fwrite+%f (ms)", "fast (ms)", "speedup"],
        rows,
        title="§3.7 — trajectory-write cost per frame",
    )
    emit(benchmark, text, io_speedup_3m=round(rows[-1][3], 1))
    assert all(r[3] > 3.0 for r in rows)


def test_ablation_mark_payoff_vs_density(benchmark):
    """Bit-Map payoff shrinks as more lines are touched per CPE — the
    'little performance loss' trade-off of §3.3."""
    n_slots = 12800

    def run():
        n_lines = n_slots // 32
        rows = []
        for frac in (0.05, 0.25, 0.5, 1.0):
            touched = [int(frac * n_lines)] * 64
            marked = reduction_cost(touched, n_slots, marked=True).seconds
            unmarked = (
                init_cost(64, n_slots).seconds
                + reduction_cost(touched, n_slots, marked=False).seconds
            )
            rows.append((frac, marked * 1e6, unmarked * 1e6, unmarked / marked))
        return rows

    rows = benchmark(run)
    text = format_table(
        ["touched fraction", "marked (us)", "RMA init+red (us)", "payoff"],
        rows,
        title="Bit-Map payoff vs touched-line density",
    )
    emit(benchmark, text, payoff_sparse=round(rows[0][3], 1))
    payoffs = [r[3] for r in rows]
    assert payoffs == sorted(payoffs, reverse=True)
    assert payoffs[0] > 5.0  # sparse: large win


def test_ablation_line_geometry(benchmark, nb_paper):
    """Packages per cache line: 8 (the paper's Figs. 3-4) vs 4 and 16."""
    system = cached_water(3000)
    plist = build_pair_list(system, nb_paper.r_list)

    from repro.core.ldm_plan import plan_kernel_ldm
    from repro.hw.ldm import LdmOverflowError

    def run():
        rows = []
        for offset_bits in (2, 3, 4):
            params = DEFAULT_PARAMS.with_overrides(
                offset_bits=offset_bits,
                packages_per_line=1 << offset_bits,
            )
            try:
                plan_kernel_ldm(ALL_SPECS["MARK"], system.n_particles, params)
                fits = "yes"
            except LdmOverflowError:
                fits = "NO"
            res = run_kernel(
                system, plist, nb_paper, ALL_SPECS["MARK"], params,
                check_ldm=False,  # hypothetical geometries measured anyway
            )
            rows.append(
                (
                    1 << offset_bits,
                    res.stats["read_miss_ratio"],
                    res.elapsed_seconds * 1e3,
                    fits,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["packages/line", "read miss ratio", "kernel time (ms)", "fits 64KB LDM"],
        rows,
        title="Cache-line geometry ablation (paper uses 8 packages/line)",
    )
    emit(benchmark, text, best_line=8)
    # Longer lines lower the miss *ratio* (more spatial locality per fill)
    # but 16 packages/line no longer fits the LDM — 8 is the optimum.
    assert rows[0][1] > rows[-1][1]
    assert [r[3] for r in rows] == ["yes", "yes", "NO"]


def test_ablation_aos_vs_soa(benchmark, nb_paper):
    """Fig. 6: SOA layout makes the vector pre-treatment free; AOS pays a
    per-package transpose.  Modelled as extra shuffle work per i-package."""
    system = cached_water(3000)
    plist = build_pair_list(system, nb_paper.r_list)
    res = run_kernel(system, plist, nb_paper, ALL_SPECS["VEC"])
    n_packages = plist.n_slots // 4
    # AOS pre-treatment: 6 shuffles per package per field-vector build.
    shuffle_cycles = 6.0 * n_packages
    aos_extra = shuffle_cycles / DEFAULT_PARAMS.n_cpes * DEFAULT_PARAMS.cycle_s

    def run():
        return res.breakdown["compute"], res.breakdown["compute"] + aos_extra

    soa_t, aos_t = benchmark(run)
    text = format_table(
        ["layout", "compute time (ms)"],
        [("SOA (Fig. 6)", soa_t * 1e3), ("AOS + transpose", aos_t * 1e3)],
        title="Fig. 6 — package layout effect on the vector kernel",
    )
    emit(benchmark, text, soa_advantage=round(aos_t / soa_t, 3))
    assert aos_t > soa_t


def test_ablation_gld_naive_port(benchmark, nb_paper):
    """The hypothetical fine-grained CPE port: 64 cores, ~1.5x speedup —
    quantifying the paper's premise that access granularity is the
    bottleneck, not core count."""
    from repro.util.tables import format_table

    system = cached_water(3000)
    plist = build_pair_list(system, nb_paper.r_list)

    def run():
        out = {}
        for name in ("ORI", "GLD", "PKG", "MARK"):
            out[name] = run_kernel(
                system, plist, nb_paper, ALL_SPECS[name]
            ).elapsed_seconds
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (name, t * 1e3, times["ORI"] / t) for name, t in times.items()
    ]
    text = format_table(
        ["kernel", "time (ms)", "speedup vs Ori"],
        rows,
        title="Naive gld/gst port vs packaged access (access granularity)",
    )
    emit(benchmark, text, gld_speedup=round(times["ORI"] / times["GLD"], 2))
    assert times["ORI"] / times["GLD"] < 3.0
    assert times["ORI"] / times["PKG"] > times["ORI"] / times["GLD"]


def test_ablation_pipeline_overlap(benchmark):
    """Derive the scalar pipeline-overlap factor from the event-level
    double-buffer model across compute/DMA ratios."""
    import numpy as np

    from repro.hw.pipeline import overlap_sweep
    from repro.util.tables import format_table

    rows = benchmark(lambda: overlap_sweep(np.linspace(0.25, 4.0, 8)))
    text = format_table(
        ["compute/DMA ratio", "effective overlap"],
        rows,
        title="Double-buffer overlap vs phase balance (calibrated: 0.85)",
    )
    emit(benchmark, text, overlap_at_parity=round(dict(rows)[1.0 + 0.0], 3)
         if (1.0 in dict(rows)) else rows[0][1])
    overlaps = [o for _, o in rows]
    assert min(overlaps) > 0.4
    assert max(overlaps) <= 1.0
