"""Shared benchmark helpers.

Benchmarks default to scaled-down workloads so the suite completes in
minutes; set ``REPRO_FULL_SCALE=1`` to run at the paper's sizes (12 k -
96 k particles per CG, 500 k-step horizons scale to 20 k).  Every bench
prints its paper-vs-measured table through `repro.analysis.figures` and
stores the headline numbers in ``benchmark.extra_info``.
"""

from __future__ import annotations

import os
from functools import lru_cache

import pytest

from repro.md.nonbonded import NonbondedParams
from repro.md.water import build_water_system

FULL_SCALE = bool(int(os.environ.get("REPRO_FULL_SCALE", "0")))


@lru_cache(maxsize=8)
def cached_water(n_particles: int, seed: int = 2019):
    return build_water_system(n_particles, seed=seed)


@pytest.fixture(scope="session")
def nb_paper():
    """The paper's Table 3 settings (rlist = 1.0, mixed precision)."""
    return NonbondedParams(r_cut=1.0, r_list=1.0, coulomb_mode="rf")


@pytest.fixture(scope="session")
def fig8_sizes():
    """Particles per CG for the Fig. 8 sweep."""
    if FULL_SCALE:
        return (12000, 24000, 48000, 96000)
    return (3000, 6000, 12000)


@pytest.fixture(scope="session")
def case1_particles():
    """Fig. 10 / Table 1 case 1: 48 k particles on one CG."""
    return 48000 if FULL_SCALE else 12000


@pytest.fixture(scope="session")
def case2_local_particles():
    """Fig. 10 / Table 1 case 2: 3,072,000 particles on 512 CGs -> 6 k
    per CG (runnable functionally at any scale)."""
    return 6000


def emit(benchmark, text: str, **extra) -> None:
    """Print a paper-style table and attach headline numbers."""
    print("\n" + text)
    for key, value in extra.items():
        benchmark.extra_info[key] = value
