"""Journal overhead on serve throughput (DESIGN.md §12).

The durability pitch only holds if the journal is close to free: every
accepted job costs one flushed append on admission and one on
resolution, plus a result-store write per executed unit.  This bench
measures end-to-end jobs/second through a live `SimulationService` on
an all-distinct kernel workload (no twins — dedup and the result store
must not short-circuit the thing being measured) with the journal off
and on, and reports the overhead fraction

    overhead = 1 - (journaled jobs/sec / bare jobs/sec)

CI gates the committed snapshot at < 5% (ISSUE 7).  Each mode takes
the best of ``REPEATS`` runs so a scheduler hiccup in either mode
can't manufacture (or hide) overhead.  An ``fsync_each`` row rides
along as an informational measurement of the power-loss-strict mode —
it is expected to be expensive and is not gated.

Run as a script to (re)generate the committed snapshot:

    PYTHONPATH=src python benchmarks/bench_journal_overhead.py
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

from repro.serve.jobs import JobRequest
from repro.serve.service import ServeConfig, SimulationService

SNAPSHOT_PATH = Path(__file__).parent / "BENCH_durable.json"
#: 8 system keys x 4 specs = 32 distinct units, no duplicates.
SYSTEM_SEEDS = tuple(range(8))
SPECS = ("MARK", "CACHE", "VEC", "PKG")
N_PARTICLES = 300
R_CUT = 0.45
CLIENTS = 8
#: Best-of repeats per mode (noise suppression, both directions).
REPEATS = 3
#: CI acceptance ceiling (ISSUE 7): journaling every acceptance and
#: resolution must cost < 5% of serve throughput.  The appends are
#: flushed (not fsynced) per record, so the cost is two small writes
#: into page cache per job against a multi-ms kernel execution.
MAX_OVERHEAD = 0.05
#: Same host-shape requirement as the throughput bench: the service
#: loop and its backend must not time-slice one core.
REQUIRED_CPUS = 2


def build_workload() -> list[JobRequest]:
    """32 kernel jobs, all distinct (overhead must not hide in dedup)."""
    return [
        JobRequest(n_particles=N_PARTICLES, r_cut=R_CUT, seed=s, spec=sp)
        for s in SYSTEM_SEEDS
        for sp in SPECS
    ]


def measure_once(journal_dir: str | None, fsync_each: bool = False) -> dict:
    """One timed pass of the workload through a fresh service."""
    jobs = build_workload()
    slices = [jobs[c::CLIENTS] for c in range(CLIENTS)]

    async def scenario():
        config = ServeConfig(
            max_depth=len(jobs) + 4,
            journal_dir=journal_dir,
            journal_fsync=fsync_each,
        )
        async with SimulationService(config) as svc:

            async def client_task(requests):
                accepted = [await svc.submit(r) for r in requests]
                return await asyncio.gather(*(j.future for j in accepted))

            t0 = time.perf_counter()
            per_client = await asyncio.gather(
                *(client_task(s) for s in slices)
            )
            elapsed = time.perf_counter() - t0
            results = [r for batch in per_client for r in batch]
            assert all(r.ok for r in results), "benchmark job failed"
            journal_records = svc.journal.appended if svc.journal else 0
            return elapsed, journal_records

    elapsed, journal_records = asyncio.run(scenario())
    return {
        "jobs": len(jobs),
        "seconds": elapsed,
        "jobs_per_second": len(jobs) / elapsed,
        "journal_records": journal_records,
    }


def measure_mode(tmp_root: Path, mode: str) -> dict:
    """Best-of-``REPEATS`` for one journaling mode.

    ``mode``: "off" (no journal), "on" (flush-per-record, the default),
    or "fsync" (fsync-per-record, informational only).
    """
    runs = []
    for i in range(REPEATS):
        if mode == "off":
            run = measure_once(None)
        else:
            # Fresh directory per run: replay/compaction work from a
            # prior pass must not pollute the timed window.
            run = measure_once(
                str(tmp_root / f"{mode}-{i}"), fsync_each=(mode == "fsync")
            )
        runs.append(run)
    best = max(runs, key=lambda r: r["jobs_per_second"])
    return {**best, "repeats": REPEATS}


def collect() -> dict:
    import tempfile

    from hoststamp import host_stamp

    with tempfile.TemporaryDirectory() as tmp:
        tmp_root = Path(tmp)
        off = measure_mode(tmp_root, "off")
        on = measure_mode(tmp_root, "on")
        fsync = measure_mode(tmp_root, "fsync")
    overhead = 1.0 - on["jobs_per_second"] / off["jobs_per_second"]
    fsync_overhead = (
        1.0 - fsync["jobs_per_second"] / off["jobs_per_second"]
    )
    return {
        **host_stamp(required_cpus=REQUIRED_CPUS),
        "workload": {
            "jobs": len(build_workload()),
            "distinct_requests": len(SYSTEM_SEEDS) * len(SPECS),
            "clients": CLIENTS,
            "n_particles": N_PARTICLES,
            "r_cut": R_CUT,
        },
        "gate": {"max_overhead": MAX_OVERHEAD},
        "journal_off": off,
        "journal_on": on,
        "journal_fsync_each": fsync,
        "overhead": overhead,
        "fsync_overhead": fsync_overhead,
    }


def main() -> None:
    data = collect()
    SNAPSHOT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(
        f"wrote {SNAPSHOT_PATH} (host_cpus={data['host_cpus']}, "
        f"degraded={data['degraded']})"
    )
    print(
        f"  journal off: {data['journal_off']['jobs_per_second']:6.1f} "
        f"jobs/s"
    )
    print(
        f"  journal on:  {data['journal_on']['jobs_per_second']:6.1f} "
        f"jobs/s ({data['overhead'] * 100:+.1f}% overhead, gate "
        f"< {MAX_OVERHEAD * 100:.0f}%)"
    )
    print(
        f"  fsync each:  "
        f"{data['journal_fsync_each']['jobs_per_second']:6.1f} jobs/s "
        f"({data['fsync_overhead'] * 100:+.1f}%, informational)"
    )


# ---------------------------------------------------------------------------
# pytest entry points (the CI durable-smoke job)
# ---------------------------------------------------------------------------


def test_journal_records_every_job(tmp_path):
    """Structural half of the claim, independent of wall clock: a
    journaled pass appends exactly acceptance + resolution per job."""
    run = measure_once(str(tmp_path / "journal"))
    assert run["journal_records"] == 2 * run["jobs"], run


def test_live_overhead_within_loose_bound(tmp_path):
    """One live on/off pair must stay under a generous bound; the
    tight 5% gate belongs to the best-of-N committed snapshot, where
    scheduler noise is suppressed."""
    off = measure_once(None)
    on = measure_once(str(tmp_path / "journal"))
    overhead = 1.0 - on["jobs_per_second"] / off["jobs_per_second"]
    assert overhead < 0.25, (off, on, overhead)


def test_committed_baseline_meets_gate():
    """Judge the committed snapshot itself; a baseline recorded on a
    degraded host skips with its host shape in the reason instead of
    silently passing stale or doomed numbers."""
    from hoststamp import require_fresh_baseline

    data = require_fresh_baseline(
        SNAPSHOT_PATH, "journal overhead baseline"
    )
    assert data["overhead"] < data["gate"]["max_overhead"], data
    on = data["journal_on"]
    assert on["journal_records"] == 2 * on["jobs"], on


if __name__ == "__main__":
    main()
