"""Fig. 10 — whole-application speedup at each optimisation level.

Case 1 (48 k particles, 1 CG; paper 1/20/30/32) and case 2 (3 M
particles, 512 CGs; paper 1/6/8/18).
"""

import pytest

from repro.analysis.figures import PAPER_FIG10, print_speedup_bars
from repro.core.engine import run_optimization_ladder
from repro.md.water import build_water_system

from conftest import emit


def _ladder_speedups(n_local, n_cgs, nb):
    ladder = run_optimization_ladder(
        lambda n: build_water_system(n, seed=2019),
        n_local,
        n_cgs=n_cgs,
        nonbonded=nb,
        output_interval=100,
    )
    base = ladder["Ori"].total()
    return {k: base / v.total() for k, v in ladder.items()}


def test_fig10_case1(benchmark, nb_paper, case1_particles):
    speedups = benchmark.pedantic(
        lambda: _ladder_speedups(case1_particles, 1, nb_paper),
        rounds=1,
        iterations=1,
    )
    text = print_speedup_bars(
        speedups, PAPER_FIG10["case1"], "Fig. 10 case 1 — 1 CG"
    )
    emit(benchmark, text, **{k: round(v, 1) for k, v in speedups.items()})
    assert speedups["Cal"] == pytest.approx(20, rel=0.5)
    assert speedups["List"] == pytest.approx(30, rel=0.5)
    assert speedups["Other"] == pytest.approx(32, rel=0.5)
    assert speedups["Cal"] < speedups["List"] < speedups["Other"]


def test_fig10_case2(benchmark, nb_paper, case2_local_particles):
    speedups = benchmark.pedantic(
        lambda: _ladder_speedups(case2_local_particles, 512, nb_paper),
        rounds=1,
        iterations=1,
    )
    text = print_speedup_bars(
        speedups, PAPER_FIG10["case2"], "Fig. 10 case 2 — 512 CGs"
    )
    emit(benchmark, text, **{k: round(v, 1) for k, v in speedups.items()})
    assert speedups["Cal"] == pytest.approx(6, rel=0.5)
    assert speedups["List"] == pytest.approx(8, rel=0.5)
    assert speedups["Other"] == pytest.approx(18, rel=0.5)
    # The case-2 signature: communication optimisation gives the big jump
    # (paper: 8 -> 18), unlike case 1 (30 -> 32).
    assert speedups["Other"] / speedups["List"] > 1.5
