"""Fig. 8 — short-range optimisation ladder speedups.

Runs Ori -> Pkg -> Cache -> Vec -> Mark on the water case at several
particles-per-CG sizes; asserts the paper's shape (monotone ladder, rough
factors, size independence).
"""

import pytest

from repro.analysis.figures import PAPER_FIG8, print_speedup_bars
from repro.core.strategies import STRATEGY_LADDER, run_ladder
from repro.md.forces import compute_short_range
from repro.md.nonbonded import NonbondedParams
from repro.md.pairlist import build_pair_list
from repro.parallel.pool import shared_backend

from conftest import cached_water, emit


def _ladder_at_size(task: tuple[int, NonbondedParams]):
    """One system size's full strategy ladder (pool-safe job)."""
    n, nb = task
    return n, run_ladder(cached_water(n), STRATEGY_LADDER, nb)


def test_fig8_strategy_ladder(benchmark, nb_paper, fig8_sizes):
    # The sizes are independent runs, so they fan across the execution
    # backend (serial by default; REPRO_BACKEND=pool gives one worker
    # per size).  Results merge in size order on either backend.
    backend = shared_backend()

    def run_all():
        pairs = backend.map(
            _ladder_at_size, [(n, nb_paper) for n in fig8_sizes]
        )
        return dict(pairs)

    ladders = benchmark.pedantic(run_all, rounds=1, iterations=1)

    for n, lad in ladders.items():
        text = print_speedup_bars(
            lad.speedups, PAPER_FIG8, f"Fig. 8 — {n} particles per CG"
        )
        emit(
            benchmark,
            text,
            **{f"{label}_{n}": round(s, 1) for label, s in lad.speedups.items()},
        )

    # Shape assertions (paper: 1 / 3 / 23 / 40 / 61).
    for n, lad in ladders.items():
        s = lad.speedups
        assert s["Pkg"] == pytest.approx(3, rel=1.0)
        assert s["Cache"] == pytest.approx(23, rel=0.5)
        assert s["Vec"] == pytest.approx(40, rel=0.5)
        assert s["Mark"] == pytest.approx(61, rel=0.5)
        assert s["Pkg"] < s["Cache"] < s["Vec"] < s["Mark"]

    # Fig. 8's flatness: Mark speedup roughly size-independent.
    marks = [lad.speedups["Mark"] for lad in ladders.values()]
    assert max(marks) / min(marks) < 1.6


def test_fig8_functional_fidelity(nb_paper, fig8_sizes):
    """Every rung's forces equal the float64 reference (no benchmark
    timer; this is the correctness gate of the figure)."""
    import numpy as np

    n = fig8_sizes[0]
    system = cached_water(n)
    lad = run_ladder(system, STRATEGY_LADDER, nb_paper)
    plist = build_pair_list(system, nb_paper.r_list)
    ref = compute_short_range(system, plist, nb_paper)
    scale = float(np.abs(ref.forces).max())
    for label, res in lad.results.items():
        err = float(np.abs(res.forces - ref.forces).max()) / scale
        assert err < 2e-4, f"{label}: force error {err:.1e}"
