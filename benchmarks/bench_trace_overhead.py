"""Trace-instrumentation overhead on the water-benchmark step loop.

The tracing hooks threaded through the hot paths (engine step phases,
kernel analysis, DMA transactions, reduction/init costs) are all gated
behind ``if tracer.enabled:`` with the no-op :class:`NullTracer` as
default.  This bench proves the gate adds <2 % to a water-box step.

Direct A/B wall-timing cannot resolve the question: the gate costs a
few dozen branch checks per step (~microseconds) against a step that
takes hundreds of milliseconds, while shared-machine timing noise is
several percent even for best-of-N interleaved CPU-time measurements.
Subtracting two large noisy numbers to detect a 0.001 % delta just
measures the noise.  So the bench bounds the overhead analytically from
three quantities it CAN measure reliably:

1. **gate hits per step** — run one step with a recording tracer and
   count emitted events.  Every NullTracer-path branch check
   corresponds to at most one emission site, and span fan-outs (the
   per-CPE loop emits 64 spans behind a single gate) make the event
   count a strict over-estimate of branch checks.
2. **cost per gated call** — a tight-loop microbenchmark of the real
   gated step-phase hook vs. a bare ``timing.add`` call.  Pure-Python
   nanosecond timing is stable where end-to-end numbers are not.
3. **seconds per step** — the null-path step time (best-of, CPU time).

``overhead <= gate_hits_per_step * max(delta_per_call, 0) / step_seconds``

A 10x safety factor on the gate count is applied before asserting the
bound is under 2 %.  Raw end-to-end timings for the stripped / null /
traced configurations are printed for context (not asserted — they sit
inside the noise floor, which is itself the strongest evidence the gate
is free).
"""

from __future__ import annotations

import time

from repro.core.engine import EngineConfig, SWGromacsEngine
from repro.hw.perf import KernelTiming
from repro.trace import NULL_TRACER, Tracer

from conftest import cached_water, emit

N_PARTICLES = 3000
N_STEPS = 5
N_REPEATS = 5
SAFETY_FACTOR = 10.0
MICRO_CALLS = 200_000


def _restore(engine, pos0, vel0) -> None:
    engine.system.positions[:] = pos0
    engine.system.velocities[:] = vel0


def _cpu_best(fn, repeats: int = N_REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.process_time()
        fn()
        best = min(best, time.process_time() - t0)
    return best


def _per_call_seconds(hook) -> float:
    timing = KernelTiming()

    def loop():
        for _ in range(MICRO_CALLS):
            hook(timing, "Force", 1e-9)

    return _cpu_best(loop) / MICRO_CALLS


def test_null_tracer_overhead(benchmark, nb_paper):
    system = cached_water(N_PARTICLES)
    engine = SWGromacsEngine(
        system.copy(), EngineConfig(nonbonded=nb_paper), tracer=NULL_TRACER
    )
    engine.run(N_STEPS)  # warm-up: pair list, numpy caches
    pos0 = engine.system.positions.copy()
    vel0 = engine.system.velocities.copy()

    # 1. Gate hits per step: events emitted by a recording tracer bound
    #    the branch checks the NullTracer path performs.
    tracer = Tracer()
    engine.tracer = tracer
    _restore(engine, pos0, vel0)
    engine.run(N_STEPS)
    gate_hits_per_step = len(tracer) / N_STEPS
    engine.tracer = NULL_TRACER

    # 2. Per-call cost of the gated hook vs. the bare seed-path call.
    def stripped_add(timing, kernel, seconds):
        timing.add(kernel, seconds)

    gated = _per_call_seconds(engine._add)
    bare = _per_call_seconds(stripped_add)
    delta_per_call = max(gated - bare, 0.0)

    # 3. Null-path step time.
    def one_run():
        _restore(engine, pos0, vel0)
        engine.run(N_STEPS)

    null_step_seconds = _cpu_best(one_run) / N_STEPS
    benchmark.pedantic(one_run, rounds=1, iterations=1)

    overhead_bound = (
        SAFETY_FACTOR * gate_hits_per_step * delta_per_call / null_step_seconds
    )

    # Context: end-to-end A/B numbers (noise-dominated, not asserted).
    engine._add = stripped_add
    stripped_step = _cpu_best(one_run) / N_STEPS
    del engine._add
    tracer.clear()
    engine.tracer = tracer
    traced_step = _cpu_best(one_run) / N_STEPS
    engine.tracer = NULL_TRACER

    emit(
        benchmark,
        "NullTracer overhead on the water step loop "
        f"({N_PARTICLES} particles, {N_STEPS}-step runs, best of {N_REPEATS}):\n"
        f"  gate hits/step          {gate_hits_per_step:10.1f}  "
        f"(x{SAFETY_FACTOR:.0f} safety)\n"
        f"  gated hook per call     {gated * 1e9:10.1f} ns  "
        f"(bare {bare * 1e9:.1f} ns, delta {delta_per_call * 1e9:.1f} ns)\n"
        f"  null step time          {null_step_seconds * 1e3:10.2f} ms\n"
        f"  overhead bound          {overhead_bound:10.4%}  (budget 2%)\n"
        "  end-to-end CPU time per step (context only, noise ~3%):\n"
        f"    stripped {stripped_step * 1e3:8.2f} ms | "
        f"null {null_step_seconds * 1e3:8.2f} ms | "
        f"traced {traced_step * 1e3:8.2f} ms",
        gate_hits_per_step=round(gate_hits_per_step, 1),
        delta_per_call_ns=round(delta_per_call * 1e9, 2),
        null_step_ms=round(null_step_seconds * 1e3, 3),
        overhead_bound=round(overhead_bound, 6),
    )
    assert overhead_bound < 0.02, (
        f"NullTracer gate overhead bound {overhead_bound:.3%} exceeds the "
        "2% budget"
    )
