"""Fig. 12 — strong & weak scalability, 4 to 512 core groups.

Strong: 48 k particles total; weak: 10 k particles per CG.  Parallel
efficiencies per the paper's Eqs. (5)-(6) with the 4-CG baseline.
"""

import pytest

from repro.analysis.figures import (
    PAPER_FIG12_STRONG,
    PAPER_FIG12_WEAK,
    print_efficiency_curves,
)
from repro.analysis.scaling import (
    ReferenceTimings,
    strong_scaling_curve,
    weak_scaling_curve,
)
from repro.md.water import build_water_system

from conftest import emit


def _build_water_2019(n):
    return build_water_system(n, seed=2019)


def _curve_job(task):
    """Measure one Fig. 12 curve (pool-safe job; the two curves are
    independent given the shared reference timings)."""
    ref, kind, n, nb = task
    if kind == "strong":
        return strong_scaling_curve(ref, n, nonbonded=nb)
    return weak_scaling_curve(ref, n, nonbonded=nb)


def test_fig12_scalability(benchmark, nb_paper):
    from repro.parallel.pool import shared_backend

    backend = shared_backend()

    def run():
        ref = ReferenceTimings.measure(_build_water_2019, 12000, nb_paper)
        strong, weak = backend.map(
            _curve_job,
            [(ref, "strong", 48000, nb_paper), (ref, "weak", 10000, nb_paper)],
        )
        return strong.strong_efficiency(), weak.weak_efficiency()

    strong_eff, weak_eff = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        benchmark,
        print_efficiency_curves(
            strong_eff, PAPER_FIG12_STRONG, "Fig. 12 — strong scaling (48k)"
        ),
        strong_512=round(strong_eff[512], 2),
    )
    emit(
        benchmark,
        print_efficiency_curves(
            weak_eff, PAPER_FIG12_WEAK, "Fig. 12 — weak scaling (10k/CG)"
        ),
        weak_512=round(weak_eff[512], 2),
    )

    # Weak scaling tracks the paper closely everywhere.
    for n, paper in PAPER_FIG12_WEAK.items():
        assert weak_eff[n] == pytest.approx(paper, abs=0.12)
    # Strong scaling: near-ideal to 64 CGs, graceful decay after —
    # the paper reaches 0.47 at 512; we require the same order.
    for n in (4, 8, 16, 32, 64):
        assert strong_eff[n] == pytest.approx(PAPER_FIG12_STRONG[n], abs=0.15)
    assert 0.15 < strong_eff[512] < 0.7
    # Monotone decay.
    values = [strong_eff[n] for n in sorted(strong_eff)]
    assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))
