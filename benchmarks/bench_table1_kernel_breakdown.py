"""Table 1 — per-kernel time fractions of the unoptimised (level 0) run.

Case 1: 48 k particles on one CG; case 2: 3 M particles on 512 CGs
(one representative CG run functionally + the communication model).
"""

from repro.analysis.figures import (
    PAPER_TABLE1_CASE1,
    PAPER_TABLE1_CASE2,
    print_fractions,
)
from repro.core.engine import EngineConfig, SWGromacsEngine

from conftest import cached_water, emit


def _fractions(n_particles, n_cgs, nb, output_interval):
    system = cached_water(n_particles).copy()
    engine = SWGromacsEngine(
        system,
        EngineConfig(
            nonbonded=nb,
            optimization_level=0,
            n_cgs=n_cgs,
            output_interval=output_interval,
        ),
    )
    return engine.model_step().fractions()


def test_table1_case1(benchmark, nb_paper, case1_particles):
    fr = benchmark.pedantic(
        lambda: _fractions(case1_particles, 1, nb_paper, 100),
        rounds=1,
        iterations=1,
    )
    text = print_fractions(
        fr, PAPER_TABLE1_CASE1, "Table 1 case 1 — 48k particles, 1 CG"
    )
    emit(benchmark, text, force_fraction=round(fr["Force"], 3))
    assert fr["Force"] > 0.85  # paper: 95.5 %
    assert fr["Neighbor search"] < 0.10  # paper: 2.5 %


def test_table1_case2(benchmark, nb_paper, case2_local_particles):
    fr = benchmark.pedantic(
        lambda: _fractions(case2_local_particles, 512, nb_paper, 100),
        rounds=1,
        iterations=1,
    )
    text = print_fractions(
        fr, PAPER_TABLE1_CASE2, "Table 1 case 2 — 3M particles, 512 CGs"
    )
    emit(
        benchmark,
        text,
        force_fraction=round(fr["Force"], 3),
        comm_fraction=round(fr.get("Comm. energies", 0.0), 3),
    )
    # Paper: force 74.8 %, comm. energies 18.7 % — force drops below the
    # single-CG level and the energy reduction becomes the second kernel.
    assert 0.5 < fr["Force"] < 0.95
    assert fr.get("Comm. energies", 0.0) > 0.05
    assert fr.get("Comm. energies", 0.0) > fr.get("Update", 0.0)
