"""Throughput scaling of the fleet tier (DESIGN.md §11).

Measures end-to-end jobs/second through a real local fleet — a
``repro fleet`` router process plus N ``repro fleet-worker`` processes
over Unix sockets — at 1 and 3 workers, on the serve benchmark's
50%-duplicate workload submitted by two interleaved clients.  Two claims
are under test:

* **scaling** — three worker processes (each a full CPython with its own
  serial backend) must buy >= 1.6x jobs/sec over one on a host with
  >= 4 usable CPUs (router + 3 workers).  On smaller hosts the wall
  clock only measures time-slicing, so the gate self-skips and the
  snapshot records ``degraded: true``;
* **dedup locality** — consistent-hash routing must preserve the
  cross-client dedup ratio the unsharded service achieves on this same
  workload (``BENCH_serve.json``): identical fingerprints share a
  system key, a system key has one ring owner, so twins still collapse
  worker-side.  This ratio is structural — independent of host speed —
  and is gated everywhere, within 10 %.

Run as a script to (re)generate the committed snapshot:

    PYTHONPATH=src python benchmarks/bench_fleet_scaling.py
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import pytest

from repro.fleet.launch import LocalFleet
from repro.parallel.pool import host_cpu_count
from repro.serve.jobs import JobRequest

SNAPSHOT_PATH = Path(__file__).parent / "BENCH_fleet.json"
SERVE_SNAPSHOT_PATH = Path(__file__).parent / "BENCH_serve.json"
#: Same workload shape as bench_serve_throughput: 4 system keys x 4
#: specs, each request submitted twice (once per client).
SYSTEM_SEEDS = (0, 1, 2, 3)
SPECS = ("MARK", "CACHE", "VEC", "PKG")
N_PARTICLES = 300
R_CUT = 0.45
WORKER_COUNTS = (1, 3)
#: CI acceptance floors (ISSUE 6).
MIN_SCALING = 1.6
GATE_WORKERS = 3
DEDUP_TOLERANCE = 0.10
#: Router + 3 workers: anything fewer time-slices one core.
REQUIRED_CPUS = 4

FLEET_KW = dict(
    router_args=("--heartbeat-timeout", "5", "--route-wait", "30"),
    worker_args=("--max-depth", "64"),
    # Serial inside each worker: the scaling under test is the fleet's
    # process-level parallelism, not the pool backend's (measured in
    # bench_parallel_speedup).
    env={"REPRO_BACKEND": "serial"},
)


def build_workload() -> list[JobRequest]:
    """16 distinct kernel requests (submitted twice each, see measure)."""
    return [
        JobRequest(n_particles=N_PARTICLES, r_cut=R_CUT, seed=s, spec=sp)
        for s in SYSTEM_SEEDS
        for sp in SPECS
    ]


def measure(n_workers: int) -> dict:
    """Jobs/sec through an n-worker fleet on the duplicate workload.

    Two clients submit the same request list interleaved (every request
    has exactly one cross-client twin), against a paused fleet so the
    full workload is co-queued; the clock runs from resume to the last
    result — the steady-state shape, without fleet-startup cost.
    """
    units = build_workload()
    with tempfile.TemporaryDirectory(prefix="fleetbench-") as root:
        with LocalFleet(n_workers, root=root, **FLEET_KW) as fleet:
            alice = fleet.client(timeout=600.0)
            bob = fleet.client(timeout=600.0)
            alice.pause()
            job_ids = [
                (client, client.submit(request, wait=False))
                for request in units
                for client in (alice, bob)
            ]
            t0 = time.perf_counter()
            alice.resume()
            results = [client.wait(jid) for client, jid in job_ids]
            elapsed = time.perf_counter() - t0
            assert all(r.ok for r in results), "benchmark job failed"
            stats = fleet.drain()
    totals = stats["workers_total"]
    jobs = len(job_ids)
    return {
        "n_workers": n_workers,
        "jobs": jobs,
        "distinct_requests": len(units),
        "seconds": elapsed,
        "jobs_per_second": jobs / elapsed,
        "completed": stats["completed"],
        "reassignments": stats["reassignments"],
        "executed_units": totals["executed_units"],
        "dedup_hits": totals["dedup_hits"],
        "dedup_ratio": totals["dedup_hits"] / jobs,
    }


def serve_dedup_ratio() -> float | None:
    """The unsharded service's dedup ratio on this workload, from the
    committed serve snapshot (structural: valid on any host, so the
    degraded flag is deliberately ignored here)."""
    if not SERVE_SNAPSHOT_PATH.exists():
        return None
    data = json.loads(SERVE_SNAPSHOT_PATH.read_text())
    row = data["throughput"]["16"]["coalescing_on"]
    return row["dedup_hits"] / row["jobs"]


def collect() -> dict:
    from hoststamp import host_stamp

    rows = {str(n): measure(n) for n in WORKER_COUNTS}
    one, many = rows[str(WORKER_COUNTS[0])], rows[str(GATE_WORKERS)]
    return {
        **host_stamp(required_cpus=REQUIRED_CPUS),
        "workload": {
            "jobs": 2 * len(build_workload()),
            "distinct_requests": len(build_workload()),
            "duplicate_fraction": 0.5,
            "n_particles": N_PARTICLES,
            "r_cut": R_CUT,
        },
        "gate": {
            "workers": GATE_WORKERS,
            "min_scaling": MIN_SCALING,
            "dedup_tolerance": DEDUP_TOLERANCE,
        },
        "fleet": rows,
        "scaling": many["jobs_per_second"] / one["jobs_per_second"],
        "dedup_ratio": many["dedup_ratio"],
        "serve_dedup_ratio": serve_dedup_ratio(),
    }


def main() -> None:
    data = collect()
    SNAPSHOT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(
        f"wrote {SNAPSHOT_PATH} (host_cpus={data['host_cpus']}, "
        f"degraded={data['degraded']})"
    )
    for n, row in data["fleet"].items():
        print(
            f"  {n} worker(s): {row['jobs_per_second']:6.1f} jobs/s "
            f"({row['executed_units']} executions, "
            f"dedup ratio {row['dedup_ratio']:.2f})"
        )
    print(
        f"  scaling 1 -> {GATE_WORKERS}: {data['scaling']:.2f}x "
        f"(floor {MIN_SCALING}x on >= {REQUIRED_CPUS}-CPU hosts)"
    )


# ---------------------------------------------------------------------------
# pytest entry points (the CI fleet-smoke job)
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    host_cpu_count() < REQUIRED_CPUS,
    reason=f"fleet scaling gate needs >= {REQUIRED_CPUS} usable CPUs "
    f"(router + {GATE_WORKERS} workers; host has {host_cpu_count()})",
)
def test_fleet_scaling_meets_floor():
    """Three worker processes must buy >= 1.6x jobs/sec over one."""
    one = measure(1)
    many = measure(GATE_WORKERS)
    scaling = many["jobs_per_second"] / one["jobs_per_second"]
    assert scaling >= MIN_SCALING, {"1": one, str(GATE_WORKERS): many}


def test_dedup_ratio_survives_sharding():
    """Machine-portable: the 3-worker fleet's cross-client dedup ratio
    must stay within 10 % of the unsharded service's committed ratio —
    consistent-hash routing keeps twins co-located."""
    baseline = serve_dedup_ratio()
    if baseline is None:
        pytest.skip("no committed BENCH_serve.json to compare against")
    row = measure(GATE_WORKERS)
    assert row["dedup_ratio"] == pytest.approx(
        baseline, rel=DEDUP_TOLERANCE
    ), row


def test_committed_baseline_meets_floor():
    """Judge the committed fleet snapshot itself; skip loudly (with the
    recorded host shape) when it was generated on a degraded host."""
    from hoststamp import require_fresh_baseline

    data = require_fresh_baseline(SNAPSHOT_PATH, "fleet scaling baseline")
    assert data["scaling"] >= MIN_SCALING, data
    assert data["dedup_ratio"] == pytest.approx(
        0.5, rel=DEDUP_TOLERANCE
    ), data


if __name__ == "__main__":
    main()
