"""Perf trajectory of the host-parallel execution backend (DESIGN.md §9).

Measures, on the fidelity-path water workload:

* wall-clock speedup of `run_kernel_sequential` under ``PoolBackend``
  versus ``SerialBackend`` (the tentpole claim of ISSUE 4) — gated in CI
  at >= 1.5x with 4 workers, skipped on hosts with fewer than 4 usable
  CPUs (a pool cannot beat serial on a single core, and pretending
  otherwise would just record scheduler noise);
* wall-clock speedup of the vectorised pair-list test oracles
  (`brute_force_pairs` / `pair_list_covers`) over their scalar
  predecessors — machine-portable, gated everywhere.

Run as a script to (re)generate the committed snapshot:

    PYTHONPATH=src python benchmarks/bench_parallel_speedup.py

The snapshot (``BENCH_parallel.json``) always records ``host_cpus`` so a
1-CPU container's ~1.0x pool ratio reads as what it is — a hardware
limit, not a regression.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.kernels import ALL_SPECS, run_kernel_sequential
from repro.md.nonbonded import NonbondedParams
from repro.md.pairlist import brute_force_pairs, build_pair_list, pair_list_covers
from repro.md.water import build_water_system
from repro.parallel.pool import PoolBackend, SerialBackend, host_cpu_count

SNAPSHOT_PATH = Path(__file__).parent / "BENCH_parallel.json"
SEED = 2019
FIDELITY_PARTICLES = 1500
ORACLE_PARTICLES = 1200
#: CI acceptance floor (ISSUE 4): pool >= 1.5x serial with 4 workers.
MIN_POOL_SPEEDUP = 1.5
GATE_WORKERS = 4
#: The vectorised oracles must never lose to the scalar walks.  The
#: ratio is modest (~1.2x) because the shared distance-matrix cost
#: dominates both sides; the python pair loops they replace are what
#: vectorisation removes.
MIN_ORACLE_SPEEDUP = 1.0
ORACLE_REPEATS = 3


def _nb() -> NonbondedParams:
    return NonbondedParams(r_cut=0.75, r_list=0.85, coulomb_mode="rf")


def measure_pool_speedup(n_workers: int) -> dict:
    """Fidelity-path wall clock: serial vs an ``n_workers`` pool.

    The per-CPE partitions of `run_kernel_sequential` are the simulator's
    hottest Python loop and fully independent, so this is the cleanest
    end-to-end probe of the backend.  Identity of the outputs is asserted
    here too — a fast wrong answer is not a speedup.
    """
    system = build_water_system(FIDELITY_PARTICLES, seed=SEED)
    nb = _nb()
    plist = build_pair_list(system, nb.r_list)
    spec = ALL_SPECS["MARK"]

    t0 = time.perf_counter()
    serial = run_kernel_sequential(
        system, plist, nb, spec, n_cpes=8, backend=SerialBackend()
    )
    serial_s = time.perf_counter() - t0

    with PoolBackend(n_workers) as backend:
        # Warm the executor (fork + import cost is startup, not kernel).
        backend.map(int, [0])
        t0 = time.perf_counter()
        pooled = run_kernel_sequential(
            system, plist, nb, spec, n_cpes=8, backend=backend
        )
        pool_s = time.perf_counter() - t0

    np.testing.assert_array_equal(serial.forces, pooled.forces)
    assert serial.energy == pooled.energy
    return {
        "n_particles": int(system.n_particles),
        "n_workers": n_workers,
        "serial_seconds": serial_s,
        "pool_seconds": pool_s,
        "speedup": serial_s / pool_s,
    }


def _brute_force_pairs_scalar(system, r_cut):
    pos = system.box.wrap(system.positions)
    n = len(pos)
    pairs = set()
    chunk = max(1, int(4e6) // max(n, 1))
    for lo in range(0, n, chunk):
        hi = min(n, lo + chunk)
        d = system.box.distance(pos[lo:hi, None, :], pos[None, :, :])
        ii, jj = np.nonzero(d < r_cut)
        for i, j in zip(ii + lo, jj):
            if i < j:
                pairs.add((int(i), int(j)))
    return pairs


def _pair_list_covers_scalar(plist, pairs):
    from repro.md.pairlist import CLUSTER_SIZE

    listed = set(zip(plist.pair_ci.tolist(), plist.pair_cj.tolist()))
    slot_of = {
        int(orig): slot
        for slot, orig in enumerate(plist.perm)
        if orig >= 0
    }
    for i, j in pairs:
        ci = slot_of[i] // CLUSTER_SIZE
        cj = slot_of[j] // CLUSTER_SIZE
        if plist.half and ci > cj:
            ci, cj = cj, ci
        if (ci, cj) not in listed:
            return False
    return True


def _best_of(fn, repeats: int = ORACLE_REPEATS) -> tuple[float, object]:
    """Best-of-N wall clock (single-CPU containers are noisy)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def measure_oracle_speedup() -> dict:
    """Vectorised vs scalar pair-list oracles (machine-portable ratio)."""
    system = build_water_system(ORACLE_PARTICLES, seed=SEED)
    nb = _nb()
    plist = build_pair_list(system, nb.r_list)

    scalar_s, scalar_pairs = _best_of(
        lambda: _brute_force_pairs_scalar(system, nb.r_list)
    )
    covers_scalar_s, scalar_covered = _best_of(
        lambda: _pair_list_covers_scalar(plist, scalar_pairs)
    )
    fast_s, fast_pairs = _best_of(
        lambda: brute_force_pairs(system, nb.r_list)
    )
    covers_fast_s, fast_covered = _best_of(
        lambda: pair_list_covers(plist, fast_pairs)
    )

    assert fast_pairs == scalar_pairs
    assert fast_covered == scalar_covered
    return {
        "n_particles": int(system.n_particles),
        "n_pairs": len(fast_pairs),
        "scalar_seconds": scalar_s + covers_scalar_s,
        "vectorized_seconds": fast_s + covers_fast_s,
        "speedup": (scalar_s + covers_scalar_s) / (fast_s + covers_fast_s),
    }


def collect(pool_workers: tuple[int, ...] = (2, GATE_WORKERS)) -> dict:
    from hoststamp import host_stamp

    cpus = host_cpu_count()
    return {
        # Uniform degraded-host stamp: a pool measurement needs
        # GATE_WORKERS real cores to mean anything.
        **host_stamp(required_cpus=GATE_WORKERS),
        "gate": {
            "workers": GATE_WORKERS,
            "min_speedup": MIN_POOL_SPEEDUP,
            # The wall-clock floor only means anything with real cores
            # under it; on smaller hosts the recorded ratio documents the
            # hardware, and CI's 4-core runners enforce the floor.
            "enforced_on_this_host": cpus >= GATE_WORKERS,
        },
        "pool": {str(w): measure_pool_speedup(w) for w in pool_workers},
        "pairlist_oracles": measure_oracle_speedup(),
    }


def main() -> None:
    data = collect()
    SNAPSHOT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(
        f"wrote {SNAPSHOT_PATH} (host_cpus={data['host_cpus']}, "
        f"degraded={data['degraded']})"
    )
    for w, row in data["pool"].items():
        print(
            f"  pool x{w}: {row['speedup']:.2f}x over serial "
            f"({row['serial_seconds']:.2f}s -> {row['pool_seconds']:.2f}s)"
        )
    oracle = data["pairlist_oracles"]
    print(
        f"  oracles: {oracle['speedup']:.1f}x over scalar "
        f"({oracle['scalar_seconds']:.3f}s -> "
        f"{oracle['vectorized_seconds']:.3f}s)"
    )


# ---------------------------------------------------------------------------
# pytest entry points (the CI perf-smoke job)
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    host_cpu_count() < GATE_WORKERS,
    reason=f"pool speedup gate needs >= {GATE_WORKERS} usable CPUs "
    f"(host has {host_cpu_count()})",
)
def test_pool_speedup_meets_floor():
    """With 4 real cores, 4 workers must buy >= 1.5x on the fidelity path."""
    row = measure_pool_speedup(GATE_WORKERS)
    assert row["speedup"] >= MIN_POOL_SPEEDUP, row


def test_pool_results_identical_even_on_small_hosts():
    """The identity half of the claim is hardware-independent: always run
    the serial-vs-pool comparison (2 workers), gate only the physics."""
    row = measure_pool_speedup(2)  # asserts bit-identity internally
    assert row["pool_seconds"] > 0


def test_oracle_vectorization_meets_floor():
    row = measure_oracle_speedup()
    assert row["speedup"] >= MIN_ORACLE_SPEEDUP, row


def test_committed_baseline_meets_floor():
    """Judge the committed snapshot itself.  A baseline recorded on a
    degraded host (fewer CPUs than the pool it measures) skips with the
    recorded host shape in the reason instead of silently passing a
    sub-1x number."""
    from hoststamp import require_fresh_baseline

    data = require_fresh_baseline(SNAPSHOT_PATH, "pool speedup baseline")
    row = data["pool"][str(GATE_WORKERS)]
    assert row["speedup"] >= MIN_POOL_SPEEDUP, row


if __name__ == "__main__":
    main()
