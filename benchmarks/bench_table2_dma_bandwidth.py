"""Table 2 — DMA bandwidth vs access block size.

Regenerates the paper's measured curve by pushing a fixed traffic volume
through the DMA engine at each block size.
"""

from repro.analysis.figures import PAPER_TABLE2, print_table2
from repro.hw.dma import bandwidth_table

from conftest import emit


def test_table2_dma_bandwidth(benchmark):
    rows = benchmark(bandwidth_table)
    text = print_table2(rows)
    measured = dict(rows)
    emit(
        benchmark,
        text,
        **{f"bw_{size}B_gbs": round(measured[size], 2) for size in PAPER_TABLE2},
    )
    for size, paper in PAPER_TABLE2.items():
        assert abs(measured[size] - paper) / paper < 0.01, (
            f"block {size} B: measured {measured[size]:.2f} GB/s vs "
            f"paper {paper:.2f}"
        )
