"""Scenario-layer overhead (DESIGN.md §15).

Three informational measurements, plus one structural gate:

* **Concretization throughput** — specs/sec over the full one-factor
  variant matrix, first pass (cold: parse + defaults + rules) vs the
  ``concretize_text`` LRU path the serve tier rides on every
  fingerprint/system-key access.
* **Campaign planning** — cells/sec for expand + concretize + dedup on
  a few-hundred-cell matrix; this is pure-python bookkeeping and must
  stay negligible next to a single kernel execution.
* **Admission overhead** (the gate) — a spec-bearing `JobRequest`'s
  validate + fingerprint + system_key must cost no more than 5x the
  legacy field-form request's, because concretization is cached on the
  spec text.  An uncached concretizer in the admission path would blow
  this immediately.

Run as a script for the table:

    PYTHONPATH=src python benchmarks/bench_scenarios.py
"""

from __future__ import annotations

import time

from repro.scenarios.campaign import plan_campaign
from repro.scenarios.registry import variant_matrix
from repro.scenarios.spec import concretize_text, parse_spec
from repro.serve.jobs import JobRequest

PLAN_MATRIX = (
    "water@spc,water@spce,water@tip3p,ionic "
    "n=900,1500,3000 elec=rf,pme ensemble=nve,nvt rung=cache,vec,fused "
    "seed=2019,7"
)
ADMIT_REPS = 2000


def _time(fn, reps: int = 1) -> float:
    t0 = time.perf_counter()
    for _ in range(reps):
        fn()
    return time.perf_counter() - t0


def measure_concretization() -> dict:
    cells = [text for text, _ in variant_matrix()]

    def cold():
        for text in cells:
            try:
                parse_spec(text).concretize()
            except Exception:
                pass

    def cached():
        for text in cells:
            try:
                concretize_text(text)
            except Exception:
                pass

    cached()  # prime the LRU
    t_cold = _time(cold)
    t_cached = _time(cached)
    return {
        "cells": len(cells),
        "cold_per_sec": len(cells) / t_cold,
        "cached_per_sec": len(cells) / t_cached,
    }


def measure_planning() -> dict:
    t0 = time.perf_counter()
    plan = plan_campaign(PLAN_MATRIX)
    elapsed = time.perf_counter() - t0
    return {
        "cells": len(plan.cells),
        "runnable": len(plan.runnable),
        "cells_per_sec": len(plan.cells) / elapsed,
        "seconds": elapsed,
    }


def measure_admission() -> dict:
    legacy = JobRequest(kind="kernel", n_particles=900, spec="MARK")
    spec = JobRequest(
        kind="kernel", scenario="water@spce n=1500 ensemble=nvt elec=rf"
    )

    def admit(req):
        req.validate()
        req.fingerprint
        req.system_key

    admit(spec)  # prime the concretize_text LRU
    t_legacy = _time(lambda: admit(legacy), ADMIT_REPS)
    t_spec = _time(lambda: admit(spec), ADMIT_REPS)
    return {
        "legacy_us": t_legacy / ADMIT_REPS * 1e6,
        "scenario_us": t_spec / ADMIT_REPS * 1e6,
        "ratio": t_spec / t_legacy,
    }


def test_cached_admission_overhead_bounded():
    """Spec-bearing admission rides the concretization cache: it must
    stay within 5x of the legacy request's bookkeeping cost."""
    result = measure_admission()
    assert result["ratio"] < 5.0, (
        f"scenario admission {result['ratio']:.1f}x legacy "
        f"({result['scenario_us']:.1f}us vs {result['legacy_us']:.1f}us) "
        "— is concretization being re-run per access?"
    )


def test_planning_is_fast():
    """Planning a few hundred cells must take well under a second."""
    result = measure_planning()
    assert result["cells"] >= 250
    assert result["seconds"] < 1.0, result


def main() -> None:
    conc = measure_concretization()
    print(f"concretization over {conc['cells']} matrix cells:")
    print(f"  cold    {conc['cold_per_sec']:10.0f} specs/sec")
    print(f"  cached  {conc['cached_per_sec']:10.0f} specs/sec")
    plan = measure_planning()
    print(f"campaign planning ({plan['cells']} cells, "
          f"{plan['runnable']} runnable):")
    print(f"  {plan['cells_per_sec']:10.0f} cells/sec "
          f"({plan['seconds'] * 1e3:.1f} ms total)")
    admit = measure_admission()
    print("admission (validate + fingerprint + system_key):")
    print(f"  legacy    {admit['legacy_us']:8.1f} us")
    print(f"  scenario  {admit['scenario_us']:8.1f} us "
          f"({admit['ratio']:.2f}x)")


if __name__ == "__main__":
    main()
