"""Throughput of the simulation service's hot path (DESIGN.md §10, §14).

Two benchmark families, both measured with **in-run steady-state
stamps** — within a single service lifetime the workload runs for
``N_PASSES`` passes, a wall-clock stamp is recorded at each pass
boundary, and pass 0 (cold builds: system construction, pair lists,
StepCache priming) is excluded from the reported rate.  The old
protocol timed whole runs and differenced the wall clocks of two
independent runs, so every ratio carried the cold-build noise PR 8
already evicted from ``bench_step_reuse.py``.

* **Coalescing** (ISSUE 5): jobs/sec at 1/4/16 concurrent clients on a
  50%-duplicate workload, request coalescing on vs off.  Residency is
  pinned *off* here so the rows isolate the dedup + batching layer; CI
  gates the 16-client row at >= 2x.
* **Resident** (ISSUE 9): jobs/sec on a repeated-same-system workload
  (one system key, four strategy specs per pass), resident-state warm
  workers vs cold dispatch.  Steady passes hit the warm `ResidentSim`
  (system + pair list + StepCache) while cold dispatch rebuilds per
  batch; CI gates the committed row at >= 3x via
  ``hoststamp.require_fresh_baseline`` (self-skips on degraded hosts).

Speedup ratios are machine-portable (same workload, same host, same
run protocol); absolute jobs/sec are informational.  Run as a script
to (re)generate the committed snapshot:

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import pytest

from repro.serve.jobs import JobRequest
from repro.serve.service import ServeConfig, SimulationService

SNAPSHOT_PATH = Path(__file__).parent / "BENCH_serve.json"
#: 4 system keys x 4 specs = 16 distinct units, each submitted twice.
SYSTEM_SEEDS = (0, 1, 2, 3)
SPECS = ("MARK", "CACHE", "VEC", "PKG")
N_PARTICLES = 300
R_CUT = 0.45
CLIENT_COUNTS = (1, 4, 16)
#: Passes per measurement; pass 0 is the cold pass (excluded), passes
#: 1..N-1 are the steady-state window the rates are computed over.
N_PASSES = 4
#: CI acceptance floor (ISSUE 5): coalescing buys >= 2x jobs/sec on the
#: 50%-duplicate workload.  Dedup alone is an asymptotic 2x; StepCache
#: batching pushes the measured ratio well past the floor.
MIN_DEDUP_SPEEDUP = 2.0
GATE_CLIENTS = 16
#: CI acceptance floor (ISSUE 9): resident-state warm workers buy
#: >= 3x steady-state jobs/sec over cold dispatch when consecutive
#: passes reuse one system (BENCH_step.json puts a cold build at 5-7x
#: a steady step, and residency deletes it from every warm pass).
MIN_RESIDENT_SPEEDUP = 3.0
RESIDENT_CLIENTS = 4
#: A meaningful concurrency measurement needs the service loop and its
#: executing backend to not time-slice one core; ratios stay valid on
#: one CPU but absolute jobs/sec are degraded.
REQUIRED_CPUS = 2


def build_workload() -> list[JobRequest]:
    """32 kernel jobs: 16 distinct requests, each with one twin."""
    units = [
        JobRequest(n_particles=N_PARTICLES, r_cut=R_CUT, seed=s, spec=sp)
        for s in SYSTEM_SEEDS
        for sp in SPECS
    ]
    return [u for u in units for _ in range(2)]


def build_resident_workload() -> list[JobRequest]:
    """4 kernel jobs on *one* system: the repeated-burst serve shape
    residency exists for (no duplicates — dedup never fires)."""
    return [
        JobRequest(n_particles=N_PARTICLES, r_cut=R_CUT, seed=0, spec=sp)
        for sp in SPECS
    ]


def measure(
    jobs: list[JobRequest],
    clients: int,
    *,
    dedup: bool,
    resident: bool,
) -> dict:
    """Steady-state jobs/sec with ``clients`` concurrent submitters.

    Each client owns an interleaved slice of the workload, submits it
    all, then awaits every result — the steady-state shape of a shared
    service, where coalescing opportunities come from co-queued and
    in-flight requests.  The whole workload runs ``N_PASSES`` times in
    one service lifetime with a stamp at each pass boundary; the
    reported rate covers passes 1..N-1 only, so one-time cold builds
    never pollute the number (in-run steady-state stamps, the
    ``bench_step_reuse.py`` protocol).
    """
    slices = [jobs[c::clients] for c in range(clients)]

    async def scenario():
        config = ServeConfig(
            max_depth=len(jobs) + 4, dedup=dedup, resident=resident
        )
        async with SimulationService(config) as svc:

            async def client_task(requests):
                accepted = [await svc.submit(r) for r in requests]
                return await asyncio.gather(*(j.future for j in accepted))

            stamps = [time.perf_counter()]
            for _ in range(N_PASSES):
                per_client = await asyncio.gather(
                    *(client_task(s) for s in slices)
                )
                stamps.append(time.perf_counter())
                results = [r for batch in per_client for r in batch]
                assert all(r.ok for r in results), "benchmark job failed"
            return stamps, svc.stats

    stamps, stats = asyncio.run(scenario())
    steady_jobs = (N_PASSES - 1) * len(jobs)
    steady_s = stamps[-1] - stamps[1]
    return {
        "clients": clients,
        "jobs_per_pass": len(jobs),
        "passes": N_PASSES,
        "cold_pass_seconds": stamps[1] - stamps[0],
        "steady_seconds": steady_s,
        "jobs_per_second": steady_jobs / steady_s,
        "executed_units": stats.executed_units,
        "dedup_hits": stats.dedup_hits,
        "batches": stats.batches,
        "sr_evals": stats.sr_evals,
        "sr_hits": stats.sr_hits,
        "resident_hits": stats.resident_hits,
        "resident_builds": stats.resident_builds,
    }


def measure_pair(clients: int) -> dict:
    """Coalescing on vs off (residency pinned off: isolate the layer)."""
    jobs = build_workload()
    on = measure(jobs, clients, dedup=True, resident=False)
    off = measure(jobs, clients, dedup=False, resident=False)
    return {
        "clients": clients,
        "coalescing_on": on,
        "coalescing_off": off,
        "speedup": on["jobs_per_second"] / off["jobs_per_second"],
    }


def measure_resident_pair(clients: int = RESIDENT_CLIENTS) -> dict:
    """Resident warm workers vs cold dispatch, same burst workload."""
    jobs = build_resident_workload()
    warm = measure(jobs, clients, dedup=True, resident=True)
    cold = measure(jobs, clients, dedup=True, resident=False)
    return {
        "clients": clients,
        "resident_on": warm,
        "resident_off": cold,
        "speedup": warm["jobs_per_second"] / cold["jobs_per_second"],
    }


def collect() -> dict:
    from hoststamp import host_stamp

    return {
        **host_stamp(required_cpus=REQUIRED_CPUS),
        "methodology": (
            "in-run steady-state stamps: N_PASSES passes per service "
            "lifetime, pass 0 (cold builds) excluded from rates"
        ),
        "workload": {
            "jobs": len(build_workload()),
            "distinct_requests": len(SYSTEM_SEEDS) * len(SPECS),
            "duplicate_fraction": 0.5,
            "n_particles": N_PARTICLES,
            "r_cut": R_CUT,
        },
        "gate": {
            "clients": GATE_CLIENTS,
            "min_speedup": MIN_DEDUP_SPEEDUP,
        },
        "resident_gate": {
            "clients": RESIDENT_CLIENTS,
            "min_speedup": MIN_RESIDENT_SPEEDUP,
        },
        "throughput": {str(c): measure_pair(c) for c in CLIENT_COUNTS},
        "resident": measure_resident_pair(),
    }


def main() -> None:
    data = collect()
    SNAPSHOT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(
        f"wrote {SNAPSHOT_PATH} (host_cpus={data['host_cpus']}, "
        f"degraded={data['degraded']})"
    )
    for c, row in data["throughput"].items():
        on, off = row["coalescing_on"], row["coalescing_off"]
        print(
            f"  {c:>2} client(s): {on['jobs_per_second']:6.1f} jobs/s "
            f"coalesced vs {off['jobs_per_second']:6.1f} raw "
            f"({row['speedup']:.2f}x, {on['executed_units']} vs "
            f"{off['executed_units']} executions)"
        )
    res = data["resident"]
    warm, cold = res["resident_on"], res["resident_off"]
    print(
        f"  resident:    {warm['jobs_per_second']:6.1f} jobs/s warm vs "
        f"{cold['jobs_per_second']:6.1f} cold ({res['speedup']:.2f}x, "
        f"{warm['resident_hits']} resident hits)"
    )


# ---------------------------------------------------------------------------
# pytest entry points (the CI serve-smoke / perf-smoke jobs)
# ---------------------------------------------------------------------------


def test_dedup_throughput_meets_floor():
    """Coalescing must buy >= 2x steady-state jobs/sec at 16 concurrent
    clients on the 50%-duplicate workload (dedup halves executions;
    StepCache batching provides the margin over the asymptote)."""
    row = measure_pair(GATE_CLIENTS)
    assert row["speedup"] >= MIN_DEDUP_SPEEDUP, row


def test_dedup_halves_executions():
    """The structural half of the claim, independent of wall clock:
    every twin pair collapses into exactly one execution, every pass."""
    jobs = build_workload()
    row = measure(jobs, GATE_CLIENTS, dedup=True, resident=False)
    total = row["jobs_per_pass"] * row["passes"]
    assert row["executed_units"] == total // 2, row
    assert row["dedup_hits"] == total // 2, row


def test_resident_throughput_meets_floor():
    """Warm residency must buy >= 3x steady-state jobs/sec over cold
    dispatch on the repeated-same-system burst (live ratio: same host,
    same workload, cold pass excluded on both sides)."""
    row = measure_resident_pair()
    assert row["speedup"] >= MIN_RESIDENT_SPEEDUP, row
    # Structural half: steady passes ride residency, never rebuild.
    warm = row["resident_on"]
    assert warm["resident_builds"] == 1, warm
    assert warm["resident_hits"] >= warm["passes"] - 1, warm


@pytest.mark.parametrize("clients", [1, 4])
def test_throughput_rows_complete(clients):
    """Smaller client counts serve every job correctly too."""
    row = measure(build_workload(), clients, dedup=True, resident=False)
    assert row["executed_units"] <= row["jobs_per_pass"] * row["passes"]
    assert row["jobs_per_second"] > 0


def test_committed_baseline_meets_floor():
    """Judge the committed snapshot itself; a baseline recorded on a
    degraded host skips with its host shape in the reason instead of
    silently passing stale or doomed numbers."""
    from hoststamp import require_fresh_baseline

    data = require_fresh_baseline(
        SNAPSHOT_PATH, "serve throughput baseline"
    )
    row = data["throughput"][str(GATE_CLIENTS)]
    assert row["speedup"] >= MIN_DEDUP_SPEEDUP, row


def test_committed_resident_baseline_meets_floor():
    """The resident-vs-cold row of the committed snapshot must hold the
    3x floor; self-skips (loudly) when the snapshot was recorded on a
    degraded host."""
    from hoststamp import require_fresh_baseline

    data = require_fresh_baseline(
        SNAPSHOT_PATH, "resident throughput baseline"
    )
    row = data["resident"]
    assert row["speedup"] >= MIN_RESIDENT_SPEEDUP, row
    assert row["resident_on"]["resident_hits"] > 0, row


if __name__ == "__main__":
    main()
