"""Throughput of the simulation service's coalescing layer (DESIGN.md §10).

Measures end-to-end jobs/second through a live `SimulationService` at
1, 4, and 16 concurrent clients, with request coalescing on and off, on
a 50%-duplicate workload (every request has exactly one twin).  The
coalescing layer wins twice on this workload:

* **dedup** — each twin pair executes once and fans out (2x fewer
  executions);
* **batching** — the surviving distinct units share system builds, pair
  lists, and `StepCache` short-range evaluations per system key
  (another ~3x on the worker).

The ``speedup`` ratio (coalescing on / off, same host, same workload) is
machine-portable; CI gates the 16-client row at >= 2x (ISSUE 5).  Bit
usefulness is asserted inline: every served payload must be ok, and the
dedup run must report exactly half the executions.

Run as a script to (re)generate the committed snapshot:

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import pytest

from repro.serve.jobs import JobRequest
from repro.serve.service import ServeConfig, SimulationService

SNAPSHOT_PATH = Path(__file__).parent / "BENCH_serve.json"
#: 4 system keys x 4 specs = 16 distinct units, each submitted twice.
SYSTEM_SEEDS = (0, 1, 2, 3)
SPECS = ("MARK", "CACHE", "VEC", "PKG")
N_PARTICLES = 300
R_CUT = 0.45
CLIENT_COUNTS = (1, 4, 16)
#: CI acceptance floor (ISSUE 5): coalescing buys >= 2x jobs/sec on the
#: 50%-duplicate workload.  Dedup alone is an asymptotic 2x; StepCache
#: batching pushes the measured ratio well past the floor.
MIN_DEDUP_SPEEDUP = 2.0
GATE_CLIENTS = 16
#: A meaningful concurrency measurement needs the service loop and its
#: executing backend to not time-slice one core; ratios stay valid on
#: one CPU but absolute jobs/sec are degraded.
REQUIRED_CPUS = 2


def build_workload() -> list[JobRequest]:
    """32 kernel jobs: 16 distinct requests, each with one twin."""
    units = [
        JobRequest(n_particles=N_PARTICLES, r_cut=R_CUT, seed=s, spec=sp)
        for s in SYSTEM_SEEDS
        for sp in SPECS
    ]
    return [u for u in units for _ in range(2)]


def measure(clients: int, dedup: bool) -> dict:
    """Jobs/sec with ``clients`` concurrent submitters.

    Each client owns an interleaved slice of the workload, submits it
    all, then awaits every result — the steady-state shape of a shared
    service, where coalescing opportunities come from co-queued and
    in-flight requests, not from an offline batch pass.
    """
    jobs = build_workload()
    slices = [jobs[c::clients] for c in range(clients)]

    async def scenario():
        config = ServeConfig(max_depth=len(jobs) + 4, dedup=dedup)
        async with SimulationService(config) as svc:

            async def client_task(requests):
                accepted = [await svc.submit(r) for r in requests]
                return await asyncio.gather(*(j.future for j in accepted))

            t0 = time.perf_counter()
            per_client = await asyncio.gather(
                *(client_task(s) for s in slices)
            )
            elapsed = time.perf_counter() - t0
            results = [r for batch in per_client for r in batch]
            assert all(r.ok for r in results), "benchmark job failed"
            return elapsed, svc.stats

    elapsed, stats = asyncio.run(scenario())
    return {
        "clients": clients,
        "jobs": len(jobs),
        "seconds": elapsed,
        "jobs_per_second": len(jobs) / elapsed,
        "executed_units": stats.executed_units,
        "dedup_hits": stats.dedup_hits,
        "batches": stats.batches,
        "sr_evals": stats.sr_evals,
        "sr_hits": stats.sr_hits,
    }


def measure_pair(clients: int) -> dict:
    on = measure(clients, dedup=True)
    off = measure(clients, dedup=False)
    return {
        "clients": clients,
        "coalescing_on": on,
        "coalescing_off": off,
        "speedup": on["jobs_per_second"] / off["jobs_per_second"],
    }


def collect() -> dict:
    from hoststamp import host_stamp

    return {
        **host_stamp(required_cpus=REQUIRED_CPUS),
        "workload": {
            "jobs": len(build_workload()),
            "distinct_requests": len(SYSTEM_SEEDS) * len(SPECS),
            "duplicate_fraction": 0.5,
            "n_particles": N_PARTICLES,
            "r_cut": R_CUT,
        },
        "gate": {
            "clients": GATE_CLIENTS,
            "min_speedup": MIN_DEDUP_SPEEDUP,
        },
        "throughput": {str(c): measure_pair(c) for c in CLIENT_COUNTS},
    }


def main() -> None:
    data = collect()
    SNAPSHOT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(
        f"wrote {SNAPSHOT_PATH} (host_cpus={data['host_cpus']}, "
        f"degraded={data['degraded']})"
    )
    for c, row in data["throughput"].items():
        on, off = row["coalescing_on"], row["coalescing_off"]
        print(
            f"  {c:>2} client(s): {on['jobs_per_second']:6.1f} jobs/s "
            f"coalesced vs {off['jobs_per_second']:6.1f} raw "
            f"({row['speedup']:.2f}x, {on['executed_units']} vs "
            f"{off['executed_units']} executions)"
        )


# ---------------------------------------------------------------------------
# pytest entry points (the CI serve-smoke job)
# ---------------------------------------------------------------------------


def test_dedup_throughput_meets_floor():
    """Coalescing must buy >= 2x jobs/sec at 16 concurrent clients on
    the 50%-duplicate workload (dedup halves executions; StepCache
    batching provides the margin over the asymptote)."""
    row = measure_pair(GATE_CLIENTS)
    assert row["speedup"] >= MIN_DEDUP_SPEEDUP, row


def test_dedup_halves_executions():
    """The structural half of the claim, independent of wall clock:
    every twin pair collapses into exactly one execution."""
    row = measure(GATE_CLIENTS, dedup=True)
    assert row["executed_units"] == row["jobs"] // 2, row
    assert row["dedup_hits"] == row["jobs"] // 2, row


@pytest.mark.parametrize("clients", [1, 4])
def test_throughput_rows_complete(clients):
    """Smaller client counts serve every job correctly too."""
    row = measure(clients, dedup=True)
    assert row["executed_units"] <= row["jobs"]
    assert row["jobs_per_second"] > 0


def test_committed_baseline_meets_floor():
    """Judge the committed snapshot itself; a baseline recorded on a
    degraded host skips with its host shape in the reason instead of
    silently passing stale or doomed numbers."""
    from hoststamp import require_fresh_baseline

    data = require_fresh_baseline(
        SNAPSHOT_PATH, "serve throughput baseline"
    )
    row = data["throughput"][str(GATE_CLIENTS)]
    assert row["speedup"] >= MIN_DEDUP_SPEEDUP, row
    on = row["coalescing_on"]
    assert on["dedup_hits"] == on["jobs"] // 2, on


if __name__ == "__main__":
    main()
