"""Fig. 9 — write-conflict strategy comparison.

USTC_GMX (MPE collects), SW_LAMMPS (RCA redundant compute), RMA_GMX
(per-CPE copies + init + reduction), MARK_GMX (this paper) on case 1.
"""

import pytest

from repro.analysis.figures import PAPER_FIG9, print_speedup_bars
from repro.core.strategies import BASELINE_STRATEGIES, run_ladder

from conftest import cached_water, emit


def test_fig9_strategy_comparison(benchmark, nb_paper, case1_particles):
    system = cached_water(case1_particles)

    lad = benchmark.pedantic(
        lambda: run_ladder(system, BASELINE_STRATEGIES, nb_paper),
        rounds=1,
        iterations=1,
    )
    text = print_speedup_bars(
        {k: v for k, v in lad.speedups.items() if k != "Ori"},
        PAPER_FIG9,
        f"Fig. 9 — strategy comparison, case 1 ({case1_particles} particles)",
    )
    emit(
        benchmark,
        text,
        **{k: round(v, 1) for k, v in lad.speedups.items()},
    )

    s = lad.speedups
    # Paper: 16 / 16.4 / 40 / 63 — ordering and rough factors.
    assert s["USTC_GMX"] == pytest.approx(16, rel=0.6)
    assert s["SW_LAMMPS"] == pytest.approx(16.4, rel=0.6)
    assert s["RMA_GMX"] == pytest.approx(40, rel=0.5)
    assert s["MARK_GMX"] == pytest.approx(63, rel=0.5)
    assert max(s["USTC_GMX"], s["SW_LAMMPS"]) < s["RMA_GMX"] < s["MARK_GMX"]
    # The headline: the update-mark strategy beats RMA by well over 1.2x
    # (paper: ~1.6x) because init disappears and reduction shrinks.
    assert s["MARK_GMX"] / s["RMA_GMX"] > 1.2
