"""Perf trajectory of the step-compute reuse layer (DESIGN.md §8).

Measures, for the water benchmark at three sizes:

* MD steps/sec of `SWGromacsEngine` with reuse on (informational —
  machine-dependent, never gated);
* the wall-clock speedup of one `run_strategy_sweep` over the full
  Fig. 8+9 rung set versus running every rung naively (each through a
  fresh `NullStepCache`, i.e. one `compute_short_range` per rung) —
  machine-portable ratios, gated in CI.

Run as a script to (re)generate the committed baseline:

    PYTHONPATH=src python benchmarks/bench_step_reuse.py

Run under pytest (the CI perf-smoke job) to check the current tree
against ``BENCH_step.json``: the sweep speedup must stay >= the
acceptance floor (1.5x) and within 20 % of the committed baseline.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.kernels import ALL_SPECS, run_kernel, run_strategy_sweep
from repro.core.stepcache import NullStepCache
from repro.md.nonbonded import NonbondedParams
from repro.md.pairlist import build_pair_list
from repro.md.water import build_water_system

BASELINE_PATH = Path(__file__).parent / "BENCH_step.json"
SIZES = (750, 1500, 3000)  # ~particles per water box
SWEEP_SPECS = list(ALL_SPECS)
#: Acceptance floor for the reuse speedup (ISSUE 3) and the CI
#: regression tolerance against the committed baseline.
MIN_SWEEP_SPEEDUP = 1.5
REGRESSION_TOLERANCE = 0.20
N_MD_STEPS = 10
SEED = 2019


def _nb() -> NonbondedParams:
    return NonbondedParams(r_cut=0.8, r_list=0.9, coulomb_mode="rf")


def measure_sweep_speedup(n_particles: int) -> dict:
    """Wall-clock ratio: naive per-rung kernels vs one shared sweep."""
    system = build_water_system(n_particles, seed=SEED)
    nb = _nb()
    plist = build_pair_list(system, nb.r_list)

    t0 = time.perf_counter()
    naive = {
        name: run_kernel(
            system, plist, nb, ALL_SPECS[name], cache=NullStepCache()
        )
        for name in SWEEP_SPECS
    }
    naive_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    swept = run_strategy_sweep(system, plist, nb, SWEEP_SPECS)
    sweep_s = time.perf_counter() - t0

    # The point of the exercise: identical physics, fewer evaluations.
    for name in SWEEP_SPECS:
        assert swept[name].energy == naive[name].energy, name
    return {
        "n_particles": int(system.n_particles),
        "naive_seconds": naive_s,
        "sweep_seconds": sweep_s,
        "speedup": naive_s / sweep_s,
    }


def measure_engine_steps_per_sec(n_particles: int) -> dict:
    """Engine throughput with reuse on (informational, machine-bound)."""
    from repro.core.engine import EngineConfig, SWGromacsEngine

    system = build_water_system(n_particles, seed=SEED)
    engine = SWGromacsEngine(
        system, EngineConfig(nonbonded=_nb(), step_reuse=True)
    )
    t0 = time.perf_counter()
    engine.run(N_MD_STEPS)
    elapsed = time.perf_counter() - t0
    return {
        "n_particles": int(system.n_particles),
        "steps_per_sec": N_MD_STEPS / elapsed,
    }


def collect() -> dict:
    from hoststamp import host_stamp

    return {
        # The sweep is serial by design: one core is the measured
        # configuration, so this baseline is never degraded.
        **host_stamp(required_cpus=1),
        "sweep_specs": SWEEP_SPECS,
        "n_md_steps": N_MD_STEPS,
        "sweep": {str(n): measure_sweep_speedup(n) for n in SIZES},
        "engine": {
            str(n): measure_engine_steps_per_sec(n) for n in SIZES
        },
    }


def main() -> None:
    data = collect()
    BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {BASELINE_PATH}")
    for n, row in data["sweep"].items():
        print(
            f"  n={n}: sweep {row['speedup']:.2f}x over naive "
            f"({row['naive_seconds']:.3f}s -> {row['sweep_seconds']:.3f}s)"
        )
    for n, row in data["engine"].items():
        print(f"  n={n}: engine {row['steps_per_sec']:.1f} steps/s")


# ---------------------------------------------------------------------------
# pytest entry points (the CI perf-smoke job)
# ---------------------------------------------------------------------------


def test_sweep_speedup_meets_floor():
    """Reuse must buy >= 1.5x on the ablation sweep at every size."""
    for n in SIZES:
        row = measure_sweep_speedup(n)
        assert row["speedup"] >= MIN_SWEEP_SPEEDUP, row


def test_no_regression_against_committed_baseline():
    """Speedup *ratios* are machine-portable: the current tree must stay
    within 20 % of the committed ``BENCH_step.json`` baseline.  Absolute
    steps/sec are informational only and never gated."""
    from hoststamp import require_fresh_baseline

    baseline = require_fresh_baseline(
        BASELINE_PATH, "step-reuse baseline"
    )
    for n in SIZES:
        base = baseline["sweep"][str(n)]["speedup"]
        now = measure_sweep_speedup(n)["speedup"]
        floor = base * (1.0 - REGRESSION_TOLERANCE)
        assert now >= floor, (
            f"n={n}: sweep speedup regressed to {now:.2f}x "
            f"(baseline {base:.2f}x, floor {floor:.2f}x)"
        )


if __name__ == "__main__":
    main()
